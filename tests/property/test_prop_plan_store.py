"""Property tests for the on-disk plan-artifact store.

Two safety properties back the store's durability contract:

* **Round-trip or quarantine** — under any interleaving of puts, gets,
  on-disk corruption, gc and clear, a read returns either exactly the
  artifact last stored under that key or ``None`` (miss/quarantined).
  A *wrong* artifact — another key's data, a torn write, a bit-flipped
  payload — is never served.
* **Multi-process consistency** — processes hammering one store directory
  concurrently (content-addressed keys, advisory locking, atomic
  publication) observe the same property; no reader ever sees a torn or
  foreign entry.
"""

import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import PlanArtifactStore
from repro.tsp.tour import Tour

_FP = "prop-fp"
_N_KEYS = 5


def _tours_for(key: int) -> tuple[Tour, ...]:
    """A distinct, recognisable artifact per key."""
    return (Tour(depot=0, order=(0, key + 1, key + 100)),)


def _coverage(key: int) -> frozenset[int]:
    return frozenset({key})


# One operation: (op name, key/argument). Corruption flips a byte in the
# i-th entry file (whatever key it belongs to); gc trims to ``arg`` entries.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, _N_KEYS - 1)),
        st.tuples(st.just("get"), st.integers(0, _N_KEYS - 1)),
        st.tuples(st.just("corrupt"), st.integers(0, 9)),
        st.tuples(st.just("truncate"), st.integers(0, 9)),
        st.tuples(st.just("gc"), st.integers(0, _N_KEYS)),
        st.tuples(st.just("clear"), st.just(0)),
    ),
    min_size=1, max_size=30)


class TestInterleavings:
    @given(_ops)
    @settings(max_examples=40, deadline=None)
    def test_round_trip_or_quarantine(self, ops):
        """Whatever happened before it, a get is the stored value or None."""
        root = tempfile.mkdtemp(prefix="prop-plan-store-")
        try:
            store = PlanArtifactStore(root)
            for op, arg in ops:
                if op == "put":
                    store.put_tours(_FP, _coverage(arg), False, _tours_for(arg))
                elif op == "get":
                    got = store.get_tours(_FP, _coverage(arg), False)
                    assert got is None or got == _tours_for(arg)
                elif op in ("corrupt", "truncate"):
                    entries = sorted(store._objects.rglob("*.json"))
                    if entries:
                        victim = entries[arg % len(entries)]
                        blob = victim.read_bytes()
                        if op == "corrupt" and blob:
                            mutated = bytearray(blob)
                            mutated[len(mutated) // 2] ^= 0x08
                            victim.write_bytes(bytes(mutated))
                        elif op == "truncate":
                            victim.write_bytes(blob[: len(blob) // 2])
                elif op == "gc":
                    store.gc(max_entries=arg)
                else:
                    store.clear()
            # Post-mortem: verify quarantines whatever corruption remains
            # and afterwards every surviving entry decodes clean.
            store.verify()
            report = store.verify()
            assert report["corrupt"] == 0
            assert store.stats()["unreadable"] == 0
            # And every key still reads safely.
            for key in range(_N_KEYS):
                got = store.get_tours(_FP, _coverage(key), False)
                assert got is None or got == _tours_for(key)
        finally:
            shutil.rmtree(root, ignore_errors=True)


def _hammer_worker(args: tuple[str, int, int]) -> int:
    """One process's slice of the shared-store hammer.

    Interleaves puts and gets over the shared key space (plus one in-place
    corruption) and returns the number of integrity violations observed —
    a get returning anything but the key's canonical artifact or ``None``.
    """
    root, seed, n_ops = args
    store = PlanArtifactStore(root)
    violations = 0
    for i in range(n_ops):
        key = (seed * 7 + i) % _N_KEYS
        action = (seed + i) % 3
        if action == 0:
            store.put_tours(_FP, _coverage(key), False, _tours_for(key))
        elif action == 1:
            got = store.get_tours(_FP, _coverage(key), False)
            if got is not None and got != _tours_for(key):
                violations += 1
        else:
            entries = sorted(Path(root, "objects").rglob("*.json"))
            if entries:
                victim = entries[i % len(entries)]
                try:
                    blob = bytearray(victim.read_bytes())
                    if blob:
                        blob[len(blob) // 2] ^= 0x10
                        victim.write_bytes(bytes(blob))
                except OSError:
                    pass  # raced with another process's quarantine
    return violations


class TestTwoProcessConsistency:
    def test_concurrent_hammer_never_serves_wrong_artifact(self, tmp_path):
        root = str(tmp_path / "shared")
        PlanArtifactStore(root)  # initialise the marker up front
        jobs = [(root, seed, 120) for seed in range(3)]
        with ProcessPoolExecutor(max_workers=3) as pool:
            violations = list(pool.map(_hammer_worker, jobs))
        assert violations == [0, 0, 0]
        # The directory is left in a self-consistent state: one verify
        # sweep quarantines any remaining corruption, the next is clean.
        store = PlanArtifactStore(root)
        store.verify()
        assert store.verify()["corrupt"] == 0
