"""Property-based tests for the kernel layer (hypothesis).

Two families:

* **Cross-algorithm**: Prim (dense matrix) and Kruskal (sparse edge list)
  are independent MST algorithms; on the same metric their trees must
  weigh exactly the same (the tree itself may differ under ties, the
  weight cannot).
* **Cross-backend**: the ``fast`` kernel backend must be *move-for-move*
  identical to ``reference`` — same MST edge lists in the same order,
  same refined tours — and the incremental forest extension must either
  reproduce the from-scratch forest exactly or refuse (return ``None``).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.graphs.mst import kruskal_mst, mst_weight, prim_mst
from repro.kernels import get_backend
from repro.rooted.incremental import extend_q_rooted_msf
from repro.rooted.msf import q_rooted_msf
from repro.tsp.tour import Tour


@st.composite
def point_metrics(draw, min_n=2, max_n=20):
    """A Euclidean distance matrix over random points in the plane."""
    n = draw(st.integers(min_n, max_n))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 500, allow_nan=False, width=32),
                  st.floats(0, 500, allow_nan=False, width=32)),
        min_size=n, max_size=n))
    return distance_matrix(np.asarray(pts, dtype=np.float64))


@st.composite
def tour_instances(draw, min_stops=0, max_stops=12):
    n_stops = draw(st.integers(min_stops, max_stops))
    dist = draw(point_metrics(min_n=n_stops + 1, max_n=n_stops + 1))
    stops = draw(st.permutations(list(range(1, n_stops + 1))))
    return dist, Tour(depot=0, order=(0, *stops))


@st.composite
def incremental_instances(draw):
    """A metric plus a (base, added, depots) split of its nodes."""
    n = draw(st.integers(3, 14))
    q = draw(st.integers(1, 3))
    dist = draw(point_metrics(min_n=n + q, max_n=n + q))
    n_added = draw(st.integers(1, n - 1))
    added = sorted(draw(st.permutations(list(range(n))))[:n_added])
    base = sorted(set(range(n)) - set(added))
    depots = list(range(n, n + q))
    return dist, base, added, depots


class TestPrimVsKruskal:
    @given(point_metrics())
    @settings(max_examples=80, deadline=None)
    def test_equal_weight_spanning_trees(self, dist):
        """Satellite oracle: two independent MST algorithms, one weight."""
        n = dist.shape[0]
        prim_edges = prim_mst(dist)
        sparse = [(i, j, float(dist[i, j]))
                  for i in range(n) for j in range(i + 1, n)]
        kruskal_edges = kruskal_mst(n, sparse)
        assert len(prim_edges) == len(kruskal_edges) == n - 1
        assert np.isclose(mst_weight(dist, prim_edges),
                          mst_weight(dist, kruskal_edges),
                          rtol=1e-12, atol=1e-9)


class TestFastBackendExact:
    @given(point_metrics(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_prim_identical(self, dist, data):
        root = data.draw(st.integers(0, dist.shape[0] - 1))
        ref = get_backend("reference").prim_mst(dist, root=root)
        fast = get_backend("fast").prim_mst(dist, root=root)
        assert ref == fast

    @given(tour_instances())
    @settings(max_examples=60, deadline=None)
    def test_two_opt_identical(self, instance):
        dist, tour = instance
        assert (get_backend("reference").two_opt(dist, tour)
                == get_backend("fast").two_opt(dist, tour))

    @given(tour_instances(max_stops=10))
    @settings(max_examples=60, deadline=None)
    def test_or_opt_identical(self, instance):
        dist, tour = instance
        assert (get_backend("reference").or_opt(dist, tour)
                == get_backend("fast").or_opt(dist, tour))


class TestIncrementalMsfExact:
    @given(incremental_instances())
    @settings(max_examples=60, deadline=None)
    def test_extension_exact_or_refuses(self, instance):
        dist, base, added, depots = instance
        if not base:
            return
        base_forest = q_rooted_msf(dist, base, depots)
        extended = extend_q_rooted_msf(dist, base, base_forest, added, depots)
        if extended is not None:
            scratch = q_rooted_msf(dist, sorted(base + added), depots)
            assert extended == scratch
