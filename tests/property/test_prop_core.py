"""Property-based tests for quantisation, Algorithm 3 and feasibility.

The headline property — **every plan Algorithm 3 emits keeps every sensor
alive** — is checked two independent ways: analytically (gap inspection)
and behaviourally (the exact-drain simulator observes zero deaths).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import check_feasibility
from repro.core.mintotal import min_total_distance
from repro.core.quantize import quantize_cycles
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.builder import NetworkBuilder
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload

cycles_strategy = st.lists(
    st.floats(0.5, 64.0, allow_nan=False, allow_infinity=False, width=32),
    min_size=1, max_size=50)


class TestQuantizeProperties:
    @given(cycles_strategy)
    @settings(max_examples=100, deadline=None)
    def test_half_open_sandwich(self, cycles):
        """Paper inequality (1): tau_i / 2 < tau'_i <= tau_i."""
        tau = np.asarray(cycles, dtype=np.float64)
        q = quantize_cycles(tau)
        assert np.all(q.assigned <= tau * (1 + 1e-9))
        assert np.all(q.assigned > tau / 2 * (1 - 1e-9))

    @given(cycles_strategy)
    @settings(max_examples=100, deadline=None)
    def test_assigned_cycles_nest(self, cycles):
        """All assigned cycles divide the largest one (power-of-two chain)."""
        q = quantize_cycles(np.asarray(cycles))
        ratios = q.block_cycle / q.assigned
        assert np.allclose(ratios, np.round(ratios))

    @given(cycles_strategy)
    @settings(max_examples=100, deadline=None)
    def test_classes_partition(self, cycles):
        q = quantize_cycles(np.asarray(cycles))
        total = sum(len(q.members(k)) for k in range(q.K + 1))
        assert total == len(cycles)

    @given(cycles_strategy, st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_due_pattern_is_periodic(self, cycles, j):
        q = quantize_cycles(np.asarray(cycles))
        jj = (j - 1) % q.block_size + 1
        due_j = set(q.sensors_due_at(jj).tolist())
        due_next_block = set(q.sensors_due_at(jj + q.block_size).tolist()
                             if jj + q.block_size <= 2 * q.block_size else [])
        if due_next_block:
            assert due_j == due_next_block


@st.composite
def small_networks(draw):
    n = draw(st.integers(2, 15))
    pts = draw(st.lists(
        st.tuples(st.floats(1, 999, allow_nan=False, width=32),
                  st.floats(1, 999, allow_nan=False, width=32)),
        min_size=n + 2, max_size=n + 2, unique=True))
    cycles = draw(st.lists(st.floats(1.0, 40.0, allow_nan=False, width=32),
                           min_size=n, max_size=n))
    sensor_pts = [Point(float(x), float(y)) for x, y in pts[:n]]
    depot_pts = [Point(float(x), float(y)) for x, y in pts[n:]]
    return (NetworkBuilder()
            .with_area(Rect.square(1000.0))
            .with_sensors_at(sensor_pts)
            .with_base_station_at_center()
            .with_depots_at(depot_pts)
            .with_cycles(cycles)
            .build())


class TestAlgorithm3Properties:
    @given(small_networks(), st.floats(5.0, 120.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_plan_always_feasible_analytically(self, net, horizon):
        res = min_total_distance(net, horizon)
        report = check_feasibility(res.plan, net.cycles)
        assert report.feasible, report.summary()

    @given(small_networks())
    @settings(max_examples=15, deadline=None)
    def test_plan_always_feasible_in_simulation(self, net):
        """Independent behavioural check with the exact-drain simulator."""
        res = min_total_distance(net, 80.0)
        out = simulate(net, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(net), 80.0)
        assert out.metrics.perpetual, out.metrics.summary()

    @given(small_networks())
    @settings(max_examples=20, deadline=None)
    def test_lemma3_bound_is_below_any_feasible_cost(self, net):
        """LB <= OPT <= cost of any feasible solution — so the certificate
        must sit below Algorithm 3's cost on every instance."""
        from repro.core.bounds import lemma3_lower_bound
        from repro.core.cost import service_cost

        horizon = 100.0
        res = min_total_distance(net, horizon)
        cost = service_cost(net.dist, res.plan)
        lb = lemma3_lower_bound(net, horizon)
        assert lb.bound <= cost + 1e-6

    @given(small_networks())
    @settings(max_examples=15, deadline=None)
    def test_every_sensor_charged_at_its_assigned_period(self, net):
        horizon = 70.0
        res = min_total_distance(net, horizon)
        assigned = res.quantization.assigned
        for i in range(net.n):
            times = res.plan.charge_times_of(i)
            expected = []
            t = assigned[i]
            while t < horizon:
                expected.append(t)
                t += assigned[i]
            np.testing.assert_allclose(times, expected, rtol=1e-9)
