"""Property-based tests for the q-rooted algorithms (Algorithms 1 and 2)."""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.graphs.mst import mst_weight, prim_mst
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp, tours_total_cost


@st.composite
def rooted_instances(draw, max_sensors=10, max_depots=3):
    n = draw(st.integers(1, max_sensors))
    q = draw(st.integers(1, max_depots))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False, width=32),
                  st.floats(0, 1000, allow_nan=False, width=32)),
        min_size=n + q, max_size=n + q))
    dist = distance_matrix(np.asarray(pts, dtype=np.float64))
    return dist, list(range(n)), list(range(n, n + q))


def brute_force_msf_weight(dist, sensors, depots):
    best = np.inf
    for assign in itertools.product(range(len(depots)), repeat=len(sensors)):
        total = 0.0
        for l, r in enumerate(depots):
            group = [r] + [s for s, a in zip(sensors, assign) if a == l]
            if len(group) > 1:
                sub = dist[np.ix_(group, group)]
                total += mst_weight(sub, prim_mst(sub))
        best = min(best, total)
    return best


class TestQRootedMsfProperties:
    @given(rooted_instances(max_sensors=6, max_depots=3))
    @settings(max_examples=30, deadline=None)
    def test_optimality_vs_brute_force(self, instance):
        """Lemma 1: the contraction algorithm is exactly optimal."""
        dist, sensors, depots = instance
        forest = q_rooted_msf(dist, sensors, depots)
        expected = brute_force_msf_weight(dist, sensors, depots)
        assert forest.weight(dist) <= expected + 1e-6
        assert forest.weight(dist) >= expected - 1e-6

    @given(rooted_instances())
    @settings(max_examples=40, deadline=None)
    def test_forest_structure(self, instance):
        dist, sensors, depots = instance
        forest = q_rooted_msf(dist, sensors, depots)
        forest.validate_spanning(sensors)          # covers every sensor
        assert forest.roots == tuple(depots)       # one tree per depot
        # Vertex-disjointness is enforced by the constructor; re-check edges:
        n_edges = len(forest.all_edges())
        n_nodes = len(forest.all_nodes())
        assert n_edges == n_nodes - len(depots)    # forest with q components

    @given(rooted_instances())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_depots(self, instance):
        """Dropping a depot never decreases the optimal weight."""
        dist, sensors, depots = instance
        if len(depots) < 2:
            return
        full = q_rooted_msf(dist, sensors, depots).weight(dist)
        fewer = q_rooted_msf(dist, sensors, depots[:-1]).weight(dist)
        assert full <= fewer + 1e-6


class TestQRootedTspProperties:
    @given(rooted_instances())
    @settings(max_examples=40, deadline=None)
    def test_two_approximation_certificate(self, instance):
        """Theorem 1 via the computable chain: cost <= 2 * MSF <= 2 * OPT."""
        dist, sensors, depots = instance
        tours = q_rooted_tsp(dist, sensors, depots)
        msf_w = q_rooted_msf(dist, sensors, depots).weight(dist)
        assert tours_total_cost(dist, tours) <= 2 * msf_w + 1e-6

    @given(rooted_instances())
    @settings(max_examples=40, deadline=None)
    def test_coverage_and_disjointness(self, instance):
        dist, sensors, depots = instance
        tours = q_rooted_tsp(dist, sensors, depots)
        assert [t.depot for t in tours] == depots
        covered: set[int] = set()
        for t in tours:
            stops = set(t.stops())
            assert not (stops & covered), "two chargers visit one sensor"
            covered |= stops
        assert covered == set(sensors)

    @given(rooted_instances(max_sensors=8, max_depots=2))
    @settings(max_examples=25, deadline=None)
    def test_refinement_preserves_guarantee(self, instance):
        dist, sensors, depots = instance
        plain = q_rooted_tsp(dist, sensors, depots)
        refined = q_rooted_tsp(dist, sensors, depots, refine=True)
        assert (tours_total_cost(dist, refined)
                <= tours_total_cost(dist, plain) + 1e-6)
        covered = set().union(*(set(t.stops()) for t in refined))
        assert covered == set(sensors)
