"""Property test for the fleet router's no-rebuild routing fast path.

The router computes a request's consistent-hash key straight from the
JSON network document (:func:`repro.fleet.router.routing_key`) without
constructing a :class:`~repro.network.model.SensorNetwork` — an O(n)
byte hash instead of the full O(n^2) distance-matrix build. That is only
sound if the shortcut and the model agree on every network the fleet can
see, so: for arbitrary generated scenarios, the routing key of the
network *document* must equal ``geometry_fingerprint`` of the fully
parsed network — bare payload, envelope-wrapped, and after a JSON wire
round trip.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.router import routing_key
from repro.io.network_json import network_from_dict, network_to_dict
from repro.network.builder import build_paper_network
from repro.scenarios import SCENARIOS, build_instance


@st.composite
def networks(draw):
    """Arbitrary small generated deployments across every builder regime."""
    n = draw(st.integers(2, 24))
    q = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31 - 1))
    side = draw(st.sampled_from([100.0, 1000.0, 3000.0]))
    deployment = draw(st.sampled_from(["uniform", "clustered", "grid"]))
    return build_paper_network(n=n, q=q, seed=seed, side=side,
                               deployment=deployment)


@settings(max_examples=100, deadline=None)
@given(networks())
def test_routing_key_equals_geometry_fingerprint(net):
    """Doc-level routing key == fingerprint of the fully parsed network."""
    doc = network_to_dict(net)
    assert routing_key({"network": doc}) == net.geometry_fingerprint
    # ... and the parsed network agrees with itself (doc is faithful).
    assert network_from_dict(doc).geometry_fingerprint == net.geometry_fingerprint


@settings(max_examples=100, deadline=None)
@given(networks())
def test_routing_key_stable_across_envelope_and_wire(net):
    """Envelope wrapping and a JSON round trip don't change the route."""
    doc = network_to_dict(net)
    enveloped = {"kind": "sensor-network", "version": 1, "data": doc}
    wire = json.loads(json.dumps({"network": enveloped}))
    assert routing_key({"network": enveloped}) == net.geometry_fingerprint
    assert routing_key(wire) == net.geometry_fingerprint


def test_routing_key_matches_for_registered_scenarios():
    """Every registry scenario routes by its parsed fingerprint — including
    heterogeneous-batteries, where capacities differ but geometry (and so
    the route) is shared with the homogeneous twin."""
    for spec in SCENARIOS.values():
        inst = build_instance(spec, 0)
        doc = network_to_dict(inst.network)
        assert routing_key({"network": doc}) == inst.network.geometry_fingerprint
