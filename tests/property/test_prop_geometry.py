"""Property-based tests for the geometry substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import Rect
from repro.geometry.distance import check_metric, distance_matrix, path_length
from repro.geometry.point import Point

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=32)


class TestPointProperties:
    @given(finite, finite, finite, finite)
    def test_distance_symmetry_and_identity(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == b.distance_to(a)
        assert a.distance_to(a) == 0.0

    @given(finite, finite, finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6

    @given(finite, finite, finite, finite)
    def test_midpoint_equidistant(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        m = a.midpoint(b)
        assert abs(m.distance_to(a) - m.distance_to(b)) <= 1e-6 * (
            1 + a.distance_to(b))


class TestDistanceMatrixProperties:
    @given(st.lists(st.tuples(st.floats(0, 1000, allow_nan=False, width=32),
                              st.floats(0, 1000, allow_nan=False, width=32)),
                    min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_always_a_metric(self, pts):
        d = distance_matrix(np.asarray(pts, dtype=np.float64))
        check_metric(d)  # symmetry, non-negativity, zero diagonal, triangle

    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False, width=32),
                              st.floats(0, 100, allow_nan=False, width=32)),
                    min_size=3, max_size=10),
           st.permutations(list(range(3))))
    @settings(max_examples=30, deadline=None)
    def test_path_length_reversal_invariance(self, pts, perm):
        d = distance_matrix(np.asarray(pts[:3], dtype=np.float64))
        order = list(perm)
        fwd = path_length(d, order, closed=True)
        rev = path_length(d, order[::-1], closed=True)
        assert abs(fwd - rev) <= 1e-9 * (1 + fwd)


class TestRectProperties:
    @given(st.floats(1, 1e4, allow_nan=False, width=32), st.integers(0, 200),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_inside(self, side, n, seed):
        r = Rect.square(float(side))
        pts = r.sample(n, rng=seed)
        assert pts.shape == (n, 2)
        for x, y in pts:
            assert r.contains(Point(float(x), float(y)))

    @given(st.floats(1, 1e4, allow_nan=False, width=32))
    def test_center_inside_and_diagonal_bounds_pairs(self, side):
        r = Rect.square(float(side))
        assert r.contains(r.center)
        a = r.sample(16, rng=0)
        d = distance_matrix(a)
        assert d.max() <= r.diagonal + 1e-6
