"""Property-based tests for the adaptive layer: the patch repair step and
the capacity/minmax extensions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive.patch import build_patch
from repro.core.quantize import quantize_cycles
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.builder import NetworkBuilder
from repro.rooted.capacity import split_tour_by_budget
from repro.rooted.qtsp import q_rooted_tsp


@st.composite
def patch_instances(draw):
    """A small network + quantisation + a lifetime vector."""
    n = draw(st.integers(2, 12))
    pts = draw(st.lists(
        st.tuples(st.floats(1, 999, allow_nan=False, width=32),
                  st.floats(1, 999, allow_nan=False, width=32)),
        min_size=n + 2, max_size=n + 2, unique=True))
    cycles = draw(st.lists(st.floats(1.0, 30.0, allow_nan=False, width=32),
                           min_size=n, max_size=n))
    net = (NetworkBuilder()
           .with_area(Rect.square(1000.0))
           .with_sensors_at([Point(float(x), float(y)) for x, y in pts[:n]])
           .with_base_station_at_center()
           .with_depots_at([Point(float(x), float(y)) for x, y in pts[n:]])
           .with_cycles(cycles)
           .build())
    quant = quantize_cycles(net.cycles)
    # Lifetimes anywhere from nearly dead to fully safe.
    fracs = draw(st.lists(st.floats(0.0, 1.5, allow_nan=False, width=32),
                          min_size=n, max_size=n))
    lifetimes = quant.assigned * np.asarray(fracs, dtype=np.float64)
    return net, quant, lifetimes


class TestPatchProperties:
    @given(patch_instances(), st.sampled_from(["immediate", "defer"]))
    @settings(max_examples=40, deadline=None)
    def test_every_urgent_sensor_charged_within_lifetime(self, inst, mode):
        """The repair's defining guarantee: each sensor in V^a is assigned
        to a scheduling dispatched no later than its residual lifetime."""
        net, quant, lifetimes = inst
        patch = build_patch(net, quant, lifetimes, tie_break=mode)
        for s in patch.urgent:
            js = [j for j in range(quant.block_size + 1) if s in patch.sets[j]]
            assert js, f"urgent sensor {s} not scheduled at all"
            earliest = min(js)
            # Scheduling j dispatches at relative time j * tau1.
            assert earliest * quant.tau1 <= lifetimes[s] * (1 + 1e-6) + 1e-12

    @given(patch_instances(), st.sampled_from(["immediate", "defer"]))
    @settings(max_examples=40, deadline=None)
    def test_non_urgent_schedule_unchanged(self, inst, mode):
        """Sensors outside V^a keep exactly their base-block schedule."""
        net, quant, lifetimes = inst
        patch = build_patch(net, quant, lifetimes, tie_break=mode)
        for j in range(1, quant.block_size + 1):
            base = {int(s) for s in quant.sensors_due_at(j)}
            extra = patch.sets[j] - base
            assert extra <= patch.urgent, (
                f"scheduling {j} gained non-urgent sensors {extra - patch.urgent}")
            assert base <= patch.sets[j], "patching must never drop a sensor"

    @given(patch_instances(), st.sampled_from(["immediate", "defer"]))
    @settings(max_examples=30, deadline=None)
    def test_retoured_schedulings_cover_their_sets(self, inst, mode):
        net, quant, lifetimes = inst
        patch = build_patch(net, quant, lifetimes, tie_break=mode)
        for j, tours in enumerate(patch.tours):
            if tours is None:
                continue
            covered = set().union(*(t.visited() for t in tours))
            assert patch.sets[j] <= covered


@st.composite
def split_instances(draw):
    n = draw(st.integers(1, 15))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 500, allow_nan=False, width=32),
                  st.floats(0, 500, allow_nan=False, width=32)),
        min_size=n + 1, max_size=n + 1))
    from repro.geometry.distance import distance_matrix

    dist = distance_matrix(np.asarray(pts, dtype=np.float64))
    tour = q_rooted_tsp(dist, list(range(1, n + 1)), [0])[0]
    return dist, tour


class TestSplitProperties:
    @given(split_instances(), st.floats(1.0, 3.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_split_invariants(self, inst, tightness):
        dist, tour = inst
        stops = tour.stops()
        if not stops:
            return
        min_budget = 2 * max(dist[tour.depot, s] for s in stops)
        if min_budget <= 0:
            return  # all points coincide; the budget constraint is vacuous
        budget = min_budget * float(tightness)
        result = split_tour_by_budget(dist, tour, budget)
        # Every trip within budget, all stops covered exactly once, order kept.
        flattened = [s for t in result.trips for s in t.stops()]
        assert flattened == list(stops)
        for trip in result.trips:
            assert trip.cost(dist) <= budget * (1 + 1e-6)
            assert trip.depot == tour.depot
        # Splitting can only add distance.
        assert result.total_cost >= tour.cost(dist) - 1e-6
