"""Property tests for the plan-artifact cache: caching never changes output.

The cached path of :func:`repro.plan.pipeline.plan_tours` composes the
same stages as the uncached one with memoized intermediates, so for any
geometry, coverage set and refine flag — and any interleaving of calls
warming the cache in any order — every answer must be tour-for-tour
identical to the direct Algorithm 2 run.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.plan import PlanArtifactCache, plan_tours


@st.composite
def cache_workloads(draw):
    """A small network plus a warm-up sequence of (coverage, refine) calls."""
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(5, 15))
    net = build_paper_network(n=n, q=draw(st.integers(1, 3)), seed=seed)
    calls = draw(st.lists(
        st.tuples(
            st.frozensets(st.integers(0, n - 1), min_size=1, max_size=n),
            st.booleans()),
        min_size=1, max_size=6))
    return net, calls


class TestCacheTransparency:
    @given(cache_workloads())
    @settings(max_examples=25, deadline=None)
    def test_cached_equals_uncached(self, workload):
        """Every call in the sequence — whatever the cache already holds
        from earlier calls — returns exactly the uncached tours."""
        net, calls = workload
        cache = PlanArtifactCache()
        for coverage, refine in calls:
            cached = plan_tours(net, coverage, refine=refine, cache=cache)
            direct = plan_tours(net, coverage, refine=refine)
            assert cached == direct

    @given(st.integers(0, 2**16), st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_full_algorithm3_transparent(self, seed, refine):
        """End to end: Algorithm 3 with a warm, shared cache emits the same
        plan as without one."""
        net = build_paper_network(n=12, q=2, seed=seed)
        cache = PlanArtifactCache()
        min_total_distance(net, 120.0, refine=refine, cache=cache)  # warm it
        cached = min_total_distance(net, 120.0, refine=refine, cache=cache)
        direct = min_total_distance(net, 120.0, refine=refine)
        assert cached.block == direct.block
        assert len(cached.plan) == len(direct.plan)
        for a, b in zip(cached.plan, direct.plan):
            assert a.time == b.time
            assert a.tours == b.tours
        np.testing.assert_array_equal(cached.quantization.k_of,
                                      direct.quantization.k_of)
