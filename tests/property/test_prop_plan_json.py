"""Property tests for the plan wire format (`repro.io.plan_json`).

The planning service ships :func:`~repro.io.plan_json.plan_to_dict`
documents over the wire and replays them with
:func:`~repro.io.plan_json.plan_from_dict`, so the round trip must be
tour-for-tour identical for *arbitrary* well-formed plans — including
empty (stay-at-home) tours, plans with zero schedulings, and the
deduplicated tour-set table with its sharing metadata.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.io.plan_json import plan_from_dict, plan_to_dict
from repro.tsp.tour import Tour

_N_SENSORS = 8  # graph indices 0..7 are sensors, depots follow


@st.composite
def tour_sets(draw, q: int) -> tuple[Tour, ...]:
    """One scheduling's tour tuple: ``q`` depots, possibly-empty tours."""
    tours = []
    for d in range(_N_SENSORS, _N_SENSORS + q):
        stops = draw(st.lists(st.integers(0, _N_SENSORS - 1),
                              unique=True, min_size=0, max_size=4))
        tours.append(Tour(depot=d, order=(d, *stops)))
    return tuple(tours)


@st.composite
def plans(draw) -> SchedulePlan:
    q = draw(st.integers(1, 3))
    pool = draw(st.lists(tour_sets(q), min_size=1, max_size=3))
    n_sched = draw(st.integers(0, 8))
    picks = draw(st.lists(st.integers(0, len(pool) - 1),
                          min_size=n_sched, max_size=n_sched))
    schedulings = tuple(
        ChargingScheduling(time=float(j + 1), tours=pool[pick])
        for j, pick in enumerate(picks))
    horizon = float(n_sched + draw(st.integers(1, 50)))
    return SchedulePlan(schedulings=schedulings, horizon=horizon)


@settings(max_examples=200, deadline=None)
@given(plans())
def test_round_trip_identical(plan):
    """plan_from_dict(plan_to_dict(p)) is tour-for-tour identical."""
    restored = plan_from_dict(plan_to_dict(plan))
    assert restored == plan  # dataclass equality: horizon + every scheduling
    assert restored.horizon == plan.horizon
    for a, b in zip(plan.schedulings, restored.schedulings):
        assert a.time == b.time
        assert a.tours == b.tours  # tour-for-tour, order and depots included


@settings(max_examples=200, deadline=None)
@given(plans())
def test_round_trip_survives_the_wire(plan):
    """JSON-encoding the document (as the serve protocol does) is lossless."""
    wire = json.dumps(plan_to_dict(plan), separators=(",", ":"))
    assert plan_from_dict(json.loads(wire)) == plan


@settings(max_examples=200, deadline=None)
@given(plans())
def test_block_metadata_dedupes_and_restores_sharing(plan):
    """The tour-set table stores each distinct set once; loading restores
    the sharing (Algorithm 3's repeated blocks stay cheap after reload)."""
    data = plan_to_dict(plan)
    distinct = {s.tours for s in plan.schedulings}
    assert len(data["tour_sets"]) == len(distinct)
    assert len(data["schedulings"]) == len(plan)

    restored = plan_from_dict(data)
    seen: dict[int, tuple] = {}
    for ref, sched in zip(data["schedulings"], restored.schedulings):
        idx = ref["tours"]
        if idx in seen:  # same table row -> the very same tuple object
            assert sched.tours is seen[idx]
        seen[idx] = sched.tours


@settings(max_examples=100, deadline=None)
@given(plans())
def test_empty_tours_preserved(plan):
    """Stay-at-home tours (`order == (depot,)`) survive the round trip."""
    restored = plan_from_dict(plan_to_dict(plan))
    for a, b in zip(plan.schedulings, restored.schedulings):
        for ta, tb in zip(a.tours, b.tours):
            assert ta.is_empty == tb.is_empty
            assert ta.depot == tb.depot
