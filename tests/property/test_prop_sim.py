"""Property-based tests for the simulator: energy conservation and
policy-independent invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.state import EnergyState


class TestEnergyStateProperties:
    @given(st.lists(st.floats(0.125, 10, allow_nan=False, width=32),
                    min_size=1, max_size=20),
           st.lists(st.floats(0, 5, allow_nan=False, width=32),
                    min_size=1, max_size=20),
           st.floats(0, 10, allow_nan=False, width=32))
    @settings(max_examples=100, deadline=None)
    def test_drain_conserves_or_clamps(self, batteries, rates, duration):
        n = min(len(batteries), len(rates))
        b = np.asarray(batteries[:n], dtype=np.float64)
        r = np.asarray(rates[:n], dtype=np.float64)
        s = EnergyState(b)
        s.drain(r, float(duration), 0.0)
        exact = b - r * float(duration)
        np.testing.assert_allclose(s.energy, np.maximum(exact, 0.0), atol=1e-9)

    @given(st.lists(st.floats(0.125, 10, allow_nan=False, width=32),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_charge_restores_exactly(self, batteries):
        b = np.asarray(batteries, dtype=np.float64)
        s = EnergyState(b)
        s.drain(np.full(b.shape, 0.01), 1.0, 0.0)
        s.charge_full(list(range(b.shape[0])))
        np.testing.assert_array_equal(s.energy, b)

    @given(st.lists(st.floats(0.5, 4.0, allow_nan=False, width=32),
                    min_size=1, max_size=10),
           st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_death_count_matches_energy_budget(self, batteries, steps):
        """Draining battery B at rate 1 for total time > B must kill the
        sensor exactly once, at exactly t = B, regardless of step split."""
        b = np.asarray(batteries, dtype=np.float64)
        s = EnergyState(b)
        total = float(b.max()) + 1.0
        dt = total / steps
        t = 0.0
        for _ in range(steps):
            s.drain(np.ones_like(b), dt, t)
            t += dt
        deaths = dict(s.deaths)
        assert len(deaths) == b.shape[0]
        for i, cap in enumerate(b):
            assert abs(deaths[i] - cap) < 1e-6
