"""Property-based tests for the graph kernels (hypothesis).

Oracles: networkx for MST weight and Eulerian-ness; first-principles
invariants for everything else.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.graphs.euler import eulerian_circuit
from repro.graphs.mst import kruskal_mst, mst_weight, prim_mst
from repro.graphs.traversal import adjacency_from_edges, preorder
from repro.graphs.unionfind import UnionFind

coords_strategy = st.integers(2, 25).flatmap(
    lambda n: st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False, width=32),
                  st.floats(0, 1000, allow_nan=False, width=32)),
        min_size=n, max_size=n))


@st.composite
def point_clouds(draw):
    pts = draw(coords_strategy)
    return distance_matrix(np.asarray(pts, dtype=np.float64))


class TestMstProperties:
    @given(point_clouds())
    @settings(max_examples=40, deadline=None)
    def test_prim_matches_networkx_weight(self, dist):
        n = dist.shape[0]
        g = nx.Graph()
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(i, j, weight=float(dist[i, j]))
        expected = nx.minimum_spanning_tree(g).size(weight="weight")
        got = mst_weight(dist, prim_mst(dist))
        assert abs(got - expected) < 1e-6 * max(1.0, expected)

    @given(point_clouds())
    @settings(max_examples=40, deadline=None)
    def test_prim_spans_and_is_acyclic(self, dist):
        n = dist.shape[0]
        edges = prim_mst(dist)
        assert len(edges) == n - 1
        uf = UnionFind(n)
        for u, v in edges:
            assert uf.union(u, v), "MST edge closes a cycle"
        assert uf.n_components == 1

    @given(point_clouds())
    @settings(max_examples=30, deadline=None)
    def test_kruskal_agrees_with_prim(self, dist):
        n = dist.shape[0]
        triples = [(i, j, float(dist[i, j]))
                   for i in range(n) for j in range(i + 1, n)]
        kw = mst_weight(dist, kruskal_mst(n, triples))
        pw = mst_weight(dist, prim_mst(dist))
        assert abs(kw - pw) < 1e-6 * max(1.0, pw)


class TestPreorderProperties:
    @given(point_clouds())
    @settings(max_examples=30, deadline=None)
    def test_preorder_is_permutation_rooted_first(self, dist):
        edges = prim_mst(dist, root=0)
        adj = adjacency_from_edges(edges, nodes=range(dist.shape[0]))
        order = preorder(adj, 0)
        assert order[0] == 0
        assert sorted(order) == list(range(dist.shape[0]))

    @given(point_clouds())
    @settings(max_examples=30, deadline=None)
    def test_preorder_tour_within_twice_mst(self, dist):
        """The double-tree bound, the heart of Algorithm 2."""
        from repro.geometry.distance import path_length

        edges = prim_mst(dist, root=0)
        adj = adjacency_from_edges(edges, nodes=range(dist.shape[0]))
        order = preorder(adj, 0)
        tour_cost = path_length(dist, order, closed=True)
        assert tour_cost <= 2 * mst_weight(dist, edges) + 1e-6


class TestEulerProperties:
    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_doubled_multigraph_circuit(self, base):
        base = [(u, v) for u, v in base if u != v]
        if not base:
            return
        # Keep only the component of base[0][0]; doubling makes it Eulerian.
        g = nx.Graph(base)
        keep = nx.node_connected_component(g, base[0][0])
        edges = [(u, v) for u, v in base if u in keep and v in keep]
        doubled = edges + edges
        start = edges[0][0]
        circuit = eulerian_circuit(doubled, start)
        assert circuit[0] == circuit[-1] == start
        assert len(circuit) == len(doubled) + 1


class TestUnionFindProperties:
    @given(st.integers(1, 40),
           st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)),
                    max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_matches_networkx_components(self, n, pairs):
        pairs = [(u % n, v % n) for u, v in pairs]
        uf = UnionFind(n)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for u, v in pairs:
            uf.union(u, v)
            g.add_edge(u, v)
        assert uf.n_components == nx.number_connected_components(g)
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            for x in comp[1:]:
                assert uf.connected(comp[0], x)
