"""Property-based round-trip tests for the serialisation layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mintotal import min_total_distance
from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.io.network_json import network_from_dict, network_to_dict
from repro.io.plan_json import plan_from_dict, plan_to_dict
from repro.network.builder import NetworkBuilder
from repro.tsp.tour import Tour


@st.composite
def networks(draw):
    n = draw(st.integers(1, 12))
    q = draw(st.integers(1, 3))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 1000, allow_nan=False, width=32),
                  st.floats(0, 1000, allow_nan=False, width=32)),
        min_size=n + q, max_size=n + q, unique=True))
    cycles = draw(st.lists(st.floats(0.5, 60.0, allow_nan=False, width=32),
                           min_size=n, max_size=n))
    batteries = draw(st.floats(0.5, 4.0, allow_nan=False, width=32))
    return (NetworkBuilder()
            .with_area(Rect.square(1000.0))
            .with_sensors_at([Point(float(x), float(y)) for x, y in pts[:n]])
            .with_base_station_at_center()
            .with_depots_at([Point(float(x), float(y)) for x, y in pts[n:]])
            .with_cycles(cycles)
            .with_batteries(float(batteries))
            .build())


class TestNetworkRoundTrip:
    @given(networks())
    @settings(max_examples=40, deadline=None)
    def test_exact_round_trip(self, net):
        loaded = network_from_dict(network_to_dict(net))
        np.testing.assert_array_equal(loaded.coordinates, net.coordinates)
        np.testing.assert_array_equal(loaded.cycles, net.cycles)
        np.testing.assert_array_equal(loaded.batteries, net.batteries)
        assert loaded.area == net.area
        assert loaded.base_station.position == net.base_station.position

    @given(networks())
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_planning(self, net):
        """The plan built from a reloaded network is identical: geometry and
        cycles round-trip at full precision."""
        loaded = network_from_dict(network_to_dict(net))
        a = min_total_distance(net, 40.0)
        b = min_total_distance(loaded, 40.0)
        assert a.plan.total_cost(net.dist) == b.plan.total_cost(loaded.dist)
        assert len(a.plan) == len(b.plan)


@st.composite
def plans(draw):
    net = draw(networks())
    horizon = draw(st.floats(5.0, 60.0, allow_nan=False, width=32))
    return net, min_total_distance(net, float(horizon)).plan


class TestPlanRoundTrip:
    @given(plans())
    @settings(max_examples=25, deadline=None)
    def test_semantics_preserved(self, net_plan):
        net, plan = net_plan
        loaded = plan_from_dict(plan_to_dict(plan))
        assert loaded.horizon == plan.horizon
        np.testing.assert_array_equal(loaded.times, plan.times)
        assert loaded.total_cost(net.dist) == plan.total_cost(net.dist)
        for i in range(net.n):
            assert loaded.charge_times_of(i) == plan.charge_times_of(i)

    @given(st.integers(0, 5))
    @settings(max_examples=6, deadline=None)
    def test_handcrafted_plan_round_trip(self, k):
        tours = (Tour(depot=10, order=(10, 0, 1)), Tour.empty(11))
        scheds = tuple(ChargingScheduling(time=float(j + 1), tours=tours)
                       for j in range(k))
        plan = SchedulePlan(schedulings=scheds, horizon=float(k + 2))
        loaded = plan_from_dict(plan_to_dict(plan))
        assert len(loaded) == k
        if k >= 2:
            assert loaded[0].tours is loaded[1].tours  # sharing restored
