"""Property-based tests for the event queue's ordering contract.

The documented rule: events are processed in ``(time, priority, seq)``
order, and coincident events (same instant up to the relative-or-absolute
tolerance) always fire within one batch, sorted by priority class then
insertion order — slot boundaries before failures before churn before
requests before dispatches, for any seed and any insertion order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.queue import (
    PRIORITY_CHURN,
    PRIORITY_DISPATCH,
    PRIORITY_FAILURE,
    PRIORITY_REQUEST,
    PRIORITY_SLOT,
    EventQueue,
    time_tolerance,
)

_PRIORITIES = (PRIORITY_SLOT, PRIORITY_FAILURE, PRIORITY_CHURN,
               PRIORITY_REQUEST, PRIORITY_DISPATCH)

# Times drawn from a coarse grid (scaled by magnitude) so coincidences
# actually happen; magnitudes cover the absolute and the relative regime
# of the tolerance, including t >= 1e7 where the old absolute 1e-9 broke.
_events = st.lists(
    st.tuples(st.integers(0, 8), st.sampled_from(_PRIORITIES)),
    min_size=1, max_size=40)
_scales = st.sampled_from([1.0, 1e3, 1e7, 2.0**27, 1e12])


def _drain(queue):
    batches = []
    while queue:
        batch = queue.pop_coincident()
        assert batch, "live events left but empty batch returned"
        batches.append(batch)
    return batches


class TestCoincidentOrdering:
    @given(_events, _scales)
    @settings(max_examples=200, deadline=None)
    def test_batches_sorted_by_priority_then_seq(self, spec, scale):
        q = EventQueue()
        for slot, priority in spec:
            q.push(slot * scale, priority, f"p{priority}")
        batches = _drain(q)
        assert sum(len(b) for b in batches) == len(spec)
        for batch in batches:
            keys = [(e.priority, e.seq) for e in batch]
            assert keys == sorted(keys)

    @given(_events, _scales)
    @settings(max_examples=200, deadline=None)
    def test_same_grid_time_lands_in_one_batch(self, spec, scale):
        """Events pushed at the identical timestamp must never split
        across batches, whatever the magnitude."""
        q = EventQueue()
        for slot, priority in spec:
            q.push(slot * scale, priority, f"p{priority}")
        for batch in _drain(q):
            times = {e.time for e in batch}
            assert len(times) == 1

    @given(_events, _scales)
    @settings(max_examples=200, deadline=None)
    def test_batch_anchors_strictly_increase(self, spec, scale):
        q = EventQueue()
        for slot, priority in spec:
            q.push(slot * scale, priority, f"p{priority}")
        anchors = [min(e.time for e in b) for b in _drain(q)]
        for a, b in zip(anchors, anchors[1:]):
            assert b > a + time_tolerance(a)

    @given(_events, st.integers(0, 2**32 - 1))
    @settings(max_examples=150, deadline=None)
    def test_insertion_order_is_the_only_tie_break(self, spec, seed):
        """Shuffling coincident pushes reorders only within one priority
        class: the class sequence itself is invariant."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(spec))
        q = EventQueue()
        for i in order:
            slot, priority = spec[i]
            q.push(float(slot), priority, f"p{priority}")
        for batch in _drain(q):
            priorities = [e.priority for e in batch]
            assert priorities == sorted(priorities)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_ulp_neighbours_coalesce_at_large_t(self, seed):
        """A dispatch one ulp before a slot boundary at t >= 1e7 must fire
        in the same batch, after the boundary (the historical bug)."""
        rng = np.random.default_rng(seed)
        t = float(rng.uniform(1e7, 1e9))
        q = EventQueue()
        q.push(float(np.nextafter(t, 0.0)), PRIORITY_DISPATCH, "dispatch")
        q.push(t, PRIORITY_SLOT, "slot")
        (batch,) = _drain(q)
        assert [e.kind for e in batch] == ["slot", "dispatch"]
