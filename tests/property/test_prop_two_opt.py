"""Property: 2-opt is a safe refinement for every tour it can receive.

The planner applies :func:`repro.tsp.improve.two_opt` to tours produced by
Algorithm 2 *after* the approximation bound is established, so the bound
survives only if 2-opt (a) never increases cost and (b) returns a valid
tour over the same stops with the depot still anchored first. Degenerate
tours (0, 1, 2 stops — a charger sent to a single sensor, or kept home)
must pass through untouched: no non-trivial 2-opt move exists there.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.tsp.improve import two_opt
from repro.tsp.tour import Tour


@st.composite
def tour_instances(draw, min_stops=0, max_stops=12):
    """A random metric (points in the plane) plus a random-permutation tour
    rooted at node 0 over a subset of the remaining nodes."""
    n_stops = draw(st.integers(min_stops, max_stops))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 500, allow_nan=False, width=32),
                  st.floats(0, 500, allow_nan=False, width=32)),
        min_size=n_stops + 1, max_size=n_stops + 1))
    dist = distance_matrix(np.asarray(pts, dtype=np.float64))
    stops = draw(st.permutations(list(range(1, n_stops + 1))))
    return dist, Tour(depot=0, order=(0, *stops))


class TestTwoOptProperties:
    @given(tour_instances())
    @settings(max_examples=60, deadline=None)
    def test_never_increases_cost(self, instance):
        dist, tour = instance
        improved = two_opt(dist, tour)
        assert improved.cost(dist) <= tour.cost(dist) + 1e-9

    @given(tour_instances())
    @settings(max_examples=60, deadline=None)
    def test_depot_anchored_and_stops_preserved(self, instance):
        dist, tour = instance
        improved = two_opt(dist, tour)
        assert improved.depot == tour.depot
        assert improved.order[0] == tour.depot
        assert sorted(improved.order) == sorted(tour.order)

    @given(tour_instances(max_stops=2))
    @settings(max_examples=30, deadline=None)
    def test_degenerate_tours_returned_unchanged(self, instance):
        """0, 1 or 2 stops: the closed tour is unique, 2-opt must no-op."""
        dist, tour = instance
        improved = two_opt(dist, tour)
        assert improved.order == tour.order

    def test_empty_tour_unchanged(self):
        dist = distance_matrix(np.asarray([[0.0, 0.0], [3.0, 4.0]]))
        tour = Tour(depot=1, order=(1,))
        assert two_opt(dist, tour).order == (1,)

    @given(tour_instances(min_stops=4, max_stops=9))
    @settings(max_examples=25, deadline=None)
    def test_idempotent_after_convergence(self, instance):
        """Running a converged 2-opt again finds nothing to do."""
        dist, tour = instance
        once = two_opt(dist, tour, max_rounds=200)
        again = two_opt(dist, once, max_rounds=200)
        assert again.cost(dist) >= once.cost(dist) - 1e-9
        assert again.order == once.order
