"""Property-based tests pinning the heuristics against exact optima.

These are the strongest guarantees in the suite: on hypothesis-generated
small instances, Algorithm 2's measured ratio against the *true* optimum
(not a lower bound) must stay within the proven factor 2, and the local
search must land within 2x as well (it starts from Algorithm 2's output).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.rooted.exact import exact_q_rooted_tsp
from repro.rooted.qtsp import q_rooted_tsp, tours_total_cost
from repro.tsp.construct import cheapest_insertion_tour, mst_doubling_tour
from repro.tsp.exact import held_karp_tsp
from repro.tsp.improve import two_opt


@st.composite
def small_clouds(draw, min_n=3, max_n=10):
    n = draw(st.integers(min_n, max_n))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 500, allow_nan=False, width=32),
                  st.floats(0, 500, allow_nan=False, width=32)),
        min_size=n, max_size=n))
    return distance_matrix(np.asarray(pts, dtype=np.float64))


class TestAgainstExactTsp:
    @given(small_clouds())
    @settings(max_examples=25, deadline=None)
    def test_mst_doubling_within_factor_2_of_true_optimum(self, dist):
        n = dist.shape[0]
        opt = held_karp_tsp(dist, 0, list(range(1, n))).cost(dist)
        heur = mst_doubling_tour(dist, 0, list(range(1, n))).cost(dist)
        assert heur <= 2 * opt + 1e-6

    @given(small_clouds())
    @settings(max_examples=25, deadline=None)
    def test_cheapest_insertion_within_factor_2(self, dist):
        n = dist.shape[0]
        opt = held_karp_tsp(dist, 0, list(range(1, n))).cost(dist)
        heur = cheapest_insertion_tour(dist, 0, list(range(1, n))).cost(dist)
        assert heur <= 2 * opt + 1e-6

    @given(small_clouds())
    @settings(max_examples=20, deadline=None)
    def test_two_opt_closes_most_of_the_gap(self, dist):
        """2-opt applied to MST doubling stays within 2x (monotone from a
        2x start) and never beats the optimum."""
        n = dist.shape[0]
        opt = held_karp_tsp(dist, 0, list(range(1, n))).cost(dist)
        refined = two_opt(dist, mst_doubling_tour(dist, 0, list(range(1, n))))
        assert opt - 1e-6 <= refined.cost(dist) <= 2 * opt + 1e-6


class TestAgainstExactQRooted:
    @given(small_clouds(min_n=4, max_n=9), st.integers(1, 2))
    @settings(max_examples=20, deadline=None)
    def test_algorithm2_within_factor_2_of_true_optimum(self, dist, q):
        """Theorem 1 measured against the real optimum, not the MSF bound."""
        n = dist.shape[0]
        if n - q < 1:
            return
        sensors = list(range(n - q))
        depots = list(range(n - q, n))
        opt = tours_total_cost(dist, exact_q_rooted_tsp(dist, sensors, depots))
        approx = tours_total_cost(dist, q_rooted_tsp(dist, sensors, depots))
        assert opt - 1e-6 <= approx <= 2 * opt + 1e-6
