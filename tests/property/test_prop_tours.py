"""Property-based tests for the TSP toolbox."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distance import distance_matrix
from repro.graphs.mst import mst_weight, prim_mst
from repro.tsp.construct import (
    cheapest_insertion_tour,
    mst_doubling_tour,
    nearest_neighbor_tour,
)
from repro.tsp.improve import or_opt, two_opt
from repro.tsp.lower_bounds import held_karp_lower_bound, mst_lower_bound


@st.composite
def clouds(draw, min_n=2, max_n=18):
    n = draw(st.integers(min_n, max_n))
    pts = draw(st.lists(
        st.tuples(st.floats(0, 500, allow_nan=False, width=32),
                  st.floats(0, 500, allow_nan=False, width=32)),
        min_size=n, max_size=n))
    return distance_matrix(np.asarray(pts, dtype=np.float64))


class TestConstructorProperties:
    @given(clouds())
    @settings(max_examples=40, deadline=None)
    def test_all_constructors_valid_tours(self, dist):
        n = dist.shape[0]
        for build in (mst_doubling_tour, nearest_neighbor_tour,
                      cheapest_insertion_tour):
            t = build(dist, 0, list(range(1, n)))
            assert t.order[0] == 0
            assert sorted(t.order) == list(range(n))

    @given(clouds())
    @settings(max_examples=40, deadline=None)
    def test_mst_doubling_bound(self, dist):
        n = dist.shape[0]
        t = mst_doubling_tour(dist, 0, list(range(1, n)))
        w = mst_weight(dist, prim_mst(dist))
        assert t.cost(dist) <= 2 * w + 1e-6

    @given(clouds())
    @settings(max_examples=40, deadline=None)
    def test_tours_at_least_lower_bound(self, dist):
        """Any constructor's tour sits above the MST and 1-tree bounds."""
        n = dist.shape[0]
        nodes = list(range(n))
        lb_mst = mst_lower_bound(dist, nodes)
        lb_hk = held_karp_lower_bound(dist, nodes, iterations=30)
        for build in (mst_doubling_tour, nearest_neighbor_tour,
                      cheapest_insertion_tour):
            c = build(dist, 0, nodes[1:]).cost(dist)
            assert c >= lb_mst - 1e-6
            assert c >= lb_hk - 1e-4  # subgradient noise tolerance


class TestImproverProperties:
    @given(clouds(min_n=4))
    @settings(max_examples=40, deadline=None)
    def test_two_opt_monotone_and_permutation_preserving(self, dist):
        n = dist.shape[0]
        t = nearest_neighbor_tour(dist, 0, list(range(1, n)))
        improved = two_opt(dist, t)
        assert improved.cost(dist) <= t.cost(dist) + 1e-9
        assert sorted(improved.order) == sorted(t.order)
        assert improved.order[0] == 0

    @given(clouds(min_n=4))
    @settings(max_examples=30, deadline=None)
    def test_or_opt_monotone_and_permutation_preserving(self, dist):
        n = dist.shape[0]
        t = nearest_neighbor_tour(dist, 0, list(range(1, n)))
        improved = or_opt(dist, t)
        assert improved.cost(dist) <= t.cost(dist) + 1e-9
        assert sorted(improved.order) == sorted(t.order)
        assert improved.order[0] == 0

    @given(clouds(min_n=4, max_n=12))
    @settings(max_examples=25, deadline=None)
    def test_two_opt_result_is_2opt_local_optimum(self, dist):
        """After convergence no single 2-opt move may improve further."""
        n = dist.shape[0]
        t = two_opt(dist, nearest_neighbor_tour(dist, 0, list(range(1, n))),
                    max_rounds=200)
        p = list(t.order)
        k = len(p)
        base = t.cost(dist)
        for i in range(1, k - 1):
            for j in range(i + 1, k):
                q = p[:i] + p[i:j + 1][::-1] + p[j + 1:]
                assert t.with_order(q).cost(dist) >= base - 1e-7
