"""Property: the analytical feasibility oracle agrees with the simulator.

:func:`repro.core.feasibility.check_feasibility` reasons about charge *gaps*
(no trajectory); :mod:`repro.sim.engine` integrates the energy trajectory.
For fixed cycles the two are independent implementations of the same
predicate, so on every randomly generated plan:

    check_feasibility(plan).feasible  <=>  simulate(plan).n_deaths == 0

All generated quantities are well separated — dispatch times on a 0.25
grid, power-of-two cycles — so neither side can flip on float noise and
the equivalence is exact, not approximate.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feasibility import check_feasibility
from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.builder import NetworkBuilder
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload
from repro.tsp.tour import Tour

_CYCLES = [1.0, 2.0, 4.0, 8.0, 2.0, 4.0]
_HORIZON = 12.0

_NET = (NetworkBuilder()
        .with_area(Rect.square(100.0))
        .with_sensors_at([Point(10, 10), Point(20, 10), Point(90, 90),
                          Point(80, 90), Point(50, 50), Point(10, 90)])
        .with_base_station_at(Point(50, 50))
        .with_depots_at([Point(45, 50), Point(85, 85)])
        .with_cycles(_CYCLES)
        .build())


def _scheduling(time: float, charged: frozenset[int]) -> ChargingScheduling:
    """All charged sensors on depot 0's tour; depot 1 stays home."""
    d0, d1 = int(_NET.depot_index(0)), int(_NET.depot_index(1))
    order = (d0, *sorted(charged)) if charged else (d0,)
    return ChargingScheduling(time=time, tours=(
        Tour(depot=d0, order=order), Tour(depot=d1, order=(d1,))))


@st.composite
def plans(draw) -> SchedulePlan:
    """Random fixed-cycle plans: 0-8 dispatches on the 0.25 grid, each
    charging a random sensor subset (possibly none)."""
    n_dispatch = draw(st.integers(0, 8))
    ticks = draw(st.lists(st.integers(1, int(_HORIZON / 0.25) - 1),
                          min_size=n_dispatch, max_size=n_dispatch,
                          unique=True))
    schedulings = []
    for tick in sorted(ticks):
        charged = frozenset(draw(st.sets(st.integers(0, _NET.n - 1))))
        schedulings.append(_scheduling(tick * 0.25, charged))
    return SchedulePlan(schedulings=tuple(schedulings), horizon=_HORIZON)


class TestOracleAgreement:
    @given(plans())
    @settings(max_examples=60, deadline=None)
    def test_feasibility_iff_no_simulated_deaths(self, plan):
        report = check_feasibility(plan, _NET.cycles)
        out = simulate(_NET, PlannedPolicy(plan), FixedWorkload.from_network(_NET),
                       _HORIZON)
        assert report.feasible == (out.metrics.n_deaths == 0), (
            f"oracle says feasible={report.feasible} but simulator recorded "
            f"{out.metrics.n_deaths} death(s): {report.summary()}")

    @given(plans())
    @settings(max_examples=30, deadline=None)
    def test_infeasible_reports_name_the_dying_sensors(self, plan):
        """When both sides see trouble they must blame the same sensors."""
        report = check_feasibility(plan, _NET.cycles)
        if report.feasible:
            return
        out = simulate(_NET, PlannedPolicy(plan), FixedWorkload.from_network(_NET),
                       _HORIZON)
        oracle_dead = {v.sensor for v in report.violations}
        sim_dead = {d.sensor for d in out.metrics.deaths}
        # The oracle stops at the first gap per sensor while the simulator
        # records every death; the *sets* of condemned sensors must match.
        assert oracle_dead == sim_dead

    def test_empty_plan_feasible_iff_horizon_within_min_cycle(self):
        empty = SchedulePlan(schedulings=(), horizon=_HORIZON)
        assert not check_feasibility(empty, _NET.cycles).feasible
        short = SchedulePlan(schedulings=(), horizon=float(np.min(_CYCLES)))
        assert check_feasibility(short, _NET.cycles).feasible
