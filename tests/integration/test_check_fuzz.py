"""Integration tests for the repro.check harness end to end.

Covers the fuzz loop (clean run, determinism), the planted-mutation
self-test, the failure path (mutated library -> shrunk reproducer on disk
-> replay), and the ``repro check`` CLI. The paper-scale fuzz runs are
marked ``slow`` and excluded from tier-1.
"""

from __future__ import annotations

import json

import pytest

from repro.check import ScenarioChecker, fuzz, replay, run_selftest
from repro.check.fuzz import REPRODUCER_KIND
from repro.check.scenario import Scenario
from repro.check.selftest import _mutated_coverage_sets, selftest_scenario
from repro.cli import main
from repro.core.quantize import Quantization
from repro.errors import CheckError
from repro.obs import Instrumentation


@pytest.fixture
def mutated_quantization():
    """Plant the selftest's coverage bug for the duration of one test."""
    original = Quantization.coverage_sets
    Quantization.coverage_sets = _mutated_coverage_sets
    try:
        yield
    finally:
        Quantization.coverage_sets = original


class TestFuzzCleanPath:
    def test_small_budget_clean(self, tmp_path):
        out = tmp_path / "r.json"
        report = fuzz(4, 4, out=out, serve_every=0, executor_every=0)
        assert report.ok
        assert report.scenarios_run == 4
        assert not out.exists()  # no failure, no reproducer
        assert "clean" in report.summary()

    def test_deterministic_across_runs(self, tmp_path):
        a = fuzz(11, 3, out=tmp_path / "a.json", serve_every=0,
                 executor_every=0)
        b = fuzz(11, 3, out=tmp_path / "b.json", serve_every=0,
                 executor_every=0)
        assert (a.ok, a.scenarios_run) == (b.ok, b.scenarios_run)

    def test_budget_must_be_positive(self):
        with pytest.raises(CheckError):
            fuzz(1, 0)

    @pytest.mark.slow
    def test_acceptance_budget_50_seed_4(self, tmp_path):
        """The PR's acceptance run: 50 scenarios, seed 4, fully clean."""
        report = fuzz(4, 50, out=tmp_path / "r.json")
        assert report.ok, report.summary()
        assert report.scenarios_run == 50


class TestFailurePath:
    def test_mutation_fails_shrinks_and_replays(self, tmp_path,
                                                mutated_quantization):
        out = tmp_path / "repro.json"
        obs = Instrumentation()
        report = fuzz(4, 5, out=out, serve_every=0, executor_every=0, obs=obs)
        assert not report.ok
        assert report.scenario is not None
        assert report.reproducer_path == out
        assert out.exists()
        assert obs.counters["check.fuzz.failed_scenarios"] == 1
        # The shrunk scenario is no larger than the failing original.
        doc = json.loads(out.read_text())
        assert doc["kind"] == REPRODUCER_KIND
        shrunk = Scenario.from_dict(doc["data"]["scenario"])
        assert shrunk.n_sensors <= 10
        assert doc["data"]["failures"]
        assert doc["data"]["provenance"]["seed"] == 4

        # Replay against the still-mutated library: must still fail.
        assert replay(out) != []

    def test_replay_goes_green_once_fixed(self, tmp_path):
        # Write a reproducer "from a past failure" whose scenario is fine
        # for the current (unmutated) library: replay must return clean.
        scenario = selftest_scenario()
        from repro.check.fuzz import _write_reproducer
        from repro.check.differential import CheckFailure

        path = _write_reproducer(
            tmp_path / "old.json", scenario,
            [CheckFailure("oracle", "was failing before the fix")],
            seed=9, iteration=0, checks=("oracle", "bound"))
        assert replay(path) == []

    def test_replay_rejects_malformed(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": REPRODUCER_KIND, "version": 1,
                                   "data": {"failures": []}}))
        with pytest.raises(CheckError):
            replay(bad)


class TestSelftest:
    def test_selftest_passes(self):
        obs = Instrumentation()
        assert run_selftest(obs=obs) == []
        assert obs.counters["check.selftest.caught"] == 1
        assert "check.selftest.problems" not in obs.counters

    def test_checker_flags_the_mutation(self, mutated_quantization):
        # Directly: the differential suite must fail on the selftest
        # scenario while the planted bug is live.
        with ScenarioChecker() as checker:
            failures = checker.check(selftest_scenario(),
                                     checks=("oracle", "bound"))
        assert failures
        assert "oracle" in {f.check for f in failures}


class TestCheckCLI:
    def test_fuzz_clean_exit_zero(self, tmp_path, capsys):
        rc = main(["check", "fuzz", "--seed", "4", "--budget", "2",
                   "--serve-every", "0", "--executor-every", "0",
                   "--quiet", "--out", str(tmp_path / "r.json")])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_fuzz_accepts_string_seed(self, tmp_path, capsys):
        rc = main(["check", "fuzz", "--seed", "abc123sha", "--budget", "1",
                   "--serve-every", "0", "--executor-every", "0",
                   "--quiet", "--out", str(tmp_path / "r.json")])
        assert rc == 0

    def test_fuzz_failure_exit_one_and_reproducer(self, tmp_path, capsys,
                                                  mutated_quantization):
        out = tmp_path / "r.json"
        rc = main(["check", "fuzz", "--seed", "4", "--budget", "3",
                   "--serve-every", "0", "--executor-every", "0",
                   "--quiet", "--out", str(out)])
        assert rc == 1
        assert out.exists()
        assert "FAILED" in capsys.readouterr().out

    def test_replay_cli(self, tmp_path, capsys):
        from repro.check.differential import CheckFailure
        from repro.check.fuzz import _write_reproducer

        path = _write_reproducer(tmp_path / "r.json", selftest_scenario(),
                                 [CheckFailure("oracle", "old failure")],
                                 seed=1, iteration=0, checks=("oracle",))
        assert main(["check", "replay", str(path)]) == 0
        assert "no longer fails" in capsys.readouterr().out

    def test_selftest_cli(self, capsys):
        assert main(["check", "selftest"]) == 0
        assert "planted mutations caught" in capsys.readouterr().out

    def test_rejects_zero_budget(self, capsys):
        assert main(["check", "fuzz", "--budget", "0"]) == 2
        assert "--budget" in capsys.readouterr().err
