"""Fault injection against the serving stack over real sockets.

Corrupt frames, misbehaving clients and dying workers must all land inside
the protocol's closed error-code set — the server never answers with a
traceback, never wedges, and never leaks worker processes. The
killed-worker path additionally exercises the executor rebuild: the
triggering request fails ``internal``, the pool is replaced once, and the
next request is served normally.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import time

import pytest

from repro.check.faults import raw_exchange, run_fault_suite, send_truncated
from repro.errors import ServeError
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import BAD_REQUEST, ERROR_CODES, INTERNAL


@pytest.fixture(scope="module")
def net():
    return network_to_dict(build_paper_network(n=16, q=2, seed=5))


def _config(**overrides):
    defaults = dict(executor="thread", workers=2, queue_limit=8,
                    default_deadline=60.0, drain_timeout=5.0,
                    max_line_bytes=64 * 1024)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestEdgeFrames:
    """Regression: every corrupt frame maps into the closed error set."""

    def test_oversized_line_is_bad_request(self):
        with ServerThread(_config()) as srv:
            resp = raw_exchange(srv.address,
                                b'{"pad": "' + b"x" * 200_000 + b'"}\n')
            assert resp["ok"] is False
            assert resp["error"]["code"] == BAD_REQUEST
            assert "exceeds" in resp["error"]["message"]

    def test_truncated_frame_mid_read_survives(self, net):
        with ServerThread(_config()) as srv:
            send_truncated(srv.address, b'{"type": "plan", "horizon": 3')
            # The half-written request must not poison the listener.
            with ServeClient(*srv.address) as c:
                assert c.health()["status"] == "ok"

    def test_unknown_request_type_is_bad_request(self):
        with ServerThread(_config()) as srv:
            resp = raw_exchange(srv.address, b'{"type": "frobnicate"}\n')
            assert resp["ok"] is False
            assert resp["error"]["code"] == BAD_REQUEST

    def test_duplicate_request_id_is_bad_request(self):
        obs = Instrumentation()
        with ServerThread(_config(), obs=obs) as srv:
            with socket.create_connection(srv.address, timeout=30) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"type": "health", "id": "a"}\n'
                        b'{"type": "health", "id": "a"}\n'
                        b'{"type": "health", "id": "b"}\n')
                f.flush()
                first = json.loads(f.readline())
                second = json.loads(f.readline())
                third = json.loads(f.readline())
        assert first["ok"] is True
        assert second["ok"] is False
        assert second["error"]["code"] == BAD_REQUEST
        assert "duplicate" in second["error"]["message"]
        assert third["ok"] is True  # fresh ids keep working
        assert obs.counters["serve.duplicate_id"] == 1

    def test_duplicate_id_scope_is_per_connection(self):
        with ServerThread(_config()) as srv:
            a = raw_exchange(srv.address, b'{"type": "health", "id": 1}\n')
            b = raw_exchange(srv.address, b'{"type": "health", "id": 1}\n')
        assert a["ok"] is True
        assert b["ok"] is True  # new connection, fresh id space

    def test_every_answered_error_is_in_the_closed_set(self):
        frames = [b"not json at all\n",
                  b'{"type": "frobnicate"}\n',
                  b'[1, 2, 3]\n',
                  b'{"no_type": true}\n']
        with ServerThread(_config()) as srv:
            for frame in frames:
                resp = raw_exchange(srv.address, frame)
                assert resp["ok"] is False, frame
                assert resp["error"]["code"] in ERROR_CODES, frame
                assert "Traceback" not in resp["error"]["message"], frame


class TestInjectedWorkerFaults:
    def test_full_thread_fault_suite_clean(self):
        failures = run_fault_suite()
        assert failures == [], "\n".join(str(f) for f in failures)

    def test_mid_request_disconnect_keeps_serving(self, net):
        with ServerThread(_config()) as srv:
            with socket.create_connection(srv.address, timeout=30) as sock:
                payload = dict(type="plan", network=net, horizon=100.0,
                               delay=1.0, id=1)
                sock.sendall(json.dumps(payload).encode() + b"\n")
                # Vanish while the job is in flight.
            with ServeClient(*srv.address) as c:
                assert c.health()["status"] == "ok"
                assert "plan" in c.plan(net, 50.0)

    def test_drain_with_injected_faults_in_flight(self, net):
        srv = ServerThread(_config())
        srv.start()
        with ServeClient(*srv.address) as c:
            try:
                c.plan(net, 30.0, fault="exception")
            except ServeError:
                pass
        srv.stop()  # must not hang or raise


class TestKilledProcessWorker:
    """The real BrokenProcessPool path needs a process executor."""

    def test_killed_worker_rebuilds_pool_and_recovers(self, net):
        obs = Instrumentation()
        config = _config(executor="process", workers=1, cache_entries=64)
        with ServerThread(config, obs=obs) as srv:
            with ServeClient(*srv.address, timeout=120) as c:
                with pytest.raises(ServeError) as err:
                    c.plan(net, 40.0, fault="kill", deadline=60.0)
                assert err.value.code == INTERNAL
                # The pool was rebuilt exactly once and serves again.
                result = c.plan(net, 40.0, deadline=60.0)
                assert "plan" in result
                stats = c.stats()
                assert stats["counters"]["serve.executor_rebuilt"] == 1

        # No worker processes may outlive the server.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children():
            assert time.monotonic() < deadline, (
                f"leaked workers: {multiprocessing.active_children()}")
            time.sleep(0.1)
