"""Integration: the parallel experiment executor is a pure accelerator.

``run_cell(config, jobs=N)`` fans the per-topology jobs onto a process
pool; the contract is byte-identical results versus the serial path —
same costs, same deaths, same dispatch counts — and instrumentation
counters that merge back to exactly the serial tallies. These tests pin
that contract on tiny cells (the scaling numbers live in
``benchmarks/bench_scaling.py``).
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell, topology_seed
from repro.experiments.sweeps import sweep
from repro.obs import Instrumentation

TINY = ExperimentConfig(n=20, horizon=80.0, n_topologies=4, seed=11,
                        algorithms=("mtd", "greedy"))
TINY_VAR = ExperimentConfig(n=20, horizon=80.0, n_topologies=3, seed=11,
                            variable=True, slot_duration=10.0,
                            algorithms=("mtd-var", "greedy"))


def _assert_cells_identical(a, b):
    assert [r.algorithm for r in a.results] == [r.algorithm for r in b.results]
    for ra, rb in zip(a.results, b.results):
        # Byte-level equality: the parallel path must not change a single
        # floating-point operation, not merely land within tolerance.
        assert ra.costs.tobytes() == rb.costs.tobytes()
        assert ra.deaths.tobytes() == rb.deaths.tobytes()
        assert ra.dispatches.tobytes() == rb.dispatches.tobytes()


class TestParallelDeterminism:
    def test_jobs4_byte_identical_to_serial(self):
        _assert_cells_identical(run_cell(TINY), run_cell(TINY, jobs=4))

    def test_jobs2_variable_cycles(self):
        """The adaptive path (re-plans, resampled workloads, per-policy
        caches) is seed-driven too — still byte-identical."""
        _assert_cells_identical(run_cell(TINY_VAR), run_cell(TINY_VAR, jobs=2))

    def test_more_jobs_than_topologies(self):
        _assert_cells_identical(run_cell(TINY), run_cell(TINY, jobs=16))

    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            run_cell(TINY, jobs=0)

    def test_topology_seed_is_stable(self):
        # The derivation is part of the determinism contract: every
        # execution mode (and future executor) must agree on it.
        seeds = [topology_seed(TINY, r) for r in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [topology_seed(TINY, r) for r in range(4)]


class TestMergedInstrumentation:
    def test_counters_match_serial(self):
        serial, parallel = Instrumentation(), Instrumentation()
        run_cell(TINY, obs=serial)
        run_cell(TINY, obs=parallel, jobs=4)
        # Counters are deterministic functions of (config, r): the merged
        # worker snapshots must reproduce the serial tallies exactly.
        assert parallel.counters == serial.counters
        assert parallel.counters["plan.calls"] == TINY.n_topologies

    def test_cache_counters_survive_the_pool(self):
        serial, parallel = Instrumentation(), Instrumentation()
        run_cell(TINY_VAR, obs=serial)
        run_cell(TINY_VAR, obs=parallel, jobs=3)
        assert any(k.startswith("plan.cache.") for k in parallel.counters)
        assert parallel.counters == serial.counters

    def test_timer_counts_and_event_sequence_match(self):
        serial, parallel = Instrumentation(), Instrumentation()
        run_cell(TINY, obs=serial)
        run_cell(TINY, obs=parallel, jobs=2)
        assert set(parallel.timers) == set(serial.timers)
        for name, stat in serial.timers.items():
            assert parallel.timers[name].count == stat.count
        # Workers ship their events back; merged in topology order they
        # replay the serial sequence (durations differ, names do not).
        assert [e.name for e in parallel.events] == [e.name for e in serial.events]

    def test_disabled_obs_collects_nothing(self):
        cell = run_cell(TINY, jobs=2)  # no obs: workers skip collection
        assert all(r.costs.size == TINY.n_topologies for r in cell.results)


class TestParallelSweepAndCli:
    def test_sweep_forwards_jobs(self):
        a = sweep(TINY, "n", [15, 20])
        b = sweep(TINY, "n", [15, 20], jobs=4)
        for alg in ("mtd", "greedy"):
            xa, ya = a.series(alg)
            xb, yb = b.series(alg)
            np.testing.assert_array_equal(xa, xb)
            assert ya.tobytes() == yb.tobytes()

    def test_cli_jobs_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.experiments import figures as figs

        spec = figs.FIGURES["fig1a"]
        small = figs.FigureSpec(
            figure_id=spec.figure_id, title=spec.title,
            parameter=spec.parameter, values=(20,), values_full=(20,),
            base=spec.base.with_(horizon=60.0), paper_claim=spec.paper_claim,
            check=None)
        monkeypatch.setitem(figs.FIGURES, "fig1a", small)
        csv_serial = tmp_path / "serial.csv"
        csv_jobs = tmp_path / "jobs.csv"
        assert main(["run", "fig1a", "--reps", "2", "--quiet",
                     "--csv", str(csv_serial)]) == 0
        assert main(["run", "fig1a", "--reps", "2", "--quiet", "--jobs", "2",
                     "--csv", str(csv_jobs)]) == 0
        capsys.readouterr()
        assert csv_jobs.read_text() == csv_serial.read_text()
