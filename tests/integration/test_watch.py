"""The ``watch`` subscription over real sockets: serve node and fleet.

The acceptance contracts of the live-observability PR:

* a ``watch`` request upgrades the connection to a server-push stream of
  sequence-numbered NDJSON delta frames; a malformed interval is a
  ``bad_request``, and an upgraded connection accepts nothing further;
* watching never blocks graceful drain (subscriptions are idle
  observation, not in-flight work);
* the router's aggregate stream applies the per-kind merge rules, and the
  one-shot ``stats`` fan-out applies the *same* rules (satellite 3's
  differential: gauges per-shard + max, never summed; quantiles from
  merged sketches, never averaged);
* a subscription survives a shard kill plus supervisor restart: the
  stream marks the shard down, resumes deltas once it rejoins, and fleet
  counter totals stay monotone throughout (satellite 4).
"""

from __future__ import annotations

import json
import socket
import time

import pytest

from repro.fleet import Fleet, FleetConfig
from repro.fleet.router import routing_key
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import BAD_REQUEST
from repro.serve.watch import WatchClient, WatchCollector


@pytest.fixture(scope="module")
def net():
    return network_to_dict(build_paper_network(n=16, q=2, seed=31))


def _serve_config(**overrides):
    defaults = dict(executor="thread", workers=2, queue_limit=16,
                    default_deadline=60.0, drain_timeout=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _fleet_config(**overrides):
    defaults = dict(shards=2, shard_mode="thread", workers=2,
                    executor="thread", queue_limit=64, retries=2,
                    retry_backoff=0.02, retry_cap=0.2,
                    supervisor_poll=30.0, seed=0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _wait(predicate, timeout=20.0, step=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class TestServeWatch:
    def test_subscription_streams_deltas(self, net):
        with ServerThread(_serve_config()) as srv:
            watch = WatchClient(*srv.address, interval=0.1)
            assert watch.info["role"] == "serve"
            collector = WatchCollector(watch)
            with ServeClient(*srv.address) as c:
                c.plan(net, 200.0)
                c.health()
            assert _wait(lambda: sum(
                f.counters.get("serve.requests", 0)
                for f in collector.snapshot()) >= 3, timeout=10.0)
            frames = collector.stop()
        assert all(f.kind == "delta" for f in frames)
        assert watch.n_dropped == 0
        seqs = [f.seq for f in frames]
        assert seqs == sorted(seqs)
        # Deltas accumulate to the exact totals: one plan, one health, and
        # the watch request that opened this very subscription.
        def total(name):
            return sum(f.counters.get(name, 0) for f in frames)
        assert total("serve.requests.plan") == 1.0
        assert total("serve.requests.health") == 1.0
        assert total("serve.requests") == 3.0

    def test_bad_interval_is_bad_request_not_an_upgrade(self):
        with ServerThread(_serve_config()) as srv:
            with socket.create_connection(srv.address, timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"type": "watch", "id": 1, "interval": "soon"}\n')
                f.flush()
                resp = json.loads(f.readline())
                assert resp["ok"] is False
                assert resp["error"]["code"] == BAD_REQUEST
                # The connection was NOT upgraded: it still answers requests.
                f.write(b'{"type": "health", "id": 2}\n')
                f.flush()
                assert json.loads(f.readline())["ok"] is True

    def test_upgraded_connection_ignores_further_requests(self):
        with ServerThread(_serve_config()) as srv:
            with socket.create_connection(srv.address, timeout=10) as sock:
                f = sock.makefile("rwb")
                f.write(b'{"type": "watch", "id": 1, "interval": 0.05}\n')
                f.flush()
                ack = json.loads(f.readline())
                assert ack["ok"] is True
                assert ack["result"]["stream"] == "watch"
                # Anything else on the wire now just ends the subscription
                # (the push loop treats inbound bytes as a close signal);
                # it must never produce a response line.
                f.write(b'{"type": "health", "id": 2}\n')
                f.flush()
                for _ in range(5):
                    line = f.readline()
                    if not line:
                        break
                    assert json.loads(line).get("stream") == "watch"

    def test_subscription_does_not_block_drain(self):
        srv = ServerThread(_serve_config(drain_timeout=2.0))
        srv.__enter__()
        watch = WatchClient(*srv.address, interval=0.5)
        collector = WatchCollector(watch)
        t0 = time.monotonic()
        srv.__exit__(None, None, None)  # graceful drain with a live watcher
        assert time.monotonic() - t0 < 10.0
        collector.stop()

    def test_watch_counters_track_subscriptions(self):
        obs = Instrumentation()
        with ServerThread(_serve_config(), obs=obs) as srv:
            with WatchClient(*srv.address, interval=0.1) as watch:
                collector = WatchCollector(watch)
                assert _wait(lambda: collector.snapshot(), timeout=5.0)
                collector.stop()
            assert _wait(
                lambda: obs.counters.get("serve.watch.closed", 0) >= 1,
                timeout=5.0)
        assert obs.counters["serve.watch.subscribed"] == 1


class TestFleetStatsMergeRules:
    """Satellite 3: the stats fan-out uses the per-kind merge rules."""

    def test_gauges_per_shard_plus_max_never_summed(self, net):
        other = network_to_dict(build_paper_network(n=16, q=2, seed=32))
        with Fleet(_fleet_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 200.0)
                c.plan(other, 200.0)
                stats = c.stats()
        gauges = stats["gauges"]
        assert gauges, "fan-out lost the gauge tables"
        for name, entry in gauges.items():
            per_shard = entry["per_shard"]
            assert per_shard, name
            # The differential: aggregate <= max over shards (summing,
            # the old bug, would exceed it whenever 2+ shards report).
            assert entry["max"] == max(per_shard.values()), name
            assert entry["max"] <= sum(abs(v) for v in per_shard.values()) \
                or len(per_shard) == 1

    def test_timers_merged_exactly_and_quantiles_from_sketches(self, net):
        with Fleet(_fleet_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 200.0)
                stats = c.stats()
        timers = stats["timers"]
        assert "serve.request" in timers
        entry = timers["serve.request"]
        assert entry["count"] >= 1
        # mean recomputed from merged count/total, never averaged.
        assert entry["mean"] == pytest.approx(
            entry["total"] / entry["count"])
        q = stats["quantiles"]["serve.request"]
        assert q["count"] == entry["count"]
        assert q["p50"] <= q["p99"]

    def test_counters_still_summed_across_shards(self, net):
        other = network_to_dict(build_paper_network(n=16, q=2, seed=33))
        with Fleet(_fleet_config(shards=2)) as fleet:
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 200.0)
                c.plan(other, 200.0)
                stats = c.stats()
        # Wherever the two plans landed, the fleet-wide sum sees both; the
        # stats fan-out itself hits every shard, so its own accounting
        # sums to the shard count.
        assert stats["counters"]["serve.requests.plan"] == 2
        assert stats["counters"]["serve.requests.stats"] == 2
        assert len(stats["shards"]) == 2

    def test_aggregate_stream_equals_stats_fanout_at_drain(self, net):
        """The tentpole identity on a quiet fleet: accumulated watch totals
        equal the one-shot fan-out for every traffic counter."""
        with Fleet(_fleet_config()) as fleet:
            host, port = fleet.router.address
            watch = WatchClient(host, port, interval=0.1)
            collector = WatchCollector(watch)
            with ServeClient(host, port) as c:
                c.plan(net, 200.0)
                time.sleep(0.3)  # let the deltas land
                stats = c.stats()
            time.sleep(0.3)  # let the stats request's own accounting land
            frames = collector.stop()
        final = [f for f in frames if f.kind == "aggregate"][-1]
        for name in ("serve.requests.plan", "fleet.routed", "plan.calls"):
            assert final.counters.get(name, 0.0) == \
                stats["counters"].get(name, 0.0), name


class TestWatchSurvivesShardRestart:
    """Satellite 4: kill + supervisor restart under a live subscription."""

    def test_stream_marks_down_resumes_and_stays_monotone(self, net):
        cfg = _fleet_config(supervisor_poll=0.1, max_restarts=3)
        with Fleet(cfg) as fleet:
            host, port = fleet.router.address
            victim = fleet.router._ring.primary(routing_key({"network": net}))
            watch = WatchClient(host, port, interval=0.1)
            collector = WatchCollector(watch)
            with ServeClient(host, port, retries=3) as c:
                c.plan(net, 200.0)
                fleet.kill_shard(victim)
                # The stream reports the death ...
                assert _wait(lambda: any(
                    f.shards.get(victim) == "down"
                    for f in collector.snapshot()), timeout=20.0), \
                    "stream never marked the killed shard down"
                # ... the supervisor restarts it ...
                assert _wait(lambda: len(fleet.router.live_shards) == 2,
                             timeout=20.0)
                assert _wait(lambda: any(
                    f.shards.get(victim) == "up"
                    for f in reversed(collector.snapshot())), timeout=20.0), \
                    "stream never saw the shard rejoin"
                # ... and deltas resume: traffic to the reborn shard shows
                # up in later frames.
                before = sum(f.counters.get("serve.requests.plan", 0)
                             for f in collector.snapshot()
                             if f.kind == "aggregate")
                c.plan(net, 200.0)
                assert _wait(lambda: [
                    f for f in collector.snapshot() if f.kind == "aggregate"
                ][-1].counters.get("serve.requests.plan", 0) > 0,
                    timeout=10.0)
            frames = collector.stop()

        aggregates = [f for f in frames if f.kind == "aggregate"]
        assert len(aggregates) >= 3
        # Membership events were streamed, not just flags.
        events = [e.get("event") for f in aggregates for e in f.events]
        assert "shard_down" in events
        assert "shard_up" in events
        # Counter monotonicity: totals never decrease across the restart.
        seen: dict[str, float] = {}
        for frame in aggregates:
            for name, value in frame.counters.items():
                assert value >= seen.get(name, 0.0) - 1e-9, \
                    f"{name} regressed across the shard restart"
                seen[name] = value
        assert watch.n_dropped == 0
