"""Integration: the variable-cycle pipeline (Section VI end-to-end).

Exercises MinTotalDistance-var against resampled and storm workloads,
checking perpetuity, adaptation behaviour, and the paper's qualitative
regime findings (Figs. 5 and 6 endpoints).
"""

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.network.cycles import LinearCycleDistribution
from repro.sim.engine import simulate
from repro.sim.workload import ResampledWorkload, StormWorkload

HORIZON = 300.0


def _workload(net, slot=10.0, sigma=2.0, seed=17):
    return ResampledWorkload(
        network=net,
        distribution=LinearCycleDistribution(sigma=sigma),
        slot_duration=slot, seed=seed)


class TestVariablePipeline:
    def test_perpetual_under_resampling(self, paper_network_small):
        net = paper_network_small
        pol = MinTotalDistanceVarPolicy()
        out = simulate(net, pol, _workload(net), HORIZON)
        assert out.metrics.perpetual
        assert pol.n_replans >= 1

    def test_greedy_perpetual_with_distribution_threshold(self, paper_network_small):
        net = paper_network_small
        out = simulate(net, GreedyOnDemandPolicy(threshold=1.0),
                       _workload(net), HORIZON)
        assert out.metrics.perpetual

    def test_var_beats_greedy_when_stable(self, paper_network_small):
        net = paper_network_small
        wl = _workload(net, slot=20.0)
        var = simulate(net, MinTotalDistanceVarPolicy(), wl, HORIZON)
        greedy = simulate(net, GreedyOnDemandPolicy(threshold=1.0), wl, HORIZON)
        assert var.metrics.perpetual and greedy.metrics.perpetual
        assert var.metrics.service_cost < greedy.metrics.service_cost

    def test_fig5_endpoint_instability_closes_gap(self, paper_network_small):
        """At ΔT=1 (extreme instability) the ratio must be close to 1; at
        ΔT=20 it must show a clear win — the paper's Fig. 5 shape."""
        net = paper_network_small
        ratios = {}
        for slot in (1.0, 20.0):
            wl = _workload(net, slot=slot)
            var = simulate(net, MinTotalDistanceVarPolicy(), wl, HORIZON)
            greedy = simulate(net, GreedyOnDemandPolicy(threshold=1.0), wl,
                              HORIZON)
            ratios[slot] = (var.metrics.service_cost
                            / greedy.metrics.service_cost)
        assert ratios[1.0] > 0.85      # near-parity when extremely unstable
        assert ratios[20.0] < 0.80     # clear win when stable
        assert ratios[20.0] < ratios[1.0]

    def test_fig6_endpoint_large_sigma_closes_gap(self, paper_network_small):
        net = paper_network_small
        ratios = {}
        costs = {}
        for sigma in (2.0, 50.0):
            wl = _workload(net, sigma=sigma)
            var = simulate(net, MinTotalDistanceVarPolicy(), wl, HORIZON)
            greedy = simulate(net, GreedyOnDemandPolicy(threshold=1.0), wl,
                              HORIZON)
            ratios[sigma] = (var.metrics.service_cost
                             / greedy.metrics.service_cost)
            costs[sigma] = var.metrics.service_cost
        assert costs[50.0] > costs[2.0]     # costs rise with variance
        assert ratios[50.0] > ratios[2.0]   # and the gap closes

    def test_replan_counter_grows_with_instability(self, paper_network_small):
        net = paper_network_small
        unstable = MinTotalDistanceVarPolicy()
        stable = MinTotalDistanceVarPolicy()
        simulate(net, unstable, _workload(net, slot=2.0), HORIZON)
        simulate(net, stable, _workload(net, slot=30.0), HORIZON)
        assert unstable.n_replans > stable.n_replans


class TestStormPipeline:
    def test_storm_survival_and_recovery(self, paper_network_small):
        net = paper_network_small
        storms = ((50.0, 80.0, 500.0, 500.0, 400.0, 3.0),)
        wl = StormWorkload(network=net, storms=storms, slot_duration=10.0)
        pol = MinTotalDistanceVarPolicy()
        out = simulate(net, pol, wl, 200.0)
        assert out.metrics.perpetual
        assert pol.n_replans >= 1  # storm onset and/or clearance

    def test_storm_raises_cost_vs_calm(self, paper_network_small):
        net = paper_network_small
        calm = StormWorkload(network=net, storms=(), slot_duration=10.0)
        stormy = StormWorkload(
            network=net, storms=((50.0, 150.0, 500.0, 500.0, 500.0, 4.0),),
            slot_duration=10.0)
        out_calm = simulate(net, MinTotalDistanceVarPolicy(), calm, 200.0)
        out_storm = simulate(net, MinTotalDistanceVarPolicy(), stormy, 200.0)
        assert out_storm.metrics.perpetual
        assert out_storm.metrics.service_cost > out_calm.metrics.service_cost
