"""Integration: every example script runs end-to-end, and the CLI works.

Examples are executed in-process (imported as modules and ``main()``
invoked) so failures produce real tracebacks and coverage counts them.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = sorted((Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


def _run_example(path: Path) -> None:
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    mod = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = mod
    try:
        spec.loader.exec_module(mod)
        mod.main()
    finally:
        sys.modules.pop(spec.name, None)


class TestExamples:
    def test_examples_exist(self):
        names = {p.stem for p in EXAMPLES}
        assert "quickstart" in names
        assert len(EXAMPLES) >= 3  # the deliverable floor

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_example_runs(self, path, capsys):
        _run_example(path)
        out = capsys.readouterr().out
        assert out.strip(), f"{path.stem} produced no output"


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "MinTotalDistance" in out and "Greedy" in out

    def test_run_tiny_figure_with_csv(self, tmp_path, capsys, monkeypatch):
        """Shrink fig1a's grid via the registry so `repro run` stays fast."""
        from repro.experiments import figures as figs

        spec = figs.FIGURES["fig1a"]
        small = figs.FigureSpec(
            figure_id=spec.figure_id, title=spec.title,
            parameter=spec.parameter, values=(20,), values_full=(20,),
            base=spec.base.with_(horizon=60.0), paper_claim=spec.paper_claim,
            check=None)
        monkeypatch.setitem(figs.FIGURES, "fig1a", small)
        csv_path = tmp_path / "fig1a.csv"
        assert main(["run", "fig1a", "--reps", "1", "--quiet",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "fig1a" in out
        assert csv_path.exists()
