"""Integration tests for the sharded planning fleet over real sockets.

Each test boots a real :class:`~repro.fleet.service.Fleet` (thread-mode
shards: fast to start, abrupt to kill) and talks to the router with the
unchanged :class:`~repro.serve.client.ServeClient` — the fleet's whole
contract is that clients cannot tell it from a single node.

The acceptance contracts of the fleet PR live here:

* **sticky routing** — repeats of one geometry land on the same shard, so
  the per-shard response cache and single-flight coalescing keep working
  across the fleet exactly as on a single node;
* **fail-over invisibility** — killing the shard that owns a key is not a
  client-visible failure: the router replays on the ring successor;
* **bounded fail-over** — with every shard dead the client gets a
  structured ``shard_unavailable``, never a hang or a raw reset;
* **aggregation** — ``health``/``stats`` fan out and come back summed,
  with per-shard breakdowns;
* **supervision** — a killed shard is restarted and rejoins the ring.

The payload-level differential (fleet answers byte-identical to a single
node, including through a mid-run kill) is ``repro check fleet``
(:mod:`repro.check.fleetcheck`), exercised in CI; here we keep to the
behavioural contracts so the suite stays fast.
"""

import json
import socket
import time

import pytest

from repro.errors import ServeError
from repro.fleet import Fleet, FleetConfig
from repro.fleet.router import routing_key
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.serve import ServeClient
from repro.serve.protocol import BAD_REQUEST, SHARD_UNAVAILABLE


@pytest.fixture(scope="module")
def net():
    return network_to_dict(build_paper_network(n=16, q=2, seed=21))


@pytest.fixture(scope="module")
def other_net():
    return network_to_dict(build_paper_network(n=16, q=2, seed=22))


def _config(**overrides):
    defaults = dict(shards=2, shard_mode="thread", workers=2,
                    executor="thread", queue_limit=64, retries=2,
                    retry_backoff=0.02, retry_cap=0.2,
                    supervisor_poll=30.0,  # router discovers deaths itself
                    seed=0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _owner(fleet, network):
    """The shard id that owns ``network``'s geometry on the router's ring."""
    return fleet.router._ring.primary(routing_key({"network": network}))


class TestRoutingAndAggregation:
    def test_plan_simulate_roundtrip_and_sticky_routing(self, net):
        with Fleet(_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                first = c.plan(net, 300.0)
                assert first["n_schedulings"] == len(first["plan"]["schedulings"])
                assert first["service_cost"] > 0

                # Same geometry → same shard → its response cache answers.
                again = c.plan(net, 300.0)
                assert again.get("cached") is True
                assert again["plan"] == first["plan"]

                metrics = c.simulate(net, first["plan"])
                assert metrics["perpetual"] is True
                assert metrics["n_dispatches"] == first["n_schedulings"]

                stats = c.stats()
                counters = stats["counters"]
                assert counters["serve.plan_cache.hit"] == 1
                assert counters["plan.calls"] == 1  # planner ran exactly once
                assert counters["fleet.requests.plan"] == 2
                assert counters["fleet.routed"] >= 3

    def test_health_aggregates_all_shards(self, net):
        with Fleet(_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                health = c.health()
                assert health["status"] == "ok"
                assert health["role"] == "fleet-router"
                assert health["shards_total"] == 2
                assert health["shards_live"] == 2
                assert set(health["shards"]) == {"shard-0", "shard-1"}
                assert all(h["status"] == "ok"
                           for h in health["shards"].values())

    def test_stats_aggregates_counters_and_per_shard(self, net, other_net):
        with Fleet(_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 300.0)
                c.plan(other_net, 300.0)
                stats = c.stats()
                assert stats["role"] == "fleet-router"
                assert stats["counters"]["serve.requests.plan"] == 2
                assert stats["shards_live"] == ["shard-0", "shard-1"]
                assert set(stats["shards"]) == {"shard-0", "shard-1"}
                for per_shard in stats["shards"].values():
                    assert per_shard["pending"] == 0
                    assert per_shard["inflight"] == 0

    def test_duplicate_id_rejected_at_the_edge(self, net):
        with Fleet(_config()) as fleet:
            host, port = fleet.router.address
            with socket.create_connection((host, port), timeout=10) as raw:
                fh = raw.makefile("rb")
                for _ in range(2):
                    raw.sendall(b'{"type": "health", "id": 7}\n')
                first = json.loads(fh.readline())
                second = json.loads(fh.readline())
            assert first["ok"] is True
            assert second["ok"] is False
            assert second["error"]["code"] == BAD_REQUEST
            assert "duplicate" in second["error"]["message"]

    def test_bad_requests_get_structured_errors(self, net):
        with Fleet(_config()) as fleet:
            with ServeClient(*fleet.router.address) as c:
                # Malformed network still routes (fallback key) and comes
                # back with the owning shard's validation error.
                with pytest.raises(ServeError) as exc:
                    c.request("plan", network={"bogus": True}, horizon=10.0)
                assert exc.value.code == BAD_REQUEST
                with pytest.raises(ServeError) as exc:
                    c.request("explode")  # rejected by the router itself
                assert exc.value.code == BAD_REQUEST


class TestFailover:
    def test_killing_the_owner_is_invisible_to_the_client(self, net):
        with Fleet(_config()) as fleet:
            victim = _owner(fleet, net)
            with ServeClient(*fleet.router.address) as c:
                first = c.plan(net, 300.0)
                fleet.kill_shard(victim)
                # Same connection, same request: the router hits the dead
                # primary, fails over to the ring successor, and the client
                # sees a normal (payload-identical) response.
                again = c.plan(net, 300.0)
                assert again["plan"] == first["plan"]
                assert again["service_cost"] == pytest.approx(
                    first["service_cost"])
            assert fleet.obs.counters.get("fleet.failover", 0) >= 1
            assert fleet.obs.counters.get("fleet.failover.served", 0) >= 1

    def test_all_shards_dead_yields_shard_unavailable(self, net):
        with Fleet(_config(shards=1, retries=1)) as fleet:
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 300.0)
                fleet.kill_shard("shard-0")
                with pytest.raises(ServeError) as exc:
                    c.plan(net, 300.0)
                assert exc.value.code == SHARD_UNAVAILABLE
            assert fleet.obs.counters.get("fleet.shard_unavailable", 0) >= 1

    def test_supervisor_restarts_and_shard_rejoins(self, net):
        cfg = _config(supervisor_poll=0.1, max_restarts=3)
        with Fleet(cfg) as fleet:
            victim = _owner(fleet, net)
            with ServeClient(*fleet.router.address) as c:
                c.plan(net, 300.0)
                fleet.kill_shard(victim)
                deadline = time.monotonic() + 20
                while time.monotonic() < deadline:  # detected down ...
                    if victim not in fleet.router.live_shards:
                        break
                    time.sleep(0.05)
                while time.monotonic() < deadline:  # ... then rejoined
                    if len(fleet.router.live_shards) == 2:
                        break
                    time.sleep(0.05)
                assert fleet.router.live_shards == {"shard-0", "shard-1"}
                # The restarted shard serves its keys again (cold cache,
                # same deterministic answer).
                assert c.plan(net, 300.0)["n_schedulings"] >= 0
            assert fleet.obs.counters.get("fleet.shard.restarts", 0) >= 1
            assert fleet.obs.counters.get("fleet.rejoined", 0) >= 1
