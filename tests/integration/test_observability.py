"""Integration tests: the instrumentation context threaded end to end.

The contracts a profiling run relies on: one ``dispatch`` span per executed
scheduling, one ``plan.tour_length`` sample per planned scheduling, per-cell
timing from the experiment runner, the distance-matrix reuse counter, and a
CLI ``--profile --trace`` round trip.
"""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.mintotal import min_total_distance
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell
from repro.network.builder import build_paper_network
from repro.network.cycles import LinearCycleDistribution
from repro.network.routing import CommunicationGraph, n_matrix_builds
from repro.obs import Instrumentation
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload


@pytest.fixture
def small_net():
    return build_paper_network(
        n=25, q=2, distribution=LinearCycleDistribution(tau_min=2.0, tau_max=10.0),
        seed=11)


class TestSimulateSpans:
    def test_one_dispatch_span_per_executed_scheduling(self, small_net):
        obs = Instrumentation()
        result = min_total_distance(small_net, 30.0, obs=obs)
        out = simulate(small_net, PlannedPolicy(result.plan),
                       FixedWorkload.from_network(small_net), 30.0,
                       instrumentation=obs)
        assert out.metrics.n_dispatches > 0
        assert len(obs.spans("dispatch")) == out.metrics.n_dispatches
        assert len(obs.spans("simulate")) == 1
        assert obs.counters["sim.events"] > 0

    def test_dispatch_span_costs_sum_to_service_cost(self, small_net):
        obs = Instrumentation()
        result = min_total_distance(small_net, 30.0, obs=obs)
        out = simulate(small_net, PlannedPolicy(result.plan),
                       FixedWorkload.from_network(small_net), 30.0,
                       instrumentation=obs)
        total = sum(e.attrs["cost"] for e in obs.spans("dispatch"))
        assert total == pytest.approx(out.metrics.service_cost)


class TestPlanObservations:
    def test_tour_length_sample_per_scheduling(self, small_net):
        obs = Instrumentation()
        result = min_total_distance(small_net, 30.0, obs=obs)
        assert obs.series["plan.tour_length"].count == len(result.plan)
        assert obs.counters["plan.schedulings"] == len(result.plan)
        assert len(obs.spans("plan")) == 1
        assert len(obs.spans("plan.block")) == 1

    def test_defaults_without_instrumentation(self, small_net):
        # Every public entry point stays callable with no obs argument.
        result = min_total_distance(small_net, 30.0)
        out = simulate(small_net, PlannedPolicy(result.plan),
                       FixedWorkload.from_network(small_net), 30.0)
        assert out.metrics.perpetual


class TestRunnerSpans:
    def test_cell_and_per_algorithm_timers(self):
        obs = Instrumentation()
        cfg = ExperimentConfig(n=20, q=2, n_topologies=2,
                               horizon=30.0, tau_min=2.0, tau_max=10.0,
                               algorithms=("mtd", "greedy"))
        run_cell(cfg, obs=obs)
        assert obs.timers["cell"].count == 1
        assert obs.timers["cell.mtd"].count == 2   # one per topology
        assert obs.timers["cell.greedy"].count == 2
        assert obs.timers["simulate"].count == 4   # 2 algorithms x 2 topologies


class TestDistanceMatrixReuse:
    def test_from_network_reuses_cached_blocks(self, small_net):
        obs = Instrumentation()
        small_net.dist  # materialise the network's cache
        builds_before = n_matrix_builds()
        g1 = CommunicationGraph.from_network(small_net, comm_range=400.0,
                                             obs=obs)
        g2 = CommunicationGraph.from_network(small_net, comm_range=200.0,
                                             obs=obs)
        d1, d2 = g1.dist, g2.dist
        assert n_matrix_builds() == builds_before  # nothing recomputed
        assert obs.counters["routing.dist_matrix_reused"] == 2
        assert d1.shape == (small_net.n + 1, small_net.n + 1)

        # The seeded matrix matches a from-scratch graph exactly.
        fresh = CommunicationGraph(coords=g1.coords, comm_range=400.0)
        np.testing.assert_allclose(fresh.dist, d1)
        assert n_matrix_builds() == builds_before + 1  # the fresh one built

    def test_masking_respects_comm_range(self, small_net):
        g = CommunicationGraph.from_network(small_net, comm_range=100.0)
        d = np.asarray(g.dist)
        finite = d[np.isfinite(d)]
        assert finite.max() <= 100.0


class TestCliProfile:
    def test_parser_accepts_flags(self):
        args = build_parser().parse_args(
            ["-v", "--profile", "--trace", "t.jsonl", "list"])
        assert args.verbose == 1
        assert args.profile
        assert args.trace == "t.jsonl"

    def test_profile_and_trace_on_plan(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["--profile", "--trace", str(trace), "plan",
                   "--n", "20", "--q", "2", "--horizon", "50",
                   "--network-out", str(tmp_path / "net.json"),
                   "--plan-out", str(tmp_path / "plan.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "instrumentation" in out
        assert "plan.tour_length" in out
        assert trace.exists()
        records = [json.loads(line)
                   for line in trace.read_text().splitlines() if line]
        assert any(r["name"] == "plan" and r["kind"] == "span"
                   for r in records)

    def test_verbose_flag_runs(self, tmp_path, capsys):
        rc = main(["-v", "plan", "--n", "15", "--q", "2", "--horizon", "40",
                   "--network-out", str(tmp_path / "n.json"),
                   "--plan-out", str(tmp_path / "p.json")])
        assert rc == 0
