"""The event-queue engine must replay the legacy slotted loop bit for bit,
and dynamic failure-storm scenarios must be deterministic end to end."""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.check.legacy_engine import simulate_legacy
from repro.check.simcheck import (
    check_determinism,
    check_engine_equivalence,
    result_diffs,
)
from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload, ResampledWorkload


class TestEngineEquivalence:
    def test_differential_clean_on_default_seed(self):
        assert check_engine_equivalence(seed=0) == []

    @pytest.mark.slow
    def test_differential_clean_on_more_seeds(self):
        for seed in (1, 7, 42):
            assert check_engine_equivalence(seed=seed) == []

    def test_exact_equality_planned_fixed(self):
        net = build_paper_network(n=25, q=2, seed=9)
        plan = min_total_distance(net, 80.0).plan
        workload = FixedWorkload.from_network(net)
        old = simulate_legacy(net, PlannedPolicy(plan), workload, 80.0)
        new = simulate(net, PlannedPolicy(plan), workload, 80.0)
        assert result_diffs(old, new, "planned/fixed") == []
        np.testing.assert_array_equal(old.final_energy, new.final_energy)
        assert old.metrics.service_cost == new.metrics.service_cost

    def test_exact_equality_greedy_resampled(self):
        from repro.network.cycles import LinearCycleDistribution

        net = build_paper_network(n=25, q=2, seed=9)
        workload = ResampledWorkload(network=net,
                                     distribution=LinearCycleDistribution(),
                                     slot_duration=10.0, seed=4)
        old = simulate_legacy(net, GreedyOnDemandPolicy(), workload, 80.0)
        new = simulate(net, GreedyOnDemandPolicy(), workload, 80.0)
        assert result_diffs(old, new, "greedy/resampled") == []


class TestFailureStormDeterminism:
    def test_determinism_check_clean(self):
        assert check_determinism(seed=0) == []

    def test_determinism_check_other_seed(self):
        assert check_determinism(seed=5) == []
