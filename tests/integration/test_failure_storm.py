"""Failure-storm end-to-end: every dynamic event source at once.

The ``failure-storm`` scenario runs the discrete-event engine with
charger breakdowns, sensor membership churn and Poisson charging
requests simultaneously. This is the regime where bookkeeping bugs hide
— a charge applied to a churned-out sensor, shadow energy drifting
negative, an event source firing out of order — so every registered
policy runs under :class:`~repro.check.invariants.InvariantChecker` and
the full invariant set must hold end-to-end.
"""

import json

import numpy as np
import pytest

from repro.check.invariants import InvariantChecker
from repro.experiments.runner import make_policy
from repro.scenarios import POLICIES, build_instance, get_scenario
from repro.sim.engine import simulate


@pytest.fixture(scope="module")
def storm_runs():
    """One failure-storm topology simulated under every registered policy."""
    spec = get_scenario("failure-storm")
    inst = build_instance(spec, 0)
    runs = {}
    for name, entry in POLICIES.items():
        if not entry.compatible(spec):
            continue
        checker = InvariantChecker(inst.network, raise_on_violation=False)
        policy = make_policy(entry.algorithm, inst.config, inst.network)
        result = simulate(inst.network, policy, inst.workload,
                          inst.config.horizon, hooks=checker,
                          sources=inst.build_sources())
        runs[name] = (checker, result)
    return inst, runs


def test_storm_actually_storms(storm_runs):
    """The scenario exercises all three event sources at once — otherwise
    the invariant assertions below are vacuous."""
    _, runs = storm_runs
    for name, (_, result) in runs.items():
        m = result.metrics
        assert m.n_failures > 0, f"{name}: no charger breakdowns fired"
        assert m.n_churn_events > 0, f"{name}: no membership churn fired"
        assert m.n_requests > 0, f"{name}: no charging requests fired"
        assert m.n_dispatches > 0, f"{name}: nothing was ever dispatched"


def test_invariants_hold_under_the_storm(storm_runs):
    """The full InvariantChecker set holds for every policy."""
    _, runs = storm_runs
    for name, (checker, _) in runs.items():
        assert checker.violations == [], (
            f"{name}: {[str(v) for v in checker.violations]}")


def test_no_service_to_churned_out_sensors(storm_runs):
    """No charge lands inside a sensor's offline window (reconstructed
    from the churn log, independently of the checker's own bookkeeping)."""
    inst, runs = storm_runs
    for name, (_, result) in runs.items():
        m = result.metrics
        offline_since: dict[int, float] = {}
        windows: list[tuple[int, float, float]] = []
        for ev in m.churn:
            if not ev.online:
                offline_since[ev.sensor] = ev.time
            elif ev.sensor in offline_since:
                windows.append((ev.sensor, offline_since.pop(ev.sensor), ev.time))
        for sensor, start in offline_since.items():  # never rejoined
            windows.append((sensor, start, float("inf")))
        assert windows, f"{name}: churn produced no offline windows"
        for charge in m.charges:
            for sensor, start, end in windows:
                if charge.sensor == sensor:
                    assert not (start < charge.time < end), (
                        f"{name}: sensor {sensor} charged at t={charge.time} "
                        f"while offline ({start}, {end})")


def test_energy_never_negative(storm_runs):
    """Final energies are non-negative and every charge saw a non-negative
    pre-charge level (deaths clamp at zero, they don't go below)."""
    _, runs = storm_runs
    for name, (_, result) in runs.items():
        assert np.all(result.final_energy >= -1e-9), (
            f"{name}: negative final energy {result.final_energy.min()}")
        for charge in result.metrics.charges:
            assert charge.energy_before >= -1e-9, (
                f"{name}: charge at t={charge.time} saw negative energy")


def test_event_stream_totally_ordered(storm_runs):
    """The canonical merged event log is in non-decreasing time order —
    the total order every replay/differential comparison relies on."""
    _, runs = storm_runs
    for name, (_, result) in runs.items():
        lines = result.metrics.event_log_jsonl().splitlines()
        assert lines, f"{name}: empty event stream"
        times = [json.loads(line)["t"] for line in lines]
        assert times == sorted(times), f"{name}: event stream out of order"
