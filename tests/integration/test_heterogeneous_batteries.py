"""Integration: nothing silently assumes unit batteries.

The paper parameterises everything by the cycle ``tau_i = B_i / rho_i``;
the battery only matters through that ratio. These tests run the full
pipeline with heterogeneous, non-unit capacities to catch any hidden
``B = 1`` assumption (energy accounting, lifetime estimates, predictors).
"""

import numpy as np
import pytest

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.core.feasibility import check_feasibility
from repro.core.mintotal import min_total_distance
from repro.geometry.bbox import Rect
from repro.network.builder import NetworkBuilder
from repro.network.cycles import LinearCycleDistribution
from repro.network.deployment import deploy_sensors
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload, ResampledWorkload

HORIZON = 150.0


@pytest.fixture(scope="module")
def hetero_network():
    """40 sensors with batteries drawn from [0.5, 4.0]."""
    area = Rect.square(1000.0)
    rng = np.random.default_rng(99)
    positions = deploy_sensors(40, area, rng=1)
    batteries = rng.uniform(0.5, 4.0, size=40)
    return (NetworkBuilder()
            .with_area(area)
            .with_sensors_at(positions)
            .with_base_station_at_center()
            .with_random_depots(4, seed=2)
            .with_cycles_from(LinearCycleDistribution(), seed=3)
            .with_batteries(batteries)
            .build())


class TestHeterogeneousBatteries:
    def test_rates_follow_cycles_not_batteries(self, hetero_network):
        net = hetero_network
        np.testing.assert_allclose(net.rates * net.cycles, net.batteries)

    def test_planned_pipeline_perpetual(self, hetero_network):
        net = hetero_network
        res = min_total_distance(net, HORIZON)
        assert check_feasibility(res.plan, net.cycles).feasible
        out = simulate(net, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(net), HORIZON)
        assert out.metrics.perpetual

    def test_greedy_perpetual(self, hetero_network):
        net = hetero_network
        out = simulate(net, GreedyOnDemandPolicy(),
                       FixedWorkload.from_network(net), HORIZON)
        assert out.metrics.perpetual

    def test_adaptive_perpetual_under_resampling(self, hetero_network):
        net = hetero_network
        wl = ResampledWorkload(network=net,
                               distribution=LinearCycleDistribution(),
                               slot_duration=10.0, seed=7)
        out = simulate(net, MinTotalDistanceVarPolicy(), wl, HORIZON)
        assert out.metrics.perpetual

    def test_energy_delivered_respects_capacities(self, hetero_network):
        net = hetero_network
        res = min_total_distance(net, HORIZON)
        out = simulate(net, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(net), HORIZON)
        # No single charge can deliver more than the largest battery.
        biggest = float(net.batteries.max())
        for ev in out.metrics.charges:
            assert net.batteries[ev.sensor] - ev.energy_before <= biggest + 1e-9

    def test_battery_scale_invariance_of_cost(self, hetero_network):
        """Scaling every battery (cycles fixed) must not change the plan or
        its cost — only cycles enter the optimisation."""
        net = hetero_network
        scaled = (NetworkBuilder()
                  .with_area(net.area)
                  .with_sensors_at([s.position for s in net.sensors])
                  .with_base_station_at(net.base_station.position)
                  .with_depots_at([d.position for d in net.depots])
                  .with_cycles(net.cycles)
                  .with_batteries(net.batteries * 3.0)
                  .build())
        a = min_total_distance(net, HORIZON)
        b = min_total_distance(scaled, HORIZON)
        assert a.plan.total_cost(net.dist) == pytest.approx(
            b.plan.total_cost(scaled.dist))
