"""Integration: the full fixed-cycle pipeline on paper-style topologies.

deploy → plan (Algorithm 3) → simulate → metrics, cross-checked against the
greedy baseline and the analytical feasibility/cost layers.
"""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.baselines.periodic import periodic_per_sensor_plan
from repro.core.bounds import empirical_ratio, lemma3_lower_bound
from repro.core.cost import cost_series, per_charger_cost, service_cost
from repro.core.feasibility import check_feasibility
from repro.core.mintotal import min_total_distance
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload

HORIZON = 300.0


@pytest.fixture(scope="module")
def pipeline(paper_network_small):
    net = paper_network_small
    wl = FixedWorkload.from_network(net)
    res = min_total_distance(net, HORIZON)
    mtd = simulate(net, PlannedPolicy(res.plan), wl, HORIZON)
    greedy = simulate(net, GreedyOnDemandPolicy(), wl, HORIZON)
    return net, res, mtd, greedy


class TestFixedPipeline:
    def test_both_perpetual(self, pipeline):
        _, _, mtd, greedy = pipeline
        assert mtd.metrics.perpetual
        assert greedy.metrics.perpetual

    def test_simulated_cost_equals_analytic(self, pipeline):
        net, res, mtd, _ = pipeline
        assert mtd.metrics.service_cost == pytest.approx(
            service_cost(net.dist, res.plan))

    def test_mtd_beats_greedy_linear(self, pipeline):
        _, _, mtd, greedy = pipeline
        ratio = mtd.metrics.service_cost / greedy.metrics.service_cost
        assert ratio < 0.95  # the paper's linear-regime win

    def test_feasibility_checker_agrees_with_simulator(self, pipeline):
        net, res, mtd, _ = pipeline
        assert check_feasibility(res.plan, net.cycles).feasible
        assert mtd.metrics.n_deaths == 0

    def test_lower_bound_chain(self, pipeline):
        net, res, mtd, _ = pipeline
        lb = lemma3_lower_bound(net, HORIZON)
        ratio = empirical_ratio(mtd.metrics.service_cost, lb)
        assert 1.0 <= ratio <= 2 * (res.quantization.K + 2)

    def test_per_charger_decomposition(self, pipeline):
        net, res, mtd, _ = pipeline
        per = per_charger_cost(net.dist, res.plan)
        np.testing.assert_allclose(per, mtd.metrics.per_charger, rtol=1e-9)
        assert per.sum() == pytest.approx(mtd.metrics.service_cost)

    def test_cost_series_sums_to_total(self, pipeline):
        net, res, mtd, _ = pipeline
        _, costs = cost_series(net.dist, res.plan)
        assert costs.sum() == pytest.approx(mtd.metrics.service_cost)

    def test_every_sensor_charged(self, pipeline):
        net, _, mtd, _ = pipeline
        counts = mtd.metrics.charges_per_sensor(net.n)
        assert np.all(counts >= 1)

    def test_greedy_charges_lazier_than_mtd(self, pipeline):
        net, _, mtd, greedy = pipeline
        assert greedy.metrics.n_charges <= mtd.metrics.n_charges


class TestOtherBaselines:
    def test_naive_dominates_everything(self, paper_network_small):
        net = paper_network_small
        wl = FixedWorkload.from_network(net)
        naive = simulate(net, NaiveChargeAllPolicy(), wl, 100.0)
        greedy = simulate(net, GreedyOnDemandPolicy(), wl, 100.0)
        assert naive.metrics.perpetual
        assert naive.metrics.service_cost > greedy.metrics.service_cost

    def test_periodic_plan_round_trip(self, paper_network_small):
        net = paper_network_small
        plan = periodic_per_sensor_plan(net, 100.0)
        out = simulate(net, PlannedPolicy(plan), FixedWorkload.from_network(net),
                       100.0)
        assert out.metrics.perpetual
        assert out.metrics.service_cost == pytest.approx(
            service_cost(net.dist, plan))


class TestRandomDistributionPipeline:
    def test_paper_contrast_between_distributions(
            self, paper_network_small, paper_network_random_cycles):
        """The MTD/Greedy ratio must be materially better under the linear
        distribution than under the random one (Fig. 1a vs 1b)."""
        ratios = {}
        for label, net in [("linear", paper_network_small),
                           ("random", paper_network_random_cycles)]:
            wl = FixedWorkload.from_network(net)
            res = min_total_distance(net, HORIZON)
            mtd = simulate(net, PlannedPolicy(res.plan), wl, HORIZON)
            greedy = simulate(net, GreedyOnDemandPolicy(), wl, HORIZON)
            assert mtd.metrics.perpetual and greedy.metrics.perpetual
            ratios[label] = mtd.metrics.service_cost / greedy.metrics.service_cost
        assert ratios["linear"] < ratios["random"]
