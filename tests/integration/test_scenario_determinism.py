"""Scenario generation is byte-deterministic across processes.

Every registered scenario must produce byte-identical topologies and
event streams for a fixed seed no matter where it is materialised — the
parent process (``--jobs 1``) or a worker pool (``--jobs N``). The
witness is :func:`repro.scenarios.instance_digest`: sha256 of the
canonical network document plus sha256 of a canonical run's merged
per-event JSONL. On top of the generator-level digests, the scorer's
gated metrics must be identical across ``jobs`` settings.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.scenarios import (
    GATED_KEYS,
    SCENARIOS,
    build_instance,
    get_suite,
    instance_digest,
    score_suite,
)


def test_at_least_five_scenarios_registered():
    """The acceptance floor: the suite covers >= 5 named scenarios."""
    assert len(SCENARIOS) >= 5


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_digest_identical_in_process_and_in_worker(name):
    """jobs=1 (in-process) and jobs=N (worker process) generate the same
    bytes: topology document and event stream digests match exactly."""
    spec = SCENARIOS[name]
    local = instance_digest(spec, 0)
    with ProcessPoolExecutor(max_workers=2) as pool:
        remote = pool.submit(instance_digest, spec, 0).result()
        again = pool.submit(instance_digest, spec, 0).result()
    assert local == remote == again
    assert set(local) == {"topology", "events"}


def test_distinct_topologies_distinct_digests():
    """Repetition r=0 and r=1 are different topologies (the digest is a
    real witness, not a constant)."""
    spec = next(iter(SCENARIOS.values()))
    assert (instance_digest(spec, 0, events=False)
            != instance_digest(spec, 1, events=False))


def test_suite_members_rebuild_identically():
    """Suite overrides don't break determinism: the quick suite's members
    rebuild to identical networks in separate calls."""
    for spec in get_suite("quick").members():
        a = build_instance(spec, 0)
        b = build_instance(spec, 0)
        assert a.network.geometry_fingerprint == b.network.geometry_fingerprint
        assert (a.network.cycles == b.network.cycles).all()
        assert (a.network.batteries == b.network.batteries).all()


def test_gated_metrics_identical_across_jobs():
    """score_suite(jobs=1) and score_suite(jobs=2) agree on every gated
    (deterministic) metric — the scorer-level --jobs differential."""
    a = score_suite("quick", jobs=1)
    b = score_suite("quick", jobs=2)
    assert a.gated_view(GATED_KEYS) == b.gated_view(GATED_KEYS)
