"""End-to-end acceptance for ``repro score``.

Runs the real quick suite through the CLI: all registered policies over
every named scenario, ``SCORECARD.json`` written, exit 0 against the
checked-in golden, exit 1 when a golden metric is perturbed past
tolerance (the regression-gate acceptance criterion), and the reporting
outputs render.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.io.files import load_json
from repro.scenarios import SCENARIOS, Scorecard

REPO = Path(__file__).resolve().parents[2]
GOLDEN = REPO / "golden" / "SCORECARD.quick.json"


@pytest.fixture(scope="module")
def scored(tmp_path_factory):
    """One real CLI run of the quick suite, gated against the golden."""
    out_dir = tmp_path_factory.mktemp("score")
    out = out_dir / "SCORECARD.json"
    code = main(["score", "--suite", "quick", "--jobs", "2", "--quiet",
                 "--out", str(out), "--baseline", str(GOLDEN),
                 "--markdown", str(out_dir / "scorecard.md"),
                 "--svg", str(out_dir / "scorecard.svg"),
                 "--live", str(out_dir / "live.jsonl")])
    return code, out_dir, out


def test_golden_scorecard_is_checked_in():
    assert GOLDEN.exists(), "golden/SCORECARD.quick.json must be committed"


def test_exit_zero_against_the_golden(scored):
    code, _, _ = scored
    assert code == 0


def test_scorecard_written_with_full_coverage(scored):
    """>= 5 named scenarios, every registered policy, fixed dimensions."""
    _, _, out = scored
    card = Scorecard.load(out)
    assert len(card.scenarios) >= 5
    assert set(card.scenarios) == set(SCENARIOS)
    assert set(card.policies) >= {"mtd", "mtd-var", "greedy"}
    cell = card.metrics("failure-storm", "mtd")
    assert cell is not None
    assert {"service_cost", "deaths", "charger_utilization",
            "replan_count", "replan_latency_p50_ms",
            "replan_latency_p99_ms", "cache_hit_rate"} <= set(cell)
    # The adaptive policy cannot score on the fixed-cycle scenario.
    assert card.metrics("sparse-wide-area", "mtd-var") is None


def test_perturbed_golden_metric_exits_nonzero(scored, tmp_path):
    """Perturb one golden metric in the better direction so the (unchanged)
    current run reads as a regression: the gate must exit 1."""
    _, _, out = scored
    doc = json.loads(GOLDEN.read_text())
    doc["data"]["scenarios"]["failure-storm"]["mtd"]["service_cost"] *= 0.9
    perturbed = tmp_path / "perturbed.json"
    perturbed.write_text(json.dumps(doc))
    code = main(["score", "--suite", "quick", "--quiet",
                 "--out", str(tmp_path / "SCORECARD.json"),
                 "--baseline", str(perturbed)])
    assert code == 1


def test_update_golden_writes_the_baseline(scored, tmp_path):
    """--update-golden blesses the current run instead of comparing."""
    _, _, out = scored
    baseline = tmp_path / "blessed.json"
    code = main(["score", "--suite", "quick", "--quiet",
                 "--out", str(tmp_path / "SCORECARD.json"),
                 "--baseline", str(baseline), "--update-golden"])
    assert code == 0
    blessed = Scorecard.load(baseline)
    # Wall-clock latency columns differ run to run; everything the gate
    # reads must be identical.
    from repro.scenarios import GATED_KEYS

    assert blessed.gated_view(GATED_KEYS) == \
        Scorecard.load(out).gated_view(GATED_KEYS)


def test_missing_baseline_hints_instead_of_failing(scored, tmp_path):
    """No golden yet -> exit 0 with an update hint (bootstrap path)."""
    code = main(["score", "--suite", "quick", "--quiet",
                 "--out", str(tmp_path / "SCORECARD.json"),
                 "--baseline", str(tmp_path / "nope.json")])
    assert code == 0


def test_envelope_and_reports(scored):
    """The scorecard carries the standard envelope; markdown and SVG
    renderings contain every scenario row."""
    _, out_dir, out = scored
    payload = load_json(out, "scorecard")  # raises on wrong kind
    assert payload["suite"] == "quick"
    md = (out_dir / "scorecard.md").read_text()
    svg = (out_dir / "scorecard.svg").read_text()
    for name in SCENARIOS:
        assert name in md
        assert name in svg
    assert svg.startswith("<svg") and svg.endswith("</svg>")


def test_unknown_suite_and_policy_are_usage_errors(tmp_path, capsys):
    assert main(["score", "--suite", "nope",
                 "--out", str(tmp_path / "s.json")]) == 2
    assert "unknown suite" in capsys.readouterr().err
    assert main(["score", "--suite", "quick", "--policies", "nope",
                 "--out", str(tmp_path / "s.json")]) == 2
    assert "unknown policies" in capsys.readouterr().err


def test_live_stream_is_complete_and_tailable(scored):
    """--live writes a start/instance/scenario/done NDJSON stream that
    ScoreTail (the `repro watch --score` consumer) follows to the end."""
    from repro.reporting.dashboard import ScoreTail

    _, out_dir, _ = scored
    path = out_dir / "live.jsonl"
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert all(line["stream"] == "score" for line in lines)
    events = [line["event"] for line in lines]
    assert events[0] == "start"
    assert events[-1] == "done"
    start = lines[0]
    assert events.count("instance") == start["total_instances"]
    assert events.count("scenario") == len(start["scenarios"])

    tail = ScoreTail(path)
    assert tail.poll() is True
    assert tail.finished is True
    assert tail.done == tail.total == start["total_instances"]
    assert set(tail.cells) == set(start["scenarios"])
