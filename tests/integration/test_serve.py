"""Integration tests for the planning service over real sockets.

Each test starts a real :class:`~repro.serve.server.PlanningServer` on an
ephemeral port (thread-executor mode: fast startup, and the shared locked
:class:`~repro.plan.cache.PlanArtifactCache` path is exactly what the
thread-safety work guards) and talks to it with the blocking client.

The acceptance contracts of the serving PR live here:

* **single-flight coalescing** — N concurrent identical ``plan`` requests
  run the planner exactly once (``plan.calls == 1``) and all N responses
  carry the identical plan document;
* **backpressure** — past ``queue_limit`` the server answers a structured
  ``overloaded`` error immediately rather than queueing/hanging;
* **deadlines** — a too-slow request turns into ``deadline_exceeded``;
* **graceful drain** — shutdown lets an in-flight request finish and
  answer before the connection is torn down.
"""

import json
import socket
import threading
import time

import pytest

from repro.errors import ServeError
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.protocol import (
    BAD_REQUEST,
    DEADLINE_EXCEEDED,
    OVERLOADED,
    SHUTTING_DOWN,
)


@pytest.fixture(scope="module")
def net():
    return network_to_dict(build_paper_network(n=24, q=3, seed=11))


@pytest.fixture(scope="module")
def other_net():
    return network_to_dict(build_paper_network(n=24, q=3, seed=12))


def _config(**overrides):
    defaults = dict(executor="thread", workers=2, queue_limit=32,
                    default_deadline=60.0, drain_timeout=10.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestCommands:
    def test_health_stats_plan_simulate(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                health = c.health()
                assert health["status"] == "ok"
                assert health["workers"] == 2

                result = c.plan(net, 300.0)
                assert result["n_schedulings"] == len(result["plan"]["schedulings"])
                assert result["service_cost"] > 0
                assert result["K"] >= 0

                metrics = c.simulate(net, result["plan"])
                assert metrics["perpetual"] is True
                assert metrics["n_dispatches"] == result["n_schedulings"]
                assert metrics["service_cost"] == pytest.approx(result["service_cost"])

                stats = c.stats()
                assert stats["counters"]["serve.requests.plan"] == 1
                assert stats["counters"]["serve.requests.simulate"] == 1
                assert stats["counters"]["plan.calls"] == 1  # merged worker obs
                assert stats["artifact_cache"]["misses"] > 0
                assert "serve.request" in stats["timers"]
                assert "serve.queue_depth" in stats["series"]

    def test_repeat_is_served_from_response_cache(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                first = c.plan(net, 300.0)
                again = c.plan(net, 300.0)
                assert again.get("cached") is True
                assert again["plan"] == first["plan"]
                stats = c.stats()
                assert stats["counters"]["serve.plan_cache.hit"] == 1
                assert stats["counters"]["plan.calls"] == 1  # planner ran once

    def test_refined_variant_reuses_base_artifacts(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                c.plan(net, 300.0)
                c.plan(net, 300.0, refine=True)  # distinct key, shares base tours
                stats = c.stats()
                assert stats["counters"]["plan.calls"] == 2
                assert stats["counters"].get("plan.cache.base.hit", 0) >= 1

    def test_bad_requests_get_structured_errors(self, net):
        with ServerThread(_config()) as srv:
            host, port = srv.address
            with ServeClient(host, port) as c:
                with pytest.raises(ServeError) as exc:
                    c.request("plan", network={"bogus": True}, horizon=10.0)
                assert exc.value.code == BAD_REQUEST
                with pytest.raises(ServeError) as exc:
                    c.request("plan", network=net)  # no horizon
                assert exc.value.code == BAD_REQUEST

            # raw garbage on the wire: still one structured response line
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(b"this is not json\n")
                line = raw.makefile("rb").readline()
            data = json.loads(line)
            assert data["ok"] is False
            assert data["error"]["code"] == BAD_REQUEST

    def test_kernel_backend_payload(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                base = c.plan(net, 300.0)
                # Exact backend: identical plan, and the request coalesces
                # onto the same response-cache entry as the default.
                fast = c.request("plan", network=net, horizon=300.0,
                                 kernel_backend="fast")
                assert fast["plan"] == base["plan"]
                assert fast.get("cached") is True
                # Unknown backend: structured bad_request, not a crash.
                with pytest.raises(ServeError) as exc:
                    c.request("plan", network=net, horizon=300.0,
                              kernel_backend="warp-drive")
                assert exc.value.code == BAD_REQUEST

    def test_server_wide_kernel_backend_config(self, net):
        # A server pinned to the fast backend serves byte-identical plans.
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                reference_plan = c.plan(net, 300.0)["plan"]
        with ServerThread(_config(kernel_backend="fast")) as srv:
            with ServeClient(*srv.address) as c:
                assert c.plan(net, 300.0)["plan"] == reference_plan

    def test_mismatched_simulate_rejected(self, net, other_net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                plan = c.plan(net, 300.0)["plan"]
                bigger = network_to_dict(build_paper_network(n=10, q=2, seed=1))
                with pytest.raises(ServeError) as exc:
                    c.simulate(bigger, plan)  # plan nodes out of range
                assert exc.value.code == BAD_REQUEST


class TestCoalescing:
    N = 6

    def test_concurrent_identical_requests_run_planner_once(self, net):
        """The PR's headline contract: N concurrent identical plans -> one
        planner execution, N identical responses."""
        results: list[dict | None] = [None] * self.N
        errors: list[Exception] = []
        barrier = threading.Barrier(self.N)

        with ServerThread(_config(workers=4, queue_limit=64)) as srv:
            host, port = srv.address

            def hit(i: int) -> None:
                try:
                    with ServeClient(host, port) as c:
                        barrier.wait(timeout=30)
                        results[i] = c.plan(net, 300.0, delay=1.0)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

            threads = [threading.Thread(target=hit, args=(i,)) for i in range(self.N)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            with ServeClient(host, port) as c:
                counters = c.stats()["counters"]

        assert not errors
        assert all(r is not None for r in results)
        documents = [json.dumps(r["plan"], sort_keys=True) for r in results]
        assert len(set(documents)) == 1  # N identical responses

        assert counters["plan.calls"] == 1  # exactly one planner execution
        coalesced = counters.get("serve.coalesced", 0)
        cache_hits = counters.get("serve.plan_cache.hit", 0)
        assert coalesced >= 1
        assert coalesced + cache_hits == self.N - 1

    def test_distinct_requests_do_not_coalesce(self, net, other_net):
        with ServerThread(_config(workers=4)) as srv:
            with ServeClient(*srv.address) as a, ServeClient(*srv.address) as b:
                ra = a.plan(net, 300.0)
                rb = b.plan(other_net, 300.0)
                assert ra["fingerprint"] != rb["fingerprint"]
                counters = a.stats()["counters"]
            assert counters["plan.calls"] == 2
            assert counters.get("serve.coalesced", 0) == 0


class TestBackpressure:
    def test_saturation_returns_structured_overloaded(self, net, other_net):
        """Bounded-queue overflow must answer immediately, not hang."""
        with ServerThread(_config(workers=1, queue_limit=1)) as srv:
            host, port = srv.address

            slow_result: list[dict] = []

            def slow() -> None:
                with ServeClient(host, port) as c:
                    slow_result.append(c.plan(net, 300.0, delay=1.5))

            t = threading.Thread(target=slow)
            t.start()
            try:
                with ServeClient(host, port) as c:
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:  # wait until it is admitted
                        if c.health()["pending"] >= 1:
                            break
                        time.sleep(0.02)
                    else:
                        pytest.fail("slow request never became pending")

                    t0 = time.monotonic()
                    with pytest.raises(ServeError) as exc:
                        c.plan(other_net, 300.0)  # distinct key: needs a new slot
                    assert exc.value.code == OVERLOADED
                    assert time.monotonic() - t0 < 1.0  # rejected, not queued

                    counters = c.stats()["counters"]
                    assert counters["serve.rejected"] >= 1
            finally:
                t.join(timeout=30)
            assert slow_result  # the admitted request still completed fine

    def test_coalesced_joiner_is_not_rejected(self, net):
        """Joining an in-flight identical plan needs no queue slot."""
        with ServerThread(_config(workers=1, queue_limit=1)) as srv:
            host, port = srv.address
            out: list[dict] = []

            def first() -> None:
                with ServeClient(host, port) as c:
                    out.append(c.plan(net, 300.0, delay=1.0))

            t = threading.Thread(target=first)
            t.start()
            try:
                with ServeClient(host, port) as c:
                    deadline = time.monotonic() + 10
                    while time.monotonic() < deadline:
                        if c.health()["pending"] >= 1:
                            break
                        time.sleep(0.02)
                    joined = c.plan(net, 300.0, delay=1.0)  # same key: coalesces
            finally:
                t.join(timeout=30)
            assert joined["plan"] == out[0]["plan"]


class TestDeadlines:
    def test_deadline_exceeded(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                with pytest.raises(ServeError) as exc:
                    c.plan(net, 300.0, delay=2.0, deadline=0.2)
                assert exc.value.code == DEADLINE_EXCEEDED
                assert c.stats()["counters"]["serve.deadline"] == 1
                # the connection survives a deadline error
                assert c.health()["status"] == "ok"


class TestDrain:
    def test_graceful_drain_finishes_in_flight_request(self, net):
        srv = ServerThread(_config(drain_timeout=15.0))
        host, port = srv.start()
        result: list[dict] = []
        errors: list[Exception] = []
        started = threading.Event()

        def inflight() -> None:
            try:
                with ServeClient(host, port) as c:
                    started.set()
                    result.append(c.plan(net, 300.0, delay=1.0))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        t = threading.Thread(target=inflight)
        t.start()
        started.wait(timeout=10)
        time.sleep(0.3)  # let the request reach the executor
        srv.stop(drain=True)
        t.join(timeout=30)
        assert not errors
        assert result and result[0]["service_cost"] > 0

        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=1)

    def test_draining_server_rejects_new_work(self, net):
        """A request arriving mid-drain gets `shutting_down`, not a hang."""
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address) as c:
                c.health()
                # flip the drain flag directly (the signal handler's effect)
                srv.server._draining = True
                with pytest.raises(ServeError) as exc:
                    c.plan(net, 300.0)
                assert exc.value.code == SHUTTING_DOWN
                srv.server._draining = False  # restore for a clean stop


class TestClientRetry:
    """The client-side transient-failure retry budget (fleet satellite).

    ``retries`` makes :class:`ServeClient` absorb exactly two kinds of
    weather — a dropped connection (server restart, fleet fail-over
    window) and a structured ``overloaded`` — with jittered exponential
    backoff, surfacing the attempts on ``n_retries``. Real answers
    (``bad_request`` etc.) must never be retried.
    """

    def test_reconnects_across_a_server_restart(self, net):
        first = ServerThread(_config())
        host, port = first.start()
        c = ServeClient(host, port, retries=3, retry_backoff=0.05, seed=1)
        try:
            assert c.health()["status"] == "ok"
            first.stop(drain=False)
            second = ServerThread(_config(port=port))
            second.start()
            try:
                # The pooled connection is dead: the retry path reconnects
                # to the same address and the request succeeds.
                result = c.plan(net, 300.0)
                assert result["service_cost"] > 0
                assert c.n_retries >= 1
            finally:
                second.stop()
        finally:
            c.close()

    def test_zero_retries_fails_fast(self):
        srv = ServerThread(_config())
        host, port = srv.start()
        with ServeClient(host, port) as c:
            c.health()
            srv.stop(drain=False)
            with pytest.raises(ServeError):
                c.health()
            assert c.n_retries == 0

    def test_retries_overloaded_until_capacity_frees(self, net, other_net):
        with ServerThread(_config(workers=1, queue_limit=1)) as srv:
            host, port = srv.address
            with ServeClient(host, port) as hog, \
                    ServeClient(host, port, retries=10, retry_backoff=0.1,
                                retry_cap=0.4, seed=2) as c:
                slow = threading.Thread(
                    target=hog.request, kwargs=dict(
                        rtype="plan", network=net, horizon=300.0, delay=1.0))
                slow.start()
                time.sleep(0.2)  # the hog occupies the single slot
                result = c.plan(other_net, 300.0)
                slow.join(timeout=30)
                assert result["service_cost"] > 0
                assert c.n_retries >= 1

    def test_real_errors_are_not_retried(self, net):
        with ServerThread(_config()) as srv:
            with ServeClient(*srv.address, retries=5) as c:
                with pytest.raises(ServeError) as exc:
                    c.request("plan", network=net)  # no horizon
                assert exc.value.code == BAD_REQUEST
                assert c.n_retries == 0


class TestLoadGeneratorModes:
    def test_retries_surface_in_the_report(self, net, other_net):
        from repro.serve import LoadGenerator

        with ServerThread(_config(workers=1, queue_limit=1)) as srv:
            host, port = srv.address
            gen = LoadGenerator(host, port, concurrency=4, retries=20)
            nets = [network_to_dict(build_paper_network(n=10, q=2, seed=s))
                    for s in range(40, 44)]
            report = gen.run([("plan", {"network": nets[i % 4],
                                        "horizon": 200.0, "delay": 0.1})
                              for i in range(8)])
            assert report.n_requests == 8
            assert report.n_failed == 0
            # 4 threads against a single admission slot: some attempts
            # were rejected `overloaded` and retried into success.
            assert report.n_retries >= 1
            assert report.to_dict()["n_retries"] == report.n_retries

    def test_multiprocess_mode_drives_real_processes(self, net):
        from repro.serve import LoadGenerator

        with ServerThread(_config()) as srv:
            host, port = srv.address
            gen = LoadGenerator(host, port, concurrency=2, processes=2)
            report = gen.run([("health", {}) for _ in range(8)]
                             + [("plan", {"network": net, "horizon": 300.0})])
            assert report.n_requests == 9
            assert report.n_failed == 0
            assert report.duration > 0
            assert report.throughput > 0
