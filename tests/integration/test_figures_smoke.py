"""Tiny-scale smoke runs of the figure registry.

The benches run the registered figures at paper scale; these tests run
shrunken versions (small n, short horizon, one topology) so ``pytest
tests/`` alone exercises every figure's *machinery* — config composition,
sweep, aggregation, reporting — end to end, for each registered figure id.
"""

import pytest

from repro.experiments.figures import FIGURES
from repro.experiments.sweeps import sweep
from repro.reporting.summary import figure_report

#: Per-figure shrunken sweep values (keep variable-cycle figures extra small).
_SMALL_VALUES = {
    "n": [20],
    "tau_max": [10],
    "slot_duration": [10],
    "sigma": [2],
    "q": [2],
    "quantization_base": [3],
    "deployment": ["clustered"],
    "failure_rate": [0.005],
}


@pytest.mark.parametrize("figure_id", sorted(FIGURES))
def test_figure_machinery_smoke(figure_id):
    spec = FIGURES[figure_id]
    base = spec.base.with_(n=20, horizon=60.0, n_topologies=1)
    values = _SMALL_VALUES[spec.parameter]
    result = sweep(base, spec.parameter, values)

    # Every configured algorithm produced a positive cost and — unless the
    # sweep injects charger failures, where deaths are the measured
    # outcome — kept every sensor alive.
    dynamic = result.cells[0].config.failure_rate > 0
    for alg in base.algorithms:
        assert result.cells[0].by_name(alg).mean_cost > 0
        if not dynamic:
            assert result.cells[0].by_name(alg).total_deaths == 0

    # The reporting layer renders without error (checks are NOT asserted at
    # this scale — shapes are a property of paper-scale instances).
    text = figure_report(spec, result)
    assert figure_id in text
