"""Two servers sharing one on-disk plan-artifact store (the fleet's tier 3).

The fleet PR promotes :class:`~repro.plan.store.PlanArtifactStore` from a
per-server warm-restart cache to a *shared* tier shared by every shard of
a fleet: whatever one shard computes is write-through published for all.
These tests pin that contract with two independent
:class:`~repro.serve.ServerThread` servers pointed at the same store root
(in-process for speed; the store's locking + atomic-publication design is
identical across real processes, which ``repro check fleet`` and the CI
fleet smoke exercise):

* a plan computed by server A is served warm by a *concurrently running*
  server B — same payload, zero recomputation of the shared artifacts;
* a corrupt entry is quarantined by whichever store client touches it
  first and is then invisible to both — never served by either.
"""

import pytest

from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.plan import PlanArtifactStore, plan_tours
from repro.serve import ServeClient, ServeConfig, ServerThread


@pytest.fixture(scope="module")
def net_model():
    return build_paper_network(n=16, q=2, seed=31)


@pytest.fixture(scope="module")
def net(net_model):
    return network_to_dict(net_model)


def _config(store_root):
    return ServeConfig(executor="thread", workers=2, queue_limit=32,
                       default_deadline=60.0, drain_timeout=10.0,
                       cache_dir=str(store_root))


class TestSharedStoreAcrossServers:
    def test_write_through_on_a_is_warm_on_b(self, net, tmp_path):
        root = tmp_path / "store"
        with ServerThread(_config(root)) as a:
            with ServeClient(*a.address) as ca:
                first = ca.plan(net, 300.0)
                stats_a = ca.stats()
                # Write-through at compute time, not just on drain.
                assert stats_a["counters"]["plan.cache.disk.writes"] >= 1
                assert stats_a["counters"]["plan.calls"] == 1

            # A is still running: B boots against the same root and
            # warm-starts from A's published artifacts.
            with ServerThread(_config(root)) as b:
                with ServeClient(*b.address) as cb:
                    again = cb.plan(net, 300.0)
                    assert again["plan"] == first["plan"]
                    assert again["service_cost"] == first["service_cost"]
                    assert again.get("cached") is None  # not B's response cache
                    stats_b = cb.stats()
                    # B's planner ran, but the shared artifacts were hits.
                    assert stats_b["counters"]["plan.cache.tours.hit"] >= 1

    def test_both_servers_can_write_distinct_geometries(self, net, tmp_path):
        other = network_to_dict(build_paper_network(n=16, q=2, seed=32))
        root = tmp_path / "store"
        with ServerThread(_config(root)) as a, ServerThread(_config(root)) as b:
            with ServeClient(*a.address) as ca, ServeClient(*b.address) as cb:
                pa = ca.plan(net, 300.0)
                pb = cb.plan(other, 300.0)
                # Cross-check: each server serves the *other's* geometry
                # from the shared store without recomputing tours.
                assert cb.plan(net, 300.0)["plan"] == pa["plan"]
                assert ca.plan(other, 300.0)["plan"] == pb["plan"]
                assert ca.stats()["counters"]["plan.cache.tours.hit"] >= 1
                assert cb.stats()["counters"]["plan.cache.tours.hit"] >= 1
        store = PlanArtifactStore(root)
        assert store.n_entries >= 2
        assert store.stats()["quarantined"] == 0


class TestQuarantineSharedRoot:
    def test_quarantine_respected_by_every_store_client(self, net_model, tmp_path):
        root = tmp_path / "store"
        a = PlanArtifactStore(root)
        b = PlanArtifactStore(root)  # second client of the same root
        cov = frozenset({0, 1, 2})
        tours = plan_tours(net_model, cov)
        a.put_tours("fp", cov, False, tours)
        assert b.get_tours("fp", cov, False) == tours

        (entry,) = sorted(a._objects.rglob("*.json"))
        blob = bytearray(entry.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        entry.write_bytes(bytes(blob))

        # Whichever client reads first quarantines; the other sees a miss —
        # the corrupt entry is never served by anyone.
        assert b.get_tours("fp", cov, False) is None
        assert a.get_tours("fp", cov, False) is None
        assert a.stats()["quarantined"] == 1
        assert b.stats()["quarantined"] == 1

        # Recompute-and-republish through either client heals the key.
        b.put_tours("fp", cov, False, tours)
        assert a.get_tours("fp", cov, False) == tours
