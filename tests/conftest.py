"""Shared fixtures.

Small, fast instances for unit tests; medium paper-like instances (session
scoped, built once) for integration tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.builder import NetworkBuilder, build_paper_network
from repro.network.cycles import LinearCycleDistribution


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_network():
    """Deterministic 6-sensor / 2-depot network with hand-picked cycles.

    Geometry (100 x 100 area)::

        s0(10,10)  s1(20,10)  s2(90,90)  s3(80,90)  s4(50,50)  s5(10,90)
        d0 = base station at (50, 50) offset -> (45, 50); d1 at (85, 85)

    Cycles: [1, 2, 4, 8, 2, 4] — exact powers of two for crisp class maths.
    """
    sensors = [Point(10, 10), Point(20, 10), Point(90, 90),
               Point(80, 90), Point(50, 50), Point(10, 90)]
    return (NetworkBuilder()
            .with_area(Rect.square(100.0))
            .with_sensors_at(sensors)
            .with_base_station_at(Point(50, 50))
            .with_depots_at([Point(45, 50), Point(85, 85)])
            .with_cycles([1.0, 2.0, 4.0, 8.0, 2.0, 4.0])
            .build())


@pytest.fixture(scope="session")
def paper_network_small():
    """One 60-sensor paper-style topology (session-cached for speed)."""
    return build_paper_network(n=60, q=5, seed=2014)


@pytest.fixture(scope="session")
def paper_network_random_cycles():
    """60-sensor topology with the random cycle distribution."""
    from repro.network.cycles import RandomCycleDistribution

    return build_paper_network(
        n=60, q=5, distribution=RandomCycleDistribution(), seed=2014)


@pytest.fixture
def linear_distribution() -> LinearCycleDistribution:
    return LinearCycleDistribution(tau_min=1.0, tau_max=50.0, sigma=2.0)
