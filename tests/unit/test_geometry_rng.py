"""Unit tests for :mod:`repro.geometry.rng`."""

import numpy as np
import pytest

from repro.geometry.rng import make_rng, spawn


class TestMakeRng:
    def test_from_int_is_deterministic(self):
        assert make_rng(42).integers(1 << 30) == make_rng(42).integers(1 << 30)

    def test_passes_through_generator(self):
        g = np.random.default_rng(1)
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_streams(self):
        kids = spawn(make_rng(5), 3)
        draws = [k.integers(1 << 30, size=4).tolist() for k in kids]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_is_reproducible(self):
        a = [g.integers(1 << 30) for g in spawn(make_rng(9), 4)]
        b = [g.integers(1 << 30) for g in spawn(make_rng(9), 4)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn(make_rng(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)

    def test_spawn_advances_parent_state(self):
        # Successive spawns from the same parent must not repeat children.
        g = make_rng(3)
        first = spawn(g, 1)[0].integers(1 << 30)
        second = spawn(g, 1)[0].integers(1 << 30)
        assert first != second
