"""Unit tests for :mod:`repro.adaptive.patch`."""

import numpy as np
import pytest

from repro.adaptive.patch import build_patch
from repro.core.quantize import quantize_cycles
from repro.errors import ScheduleError


@pytest.fixture
def quant(tiny_network):
    """Quantisation of the tiny network's cycles [1,2,4,8,2,4]."""
    return quantize_cycles(tiny_network.cycles)


class TestNoUrgentSensors:
    def test_all_lifetimes_sufficient(self, tiny_network, quant):
        # Everyone survives to their assigned cycle: no patch needed.
        lifetimes = quant.assigned.copy()
        patch = build_patch(tiny_network, quant, lifetimes)
        assert patch.urgent == frozenset()
        assert all(t is None for t in patch.tours)
        assert patch.sets[0] == frozenset()

    def test_base_sets_match_quantisation(self, tiny_network, quant):
        patch = build_patch(tiny_network, quant, quant.assigned.copy())
        for j in range(1, quant.block_size + 1):
            assert patch.sets[j] == frozenset(int(s) for s in quant.sensors_due_at(j))


class TestImmediateCharging:
    def test_nearly_dead_sensor_goes_to_c0(self, tiny_network, quant):
        lifetimes = quant.assigned.copy()
        lifetimes[3] = 0.1  # sensor 3 (tau'=8) about to die
        patch = build_patch(tiny_network, quant, lifetimes)
        assert 3 in patch.urgent
        assert 3 in patch.sets[0]
        assert patch.tours[0] is not None
        covered = set().union(*(t.visited() for t in patch.tours[0]))
        assert 3 in covered

    def test_zero_lifetime_allowed(self, tiny_network, quant):
        lifetimes = quant.assigned.copy()
        lifetimes[2] = 0.0
        patch = build_patch(tiny_network, quant, lifetimes)
        assert 2 in patch.sets[0]


class TestClassedAttachment:
    def test_sensor_attached_within_lifetime(self, tiny_network, quant):
        # Sensor 3 has tau' = 8 but only 2.5 lifetime: it must be charged by
        # scheduling j <= 2 (time 2 * tau1 = 2 <= 2.5), in either tie mode.
        lifetimes = quant.assigned.copy()
        lifetimes[3] = 2.5
        for mode in ("immediate", "defer"):
            patch = build_patch(tiny_network, quant, lifetimes, tie_break=mode)
            assert 3 in patch.urgent
            charged_js = [j for j in range(quant.block_size + 1)
                          if 3 in patch.sets[j]]
            assert min(charged_js) <= 2

    def test_defer_avoids_spurious_immediate_dispatch(self, tiny_network, quant):
        # With the deferring tie-break and an empty C'_0, the patch must not
        # invent an immediate dispatch for a sensor that can wait.
        lifetimes = quant.assigned.copy()
        lifetimes[3] = 2.5
        patch = build_patch(tiny_network, quant, lifetimes, tie_break="defer")
        assert patch.sets[0] == frozenset()

    def test_unknown_tie_break_raises(self, tiny_network, quant):
        with pytest.raises(ScheduleError):
            build_patch(tiny_network, quant, quant.assigned.copy(),
                        tie_break="random")

    def test_generalised_base_patch(self, tiny_network):
        """The patch respects a non-binary quantisation base: a sensor with
        lifetime in [3 tau1, 9 tau1) may join schedulings 0..3 only."""
        quant3 = quantize_cycles(
            np.array([1.0, 2.0, 9.0, 27.0, 2.0, 4.0]), base=3)
        assert quant3.block_size == 27
        lifetimes = quant3.assigned.copy()
        # Sensor 3 (assigned 27) caught with lifetime 4: base-3 class k=1
        # ([3, 9)), so it must be charged by scheduling j <= 3.
        lifetimes[3] = 4.0
        for mode in ("immediate", "defer"):
            patch = build_patch(tiny_network, quant3, lifetimes, tie_break=mode)
            assert 3 in patch.urgent
            js = [j for j in range(quant3.block_size + 1)
                  if 3 in patch.sets[j]]
            assert min(js) <= 3  # within the base-3 class-1 window
        # Deferring must avoid the spurious immediate dispatch.
        assert min(j for j in range(quant3.block_size + 1)
                   if 3 in patch.sets[j]) >= 1

    def test_sensor_with_exact_tau1_lifetime_in_class0(self, tiny_network, quant):
        lifetimes = quant.assigned.copy()
        lifetimes[3] = 1.0  # exactly tau1: class V^a_0 -> scheduling 0 or 1
        patch = build_patch(tiny_network, quant, lifetimes)
        charged_js = [j for j in range(quant.block_size + 1) if 3 in patch.sets[j]]
        assert min(charged_js) <= 1

    def test_only_changed_schedulings_retoured(self, tiny_network, quant):
        lifetimes = quant.assigned.copy()
        lifetimes[3] = 2.5
        patch = build_patch(tiny_network, quant, lifetimes)
        changed = {j for j in range(quant.block_size + 1)
                   if patch.tours[j] is not None}
        # Exactly the schedulings whose sets grew (no immediate C'_0 here).
        for j in changed:
            assert j == 0 or patch.sets[j] != frozenset(
                int(s) for s in quant.sensors_due_at(j))
        assert patch.n_patched_schedulings == len(changed)

    def test_patched_tours_cover_their_sets(self, tiny_network, quant):
        lifetimes = quant.assigned * 0.6  # everyone urgent
        patch = build_patch(tiny_network, quant, lifetimes)
        for j in range(quant.block_size + 1):
            if patch.tours[j] is not None:
                covered = set().union(*(t.visited() for t in patch.tours[j]))
                assert patch.sets[j] <= covered


class TestValidation:
    def test_wrong_shape_raises(self, tiny_network, quant):
        with pytest.raises(ScheduleError):
            build_patch(tiny_network, quant, np.ones(3))

    def test_negative_lifetime_raises(self, tiny_network, quant):
        bad = quant.assigned.copy()
        bad[0] = -0.5
        with pytest.raises(ScheduleError):
            build_patch(tiny_network, quant, bad)


class TestIncrementalRetouring:
    def _warm_cache(self, tiny_network):
        from repro.core.mintotal import min_total_distance
        from repro.plan.cache import PlanArtifactCache

        cache = PlanArtifactCache()
        min_total_distance(tiny_network, 64.0, cache=cache)
        return cache

    def test_incremental_matches_full_rebuild(self, tiny_network, quant):
        # Urgent-but-not-immediate sensors force grown schedulings, the
        # exact situation the incremental forest extension accelerates.
        lifetimes = quant.assigned.copy()
        lifetimes[2] *= 0.6
        lifetimes[3] *= 0.6
        for refine in (False, True):
            for tie_break in ("immediate", "defer"):
                inc = build_patch(tiny_network, quant, lifetimes,
                                  refine=refine, tie_break=tie_break,
                                  cache=self._warm_cache(tiny_network),
                                  incremental=True)
                full = build_patch(tiny_network, quant, lifetimes,
                                   refine=refine, tie_break=tie_break,
                                   cache=self._warm_cache(tiny_network),
                                   incremental=False)
                assert inc.sets == full.sets
                assert inc.tours == full.tours
                assert inc.urgent == full.urgent

    def test_incremental_path_actually_used(self, tiny_network, quant):
        from repro.obs.instrument import Instrumentation

        # "defer" attaches depot-tied sensors to the *latest* feasible
        # scheduling, so later (j > 0) sets grow — the case the forest
        # extension serves (C'_0 is always built from scratch).
        lifetimes = quant.assigned.copy()
        lifetimes[2] *= 0.6
        lifetimes[3] *= 0.6
        obs = Instrumentation()
        build_patch(tiny_network, quant, lifetimes, tie_break="defer",
                    cache=self._warm_cache(tiny_network),
                    incremental=True, obs=obs)
        counters = obs.snapshot().counters
        assert counters.get("patch.msf.incremental", 0) >= 1

    def test_without_cache_falls_back_to_full(self, tiny_network, quant):
        from repro.obs.instrument import Instrumentation

        lifetimes = quant.assigned.copy()
        lifetimes[2] *= 0.6
        obs = Instrumentation()
        patch = build_patch(tiny_network, quant, lifetimes, cache=None,
                            incremental=True, obs=obs)
        counters = obs.snapshot().counters
        assert counters.get("patch.msf.incremental", 0) == 0
        assert counters.get("patch.msf.full", 0) == patch.n_patched_schedulings
