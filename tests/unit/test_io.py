"""Unit tests for :mod:`repro.io`."""

import numpy as np
import pytest

from repro.core.cost import service_cost
from repro.core.mintotal import min_total_distance
from repro.errors import ReproError
from repro.io.files import load_json, save_json
from repro.io.network_json import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.io.plan_json import load_plan, plan_from_dict, plan_to_dict, save_plan


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        p = save_json(tmp_path / "x.json", "thing", {"a": 1})
        assert load_json(p, "thing") == {"a": 1}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="no such file"):
            load_json(tmp_path / "nope.json", "thing")

    def test_wrong_kind(self, tmp_path):
        p = save_json(tmp_path / "x.json", "thing", {})
        with pytest.raises(ReproError, match="expected"):
            load_json(p, "other")

    def test_wrong_version(self, tmp_path):
        import json

        p = tmp_path / "x.json"
        p.write_text(json.dumps({"kind": "thing", "version": 99, "data": {}}))
        with pytest.raises(ReproError, match="version"):
            load_json(p, "thing")

    def test_not_an_envelope(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text("[1, 2, 3]")
        with pytest.raises(ReproError, match="envelope"):
            load_json(p, "thing")

    def test_creates_parent_dirs(self, tmp_path):
        p = save_json(tmp_path / "a" / "b" / "x.json", "thing", {})
        assert p.exists()


class TestNetworkRoundTrip:
    def test_exact_round_trip(self, paper_network_small, tmp_path):
        net = paper_network_small
        p = save_network(net, tmp_path / "net.json")
        loaded = load_network(p)
        assert loaded.n == net.n and loaded.q == net.q
        np.testing.assert_array_equal(loaded.coordinates, net.coordinates)
        np.testing.assert_array_equal(loaded.cycles, net.cycles)
        np.testing.assert_array_equal(loaded.batteries, net.batteries)
        assert loaded.base_station.position == net.base_station.position
        assert loaded.area == net.area

    def test_distances_identical_after_reload(self, tiny_network, tmp_path):
        p = save_network(tiny_network, tmp_path / "net.json")
        loaded = load_network(p)
        np.testing.assert_array_equal(loaded.dist, tiny_network.dist)

    def test_malformed_dict_raises(self):
        with pytest.raises(ReproError, match="malformed"):
            network_from_dict({"area": [0, 0, 1, 1]})

    def test_dict_is_json_clean(self, tiny_network):
        import json

        text = json.dumps(network_to_dict(tiny_network))
        assert "sensors" in text


class TestPlanRoundTrip:
    def test_cost_preserving_round_trip(self, tiny_network, tmp_path):
        res = min_total_distance(tiny_network, horizon=16.0)
        p = save_plan(res.plan, tmp_path / "plan.json")
        loaded = load_plan(p)
        assert len(loaded) == len(res.plan)
        np.testing.assert_array_equal(loaded.times, res.plan.times)
        assert service_cost(tiny_network.dist, loaded) == pytest.approx(
            service_cost(tiny_network.dist, res.plan))

    def test_sharing_restored(self, tiny_network, tmp_path):
        res = min_total_distance(tiny_network, horizon=32.0)
        loaded = load_plan(save_plan(res.plan, tmp_path / "plan.json"))
        bs = res.quantization.block_size
        # Schedulings one block apart must share the same tours tuple object.
        assert loaded[0].tours is loaded[bs].tours

    def test_deduplication_shrinks_encoding(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=64.0)
        data = plan_to_dict(res.plan)
        assert len(data["tour_sets"]) < len(data["schedulings"])

    def test_charge_semantics_survive(self, tiny_network, tmp_path):
        res = min_total_distance(tiny_network, horizon=16.0)
        loaded = load_plan(save_plan(res.plan, tmp_path / "plan.json"))
        for i in range(tiny_network.n):
            assert loaded.charge_times_of(i) == res.plan.charge_times_of(i)

    def test_reloaded_plan_simulates_identically(self, tiny_network, tmp_path):
        from repro.sim.engine import simulate
        from repro.sim.policies import PlannedPolicy
        from repro.sim.workload import FixedWorkload

        res = min_total_distance(tiny_network, horizon=16.0)
        loaded = load_plan(save_plan(res.plan, tmp_path / "plan.json"))
        wl = FixedWorkload.from_network(tiny_network)
        a = simulate(tiny_network, PlannedPolicy(res.plan), wl, 16.0)
        b = simulate(tiny_network, PlannedPolicy(loaded), wl, 16.0)
        assert a.metrics.service_cost == pytest.approx(b.metrics.service_cost)
        assert b.metrics.perpetual

    def test_malformed_plan_raises(self):
        with pytest.raises(ReproError, match="malformed"):
            plan_from_dict({"horizon": 10.0, "tour_sets": [], "schedulings": [
                {"time": 1.0, "tours": 5}]})
