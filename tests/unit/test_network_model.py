"""Unit tests for :mod:`repro.network.model`."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.depot import BaseStation, Depot
from repro.network.model import SensorNetwork
from repro.network.sensor import Sensor


def _net():
    sensors = tuple(Sensor(id=i, position=Point(10 * i, 0), cycle=float(i + 1))
                    for i in range(4))
    depots = (Depot(id=0, position=Point(0, 50)), Depot(id=1, position=Point(30, 50)))
    return SensorNetwork(sensors=sensors, depots=depots,
                         base_station=BaseStation(Point(15, 0)),
                         area=Rect.square(100.0))


class TestIndexing:
    def test_sizes(self):
        net = _net()
        assert (net.n, net.q, net.n_nodes) == (4, 2, 6)

    def test_depot_index_convention(self):
        net = _net()
        assert net.depot_index(0) == 4
        assert net.depot_index(1) == 5
        np.testing.assert_array_equal(net.depot_indices, [4, 5])
        np.testing.assert_array_equal(net.sensor_indices, [0, 1, 2, 3])

    def test_is_depot(self):
        net = _net()
        assert not net.is_depot(3)
        assert net.is_depot(4) and net.is_depot(5)

    def test_depot_index_out_of_range(self):
        with pytest.raises(NetworkModelError):
            _net().depot_index(2)


class TestGeometry:
    def test_coordinates_order(self):
        net = _net()
        assert net.coordinates.shape == (6, 2)
        np.testing.assert_array_equal(net.coordinates[0], [0, 0])
        np.testing.assert_array_equal(net.coordinates[4], [0, 50])

    def test_dist_is_metric_and_readonly(self):
        net = _net()
        d = net.dist
        assert d.shape == (6, 6)
        assert d[0, 1] == pytest.approx(10.0)
        with pytest.raises(ValueError):
            d[0, 1] = 99.0

    def test_base_distances(self):
        net = _net()
        assert net.base_distances[0] == pytest.approx(15.0)
        assert net.base_distances.shape == (4,)


class TestCycles:
    def test_arrays(self):
        net = _net()
        np.testing.assert_array_equal(net.cycles, [1, 2, 3, 4])
        np.testing.assert_array_equal(net.batteries, np.ones(4))
        np.testing.assert_allclose(net.rates, [1, 0.5, 1 / 3, 0.25])
        assert net.tau_min == 1.0 and net.tau_max == 4.0

    def test_with_cycles_replaces(self):
        net = _net()
        net2 = net.with_cycles([5, 6, 7, 8])
        np.testing.assert_array_equal(net2.cycles, [5, 6, 7, 8])
        np.testing.assert_array_equal(net.cycles, [1, 2, 3, 4])  # original
        np.testing.assert_array_equal(net2.coordinates, net.coordinates)

    def test_with_cycles_wrong_shape(self):
        with pytest.raises(NetworkModelError):
            _net().with_cycles([1.0, 2.0])


class TestInducedNodes:
    def test_with_depots(self):
        net = _net()
        np.testing.assert_array_equal(net.induced_nodes([2, 0]), [0, 2, 4, 5])

    def test_without_depots(self):
        net = _net()
        np.testing.assert_array_equal(
            net.induced_nodes([2, 0], include_depots=False), [0, 2])

    def test_deduplicates(self):
        net = _net()
        np.testing.assert_array_equal(
            net.induced_nodes([1, 1, 1], include_depots=False), [1])

    def test_rejects_out_of_range(self):
        with pytest.raises(NetworkModelError):
            _net().induced_nodes([4])  # 4 is a depot index, not a sensor id


class TestValidation:
    def test_rejects_bad_sensor_ids(self):
        sensors = (Sensor(id=1, position=Point(0, 0), cycle=1.0),)
        with pytest.raises(NetworkModelError, match="ids must be"):
            SensorNetwork(sensors=sensors,
                          depots=(Depot(id=0, position=Point(1, 1)),),
                          base_station=BaseStation(Point(0, 0)))

    def test_rejects_empty(self):
        with pytest.raises(NetworkModelError):
            SensorNetwork(sensors=(), depots=(Depot(id=0, position=Point(0, 0)),),
                          base_station=BaseStation(Point(0, 0)))


class TestMembershipMask:
    def test_all_online_by_default(self):
        mask = _net().membership_mask()
        assert mask.shape == (4,) and mask.dtype == bool and mask.all()

    def test_offline_ids_cleared(self):
        mask = _net().membership_mask(offline=[1, 3])
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_out_of_range_rejected(self):
        net = _net()
        with pytest.raises(NetworkModelError):
            net.membership_mask(offline=[4])
        with pytest.raises(NetworkModelError):
            net.membership_mask(offline=[-1])
