"""Unit tests for :mod:`repro.tsp.construct`."""

import numpy as np
import pytest

from repro.errors import TourError
from repro.geometry.distance import distance_matrix
from repro.graphs.mst import mst_weight, prim_mst
from repro.tsp.construct import (
    cheapest_insertion_tour,
    mst_doubling_tour,
    nearest_neighbor_tour,
)

CONSTRUCTORS = [mst_doubling_tour, nearest_neighbor_tour, cheapest_insertion_tour]


@pytest.fixture
def cloud(rng):
    coords = rng.uniform(0, 100, size=(25, 2))
    return distance_matrix(coords)


class TestCommonBehaviour:
    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_covers_all_nodes(self, build, cloud):
        t = build(cloud, 0, list(range(1, 25)))
        assert t.visited() == set(range(25))
        assert t.order[0] == 0

    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_depot_only(self, build, cloud):
        t = build(cloud, 3, [])
        assert t.is_empty and t.depot == 3

    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_single_stop(self, build, cloud):
        t = build(cloud, 0, [7])
        assert t.order == (0, 7)

    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_depot_in_nodes_is_tolerated(self, build, cloud):
        t = build(cloud, 0, [0, 1, 2])
        assert t.visited() == {0, 1, 2}

    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_out_of_range_node_raises(self, build, cloud):
        with pytest.raises(TourError):
            build(cloud, 0, [99])

    @pytest.mark.parametrize("build", CONSTRUCTORS)
    def test_duplicate_nodes_raise(self, build, cloud):
        with pytest.raises(TourError):
            build(cloud, 0, [1, 1])


class TestMstDoubling:
    def test_within_twice_mst(self, cloud):
        nodes = list(range(1, 25))
        t = mst_doubling_tour(cloud, 0, nodes)
        sub = cloud[np.ix_(range(25), range(25))]
        mst_w = mst_weight(sub, prim_mst(sub))
        assert t.cost(cloud) <= 2 * mst_w + 1e-9

    def test_collinear_points_optimal(self):
        # On a line the doubled-MST tour is exactly optimal (out and back).
        coords = np.array([[float(i), 0.0] for i in range(6)])
        d = distance_matrix(coords)
        t = mst_doubling_tour(d, 0, [1, 2, 3, 4, 5])
        assert t.cost(d) == pytest.approx(10.0)

    def test_deterministic(self, cloud):
        a = mst_doubling_tour(cloud, 0, list(range(1, 25)))
        b = mst_doubling_tour(cloud, 0, list(range(1, 25)))
        assert a.order == b.order


class TestNearestNeighbor:
    def test_greedy_first_hop(self, rng):
        coords = np.array([[0, 0], [1, 0], [10, 0], [11, 0]], dtype=float)
        d = distance_matrix(coords)
        t = nearest_neighbor_tour(d, 0, [1, 2, 3])
        assert t.order == (0, 1, 2, 3)


class TestCheapestInsertion:
    def test_reasonable_on_square(self):
        coords = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        d = distance_matrix(coords)
        t = cheapest_insertion_tour(d, 0, [1, 2, 3])
        assert t.cost(d) == pytest.approx(4.0)  # the optimal square tour

    def test_not_worse_than_twice_mst(self, cloud):
        nodes = list(range(1, 25))
        t = cheapest_insertion_tour(cloud, 0, nodes)
        mst_w = mst_weight(cloud, prim_mst(cloud))
        assert t.cost(cloud) <= 2 * mst_w + 1e-9
