"""Unit tests for :mod:`repro.network.cycles`."""

import numpy as np
import pytest

from repro.errors import ConfigError, NetworkModelError
from repro.network.cycles import (
    CycleDistribution,
    ExplicitCycles,
    LinearCycleDistribution,
    RandomCycleDistribution,
)


@pytest.fixture
def distances(rng):
    return rng.uniform(0, 700, size=200)


class TestLinearDistribution:
    def test_mean_cycles_endpoints(self):
        dist = LinearCycleDistribution(tau_min=1, tau_max=50, sigma=0)
        d = np.array([0.0, 350.0, 700.0])
        bar = dist.mean_cycles(d)
        assert bar[0] == pytest.approx(1.0)
        assert bar[1] == pytest.approx(25.5)
        assert bar[2] == pytest.approx(50.0)

    def test_min_max_normalisation(self):
        # The *nearest* sensor gets tau_min even when it is not at distance 0.
        dist = LinearCycleDistribution(tau_min=1, tau_max=50, sigma=0)
        bar = dist.mean_cycles(np.array([100.0, 400.0, 700.0]))
        assert bar[0] == pytest.approx(1.0)
        assert bar[-1] == pytest.approx(50.0)

    def test_sigma_zero_is_deterministic(self, distances):
        dist = LinearCycleDistribution(sigma=0)
        a = dist.sample(distances, np.random.default_rng(1))
        b = dist.sample(distances, np.random.default_rng(2))
        np.testing.assert_array_equal(a, b)

    def test_jitter_within_band(self, distances):
        dist = LinearCycleDistribution(tau_min=1, tau_max=50, sigma=2)
        tau = dist.sample(distances, np.random.default_rng(0))
        bar = dist.mean_cycles(distances)
        assert np.all(tau >= np.maximum(bar - 2, 1.0) - 1e-12)
        assert np.all(tau <= bar + 2 + 1e-12)

    def test_clipped_at_tau_min(self):
        dist = LinearCycleDistribution(tau_min=1, tau_max=50, sigma=50)
        tau = dist.sample(np.linspace(0, 700, 500), np.random.default_rng(0))
        assert tau.min() >= 1.0

    def test_custom_clip_min(self):
        dist = LinearCycleDistribution(tau_min=1, tau_max=50, sigma=50, clip_min=0.5)
        tau = dist.sample(np.linspace(0, 700, 2000), np.random.default_rng(0))
        assert tau.min() >= 0.5
        assert tau.min() < 1.0  # the looser clip is actually exercised

    def test_equal_distances_all_get_tau_min(self):
        dist = LinearCycleDistribution(tau_min=2, tau_max=50, sigma=0)
        bar = dist.mean_cycles(np.full(5, 300.0))
        np.testing.assert_array_equal(bar, np.full(5, 2.0))

    @pytest.mark.parametrize("kwargs", [
        {"tau_min": 0.0}, {"tau_min": 5.0, "tau_max": 1.0},
        {"sigma": -1.0}, {"clip_min": 0.0},
    ])
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ConfigError):
            LinearCycleDistribution(**kwargs)

    def test_empty_distances_raise(self):
        with pytest.raises(NetworkModelError):
            LinearCycleDistribution().mean_cycles(np.array([]))


class TestRandomDistribution:
    def test_within_bounds(self, distances):
        tau = RandomCycleDistribution(1, 50).sample(distances, np.random.default_rng(0))
        assert tau.shape == distances.shape
        assert tau.min() >= 1.0 and tau.max() <= 50.0

    def test_independent_of_distance(self):
        # Same RNG, different distances -> identical draws.
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        dist = RandomCycleDistribution(1, 50)
        a = dist.sample(np.zeros(50), rng_a)
        b = dist.sample(np.full(50, 700.0), rng_b)
        np.testing.assert_array_equal(a, b)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigError):
            RandomCycleDistribution(10, 5)


class TestExplicitCycles:
    def test_returns_values(self):
        dist = ExplicitCycles(values=(1.0, 2.0, 3.0))
        np.testing.assert_array_equal(
            dist.sample(np.zeros(3), np.random.default_rng(0)), [1, 2, 3])

    def test_size_mismatch_raises(self):
        with pytest.raises(NetworkModelError):
            ExplicitCycles(values=(1.0,)).sample(np.zeros(3), np.random.default_rng(0))


class TestProtocol:
    @pytest.mark.parametrize("dist", [
        LinearCycleDistribution(), RandomCycleDistribution(),
        ExplicitCycles(values=(1.0,)),
    ])
    def test_all_satisfy_protocol(self, dist):
        assert isinstance(dist, CycleDistribution)
