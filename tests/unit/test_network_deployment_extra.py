"""Unit tests for the clustered/grid deployment generators."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.network.deployment import deploy_clustered, deploy_grid


class TestDeployClustered:
    def test_count_and_containment(self):
        area = Rect.square(1000.0)
        pts = deploy_clustered(100, area, rng=1)
        assert len(pts) == 100
        assert all(area.contains(p) for p in pts)

    def test_deterministic(self):
        area = Rect.square(1000.0)
        a = deploy_clustered(50, area, rng=2)
        b = deploy_clustered(50, area, rng=2)
        assert a == b

    def test_clusters_are_tighter_than_uniform(self):
        """The mean nearest-neighbour distance of a clustered deployment is
        clearly below a uniform one's."""
        from repro.geometry.distance import distance_matrix
        from repro.geometry.point import points_to_array
        from repro.network.deployment import deploy_sensors

        area = Rect.square(1000.0)

        def mean_nnd(points):
            d = distance_matrix(points_to_array(points))
            np.fill_diagonal(d, np.inf)
            return float(d.min(axis=1).mean())

        clustered = mean_nnd(deploy_clustered(150, area, n_clusters=3,
                                              spread=50.0, rng=3))
        uniform = mean_nnd(deploy_sensors(150, area, rng=3))
        assert clustered < uniform * 0.7

    @pytest.mark.parametrize("kwargs", [
        {"n": 0}, {"n": 10, "n_clusters": 0}, {"n": 10, "spread": 0.0},
    ])
    def test_rejects_bad_params(self, kwargs):
        n = kwargs.pop("n")
        with pytest.raises(NetworkModelError):
            deploy_clustered(n, Rect.square(100.0), **kwargs)


class TestDeployGrid:
    def test_count_and_containment(self):
        area = Rect.square(100.0)
        pts = deploy_grid(10, area)
        assert len(pts) == 10
        assert all(area.contains(p) for p in pts)

    def test_perfect_square_is_regular(self):
        pts = deploy_grid(9, Rect.square(90.0))
        xs = sorted({round(p.x, 6) for p in pts})
        ys = sorted({round(p.y, 6) for p in pts})
        assert xs == [15.0, 45.0, 75.0]
        assert ys == [15.0, 45.0, 75.0]

    def test_zero_jitter_deterministic_without_rng(self):
        assert deploy_grid(7, Rect.square(10.0)) == deploy_grid(7, Rect.square(10.0))

    def test_jitter_moves_points_but_stays_inside(self):
        area = Rect.square(100.0)
        plain = deploy_grid(16, area)
        moved = deploy_grid(16, area, jitter=0.4, rng=5)
        assert plain != moved
        assert all(area.contains(p) for p in moved)

    @pytest.mark.parametrize("kwargs", [{"n": 0}, {"n": 4, "jitter": 0.6},
                                        {"n": 4, "jitter": -0.1}])
    def test_rejects_bad_params(self, kwargs):
        n = kwargs.pop("n")
        with pytest.raises(NetworkModelError):
            deploy_grid(n, Rect.square(10.0), **kwargs)

    def test_build_paper_network_deployment_param(self):
        from repro.errors import NetworkModelError
        from repro.network.builder import build_paper_network

        nets = {d: build_paper_network(n=30, q=3, seed=5, deployment=d)
                for d in ("uniform", "clustered", "grid")}
        coords = [tuple(map(tuple, v.coordinates[:30])) for v in nets.values()]
        assert len(set(coords)) == 3  # genuinely different layouts
        with pytest.raises(NetworkModelError, match="deployment"):
            build_paper_network(n=10, seed=1, deployment="orbital")

    def test_experiment_config_deployment_validation(self):
        from repro.errors import ConfigError
        from repro.experiments.config import ExperimentConfig

        ExperimentConfig(deployment="clustered")  # ok
        with pytest.raises(ConfigError, match="deployment"):
            ExperimentConfig(deployment="orbital")

    def test_pipeline_with_grid_deployment(self):
        """A grid deployment runs through the full planning pipeline."""
        from repro.core.feasibility import check_feasibility
        from repro.core.mintotal import min_total_distance
        from repro.network.builder import NetworkBuilder
        from repro.network.cycles import LinearCycleDistribution

        area = Rect.square(1000.0)
        net = (NetworkBuilder()
               .with_area(area)
               .with_sensors_at(deploy_grid(36, area, jitter=0.2, rng=1))
               .with_base_station_at_center()
               .with_random_depots(3, seed=1)
               .with_cycles_from(LinearCycleDistribution(), seed=1)
               .build())
        res = min_total_distance(net, 100.0)
        assert check_feasibility(res.plan, net.cycles).feasible
