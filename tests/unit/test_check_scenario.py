"""Unit tests for repro.check.scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.scenario import SCENARIO_KIND, Scenario, random_scenario
from repro.errors import CheckError
from repro.io.network_json import network_to_dict


@pytest.fixture
def scenario(tiny_network) -> Scenario:
    return Scenario(name="t", network_doc=network_to_dict(tiny_network),
                    horizon=20.0)


class TestScenario:
    def test_accessors(self, scenario, tiny_network):
        assert scenario.n_sensors == tiny_network.n
        assert scenario.n_depots == tiny_network.q
        np.testing.assert_allclose(scenario.cycles, tiny_network.cycles)

    def test_build_network_round_trips(self, scenario, tiny_network):
        net = scenario.build_network()
        assert net.n == tiny_network.n
        np.testing.assert_allclose(net.dist, tiny_network.dist)

    def test_rejects_non_positive_horizon(self, tiny_network):
        with pytest.raises(CheckError):
            Scenario(name="bad", network_doc=network_to_dict(tiny_network),
                     horizon=0.0)

    def test_dict_round_trip(self, scenario):
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(CheckError):
            Scenario.from_dict({"name": "x"})  # no network / horizon

    def test_save_load_envelope(self, scenario, tmp_path):
        path = scenario.save(tmp_path / "s.json")
        assert Scenario.load(path) == scenario
        import json

        assert json.loads(path.read_text())["kind"] == SCENARIO_KIND

    def test_transforms_rename_and_replace(self, scenario):
        shorter = scenario.with_horizon(10.0, "half")
        assert shorter.horizon == 10.0
        assert shorter.name == "t~half"
        doc = dict(scenario.network_doc)
        doc["sensors"] = doc["sensors"][:-1]
        smaller = scenario.with_doc(doc, "drop")
        assert smaller.n_sensors == scenario.n_sensors - 1
        assert scenario.n_sensors == 6  # original untouched

    def test_stable_digest_is_content_addressed(self, scenario):
        # Same content => same digest (even via a dict round trip); any
        # field change => different digest. (Python's hash(str) is salted
        # per process, which is exactly what this must not be.)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone.stable_digest() == scenario.stable_digest()
        assert hash(clone) == hash(scenario)
        assert (scenario.with_horizon(11.0, "h").stable_digest()
                != scenario.stable_digest())


class TestRandomScenario:
    def test_deterministic_in_the_generator(self):
        a = random_scenario(np.random.default_rng([7, 0]), "a")
        b = random_scenario(np.random.default_rng([7, 0]), "a")
        assert a == b
        c = random_scenario(np.random.default_rng([7, 1]), "a")
        assert c != a

    def test_generated_instances_are_valid_and_small(self):
        for i in range(20):
            s = random_scenario(np.random.default_rng([3, i]), f"g{i}")
            assert 3 <= s.n_sensors <= 10
            assert 1 <= s.n_depots <= 3
            assert s.base in (2, 3)
            # Horizon leaves room for >= 2 blocks (the bound check's gate).
            assert s.horizon >= 2.0 * s.cycles.max()
            s.build_network()  # must not raise
