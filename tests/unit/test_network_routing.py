"""Unit tests for :mod:`repro.network.routing`."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.network.cycles import RoutingCycleDistribution
from repro.network.routing import CommunicationGraph, RoutingTree, relay_loads


@pytest.fixture
def line_graph():
    """Sensors at x = 0, 10, 20; base station at x = 30; range 15.

    Forced multihop: 0 -> 1 -> 2 -> BS.
    """
    coords = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0], [30.0, 0.0]])
    return CommunicationGraph(coords=coords, comm_range=15.0)


class TestCommunicationGraph:
    def test_edges_respect_range(self, line_graph):
        d = line_graph.dist
        assert np.isfinite(d[0, 1])
        assert not np.isfinite(d[0, 2])  # 20m > 15m range

    def test_connectivity(self, line_graph):
        assert line_graph.is_connected()

    def test_disconnected_detection(self):
        coords = np.array([[0.0, 0.0], [100.0, 0.0]])
        g = CommunicationGraph(coords=coords, comm_range=10.0)
        assert not g.is_connected()

    def test_base_index(self, line_graph):
        assert line_graph.base_index == 3
        assert line_graph.n_sensors == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(NetworkModelError):
            CommunicationGraph(coords=np.zeros((1, 2)), comm_range=1.0)
        with pytest.raises(NetworkModelError):
            CommunicationGraph(coords=np.zeros((3, 2)), comm_range=0.0)


class TestRoutingTree:
    def test_chain_parents(self, line_graph):
        tree = RoutingTree.shortest_path(line_graph, metric="hops")
        assert tree.parent[2] == 3  # sensor 2 -> BS
        assert tree.parent[1] == 2
        assert tree.parent[0] == 1

    def test_hop_counts(self, line_graph):
        tree = RoutingTree.shortest_path(line_graph, metric="hops")
        assert [tree.hops_of(i) for i in range(3)] == [3, 2, 1]

    def test_distance_metric_costs(self, line_graph):
        tree = RoutingTree.shortest_path(line_graph, metric="distance")
        np.testing.assert_allclose(tree.cost, [30.0, 20.0, 10.0])

    def test_disconnected_sensor_marked(self):
        coords = np.array([[0.0, 0.0], [500.0, 0.0], [510.0, 0.0]])
        g = CommunicationGraph(coords=coords, comm_range=20.0)
        tree = RoutingTree.shortest_path(g)
        assert tree.parent[0] == -1
        assert not tree.connected_mask()[0]
        with pytest.raises(NetworkModelError):
            tree.hops_of(0)

    def test_unknown_metric_raises(self, line_graph):
        with pytest.raises(NetworkModelError):
            RoutingTree.shortest_path(line_graph, metric="latency")

    def test_matches_networkx_dijkstra(self, rng):
        import networkx as nx

        coords = rng.uniform(0, 300, size=(25, 2))
        all_pts = np.vstack([coords, [150.0, 150.0]])
        g = CommunicationGraph(coords=all_pts, comm_range=120.0)
        tree = RoutingTree.shortest_path(g, metric="distance")

        nxg = nx.Graph()
        d = g.dist
        for i in range(26):
            for j in range(i + 1, 26):
                if np.isfinite(d[i, j]):
                    nxg.add_edge(i, j, weight=float(d[i, j]))
        lengths = nx.single_source_dijkstra_path_length(nxg, 25)
        for i in range(25):
            if i in lengths:
                assert tree.cost[i] == pytest.approx(lengths[i])
            else:
                assert not np.isfinite(tree.cost[i])


class TestRelayLoads:
    def test_chain_loads_accumulate(self, line_graph):
        tree = RoutingTree.shortest_path(line_graph, metric="hops")
        loads = relay_loads(tree)
        np.testing.assert_allclose(loads, [1.0, 2.0, 3.0])

    def test_star_loads(self):
        # 3 leaves all direct to the BS: everyone carries only its own packet.
        coords = np.array([[0.0, 10.0], [10.0, 0.0], [0.0, -10.0], [0.0, 0.0]])
        g = CommunicationGraph(coords=coords, comm_range=15.0)
        tree = RoutingTree.shortest_path(g, metric="hops")
        np.testing.assert_allclose(relay_loads(tree), [1.0, 1.0, 1.0])

    def test_custom_generation(self, line_graph):
        tree = RoutingTree.shortest_path(line_graph, metric="hops")
        loads = relay_loads(tree, generation=np.array([1.0, 0.0, 0.0]))
        np.testing.assert_allclose(loads, [1.0, 1.0, 1.0])

    def test_disconnected_gets_zero(self):
        coords = np.array([[0.0, 0.0], [500.0, 0.0], [510.0, 0.0]])
        g = CommunicationGraph(coords=coords, comm_range=20.0)
        tree = RoutingTree.shortest_path(g)
        assert relay_loads(tree)[0] == 0.0


class TestRoutingCycleDistribution:
    def test_produces_cycles_in_range(self, rng):
        coords = rng.uniform(0, 400, size=(30, 2))
        dist = RoutingCycleDistribution(
            comm_range=200.0, tau_min=1.0, tau_max=50.0,
            coords=tuple((float(x), float(y)) for x, y in coords),
            base_position=(200.0, 200.0))
        bs = np.sqrt(((coords - [200, 200]) ** 2).sum(axis=1))
        tau = dist.sample(bs, np.random.default_rng(0))
        assert tau.shape == (30,)
        assert tau.min() >= 1.0 - 1e-9

    def test_coord_count_mismatch_raises(self):
        dist = RoutingCycleDistribution(coords=((0.0, 0.0),))
        with pytest.raises(NetworkModelError):
            dist.sample(np.zeros(5), np.random.default_rng(0))
