"""Unit tests for :mod:`repro.analysis.timescale`."""

import numpy as np
import pytest

from repro.analysis.timescale import validate_timescales
from repro.core.mintotal import min_total_distance
from repro.core.schedule import SchedulePlan
from repro.errors import ConfigError


class TestValidateTimescales:
    def test_fast_vehicle_separates(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        report = validate_timescales(res.plan, tiny_network.dist,
                                     tiny_network.cycles, speed=1e6)
        assert report.separated
        assert report.max_ratio < 1e-3
        assert "holds" in report.summary()

    def test_slow_vehicle_strains(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        report = validate_timescales(res.plan, tiny_network.dist,
                                     tiny_network.cycles, speed=1.0)
        assert not report.separated
        assert "STRAINED" in report.summary()

    def test_ratio_scales_inversely_with_speed(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        r_fast = validate_timescales(res.plan, tiny_network.dist,
                                     tiny_network.cycles, speed=200.0)
        r_slow = validate_timescales(res.plan, tiny_network.dist,
                                     tiny_network.cycles, speed=100.0)
        assert r_slow.max_ratio == pytest.approx(2 * r_fast.max_ratio, rel=1e-9)

    def test_charge_time_adds_per_stop(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=4.0)
        base = validate_timescales(res.plan, tiny_network.dist,
                                   tiny_network.cycles, speed=1e9)
        with_charge = validate_timescales(res.plan, tiny_network.dist,
                                          tiny_network.cycles, speed=1e9,
                                          charge_time=0.5)
        assert with_charge.max_ratio > base.max_ratio

    def test_deadline_is_tightest_charged_cycle(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        report = validate_timescales(res.plan, tiny_network.dist,
                                     tiny_network.cycles, speed=100.0)
        # Every scheduling in the tiny network charges sensor 0 (tau = 1).
        assert np.all(report.deadlines == 1.0)

    def test_empty_plan(self, tiny_network):
        plan = SchedulePlan(schedulings=(), horizon=10.0)
        report = validate_timescales(plan, tiny_network.dist,
                                     tiny_network.cycles, speed=10.0)
        assert report.max_ratio == 0.0
        assert "empty plan" in report.summary()

    @pytest.mark.parametrize("kwargs", [
        {"speed": 0.0}, {"speed": -1.0}, {"speed": 10.0, "charge_time": -1.0},
    ])
    def test_bad_params(self, tiny_network, kwargs):
        res = min_total_distance(tiny_network, horizon=4.0)
        with pytest.raises(ConfigError):
            validate_timescales(res.plan, tiny_network.dist,
                                tiny_network.cycles, **kwargs)

    def test_paper_scale_deployment_separates(self, paper_network_small):
        """At realistic numbers (km-scale field, vehicle ~20 km/h, cycles of
        weeks) the paper's assumption holds by orders of magnitude."""
        res = min_total_distance(paper_network_small, horizon=200.0)
        # Suppose 1 time unit = 1 day, cycles 1..50 days, vehicle does
        # 100 km/day: speed = 100_000 m per time unit.
        report = validate_timescales(res.plan, paper_network_small.dist,
                                     paper_network_small.cycles, speed=100_000.0)
        assert report.separated
