"""Unit tests for :mod:`repro.reporting.experiments_md` and the report CLI."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import get_figure
from repro.experiments.sweeps import sweep
from repro.reporting.experiments_md import (
    PAPER_PANELS,
    experiments_markdown,
    figure_markdown,
)


@pytest.fixture(scope="module")
def tiny_sweep():
    cfg = ExperimentConfig(n=20, horizon=60.0, n_topologies=2, seed=4,
                           algorithms=("mtd", "greedy"))
    return sweep(cfg, "n", [20, 25])


class TestFigureMarkdown:
    def test_contains_claim_table_and_verdict(self, tiny_sweep):
        spec = get_figure("fig1a")
        md = figure_markdown(spec, tiny_sweep)
        assert md.startswith("### fig1a")
        assert "Paper claim" in md
        assert "| n |" in md  # markdown table header
        assert "mtd/greedy" in md
        assert "Registered shape check" in md
        assert "no sensor ever ran out of energy" in md

    def test_paper_panels_constant(self):
        assert PAPER_PANELS == ("fig1a", "fig1b", "fig2a", "fig2b",
                                "fig3", "fig4", "fig5", "fig6")
        for fid in PAPER_PANELS:
            get_figure(fid)  # all registered


class TestExperimentsMarkdown:
    def test_document_structure(self, monkeypatch, tiny_sweep):
        from repro.experiments import figures as figs

        spec = figs.FIGURES["fig1a"]
        monkeypatch.setattr(
            type(spec), "run",
            lambda self, *, n_topologies=None, full=False, progress=None,
            obs=None, jobs=1: tiny_sweep)
        md = experiments_markdown(["fig1a"], n_topologies=2)
        assert md.startswith("# EXPERIMENTS")
        assert "### fig1a" in md
        assert "run time" in md

    def test_cli_report_writes_file(self, monkeypatch, tmp_path, tiny_sweep, capsys):
        from repro.cli import main
        from repro.experiments import figures as figs

        spec = figs.FIGURES["fig1a"]
        monkeypatch.setattr(
            type(spec), "run",
            lambda self, *, n_topologies=None, full=False, progress=None,
            obs=None, jobs=1: tiny_sweep)
        out = tmp_path / "EXP.md"
        assert main(["report", "--figures", "fig1a", "--out", str(out),
                     "--quiet"]) == 0
        assert out.exists()
        assert "### fig1a" in out.read_text()

    def test_cli_report_validates_figures_before_running(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--figures", "not-a-figure",
                     "--out", str(tmp_path / "x.md")]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "not-a-figure" in err
        assert not (tmp_path / "x.md").exists()  # nothing ran
