"""Unit tests for :mod:`repro.graphs.euler`."""

from collections import Counter

import pytest

from repro.errors import GraphError
from repro.graphs.euler import eulerian_circuit


def _used_edges(circuit):
    """Multiset of undirected edges traversed by a vertex circuit."""
    return Counter(frozenset(e) if e[0] != e[1] else (e[0], e[0])
                   for e in zip(circuit, circuit[1:]))


def _expected(edges):
    return Counter(frozenset(e) if e[0] != e[1] else (e[0], e[0]) for e in edges)


class TestEulerianCircuit:
    def test_triangle(self):
        edges = [(0, 1), (1, 2), (2, 0)]
        c = eulerian_circuit(edges, 0)
        assert c[0] == c[-1] == 0
        assert _used_edges(c) == _expected(edges)

    def test_doubled_tree_is_eulerian(self):
        tree = [(0, 1), (1, 2), (1, 3)]
        doubled = tree + tree
        c = eulerian_circuit(doubled, 0)
        assert c[0] == c[-1] == 0
        assert len(c) == len(doubled) + 1
        assert _used_edges(c) == _expected(doubled)

    def test_parallel_edges_used_individually(self):
        edges = [(0, 1), (0, 1)]
        c = eulerian_circuit(edges, 0)
        assert c == [0, 1, 0]

    def test_two_glued_cycles(self):
        # Two triangles sharing vertex 0 — the Lemma-3 merging situation.
        edges = [(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]
        c = eulerian_circuit(edges, 0)
        assert c[0] == c[-1] == 0
        assert _used_edges(c) == _expected(edges)

    def test_no_edges(self):
        assert eulerian_circuit([], 5) == [5]

    def test_odd_degree_raises(self):
        with pytest.raises(GraphError, match="odd degree"):
            eulerian_circuit([(0, 1)], 0)

    def test_disconnected_raises(self):
        edges = [(0, 1), (1, 0), (2, 3), (3, 2)]
        with pytest.raises(GraphError, match="disconnected"):
            eulerian_circuit(edges, 0)

    def test_start_without_edges_raises(self):
        with pytest.raises(GraphError, match="no incident edges"):
            eulerian_circuit([(0, 1), (1, 0)], 7)

    def test_matches_networkx_on_random_eulerian_graph(self, rng):
        import networkx as nx

        # Build a random multigraph, then double every edge => Eulerian.
        base = [(int(rng.integers(0, 8)), int(rng.integers(0, 8))) for _ in range(15)]
        base = [(u, v) for u, v in base if u != v]
        edges = base + base
        if not edges:
            pytest.skip("degenerate draw")
        g = nx.MultiGraph(edges)
        if not nx.is_connected(g):
            g = nx.MultiGraph([(u, v) for u, v in edges
                               if nx.has_path(nx.Graph(edges), list(g.nodes)[0], u)])
            pytest.skip("disconnected draw")
        start = edges[0][0]
        c = eulerian_circuit(edges, start)
        assert c[0] == c[-1] == start
        assert _used_edges(c) == _expected(edges)
