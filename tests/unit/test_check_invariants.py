"""Unit tests for repro.check.invariants.

Two angles: a real engine run must pass with zero violations (the shadow
integral mirrors the engine's arithmetic exactly), and hand-fed corrupt
event streams must each trip the specific invariant they break.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.invariants import InvariantChecker
from repro.core.mintotal import min_total_distance
from repro.errors import CheckError
from repro.obs import Instrumentation
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload
from repro.tsp.tour import Tour


class TestCleanRuns:
    def test_engine_run_produces_no_violations(self, tiny_network):
        plan = min_total_distance(tiny_network, 20.0).plan
        checker = InvariantChecker(tiny_network)
        out = simulate(tiny_network, PlannedPolicy(plan),
                       FixedWorkload.from_network(tiny_network), 20.0,
                       hooks=checker)
        assert checker.violations == []
        assert checker.observed_plan_cost == pytest.approx(
            out.metrics.service_cost)
        assert checker.summary() == "invariants: all hold"

    def test_run_with_deaths_still_clean(self, tiny_network):
        # An empty plan starves every sensor; the engine records the deaths
        # and the checker must agree that it did so *correctly*.
        from repro.core.schedule import SchedulePlan

        plan = SchedulePlan(schedulings=(), horizon=20.0)
        checker = InvariantChecker(tiny_network)
        out = simulate(tiny_network, PlannedPolicy(plan),
                       FixedWorkload.from_network(tiny_network), 20.0,
                       hooks=checker)
        assert out.metrics.n_deaths == tiny_network.n
        assert checker.violations == []

    def test_counters(self, tiny_network):
        obs = Instrumentation()
        plan = min_total_distance(tiny_network, 20.0).plan
        checker = InvariantChecker(tiny_network, obs=obs)
        simulate(tiny_network, PlannedPolicy(plan),
                 FixedWorkload.from_network(tiny_network), 20.0, hooks=checker)
        assert obs.counters["check.invariant.runs"] == 1
        assert "check.invariant.violations" not in obs.counters


class TestCorruptStreams:
    """Feed the hooks a doctored event stream; each must be caught."""

    def _started(self, net, *, raising=True) -> InvariantChecker:
        checker = InvariantChecker(net, raise_on_violation=raising)
        checker.on_start(net, 20.0, net.batteries.copy())
        return checker

    def test_wrong_initial_energy(self, tiny_network):
        checker = InvariantChecker(tiny_network, raise_on_violation=False)
        checker.on_start(tiny_network, 20.0,
                         tiny_network.batteries * 0.5)
        assert [v.invariant for v in checker.violations] == ["energy"]

    def test_energy_divergence_caught(self, tiny_network):
        checker = self._started(tiny_network)
        rates = tiny_network.batteries / tiny_network.cycles
        wrong = tiny_network.batteries - 0.5 * rates  # engine "forgot" half
        with pytest.raises(CheckError) as err:
            checker.on_advance(0.0, 1.0, rates, wrong)
        assert err.value.invariant == "energy"

    def test_non_contiguous_timeline_caught(self, tiny_network):
        checker = self._started(tiny_network)
        rates = np.zeros(tiny_network.n)
        checker.on_advance(0.0, 1.0, rates, tiny_network.batteries.copy())
        with pytest.raises(CheckError) as err:
            checker.on_advance(2.0, 3.0, rates, tiny_network.batteries.copy())
        assert err.value.invariant == "time"

    def test_missed_death_caught(self, tiny_network):
        checker = self._started(tiny_network, raising=False)
        rates = tiny_network.batteries / tiny_network.cycles
        # Drain far past every cycle: all sensors cross zero, but the
        # "engine" clamps silently and never reports a death.
        drained = np.zeros(tiny_network.n)
        checker.on_advance(0.0, 100.0, rates, drained)
        # The next event flushes the predicted-but-unreported deaths.
        checker.on_advance(100.0, 101.0, np.zeros(tiny_network.n), drained)
        assert "death" in {v.invariant for v in checker.violations}

    def test_phantom_death_caught(self, tiny_network):
        checker = self._started(tiny_network)
        with pytest.raises(CheckError) as err:
            checker.on_death(0, 1.0)  # nothing has drained yet
        assert err.value.invariant == "death"

    def test_partial_charge_caught(self, tiny_network):
        from repro.core.schedule import ChargingScheduling

        checker = self._started(tiny_network, raising=False)
        d0, d1 = (int(tiny_network.depot_index(0)),
                  int(tiny_network.depot_index(1)))
        sched = ChargingScheduling(time=0.0, tours=(
            Tour(depot=d0, order=(d0, 0)), Tour(depot=d1, order=(d1,))))
        energy = tiny_network.batteries.copy()
        energy[0] *= 0.9  # sensor 0 was "charged" to 90% only
        checker.on_dispatch(0.0, sched, energy)
        assert "full_charge" in {v.invariant for v in checker.violations}

    def test_tour_on_wrong_depot_caught(self, tiny_network):
        from repro.core.schedule import ChargingScheduling

        checker = self._started(tiny_network, raising=False)
        d0, d1 = (int(tiny_network.depot_index(0)),
                  int(tiny_network.depot_index(1)))
        swapped = ChargingScheduling(time=0.0, tours=(
            Tour(depot=d1, order=(d1,)), Tour(depot=d0, order=(d0,))))
        checker.on_dispatch(0.0, swapped, tiny_network.batteries.copy())
        assert "tours" in {v.invariant for v in checker.violations}
