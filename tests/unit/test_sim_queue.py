"""Unit tests for :mod:`repro.sim.queue` — event ordering, cancellation,
coincident batching and the relative-or-absolute time tolerance."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.queue import (
    PRIORITY_DISPATCH,
    PRIORITY_FAILURE,
    PRIORITY_HORIZON,
    PRIORITY_SLOT,
    EventQueue,
    coincident,
    time_tolerance,
)


class TestOrdering:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, PRIORITY_SLOT, "c")
        q.push(1.0, PRIORITY_SLOT, "a")
        q.push(2.0, PRIORITY_SLOT, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]
        assert q.pop() is None

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_DISPATCH, "dispatch")
        q.push(1.0, PRIORITY_SLOT, "slot")
        q.push(1.0, PRIORITY_HORIZON, "horizon")
        q.push(1.0, PRIORITY_FAILURE, "failure")
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == ["horizon", "slot", "failure", "dispatch"]

    def test_seq_breaks_full_ties_by_insertion(self):
        q = EventQueue()
        first = q.push(1.0, PRIORITY_SLOT, "slot", data="first")
        second = q.push(1.0, PRIORITY_SLOT, "slot", data="second")
        assert first.seq < second.seq
        assert q.pop().data == "first"
        assert q.pop().data == "second"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_SLOT, "a")
        assert q.peek().kind == "a"
        assert len(q) == 1
        assert q.pop().kind == "a"

    def test_rejects_non_finite_time(self):
        q = EventQueue()
        with pytest.raises(SimulationError, match="finite"):
            q.push(float("nan"), PRIORITY_SLOT, "bad")
        with pytest.raises(SimulationError, match="finite"):
            q.push(float("inf"), PRIORITY_SLOT, "bad")


class TestCancel:
    def test_cancelled_events_are_skipped(self):
        q = EventQueue()
        keep = q.push(2.0, PRIORITY_SLOT, "keep")
        drop = q.push(1.0, PRIORITY_SLOT, "drop")
        q.cancel(drop)
        assert len(q) == 1
        assert q.pop() is keep
        assert q.pop() is None

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, PRIORITY_SLOT, "x")
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0
        assert not q

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        drop = q.push(1.0, PRIORITY_SLOT, "drop")
        q.push(2.0, PRIORITY_SLOT, "keep")
        q.cancel(drop)
        assert q.peek().kind == "keep"


class TestPopCoincident:
    def test_batches_same_instant_sorted_by_priority(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_DISPATCH, "dispatch")
        q.push(1.0, PRIORITY_SLOT, "slot")
        q.push(5.0, PRIORITY_SLOT, "later")
        batch = q.pop_coincident()
        assert [e.kind for e in batch] == ["slot", "dispatch"]
        assert [e.kind for e in q.pop_coincident()] == ["later"]
        assert q.pop_coincident() == []

    def test_batch_anchored_at_earliest_member(self):
        # Events within tolerance of the earliest pop together even when
        # their raw timestamps differ by a few ulp.
        q = EventQueue()
        t = 10.0
        q.push(t, PRIORITY_DISPATCH, "dispatch")
        q.push(t + 0.5 * time_tolerance(t), PRIORITY_SLOT, "slot")
        batch = q.pop_coincident()
        assert [e.kind for e in batch] == ["slot", "dispatch"]

    def test_does_not_batch_beyond_tolerance(self):
        q = EventQueue()
        q.push(1.0, PRIORITY_SLOT, "a")
        q.push(1.0 + 10 * time_tolerance(1.0), PRIORITY_SLOT, "b")
        assert [e.kind for e in q.pop_coincident()] == ["a"]
        assert [e.kind for e in q.pop_coincident()] == ["b"]


class TestTimeTolerance:
    """Regression for the absolute-1e-9 bug: below one float64 ulp at
    t >= 1e7, so adjacent representable times looked distinct."""

    def test_absolute_below_one(self):
        assert time_tolerance(0.0) == 1e-9
        assert time_tolerance(0.5) == 1e-9

    def test_relative_above_one(self):
        assert time_tolerance(2.0) == 2e-9
        assert time_tolerance(1e8) == 0.1

    def test_wider_than_ulp_at_large_t(self):
        for t in (1.0, 1e3, 1e7, 2.0**27, 1e12, 1e15):
            assert time_tolerance(t) > np.spacing(t)

    def test_adjacent_floats_coincident_at_large_t(self):
        t = 2.0**27  # ulp ~ 2e-8 > 1e-9: the old absolute tolerance failed
        below = float(np.nextafter(t, 0.0))
        assert below != t
        assert coincident(t, below)

    def test_large_t_events_batch_together(self):
        t = 2.0**27
        q = EventQueue()
        q.push(float(np.nextafter(t, 0.0)), PRIORITY_DISPATCH, "dispatch")
        q.push(t, PRIORITY_SLOT, "slot")
        batch = q.pop_coincident()
        # One instant: the slot boundary must process before the dispatch.
        assert [e.kind for e in batch] == ["slot", "dispatch"]

    def test_distinct_instants_stay_distinct(self):
        assert not coincident(1.0, 1.1)
        assert not coincident(1e8, 1e8 + 1.0)
