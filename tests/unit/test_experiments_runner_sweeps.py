"""Unit tests for :mod:`repro.experiments.runner` and sweeps.

Tiny cells only (n=25, short horizon) — the full-scale runs live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import make_policy, run_cell
from repro.experiments.sweeps import sweep
from repro.network.builder import build_paper_network

TINY = ExperimentConfig(n=25, horizon=100.0, n_topologies=2, seed=9,
                        algorithms=("mtd", "greedy"))


class TestRunCell:
    def test_shapes_and_order(self):
        cell = run_cell(TINY)
        assert [r.algorithm for r in cell.results] == ["mtd", "greedy"]
        for r in cell.results:
            assert r.costs.shape == (2,)
            assert r.deaths.shape == (2,)
            assert np.all(r.costs > 0)

    def test_no_deaths_on_paper_defaults(self):
        cell = run_cell(TINY)
        assert all(r.total_deaths == 0 for r in cell.results)

    def test_reproducible(self):
        a = run_cell(TINY)
        b = run_cell(TINY)
        np.testing.assert_array_equal(a.by_name("mtd").costs,
                                      b.by_name("mtd").costs)

    def test_mtd_beats_greedy_on_linear(self):
        cell = run_cell(TINY.with_(n_topologies=3))
        assert cell.ratio("mtd", "greedy") < 1.0

    def test_by_name_unknown_raises(self):
        cell = run_cell(TINY)
        with pytest.raises(KeyError):
            cell.by_name("nope")

    def test_variable_cell_runs(self):
        cfg = TINY.with_(variable=True, algorithms=("mtd-var", "greedy"),
                         slot_duration=10.0)
        cell = run_cell(cfg)
        assert all(r.total_deaths == 0 for r in cell.results)

    def test_mean_and_std(self):
        cell = run_cell(TINY)
        r = cell.by_name("mtd")
        assert r.mean_cost == pytest.approx(r.costs.mean())
        assert r.std_cost == pytest.approx(r.costs.std(ddof=1))


class TestMakePolicy:
    @pytest.fixture(scope="class")
    def net(self):
        return build_paper_network(n=20, q=3, seed=1)

    @pytest.mark.parametrize("name", ["mtd", "mtd+2opt", "greedy", "naive",
                                      "periodic"])
    def test_known_fixed_algorithms(self, name, net):
        cfg = ExperimentConfig(n=20, q=3, horizon=50.0)
        pol = make_policy(name, cfg, net)
        assert hasattr(pol, "dispatch")

    def test_var_policy(self, net):
        cfg = ExperimentConfig(n=20, q=3, horizon=50.0, variable=True,
                               algorithms=("mtd-var",))
        pol = make_policy("mtd-var", cfg, net)
        assert pol.__class__.__name__ == "MinTotalDistanceVarPolicy"

    def test_unknown_raises(self, net):
        with pytest.raises(ConfigError):
            make_policy("quantum", ExperimentConfig(), net)


class TestSweep:
    def test_series_and_rows(self):
        result = sweep(TINY, "n", [20, 30])
        x, y = result.series("mtd")
        np.testing.assert_array_equal(x, [20, 30])
        assert y.shape == (2,)
        assert len(result.rows()) == 2
        assert result.header()[0] == "n"

    def test_ratio_series(self):
        result = sweep(TINY, "n", [20, 30])
        r = result.ratio_series("mtd", "greedy")
        assert r.shape == (2,) and np.all(r > 0)

    def test_progress_callback(self):
        lines = []
        sweep(TINY, "n", [20], progress=lines.append)
        assert len(lines) == 1 and "n=20" in lines[0]

    def test_empty_values_raises(self):
        with pytest.raises(ConfigError):
            sweep(TINY, "n", [])

    def test_unknown_parameter_raises(self):
        with pytest.raises(ConfigError):
            sweep(TINY, "banana", [1])

    def test_deaths_accessor(self):
        result = sweep(TINY, "n", [20])
        np.testing.assert_array_equal(result.deaths("mtd"), [0])
