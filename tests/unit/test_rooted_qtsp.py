"""Unit tests for :mod:`repro.rooted.qtsp` (Algorithm 2) and refine."""

import pytest

from repro.geometry.distance import distance_matrix
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp, tours_from_forest, tours_total_cost
from repro.rooted.refine import refine_tours
from repro.errors import ConfigError


@pytest.fixture
def instance(rng):
    coords = rng.uniform(0, 100, size=(20, 2))
    return distance_matrix(coords)


SENSORS = list(range(17))
DEPOTS = [17, 18, 19]


class TestQRootedTsp:
    def test_one_tour_per_depot(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        assert [t.depot for t in tours] == DEPOTS

    def test_joint_coverage(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        covered = set().union(*(t.visited() for t in tours))
        assert set(SENSORS) <= covered

    def test_vertex_disjoint_sensor_sets(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        seen: set[int] = set()
        for t in tours:
            stops = set(t.stops())
            assert not (stops & seen)
            seen |= stops

    def test_two_approximation_vs_msf(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        forest = q_rooted_msf(instance, SENSORS, DEPOTS)
        msf_w = forest.weight(instance)
        cost = tours_total_cost(instance, tours)
        assert cost <= 2 * msf_w + 1e-9  # Theorem 1's chain via the MSF bound

    def test_empty_sensor_set_gives_empty_tours(self, instance):
        tours = q_rooted_tsp(instance, [], DEPOTS)
        assert all(t.is_empty for t in tours)
        assert tours_total_cost(instance, tours) == 0.0

    def test_refine_never_worsens(self, instance):
        plain = q_rooted_tsp(instance, SENSORS, DEPOTS)
        refined = q_rooted_tsp(instance, SENSORS, DEPOTS, refine=True)
        assert (tours_total_cost(instance, refined)
                <= tours_total_cost(instance, plain) + 1e-9)
        covered = set().union(*(t.visited() for t in refined))
        assert set(SENSORS) <= covered

    def test_q1_single_tour(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, [19])
        assert len(tours) == 1
        assert tours[0].visited() == set(SENSORS) | {19}


class TestToursFromForest:
    def test_preorder_consistency(self, instance):
        forest = q_rooted_msf(instance, SENSORS, DEPOTS)
        tours = tours_from_forest(forest)
        for l, t in enumerate(tours):
            assert t.visited() == forest.nodes_of(l)
            # cost <= 2 * tree weight (the per-tree doubling bound)
            assert t.cost(instance) <= 2 * forest.tree_weight(l, instance) + 1e-9


class TestRefineTours:
    def test_methods(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        for method in ("2opt", "2opt+oropt"):
            out = refine_tours(instance, tours, method=method)
            assert (tours_total_cost(instance, out)
                    <= tours_total_cost(instance, tours) + 1e-9)
            assert [t.depot for t in out] == DEPOTS

    def test_unknown_method_raises(self, instance):
        with pytest.raises(ConfigError):
            refine_tours(instance, [], method="3opt")

    def test_oropt_pipeline_at_least_as_good_as_2opt(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        a = tours_total_cost(instance, refine_tours(instance, tours, method="2opt"))
        b = tours_total_cost(instance, refine_tours(instance, tours,
                                                    method="2opt+oropt"))
        assert b <= a + 1e-9
