"""Unit tests for :mod:`repro.graphs.mst` (networkx as the oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphError
from repro.geometry.distance import distance_matrix
from repro.graphs.mst import kruskal_mst, mst_weight, prim_mst


def _nx_mst_weight(dist: np.ndarray) -> float:
    g = nx.Graph()
    n = dist.shape[0]
    for i in range(n):
        for j in range(i + 1, n):
            if np.isfinite(dist[i, j]):
                g.add_edge(i, j, weight=float(dist[i, j]))
    t = nx.minimum_spanning_tree(g)
    return float(t.size(weight="weight"))


class TestPrimMst:
    def test_triangle(self):
        d = np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float)
        edges = prim_mst(d)
        assert len(edges) == 2
        assert mst_weight(d, edges) == pytest.approx(3.0)  # edges (0,1) and (0,2)

    def test_matches_networkx_on_euclidean(self, rng):
        coords = rng.uniform(0, 100, size=(30, 2))
        d = distance_matrix(coords)
        edges = prim_mst(d)
        assert mst_weight(d, edges) == pytest.approx(_nx_mst_weight(d))

    def test_edges_form_spanning_tree(self, rng):
        d = distance_matrix(rng.uniform(0, 10, size=(20, 2)))
        edges = prim_mst(d, root=7)
        assert len(edges) == 19
        # Oriented away from the root: each node appears as child exactly once.
        children = [v for _, v in edges]
        assert sorted(children) == [i for i in range(20) if i != 7]

    def test_single_node(self):
        assert prim_mst(np.zeros((1, 1))) == []

    def test_two_nodes(self):
        d = np.array([[0, 5], [5, 0]], dtype=float)
        assert prim_mst(d) == [(0, 1)]

    def test_disconnected_raises(self):
        d = np.array([[0, np.inf], [np.inf, 0]])
        with pytest.raises(GraphError, match="disconnected"):
            prim_mst(d)

    def test_bad_root_raises(self):
        with pytest.raises(GraphError, match="root"):
            prim_mst(np.zeros((3, 3)), root=5)

    def test_non_square_raises(self):
        with pytest.raises(GraphError, match="square"):
            prim_mst(np.zeros((2, 3)))

    def test_root_choice_does_not_change_weight(self, rng):
        d = distance_matrix(rng.uniform(0, 10, size=(12, 2)))
        weights = {mst_weight(d, prim_mst(d, root=r)) for r in range(12)}
        assert max(weights) - min(weights) < 1e-9


class TestKruskalMst:
    def test_matches_prim_on_complete_graph(self, rng):
        coords = rng.uniform(0, 100, size=(15, 2))
        d = distance_matrix(coords)
        triples = [(i, j, float(d[i, j])) for i in range(15) for j in range(i + 1, 15)]
        k_edges = kruskal_mst(15, triples)
        assert mst_weight(d, k_edges) == pytest.approx(
            mst_weight(d, prim_mst(d)))

    def test_forest_on_disconnected_input(self):
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        out = kruskal_mst(4, edges)
        assert len(out) == 2  # spanning forest, not tree

    def test_ignores_self_loops(self):
        assert kruskal_mst(2, [(0, 0, 1.0), (0, 1, 2.0)]) == [(0, 1)]

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphError):
            kruskal_mst(2, [(0, 5, 1.0)])

    def test_negative_n_raises(self):
        with pytest.raises(GraphError):
            kruskal_mst(-1, [])

    def test_prefers_cheap_edges(self):
        edges = [(0, 1, 10.0), (0, 2, 1.0), (1, 2, 1.0)]
        out = kruskal_mst(3, edges)
        assert (0, 1) not in out


class TestMstWeight:
    def test_empty_edges(self):
        assert mst_weight(np.zeros((3, 3)), []) == 0.0

    def test_sums_entries(self):
        d = np.array([[0, 2, 9], [2, 0, 4], [9, 4, 0]], dtype=float)
        assert mst_weight(d, [(0, 1), (1, 2)]) == pytest.approx(6.0)
