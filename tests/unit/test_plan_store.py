"""Unit tests for the on-disk plan-artifact store (the cache's tier 2).

Covers the durability contract of :mod:`repro.plan.store` — round-trips,
corruption detection (bit-flips, truncation, mis-addressed entries, junk),
quarantine-never-serve, the marker guard on destructive operations — and
the two-tier integration: :func:`repro.plan.pipeline.plan_tours` falling
back to disk on a memory miss, warm restarts of
:func:`repro.core.mintotal.min_total_distance`, and the serve workers'
``warm``/``flush`` bulk paths. Random-interleaving and multi-process
consistency live in ``tests/property/test_prop_plan_store.py``.
"""

import json

import pytest

from repro.core.mintotal import min_total_distance
from repro.errors import ConfigError
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.plan import PlanArtifactCache, PlanArtifactStore, plan_tours
from repro.rooted.msf import q_rooted_msf


@pytest.fixture(scope="module")
def net():
    return build_paper_network(n=15, q=2, seed=11)


@pytest.fixture
def store(tmp_path):
    return PlanArtifactStore(tmp_path / "store")


def _entry_paths(store):
    return sorted(store._objects.rglob("*.json"))


class TestRoundTrip:
    def test_tours_round_trip(self, net, store):
        cov = frozenset({0, 1, 2})
        tours = plan_tours(net, cov)
        store.put_tours("fp", cov, False, tours)
        assert store.get_tours("fp", cov, False) == tours
        assert store.get_tours("fp", cov, True) is None      # refine keyed
        assert store.get_tours("other", cov, False) is None  # fingerprint keyed
        assert store.get_tours("fp", frozenset({0, 1}), False) is None

    def test_forest_round_trip(self, net, store):
        cov = sorted({0, 1, 2, 3})
        forest = q_rooted_msf(net.dist, cov, [int(i) for i in net.depot_indices])
        store.put_forest("fp", frozenset(cov), forest)
        assert store.get_forest("fp", frozenset(cov)) == forest
        assert store.get_forest("other", frozenset(cov)) is None

    def test_persists_across_instances(self, net, tmp_path):
        cov = frozenset({1, 2})
        tours = plan_tours(net, cov)
        PlanArtifactStore(tmp_path / "s").put_tours("fp", cov, True, tours)
        reopened = PlanArtifactStore(tmp_path / "s")
        assert reopened.get_tours("fp", cov, True) == tours

    def test_overwrite_is_idempotent(self, net, store):
        cov = frozenset({0, 1})
        tours = plan_tours(net, cov)
        p1 = store.put_tours("fp", cov, False, tours)
        p2 = store.put_tours("fp", cov, False, tours)
        assert p1 == p2
        assert store.n_entries == 1


class TestMarkerGuard:
    def test_rejects_foreign_nonempty_directory(self, tmp_path):
        foreign = tmp_path / "data"
        foreign.mkdir()
        (foreign / "precious.txt").write_text("not a store")
        with pytest.raises(ConfigError, match="marker"):
            PlanArtifactStore(foreign)
        assert (foreign / "precious.txt").exists()  # untouched

    def test_rejects_file_path(self, tmp_path):
        f = tmp_path / "afile"
        f.write_text("x")
        with pytest.raises(ConfigError, match="not a directory"):
            PlanArtifactStore(f)

    def test_accepts_empty_and_own_directories(self, tmp_path):
        root = tmp_path / "s"
        PlanArtifactStore(root)          # creates + markers
        PlanArtifactStore(root)          # reopens its own directory
        assert (root / "plan-store.json").exists()


class TestCorruption:
    def _single_entry(self, net, store):
        cov = frozenset({0, 1, 2})
        tours = plan_tours(net, cov)
        store.put_tours("fp", cov, False, tours)
        (path,) = _entry_paths(store)
        return cov, tours, path

    def test_bit_flip_quarantined_not_served(self, net, store):
        cov, _, path = self._single_entry(net, store)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x20
        path.write_bytes(bytes(blob))
        obs = Instrumentation()
        assert store.get_tours("fp", cov, False, obs=obs) is None
        assert not path.exists()  # moved to quarantine
        assert store.stats()["quarantined"] == 1
        assert obs.counters["plan.cache.disk.corrupt"] == 1
        assert obs.counters["plan.cache.disk.misses"] == 1

    def test_truncation_quarantined(self, net, store):
        cov, _, path = self._single_entry(net, store)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert store.get_tours("fp", cov, False) is None
        assert store.stats()["quarantined"] == 1

    def test_mis_addressed_entry_rejected(self, net, store):
        """A valid entry copied under another key's address must not be
        served as that key (entry key is checked against the request)."""
        cov_a, cov_b = frozenset({0, 1}), frozenset({2, 3})
        store.put_tours("fp", cov_a, False, plan_tours(net, cov_a))
        store.put_tours("fp", cov_b, False, plan_tours(net, cov_b))
        a, b = _entry_paths(store)
        b.write_bytes(a.read_bytes())  # b's address now holds a's entry
        served = [store.get_tours("fp", c, False) for c in (cov_a, cov_b)]
        assert None in served  # the mis-keyed read is a miss, never a lie
        assert store.stats()["session"]["corrupt"] >= 1

    def test_wrong_version_reads_as_miss(self, net, store):
        cov, _, path = self._single_entry(net, store)
        entry = json.loads(path.read_bytes())
        entry["version"] = 999
        path.write_text(json.dumps(entry))
        assert store.get_tours("fp", cov, False) is None

    def test_junk_json_reads_as_miss(self, net, store):
        cov, _, path = self._single_entry(net, store)
        path.write_text('{"hello": "world"}')
        assert store.get_tours("fp", cov, False) is None

    def test_recompute_after_quarantine_round_trips(self, net, store):
        cov, tours, path = self._single_entry(net, store)
        path.write_bytes(b"garbage")
        assert store.get_tours("fp", cov, False) is None
        store.put_tours("fp", cov, False, tours)  # the replan writes back
        assert store.get_tours("fp", cov, False) == tours


class TestTwoTierPipeline:
    def test_disk_fallback_promotes_into_memory(self, net, tmp_path):
        cov = frozenset(range(6))
        store = PlanArtifactStore(tmp_path / "s")
        cold = plan_tours(net, cov, cache=PlanArtifactCache(), store=store)

        cache, obs = PlanArtifactCache(), Instrumentation()
        warm = plan_tours(net, cov, cache=cache, store=store, obs=obs)
        assert warm == cold
        assert obs.counters["plan.cache.disk.hits"] == 1
        assert "plan.cache.disk.writes" not in obs.counters
        # Promoted: the next lookup is a pure memory hit, no disk traffic.
        obs2 = Instrumentation()
        plan_tours(net, cov, cache=cache, store=store, obs=obs2)
        assert obs2.counters["plan.cache.tours.hit"] == 1
        assert "plan.cache.disk.hits" not in obs2.counters

    def test_cold_compute_writes_through(self, net, tmp_path):
        store, obs = PlanArtifactStore(tmp_path / "s"), Instrumentation()
        plan_tours(net, frozenset({0, 1, 2}), cache=PlanArtifactCache(),
                   store=store, obs=obs)
        # One forest + one tour set hit disk.
        assert obs.counters["plan.cache.disk.writes"] == 2
        assert obs.counters["plan.cache.disk.bytes"] > 0
        assert store.n_entries == 2

    def test_store_only_mode_works(self, net, tmp_path):
        """No memory cache at all: the store alone carries the reuse."""
        store = PlanArtifactStore(tmp_path / "s")
        cov = frozenset({0, 1, 2, 3})
        first = plan_tours(net, cov, store=store)
        obs = Instrumentation()
        second = plan_tours(net, cov, store=store, obs=obs)
        assert second == first
        assert obs.counters["plan.cache.disk.hits"] == 1

    def test_warm_restart_plan_identical(self, net, tmp_path):
        """The acceptance criterion: disk-warm replans are tour-identical."""
        cold = min_total_distance(net, 150.0, refine=True)
        store_dir = tmp_path / "s"
        min_total_distance(net, 150.0, refine=True,
                           cache=PlanArtifactCache(),
                           store=PlanArtifactStore(store_dir))
        # Simulated restart: fresh memory cache, fresh store handle.
        restarted = PlanArtifactStore(store_dir)
        warm = min_total_distance(net, 150.0, refine=True,
                                  cache=PlanArtifactCache(), store=restarted)
        assert warm.levels == cold.levels
        assert len(warm.plan) == len(cold.plan)
        for a, b in zip(warm.plan, cold.plan):
            assert a.time == b.time and a.tours == b.tours
        assert restarted.stats()["session"]["hits"] > 0


class TestBulkOps:
    def _populated(self, net, tmp_path):
        store = PlanArtifactStore(tmp_path / "s")
        cache = PlanArtifactCache()
        min_total_distance(net, 150.0, cache=cache, store=store)
        return store, cache

    def test_warm_loads_everything(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        cache = PlanArtifactCache()
        loaded = store.warm(cache)
        assert loaded == store.n_entries > 0
        # Warmed cache serves Algorithm 3 without touching disk again.
        obs = Instrumentation()
        min_total_distance(net, 150.0, cache=cache,
                           store=PlanArtifactStore(store.root), obs=obs)
        assert "plan.cache.disk.misses" not in obs.counters

    def test_warm_skips_corrupt(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        n = store.n_entries
        victim = _entry_paths(store)[0]
        victim.write_bytes(b"\x00" * 10)
        assert store.warm(PlanArtifactCache()) == n - 1
        assert store.stats()["quarantined"] == 1

    def test_flush_writes_only_missing(self, net, tmp_path):
        store, cache = self._populated(net, tmp_path)
        assert store.flush(cache) == 0  # write-through already persisted all
        store.clear()
        assert store.flush(cache) == cache.n_entries > 0
        assert store.n_entries == cache.n_entries

    def test_verify_clean_and_corrupt(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        n = store.n_entries
        report = store.verify()
        assert report == {"checked": n, "ok": n, "corrupt": 0}
        victim = _entry_paths(store)[-1]
        victim.write_bytes(victim.read_bytes()[:-5])
        report = store.verify()
        assert report["corrupt"] == 1 and report["ok"] == n - 1
        assert store.n_entries == n - 1  # quarantined out of the serving set

    def test_gc_trims_oldest_and_purges_quarantine(self, net, tmp_path):
        import os
        import time

        store, _ = self._populated(net, tmp_path)
        paths = _entry_paths(store)
        assert len(paths) >= 2
        old, fresh = paths[0], paths[-1]
        now = time.time()
        os.utime(old, (now - 1000, now - 1000))
        (store._quarantine / "junk").write_text("x")
        report = store.gc(max_entries=len(paths) - 1)
        assert report["removed"] == 1 and report["quarantine_purged"] == 1
        assert not old.exists() and fresh.exists()

    def test_gc_max_bytes(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        report = store.gc(max_bytes=0)
        assert report["kept"] == 0
        assert store.n_entries == 0

    def test_gc_rejects_negative_budgets(self, store):
        with pytest.raises(ConfigError):
            store.gc(max_entries=-1)
        with pytest.raises(ConfigError):
            store.gc(max_bytes=-1)

    def test_clear(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        n = store.n_entries
        assert store.clear() == n > 0
        assert store.n_entries == 0
        assert (store.root / "plan-store.json").exists()  # marker survives

    def test_stats_shape(self, net, tmp_path):
        store, _ = self._populated(net, tmp_path)
        s = store.stats()
        assert s["entries"] == s["tours"] + s["forests"] == store.n_entries
        assert s["bytes"] > 0 and s["unreadable"] == 0
        assert s["session"]["writes"] == s["entries"]


class TestLockContention:
    """The advisory-lock tallies behind ``repro cache stats``.

    ``flock`` locks hang off the open file description, so a second fd on
    the lock file contends even within one process — which lets the
    cross-process contention path (a fleet shard waiting on another's
    write) be pinned deterministically without spawning processes.
    """

    def test_uncontended_fast_path_not_counted_as_waiting(self, net, store):
        cov = frozenset({0, 1})
        store.put_tours("fp", cov, False, plan_tours(net, cov))
        session = store.stats()["session"]
        assert session["lock_acquires"] >= 1
        assert session["lock_contended"] == 0
        assert session["lock_wait_s"] == 0.0

    def test_contended_lock_wait_is_timed_and_tallied(self, net, store):
        fcntl = pytest.importorskip("fcntl")
        import threading
        import time

        cov = frozenset({0, 1})
        tours = plan_tours(net, cov)
        with (store.root / ".lock").open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            writer = threading.Thread(
                target=store.put_tours, args=("fp", cov, False, tours))
            writer.start()
            time.sleep(0.3)  # hold the store lock while the write waits
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            writer.join(timeout=10)
        assert not writer.is_alive()
        session = store.stats()["session"]
        assert session["lock_contended"] >= 1
        assert session["lock_wait_s"] >= 0.1
        assert session["lock_wait_s"] >= session["lock_wait_max_s"] > 0.0
        assert store.get_tours("fp", cov, False) == tours
