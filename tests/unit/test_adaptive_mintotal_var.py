"""Unit tests for :mod:`repro.adaptive.mintotal_var`."""

import numpy as np
import pytest

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.network.cycles import LinearCycleDistribution
from repro.sim.engine import simulate
from repro.sim.policies import SimulationView
from repro.sim.workload import FixedWorkload, ResampledWorkload


def _view(t, energy, rates, batteries=None):
    energy = np.asarray(energy, dtype=float)
    b = np.ones_like(energy) if batteries is None else np.asarray(batteries, float)
    return SimulationView(time=t, energy=energy, batteries=b,
                          observed_rates=np.asarray(rates, dtype=float))


class TestPlanLifecycle:
    def test_initial_observe_builds_plan(self, tiny_network):
        pol = MinTotalDistanceVarPolicy()
        pol.reset(tiny_network, horizon=16.0)
        pol.observe(_view(0.0, tiny_network.batteries, tiny_network.rates,
                          tiny_network.batteries))
        assert pol.next_dispatch_time(0.0) == pytest.approx(1.0)
        assert pol.n_replans == 0  # the initial plan is not a "replan"

    def test_dispatch_walks_queue(self, tiny_network):
        pol = MinTotalDistanceVarPolicy()
        pol.reset(tiny_network, horizon=4.0)
        pol.observe(_view(0.0, tiny_network.batteries, tiny_network.rates,
                          tiny_network.batteries))
        t1 = pol.next_dispatch_time(0.0)
        sched = pol.dispatch(_view(t1, tiny_network.batteries, tiny_network.rates,
                                   tiny_network.batteries))
        assert sched is not None and sched.time == pytest.approx(1.0)
        assert pol.next_dispatch_time(t1) == pytest.approx(2.0)

    def test_stable_rates_never_replan(self, tiny_network):
        pol = MinTotalDistanceVarPolicy()
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 16.0)
        assert out.metrics.perpetual
        assert pol.n_replans == 0

    def test_reset_clears_state(self, tiny_network):
        pol = MinTotalDistanceVarPolicy()
        simulate(tiny_network, pol, FixedWorkload.from_network(tiny_network), 8.0)
        pol.reset(tiny_network, horizon=8.0)
        assert pol.next_dispatch_time(0.0) is None  # no plan until observe

    def test_unknown_kernel_backend_rejected_at_construction(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            MinTotalDistanceVarPolicy(kernel_backend="warp-drive")

    def test_fast_backend_replays_identically(self, tiny_network):
        results = {}
        for name in (None, "fast"):
            pol = MinTotalDistanceVarPolicy(kernel_backend=name)
            out = simulate(tiny_network, pol,
                           FixedWorkload.from_network(tiny_network), 16.0)
            results[name] = out.metrics.service_cost
        assert results["fast"] == results[None]


class TestReplanTriggers:
    def _warm_policy(self, net, horizon=32.0):
        pol = MinTotalDistanceVarPolicy()
        pol.reset(net, horizon)
        pol.observe(_view(0.0, net.batteries, net.rates, net.batteries))
        return pol

    def test_cycle_shrink_triggers_replan(self, tiny_network):
        pol = self._warm_policy(tiny_network)
        rates = tiny_network.rates.copy()
        rates[3] *= 4.0  # sensor 3's cycle drops from 8 to 2 < assigned 8
        pol.observe(_view(10.0, np.full(tiny_network.n, 0.9), rates,
                          tiny_network.batteries))
        assert pol.n_replans == 1

    def test_cycle_double_triggers_replan(self, tiny_network):
        pol = self._warm_policy(tiny_network)
        rates = tiny_network.rates.copy()
        rates[0] /= 4.0  # sensor 0's cycle grows 1 -> 4 >= 2 * assigned 1
        pol.observe(_view(10.0, np.full(tiny_network.n, 0.9), rates,
                          tiny_network.batteries))
        assert pol.n_replans == 1

    def test_within_window_keeps_plan(self, tiny_network):
        pol = self._warm_policy(tiny_network)
        rates = tiny_network.rates / 1.5  # cycles * 1.5: inside [tau', 2 tau')
        pol.observe(_view(10.0, tiny_network.batteries, rates,
                          tiny_network.batteries))
        assert pol.n_replans == 0

    def test_low_energy_survival_check_triggers(self, tiny_network):
        pol = self._warm_policy(tiny_network)
        # Same rates, but sensor 3 (assigned cycle 8, next charge t=8) is
        # nearly empty at t=2: it cannot reach t=8 -> replan + patch.
        energy = tiny_network.batteries.copy()
        energy[3] = 0.05
        pol.observe(_view(2.0, energy, tiny_network.rates, tiny_network.batteries))
        assert pol.n_replans == 1
        # The patch must charge sensor 3 at t=2 itself (lifetime 0.4 < tau1).
        t = pol.next_dispatch_time(2.0)
        assert t == pytest.approx(2.0)
        sched = pol.dispatch(_view(2.0, energy, tiny_network.rates,
                                   tiny_network.batteries))
        assert 3 in sched.charged_sensors


class TestEndToEnd:
    def test_variable_workload_perpetual(self, paper_network_small):
        wl = ResampledWorkload(network=paper_network_small,
                               distribution=LinearCycleDistribution(),
                               slot_duration=10.0, seed=5)
        pol = MinTotalDistanceVarPolicy()
        out = simulate(paper_network_small, pol, wl, 300.0)
        assert out.metrics.perpetual
        assert pol.n_replans > 0  # resampled cycles must force replans

    def test_report_threshold_reduces_replans(self, paper_network_small):
        wl = ResampledWorkload(network=paper_network_small,
                               distribution=LinearCycleDistribution(),
                               slot_duration=10.0, seed=5)
        eager = MinTotalDistanceVarPolicy(report_threshold=0.0)
        lazy = MinTotalDistanceVarPolicy(report_threshold=1.5)
        out_e = simulate(paper_network_small, eager, wl, 300.0)
        out_l = simulate(paper_network_small, lazy, wl, 300.0)
        assert lazy.n_replans <= eager.n_replans
        assert out_e.metrics.perpetual
        # NOTE: a large dead band can in principle cost feasibility; the
        # conservative survival check must still protect the lazy policy.
        assert out_l.metrics.perpetual

    def test_smoothing_gamma_still_perpetual(self, paper_network_small):
        wl = ResampledWorkload(network=paper_network_small,
                               distribution=LinearCycleDistribution(),
                               slot_duration=10.0, seed=6)
        pol = MinTotalDistanceVarPolicy(gamma=0.5)
        out = simulate(paper_network_small, pol, wl, 300.0)
        assert out.metrics.perpetual
