"""Unit tests for :mod:`repro.adaptive.predictor` and monitor."""

import numpy as np
import pytest

from repro.adaptive.monitor import VariationMonitor
from repro.adaptive.predictor import EwmaRatePredictor
from repro.errors import ConfigError


class TestEwmaPredictor:
    def test_first_observation_initialises(self):
        p = EwmaRatePredictor(gamma=0.5)
        assert not p.initialized
        p.update(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(p.predicted_rates, [1.0, 2.0])

    def test_ewma_formula(self):
        p = EwmaRatePredictor(gamma=0.25)
        p.update(np.array([1.0]))
        p.update(np.array([2.0]))
        # 0.25 * 2 + 0.75 * 1 = 1.25
        assert p.predicted_rates[0] == pytest.approx(1.25)

    def test_gamma_one_tracks_exactly(self):
        p = EwmaRatePredictor(gamma=1.0)
        p.update(np.array([1.0]))
        p.update(np.array([5.0]))
        assert p.predicted_rates[0] == pytest.approx(5.0)

    def test_conservative_rates_take_max(self):
        p = EwmaRatePredictor(gamma=0.1)
        p.update(np.array([1.0]))
        p.update(np.array([10.0]))  # smoothed ~1.9, observed 10
        assert p.conservative_rates()[0] == pytest.approx(10.0)
        p.update(np.array([0.5]))   # smoothed stays above observed now
        assert p.conservative_rates()[0] > 0.5

    def test_predicted_cycles(self):
        p = EwmaRatePredictor()
        p.update(np.array([0.5, 0.0]))
        tau = p.predicted_cycles(np.array([1.0, 1.0]))
        assert tau[0] == pytest.approx(2.0)
        assert tau[1] == np.inf

    def test_query_before_update_raises(self):
        with pytest.raises(ConfigError):
            EwmaRatePredictor().predicted_rates

    @pytest.mark.parametrize("gamma", [0.0, -0.5, 1.5])
    def test_rejects_bad_gamma(self, gamma):
        with pytest.raises(ConfigError):
            EwmaRatePredictor(gamma=gamma)

    def test_rejects_bad_observation(self):
        p = EwmaRatePredictor()
        with pytest.raises(ConfigError):
            p.update(np.array([-1.0]))
        with pytest.raises(ConfigError):
            p.update(np.array([np.inf]))

    def test_shape_change_raises(self):
        p = EwmaRatePredictor()
        p.update(np.ones(3))
        with pytest.raises(ConfigError):
            p.update(np.ones(4))


class TestVariationMonitor:
    def test_zero_threshold_reports_everything(self):
        m = VariationMonitor(0.0)
        m.update(np.array([10.0]))
        m.update(np.array([10.001]))
        assert m.reported[0] == pytest.approx(10.001)

    def test_dead_band_suppresses_small_moves(self):
        m = VariationMonitor(0.1)
        m.update(np.array([10.0]))
        m.update(np.array([10.5]))   # 5% move < 10% band
        assert m.reported[0] == pytest.approx(10.0)
        m.update(np.array([12.0]))   # 20% move > band
        assert m.reported[0] == pytest.approx(12.0)

    def test_per_sensor_independence(self):
        m = VariationMonitor(0.1)
        m.update(np.array([10.0, 10.0]))
        m.update(np.array([10.5, 20.0]))
        np.testing.assert_allclose(m.reported, [10.0, 20.0])

    def test_changed_since(self):
        m = VariationMonitor(0.0)
        m.update(np.array([1.0, 2.0]))
        prev = m.reported
        m.update(np.array([1.0, 3.0]))
        np.testing.assert_array_equal(m.changed_since(prev), [False, True])

    def test_query_before_update_raises(self):
        with pytest.raises(ConfigError):
            VariationMonitor().reported

    def test_rejects_negative_threshold(self):
        with pytest.raises(ConfigError):
            VariationMonitor(-0.1)


class TestVariationMonitorAliveMask:
    def test_offline_sensors_stay_frozen(self):
        m = VariationMonitor(0.0)
        m.update(np.array([10.0, 20.0]))
        m.update(np.array([99.0, 25.0]), alive=np.array([False, True]))
        np.testing.assert_allclose(m.reported, [10.0, 25.0])

    def test_alive_composes_with_dead_band(self):
        m = VariationMonitor(0.1)
        m.update(np.array([10.0, 10.0]))
        # Both moves exceed the band, but sensor 0 is offline.
        m.update(np.array([20.0, 20.0]), alive=np.array([False, True]))
        np.testing.assert_allclose(m.reported, [10.0, 20.0])

    def test_first_update_seeds_even_with_mask(self):
        m = VariationMonitor(0.0)
        m.update(np.array([1.0, 2.0]), alive=np.array([True, False]))
        np.testing.assert_allclose(m.reported, [1.0, 2.0])

    def test_mask_shape_mismatch_raises(self):
        m = VariationMonitor(0.0)
        m.update(np.ones(2))
        with pytest.raises(ConfigError):
            m.update(np.ones(2), alive=np.ones(3, dtype=bool))
