"""Unit tests for :mod:`repro.graphs.forest`."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.forest import RootedForest, forest_from_parent


@pytest.fixture
def simple_forest():
    """Roots 10, 11; tree0 = 10-0-1, tree1 = 11-2."""
    return RootedForest(roots=(10, 11), trees=(((10, 0), (0, 1)), ((11, 2),)))


@pytest.fixture
def dist6x12():
    d = np.zeros((12, 12))
    for i in range(12):
        for j in range(12):
            d[i, j] = abs(i - j)
    return d


class TestRootedForest:
    def test_nodes_of(self, simple_forest):
        assert simple_forest.nodes_of(0) == {10, 0, 1}
        assert simple_forest.nodes_of(1) == {11, 2}

    def test_all_nodes_and_edges(self, simple_forest):
        assert simple_forest.all_nodes() == {10, 11, 0, 1, 2}
        assert len(simple_forest.all_edges()) == 3

    def test_weight(self, simple_forest, dist6x12):
        # edges (10,0)=10, (0,1)=1, (11,2)=9
        assert simple_forest.weight(dist6x12) == pytest.approx(20.0)
        assert simple_forest.tree_weight(0, dist6x12) == pytest.approx(11.0)
        assert simple_forest.tree_weight(1, dist6x12) == pytest.approx(9.0)

    def test_empty_tree_weight(self):
        f = RootedForest(roots=(5,), trees=((),))
        assert f.tree_weight(0, np.zeros((6, 6))) == 0.0
        assert f.weight(np.zeros((6, 6))) == 0.0

    def test_preorder_starts_at_root(self, simple_forest):
        assert simple_forest.preorder_of(0) == [10, 0, 1]
        assert simple_forest.preorder_of(1) == [11, 2]

    def test_preorder_of_isolated_root(self):
        f = RootedForest(roots=(3,), trees=((),))
        assert f.preorder_of(0) == [3]

    def test_validate_spanning(self, simple_forest):
        simple_forest.validate_spanning([0, 1, 2])
        with pytest.raises(GraphError, match="not spanned"):
            simple_forest.validate_spanning([0, 1, 2, 3])

    def test_rejects_duplicate_roots(self):
        with pytest.raises(GraphError, match="duplicate"):
            RootedForest(roots=(1, 1), trees=((), ()))

    def test_rejects_overlapping_trees(self):
        with pytest.raises(GraphError, match="share"):
            RootedForest(roots=(10, 11), trees=(((10, 0),), ((11, 0),)))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError):
            RootedForest(roots=(1, 2), trees=((),))

    def test_q(self, simple_forest):
        assert simple_forest.q == 2


class TestForestFromParent:
    def test_basic(self):
        f = forest_from_parent([10, 11], {0: 10, 1: 0, 2: 11})
        assert f.nodes_of(0) == {10, 0, 1}
        assert f.nodes_of(1) == {11, 2}

    def test_unreachable_node_raises(self):
        with pytest.raises(GraphError, match="no root"):
            forest_from_parent([10], {0: 1, 1: 0})

    def test_root_with_parent_raises(self):
        with pytest.raises(GraphError, match="root"):
            forest_from_parent([10], {10: 0, 0: 10})

    def test_empty_parent_map(self):
        f = forest_from_parent([4, 5], {})
        assert f.all_nodes() == {4, 5}
