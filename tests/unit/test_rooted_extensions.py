"""Unit tests for :mod:`repro.rooted.minmax` and :mod:`repro.rooted.capacity`."""

import numpy as np
import pytest

from repro.errors import TourError
from repro.geometry.distance import distance_matrix
from repro.rooted.capacity import split_tour_by_budget, split_tours_by_budget
from repro.rooted.minmax import makespan, minmax_q_rooted_tours
from repro.rooted.qtsp import q_rooted_tsp
from repro.tsp.tour import Tour


@pytest.fixture
def instance(rng):
    coords = rng.uniform(0, 100, size=(24, 2))
    return distance_matrix(coords)


SENSORS = list(range(20))
DEPOTS = [20, 21, 22, 23]


class TestMinMax:
    def test_never_increases_makespan(self, instance):
        result = minmax_q_rooted_tours(instance, SENSORS, DEPOTS)
        assert result.final_makespan <= result.initial_makespan + 1e-9
        assert result.final_makespan == pytest.approx(
            makespan(instance, result.tours))

    def test_coverage_and_structure_preserved(self, instance):
        result = minmax_q_rooted_tours(instance, SENSORS, DEPOTS)
        assert [t.depot for t in result.tours] == DEPOTS
        covered: set[int] = set()
        for t in result.tours:
            stops = set(t.stops())
            assert not (stops & covered)
            covered |= stops
        assert covered == set(SENSORS)

    def test_improves_unbalanced_instances(self, rng):
        # All sensors clustered near depot 0; depot 1 idles across the map.
        # Total-cost-optimal tours give depot 1 nothing; balancing must
        # offload some stops to it if that helps the makespan... with the
        # cluster near depot 0 it may NOT help — so build a genuinely
        # splittable geometry: sensors on a line between the two depots.
        coords = np.array([[float(10 * i), 0.0] for i in range(10)]
                          + [[0.0, 5.0], [90.0, 5.0]])
        d = distance_matrix(coords)
        sensors = list(range(10))
        depots = [10, 11]
        base = q_rooted_tsp(d, sensors, depots, refine=True)
        result = minmax_q_rooted_tours(d, sensors, depots)
        assert result.final_makespan <= makespan(d, base) + 1e-9

    def test_improvement_metric(self, instance):
        result = minmax_q_rooted_tours(instance, SENSORS, DEPOTS)
        assert 0.0 <= result.improvement < 1.0

    def test_empty_sensor_set(self, instance):
        result = minmax_q_rooted_tours(instance, [], DEPOTS)
        assert result.final_makespan == 0.0
        assert all(t.is_empty for t in result.tours)

    def test_single_depot_cannot_rebalance(self, instance):
        result = minmax_q_rooted_tours(instance, SENSORS, [23])
        assert result.moves == 0
        assert result.tours[0].visited() == set(SENSORS) | {23}

    def test_makespan_at_most_total_of_qtsp(self, instance):
        # Balancing the max can raise the sum, but never beyond the point
        # where one tour alone exceeds the original total.
        base_total = sum(t.cost(instance)
                         for t in q_rooted_tsp(instance, SENSORS, DEPOTS))
        result = minmax_q_rooted_tours(instance, SENSORS, DEPOTS)
        assert result.final_makespan <= base_total + 1e-9


class TestCapacitySplitting:
    def test_no_split_when_budget_suffices(self, instance):
        tour = q_rooted_tsp(instance, SENSORS, [20])[0]
        budget = tour.cost(instance) * 1.01
        result = split_tour_by_budget(instance, tour, budget)
        assert result.n_trips == 1
        assert result.total_cost == pytest.approx(tour.cost(instance))

    def test_every_trip_within_budget(self, instance):
        tour = q_rooted_tsp(instance, SENSORS, [20])[0]
        budget = tour.cost(instance) / 3.0
        result = split_tour_by_budget(instance, tour, budget)
        assert result.n_trips >= 3
        for trip in result.trips:
            assert trip.cost(instance) <= budget * (1 + 1e-6)
            assert trip.depot == 20

    def test_coverage_preserved(self, instance):
        tour = q_rooted_tsp(instance, SENSORS, [20])[0]
        result = split_tour_by_budget(instance, tour, tour.cost(instance) / 2.5)
        covered = set().union(*(set(t.stops()) for t in result.trips))
        assert covered == set(tour.stops())

    def test_stop_order_preserved(self, instance):
        tour = q_rooted_tsp(instance, SENSORS, [20])[0]
        result = split_tour_by_budget(instance, tour, tour.cost(instance) / 2.0)
        flattened = [s for t in result.trips for s in t.stops()]
        assert flattened == list(tour.stops())

    def test_total_cost_counts_overhead(self, instance):
        tour = q_rooted_tsp(instance, SENSORS, [20])[0]
        result = split_tour_by_budget(instance, tour, tour.cost(instance) / 3.0)
        assert result.total_cost >= tour.cost(instance) - 1e-9

    def test_unreachable_stop_raises(self):
        d = distance_matrix(np.array([[0, 0], [100, 0]], dtype=float))
        tour = Tour(depot=0, order=(0, 1))
        with pytest.raises(TourError, match="cannot reach"):
            split_tour_by_budget(d, tour, 150.0)  # round trip is 200

    def test_minimal_feasible_budget(self):
        # Budget exactly the worst round trip: every stop its own trip.
        coords = np.array([[0, 0], [10, 0], [0, 10], [7, 7]], dtype=float)
        d = distance_matrix(coords)
        tour = Tour(depot=0, order=(0, 1, 3, 2))
        worst = 2 * max(d[0, 1], d[0, 2], d[0, 3])
        result = split_tour_by_budget(d, tour, worst)
        for trip in result.trips:
            assert trip.cost(d) <= worst * (1 + 1e-6)

    def test_empty_tour(self, instance):
        result = split_tour_by_budget(instance, Tour.empty(20), 100.0)
        assert result.n_trips == 1 and result.total_cost == 0.0

    def test_bad_budget_raises(self, instance):
        with pytest.raises(TourError):
            split_tour_by_budget(instance, Tour.empty(20), 0.0)

    def test_fleet_helper(self, instance):
        tours = q_rooted_tsp(instance, SENSORS, DEPOTS)
        budget = max(t.cost(instance) for t in tours) / 2.0 + 1.0
        worst_roundtrip = max(
            2 * instance[t.depot, s] for t in tours for s in t.stops())
        budget = max(budget, worst_roundtrip)
        results = split_tours_by_budget(instance, tours, budget)
        assert len(results) == len(tours)
        for r in results:
            for trip in r.trips:
                assert trip.cost(instance) <= budget * (1 + 1e-6)
