"""Unit tests for :mod:`repro.core.cost` and :mod:`repro.core.bounds`."""

import numpy as np
import pytest

from repro.core.bounds import empirical_ratio, lemma3_lower_bound
from repro.core.cost import cost_series, per_charger_cost, service_cost
from repro.core.mintotal import min_total_distance
from repro.errors import ScheduleError


class TestServiceCost:
    def test_matches_plan_total(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        d = tiny_network.dist
        assert service_cost(d, res.plan) == pytest.approx(res.plan.total_cost(d))

    def test_per_charger_sums_to_total(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        d = tiny_network.dist
        per = per_charger_cost(d, res.plan)
        assert per.shape == (tiny_network.q,)
        assert per.sum() == pytest.approx(service_cost(d, res.plan))

    def test_cost_series_periodicity(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=32.0)
        times, costs = cost_series(tiny_network.dist, res.plan)
        bs = res.quantization.block_size
        np.testing.assert_allclose(costs[:bs], costs[bs:2 * bs])
        assert times.shape == costs.shape

    def test_empty_plan(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=1.0)
        assert service_cost(tiny_network.dist, res.plan) == 0.0
        assert per_charger_cost(tiny_network.dist, res.plan).size == 0


class TestLemma3Bound:
    def test_bound_below_algorithm_cost(self, paper_network_small):
        horizon = 200.0
        res = min_total_distance(paper_network_small, horizon)
        cost = service_cost(paper_network_small.dist, res.plan)
        lb = lemma3_lower_bound(paper_network_small, horizon)
        assert 0 < lb.bound <= cost

    def test_ratio_within_guarantee(self, paper_network_small):
        horizon = 200.0
        res = min_total_distance(paper_network_small, horizon)
        cost = service_cost(paper_network_small.dist, res.plan)
        lb = lemma3_lower_bound(paper_network_small, horizon)
        ratio = empirical_ratio(cost, lb)
        assert ratio <= 2 * (res.quantization.K + 2) + 1e-9

    def test_per_level_array_shapes(self, paper_network_small):
        lb = lemma3_lower_bound(paper_network_small, 200.0)
        K = lb.quantization.K
        assert lb.per_level.shape == (K + 1,)
        assert lb.msf_weights.shape == (K + 1,)
        assert lb.bound == pytest.approx(lb.per_level.max())
        assert 0 <= lb.argmax_level <= K

    def test_msf_weights_monotone(self, paper_network_small):
        # Larger prefix sets can only cost more to span.
        lb = lemma3_lower_bound(paper_network_small, 200.0)
        assert np.all(np.diff(lb.msf_weights) >= -1e-9)

    def test_bound_scales_linearly_with_horizon(self, paper_network_small):
        lb1 = lemma3_lower_bound(paper_network_small, 200.0)
        lb2 = lemma3_lower_bound(paper_network_small, 400.0)
        assert lb2.bound == pytest.approx(2 * lb1.bound, rel=1e-6)

    def test_bad_horizon_raises(self, paper_network_small):
        with pytest.raises(ScheduleError):
            lemma3_lower_bound(paper_network_small, 0.0)

    def test_empirical_ratio_handles_zero_bound(self):
        assert empirical_ratio(10.0, 0.0) == float("inf")
        assert empirical_ratio(10.0, 5.0) == pytest.approx(2.0)
