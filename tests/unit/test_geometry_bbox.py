"""Unit tests for :mod:`repro.geometry.bbox`."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point


class TestRect:
    def test_square_factory(self):
        r = Rect.square(1000.0)
        assert (r.x0, r.y0, r.x1, r.y1) == (0, 0, 1000, 1000)
        assert r.area == pytest.approx(1_000_000.0)

    def test_square_with_origin(self):
        r = Rect.square(10.0, origin=(5.0, -5.0))
        assert (r.x0, r.y0, r.x1, r.y1) == (5, -5, 15, 5)

    def test_center(self):
        assert Rect.square(1000.0).center == Point(500.0, 500.0)

    def test_width_height_diagonal(self):
        r = Rect(0, 0, 3, 4)
        assert (r.width, r.height) == (3, 4)
        assert r.diagonal == pytest.approx(5.0)

    @pytest.mark.parametrize("bad", [(1, 1, 1, 2), (0, 0, -1, 5), (0, 5, 3, 5)])
    def test_rejects_degenerate(self, bad):
        with pytest.raises(GeometryError):
            Rect(*bad)

    def test_rejects_non_positive_square(self):
        with pytest.raises(GeometryError):
            Rect.square(0.0)

    def test_contains(self):
        r = Rect.square(10.0)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))  # boundary is inside
        assert not r.contains(Point(10.1, 5))

    def test_sample_inside_and_deterministic(self):
        r = Rect(10, 20, 30, 40)
        a = r.sample(200, rng=7)
        b = r.sample(200, rng=7)
        np.testing.assert_array_equal(a, b)
        assert np.all(a[:, 0] >= 10) and np.all(a[:, 0] <= 30)
        assert np.all(a[:, 1] >= 20) and np.all(a[:, 1] <= 40)

    def test_sample_points_match_sample(self):
        r = Rect.square(5.0)
        pts = r.sample_points(10, rng=3)
        arr = r.sample(10, rng=3)
        for p, row in zip(pts, arr):
            assert (p.x, p.y) == (row[0], row[1])

    def test_sample_rejects_negative(self):
        with pytest.raises(GeometryError):
            Rect.square(1.0).sample(-1)

    def test_sample_zero_is_empty(self):
        assert Rect.square(1.0).sample(0).shape == (0, 2)
