"""Trace hygiene regressions: pair-safe trimming and torn-tail reads.

Satellite bugfixes of the live-observability PR:

* ``trim_trace`` used to drop a raw prefix of the event list, which could
  orphan a marked span — its ``BEGIN`` marker trimmed away while the end
  record survived (or arrived later), leaving an unpairable half in any
  dumped trace.
* ``read_jsonl`` used to raise on a torn final line, which is exactly the
  artefact a crashed append-only writer (a killed shard spilling events)
  leaves behind — making the whole spill unreadable at the moment it
  matters most.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.instrument import Instrumentation, trim_trace
from repro.obs.trace import BEGIN, SPAN, read_jsonl, write_jsonl


def _span_ids(events, kind):
    return [e.attrs.get("span") for e in events if e.kind == kind]


class TestTrimTrace:
    def test_under_limit_is_a_noop(self):
        obs = Instrumentation()
        for _ in range(3):
            with obs.span("work"):
                pass
        assert trim_trace(obs, 10) == 0
        assert len(obs.events) == 3
        assert "trace.truncated" not in obs.counters

    def test_plain_prefix_trim(self):
        obs = Instrumentation()
        for i in range(10):
            obs.event("e", i=i)
        dropped = trim_trace(obs, 4)
        assert dropped == 6
        assert len(obs.events) == 4
        assert [e.attrs["i"] for e in obs.events] == [6, 7, 8, 9]
        assert obs.counters["trace.truncated"] == 6

    def test_completed_pair_with_trimmed_begin_drops_the_end_too(self):
        obs = Instrumentation()
        with obs.span("req", _mark=True):
            pass  # BEGIN at index 0, end record at index 1
        for i in range(10):
            obs.event("filler", i=i)
        # Trim just the BEGIN: the surviving end record must go as well.
        dropped = trim_trace(obs, 11)
        assert dropped == 2
        assert _span_ids(obs.events, BEGIN) == []
        assert [e for e in obs.events if e.kind == SPAN
                and "span" in e.attrs] == []
        assert len(obs.events) == 10
        assert obs.counters["trace.truncated"] == 2

    def test_open_span_crossing_trim_point_is_muted_not_orphaned(self):
        obs = Instrumentation()
        span = obs.span("req", _mark=True)
        span.__enter__()  # long-lived request: BEGIN filed, end pending
        for i in range(20):
            obs.event("filler", i=i)
        trim_trace(obs, 5)  # the BEGIN is in the trimmed prefix
        span.__exit__(None, None, None)
        # The end record must be suppressed: no SPAN record pairing a
        # trimmed BEGIN may appear in the trace.
        begin_ids = set(_span_ids(obs.events, BEGIN))
        for e in obs.events:
            if e.kind == SPAN and "span" in e.attrs:
                assert e.attrs["span"] in begin_ids
        # ... but the measurement itself survives in the timer/sketch.
        assert obs.timers["req"].count == 1
        assert obs.sketches["req"].count == 1

    def test_surviving_pairs_stay_intact(self):
        obs = Instrumentation()
        for i in range(6):
            obs.event("filler", i=i)
        with obs.span("req", _mark=True):
            pass
        trim_trace(obs, 4)  # trims filler only; the pair is in the suffix
        begins = _span_ids(obs.events, BEGIN)
        ends = [e.attrs.get("span") for e in obs.events
                if e.kind == SPAN and "span" in e.attrs]
        assert begins == ends  # still paired
        assert len(begins) == 1

    def test_unmarked_spans_unaffected(self):
        obs = Instrumentation()
        for i in range(10):
            with obs.span("lib"):
                pass
        trim_trace(obs, 4)
        assert len(obs.events) == 4
        assert all(e.kind == SPAN for e in obs.events)

    def test_server_trims_on_pair_boundaries_under_load(self):
        """End-to-end: a serve node with a tiny trace budget never leaves
        an orphaned end record, even with requests crossing the trim."""
        from repro.network.builder import build_paper_network
        from repro.io.network_json import network_to_dict
        from repro.obs import Instrumentation as Obs
        from repro.serve import ServeClient, ServeConfig, ServerThread

        obs = Obs()
        net = network_to_dict(build_paper_network(n=12, q=2, seed=3))
        config = ServeConfig(executor="thread", workers=2, queue_limit=16,
                             default_deadline=60.0, max_trace_events=8)
        with ServerThread(config, obs=obs) as srv:
            with ServeClient(*srv.address) as client:
                for _ in range(12):
                    client.health()
                client.plan(net, 100.0)
        begin_ids = set(_span_ids(obs.events, BEGIN))
        orphaned = [e for e in obs.events
                    if e.kind == SPAN and "span" in e.attrs
                    and e.attrs["span"] not in begin_ids]
        assert orphaned == []
        assert obs.counters.get("trace.truncated", 0) >= 1


class TestTornTailReads:
    def _write_trace(self, tmp_path, n=3):
        obs = Instrumentation()
        for i in range(n):
            obs.event("e", i=i)
        path = tmp_path / "trace.jsonl"
        write_jsonl(obs.events, path)
        return path

    def test_clean_file_round_trips_untruncated(self, tmp_path):
        path = self._write_trace(tmp_path)
        trace = read_jsonl(path)
        assert len(trace) == 3
        assert trace.truncated is False
        assert trace.partial_line is None

    def test_torn_final_line_skipped_and_surfaced(self, tmp_path):
        path = self._write_trace(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"name": "e", "kind": "event", "t": 9.')  # torn write
        trace = read_jsonl(path)
        assert len(trace) == 3  # the complete records all load
        assert trace.truncated is True
        assert trace.partial_line.startswith('{"name": "e"')

    def test_torn_final_line_strict_still_raises(self, tmp_path):
        path = self._write_trace(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"half": ')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = self._write_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:5]  # truncate a record that is NOT last
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_well_formed_json_that_is_not_a_record_raises_midfile(self, tmp_path):
        path = self._write_trace(tmp_path)
        lines = path.read_text().splitlines()
        lines[0] = '{"not": "a trace record"}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(KeyError):
            read_jsonl(path)

    def test_trailing_blank_lines_do_not_mask_the_tail(self, tmp_path):
        path = self._write_trace(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"torn": \n\n\n')  # torn line, then blank padding
        trace = read_jsonl(path)
        assert trace.truncated is True
        assert len(trace) == 3

    def test_result_is_still_a_plain_list(self, tmp_path):
        path = self._write_trace(tmp_path)
        trace = read_jsonl(path)
        assert isinstance(trace, list)
        assert list(trace) == trace[:]  # existing list(...) callers unaffected
