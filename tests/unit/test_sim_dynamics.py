"""Unit tests for dynamic scenarios: charger failures, sensor churn,
charging requests, bounded event logs, spill files and the large-horizon
event-ordering regression."""

import numpy as np
import pytest

from repro.core.schedule import ChargingScheduling
from repro.errors import SimulationError
from repro.network.builder import build_paper_network
from repro.obs.trace import read_jsonl
from repro.sim.engine import simulate
from repro.sim.events import FleetEvent
from repro.sim.metrics import EventLog, EventSpill
from repro.sim.queue import PRIORITY_CHURN, PRIORITY_FAILURE
from repro.sim.sources import EventSource, PoissonRequestSource, ScenarioDynamics
from repro.sim.workload import FixedWorkload
from repro.tsp.tour import Tour


def _network(n=8, q=2, cycle=40.0):
    """Small topology with uniform slow cycles (no deaths over T ~ 10)."""
    net = build_paper_network(n=n, q=q, seed=7, side=100.0)
    return net.with_cycles(np.full(n, cycle))


class _NullPolicy:
    """Never dispatches."""

    def reset(self, network, horizon):
        return None

    def next_dispatch_time(self, now):
        return None

    def observe(self, view):
        return None

    def dispatch(self, view):
        return None


class _OneShotAllPolicy(_NullPolicy):
    """Dispatch once at ``time``: charger 0 tours every sensor."""

    def __init__(self, time):
        self.time = float(time)
        self._done = False
        self._net = None

    def reset(self, network, horizon):
        self._done = False
        self._net = network

    def next_dispatch_time(self, now):
        return None if self._done else self.time

    def dispatch(self, view):
        self._done = True
        net = self._net
        d0 = net.depot_index(0)
        tours = [Tour.from_sequence(d0, [d0, *range(net.n)])]
        tours += [Tour.empty(net.depot_index(l)) for l in range(1, net.q)]
        return ChargingScheduling(time=view.time, tours=tuple(tours))


class _ForcedFleetSource(EventSource):
    """Deterministically takes one charger down and back up."""

    kind = "failure"

    def __init__(self, charger, down_at, up_at):
        self.charger, self.down_at, self.up_at = charger, down_at, up_at

    def prime(self, rt):
        rt.schedule(self.down_at, PRIORITY_FAILURE, self.kind,
                    data=False, source=self)
        rt.schedule(self.up_at, PRIORITY_FAILURE, self.kind,
                    data=True, source=self)

    def fire(self, rt, event):
        rt.set_charger_available(self.charger, event.data)


class _ForcedChurnSource(EventSource):
    """Deterministically takes one sensor offline and back online."""

    kind = "churn"

    def __init__(self, sensor, leave_at, rejoin_at):
        self.sensor, self.leave_at, self.rejoin_at = sensor, leave_at, rejoin_at

    def prime(self, rt):
        rt.schedule(self.leave_at, PRIORITY_CHURN, self.kind,
                    data=False, source=self)
        rt.schedule(self.rejoin_at, PRIORITY_CHURN, self.kind,
                    data=True, source=self)

    def fire(self, rt, event):
        rt.set_sensor_online(self.sensor, event.data)


class TestChargerFailures:
    def test_downed_charger_tour_degrades_to_stay_at_home(self):
        net = _network()
        out = simulate(net, _OneShotAllPolicy(5.0),
                       FixedWorkload.from_network(net), 10.0,
                       sources=(_ForcedFleetSource(0, 1.0, 9.0),))
        m = out.metrics
        # Charger 0 was down at dispatch time: nobody gets charged, the
        # dispatch costs nothing.
        assert m.n_charges == 0
        assert m.service_cost == 0.0
        assert m.n_dispatches == 1
        assert [(e.charger, e.available) for e in m.fleet] == [(0, False), (0, True)]
        assert m.n_failures == 1

    def test_available_charger_still_tours(self):
        net = _network()
        out = simulate(net, _OneShotAllPolicy(5.0),
                       FixedWorkload.from_network(net), 10.0,
                       sources=(_ForcedFleetSource(1, 1.0, 9.0),))
        # Charger 1 down, but the touring charger is 0: unaffected.
        assert out.metrics.n_charges == net.n
        assert out.metrics.service_cost > 0.0


class TestSensorChurn:
    def test_offline_sensor_freezes_energy(self):
        net = _network()
        rates = net.rates
        out = simulate(net, _NullPolicy(), FixedWorkload.from_network(net),
                       10.0, sources=(_ForcedChurnSource(0, 2.0, 6.0),))
        expected = net.batteries - rates * 10.0
        expected[0] = net.batteries[0] - rates[0] * (10.0 - 4.0)  # frozen 4 units
        np.testing.assert_allclose(out.final_energy, expected, rtol=1e-12)
        assert out.metrics.n_churn_events == 2
        assert [(e.sensor, e.online) for e in out.metrics.churn] == [
            (0, False), (0, True)]

    def test_offline_sensor_not_charged(self):
        net = _network()
        out = simulate(net, _OneShotAllPolicy(4.0),
                       FixedWorkload.from_network(net), 10.0,
                       sources=(_ForcedChurnSource(0, 2.0, 6.0),))
        charged = {e.sensor for e in out.metrics.charges}
        assert 0 not in charged
        assert charged == set(range(1, net.n))

    def test_view_exposes_alive_mask(self):
        net = _network()
        seen = {}

        class Probe(_OneShotAllPolicy):
            def dispatch(self, view):
                seen["alive"] = view.alive_mask.copy()
                return super().dispatch(view)

        simulate(net, Probe(4.0), FixedWorkload.from_network(net), 10.0,
                 sources=(_ForcedChurnSource(0, 2.0, 6.0),))
        assert not seen["alive"][0]
        assert seen["alive"][1:].all()


class TestChargingRequests:
    def test_requests_recorded_and_policy_notified(self):
        net = _network()
        notified = []

        class Listener(_NullPolicy):
            def on_request(self, view, sensor):
                notified.append((view.time, sensor))

        out = simulate(net, Listener(), FixedWorkload.from_network(net), 10.0,
                       sources=(PoissonRequestSource(rate=1.0, seed=3),))
        m = out.metrics
        assert m.n_requests == len(list(m.requests)) == len(notified)
        assert m.n_requests > 0
        assert [(e.time, e.sensor) for e in m.requests] == notified

    def test_policies_without_on_request_are_fine(self):
        net = _network()
        out = simulate(net, _NullPolicy(), FixedWorkload.from_network(net),
                       10.0, sources=(PoissonRequestSource(rate=1.0, seed=3),))
        assert out.metrics.n_requests > 0


class TestScenarioDynamics:
    def test_round_trip(self):
        dyn = ScenarioDynamics(failure_rate=0.1, failure_mttr=2.0,
                               churn_rate=0.2, churn_downtime=3.0,
                               request_rate=0.5, seed=11)
        assert ScenarioDynamics.from_dict(dyn.to_dict()) == dyn
        assert dyn.active
        assert dyn.with_seed(4).seed == 4

    def test_inactive_builds_no_sources(self):
        assert not ScenarioDynamics().active
        assert ScenarioDynamics().build_sources() == ()

    def test_validation(self):
        with pytest.raises(SimulationError):
            ScenarioDynamics(failure_rate=-1.0)
        with pytest.raises(SimulationError):
            ScenarioDynamics(failure_rate=0.1)  # no mttr
        with pytest.raises(SimulationError):
            ScenarioDynamics.from_dict({"bogus": 1.0})

    def test_full_dynamics_run_is_deterministic(self):
        net = _network(n=10, cycle=20.0)
        dyn = ScenarioDynamics(failure_rate=0.2, failure_mttr=2.0,
                               churn_rate=0.3, churn_downtime=3.0,
                               request_rate=0.5, seed=5)
        runs = []
        for _ in range(2):
            out = simulate(net, _OneShotAllPolicy(5.0),
                           FixedWorkload.from_network(net), 30.0,
                           sources=dyn.build_sources())
            runs.append(out)
        a, b = runs
        assert a.metrics.event_log_jsonl() == b.metrics.event_log_jsonl()
        np.testing.assert_array_equal(a.final_energy, b.final_energy)
        # Non-vacuous: every dynamic stream produced events.
        assert a.metrics.n_failures > 0
        assert a.metrics.n_churn_events > 0
        assert a.metrics.n_requests > 0


class TestEventLogBounds:
    def test_ring_keeps_tail_and_exact_counts(self):
        log = EventLog(maxlen=2, name="fleet")
        events = [FleetEvent(time=float(t), charger=0, available=False)
                  for t in range(5)]
        for e in events:
            log.append(e)
        assert len(log) == 2
        assert log.total == 5
        assert log.dropped == 3
        assert list(log) == events[-2:]

    def test_unbounded_by_default(self):
        log = EventLog()
        for t in range(100):
            log.append(FleetEvent(time=float(t), charger=0, available=True))
        assert len(log) == log.total == 100
        assert log.dropped == 0

    def test_spill_file_holds_full_history(self, tmp_path):
        net = _network()
        path = tmp_path / "events.jsonl"
        out = simulate(net, _OneShotAllPolicy(5.0),
                       FixedWorkload.from_network(net), 10.0,
                       sources=(PoissonRequestSource(rate=2.0, seed=1),),
                       max_log_events=1, event_spill=path)
        m = out.metrics
        assert len(list(m.requests)) <= 1      # ring truncated in memory ...
        assert m.n_requests > 1                # ... counts stay exact
        spilled = list(read_jsonl(path))
        totals = (m.dispatches.total + m.charges.total + m.deaths.total
                  + m.fleet.total + m.churn.total + m.requests.total)
        assert len(spilled) == totals          # ... and the file has everything
        names = {e.name for e in spilled}
        assert "sim.requests" in names and "sim.charges" in names

    def test_spill_context_manager_writes_readable_events(self, tmp_path):
        path = tmp_path / "one.jsonl"
        with EventSpill(path) as spill:
            spill.write("fleet", FleetEvent(time=1.5, charger=2, available=False))
        (event,) = list(read_jsonl(path))
        assert event.name == "sim.fleet"
        assert event.t == 1.5
        assert event.attrs["charger"] == 2


class TestLargeHorizonOrdering:
    """Regression: with the old absolute 1e-9 tolerance, a dispatch one ulp
    before a slot boundary at t = 2**27 fired in its own earlier batch —
    before the policy observed the slot's new rates."""

    def test_observe_fires_before_coincident_dispatch(self):
        net = _network(n=4, cycle=2.0**30)
        big = 2.0**27
        calls = []

        class Probe(_NullPolicy):
            def __init__(self):
                self._done = False

            def reset(self, network, horizon):
                self._done = False

            def next_dispatch_time(self, now):
                return None if self._done else float(np.nextafter(big, 0.0))

            def observe(self, view):
                calls.append(("observe", view.time))

            def dispatch(self, view):
                self._done = True
                calls.append(("dispatch", view.time))
                return None

        workload = FixedWorkload(rates=net.rates, slot_duration=big)
        simulate(net, Probe(), workload, 1.5 * big)
        kinds = [kind for kind, _ in calls]
        assert "dispatch" in kinds
        boundary_observe = kinds.index("observe", 1)  # initial observe is t=0
        assert boundary_observe < kinds.index("dispatch")
        # Both fire at the batch's anchor instant, coincident with the
        # boundary (the anchor is the earliest member, one ulp below).
        from repro.sim.queue import coincident

        assert coincident(calls[boundary_observe][1], big)
