"""Unit tests for :mod:`repro.reporting`."""

import csv

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import get_figure
from repro.experiments.sweeps import sweep
from repro.reporting.csvio import sweep_to_csv, write_csv
from repro.reporting.summary import figure_report, sweep_summary
from repro.reporting.table import format_table, render_sweep


@pytest.fixture(scope="module")
def tiny_sweep():
    cfg = ExperimentConfig(n=20, horizon=60.0, n_topologies=2, seed=4,
                           algorithms=("mtd", "greedy"))
    return sweep(cfg, "n", [20, 25])


class TestFormatTable:
    def test_alignment_and_precision(self):
        out = format_table(["a", "bb"], [[1, 2.3456], [10, 7.1]], precision=2)
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "2.35" in out and "7.10" in out

    def test_indent(self):
        out = format_table(["x"], [[1]], indent="  ")
        assert all(line.startswith("  ") for line in out.splitlines())

    def test_wide_cells_extend_columns(self):
        out = format_table(["x"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in out

    def test_non_float_values_passthrough(self):
        out = format_table(["x", "y"], [["abc", 3]])
        assert "abc" in out


class TestRenderSweep:
    def test_includes_all_algorithms(self, tiny_sweep):
        out = render_sweep(tiny_sweep)
        assert "mtd" in out and "greedy" in out

    def test_ratio_column(self, tiny_sweep):
        out = render_sweep(tiny_sweep, with_ratio=("mtd", "greedy"))
        assert "mtd/greedy" in out


class TestCsv:
    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with open(path) as fh:
            rows = list(csv.reader(fh))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_sweep_to_csv_columns(self, tiny_sweep, tmp_path):
        path = sweep_to_csv(tiny_sweep, tmp_path / "sweep.csv")
        with open(path) as fh:
            rows = list(csv.reader(fh))
        header = rows[0]
        assert header[0] == "n"
        assert "mtd_mean_cost" in header and "greedy_deaths" in header
        assert len(rows) == 3  # header + 2 sweep values


class TestSummaries:
    def test_sweep_summary_mentions_ratio_and_deaths(self, tiny_sweep):
        out = sweep_summary(tiny_sweep)
        assert "mtd/greedy" in out
        assert "no sensor ever ran out of energy" in out

    def test_figure_report_structure(self, tiny_sweep):
        spec = get_figure("fig1a")
        out = figure_report(spec, tiny_sweep)
        assert out.startswith("== fig1a")
        assert "paper claim" in out
        assert "registered shape check" in out  # fig1a has a check
