"""Unit tests for :mod:`repro.experiments.figures` (registry structure only —
the actual panel reproductions run in ``benchmarks/``)."""

import pytest

from repro.errors import ConfigError
from repro.experiments.figures import FIGURES, get_figure, run_figure

PAPER_PANELS = ["fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4", "fig5", "fig6"]


class TestRegistry:
    def test_all_paper_panels_registered(self):
        for fid in PAPER_PANELS:
            assert fid in FIGURES, f"missing paper panel {fid}"

    def test_ablations_registered(self):
        for fid in ["abl-refine", "abl-q", "abl-baselines"]:
            assert fid in FIGURES

    def test_get_figure_unknown_raises_with_catalogue(self):
        with pytest.raises(ConfigError, match="fig1a"):
            get_figure("fig99")

    def test_specs_are_well_formed(self):
        for fid, spec in FIGURES.items():
            assert spec.figure_id == fid
            assert spec.values, f"{fid} has no sweep values"
            assert set(spec.values) <= set(spec.values_full) or len(
                spec.values_full) >= len(spec.values)
            assert hasattr(spec.base, spec.parameter)
            assert spec.paper_claim

    def test_variable_panels_use_var_algorithm(self):
        for fid in ["fig3", "fig4", "fig5", "fig6"]:
            spec = FIGURES[fid]
            assert spec.base.variable
            assert "mtd-var" in spec.base.algorithms

    def test_fixed_panels_use_offline_algorithm(self):
        for fid in ["fig1a", "fig1b", "fig2a", "fig2b"]:
            spec = FIGURES[fid]
            assert not spec.base.variable
            assert "mtd" in spec.base.algorithms

    def test_distribution_assignment(self):
        assert FIGURES["fig1a"].base.distribution == "linear"
        assert FIGURES["fig1b"].base.distribution == "random"
        assert FIGURES["fig2b"].base.distribution == "random"


class TestRunFigure:
    def test_tiny_run(self):
        # Shrink fig1a to a smoke test: one point, one tiny topology.
        spec = get_figure("fig1a")
        small = spec.base.with_(n_topologies=1, horizon=60.0)
        from repro.experiments.sweeps import sweep

        result = sweep(small, "n", [20])
        assert result.cells[0].by_name("mtd").mean_cost > 0

    def test_run_figure_forwards_reps(self, monkeypatch):
        captured = {}

        def fake_run(self, *, n_topologies=None, full=False, progress=None,
                     obs=None):
            captured["reps"] = n_topologies
            captured["full"] = full
            return "sentinel"

        from repro.experiments import figures as mod

        monkeypatch.setattr(mod.FigureSpec, "run", fake_run)
        out = run_figure("fig1a", n_topologies=7, full=True)
        assert out == "sentinel"
        assert captured == {"reps": 7, "full": True}
