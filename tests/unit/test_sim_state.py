"""Unit tests for :mod:`repro.sim.state`."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.state import EnergyState


@pytest.fixture
def state():
    return EnergyState(np.array([1.0, 2.0, 4.0]))


class TestBasics:
    def test_starts_full(self, state):
        np.testing.assert_array_equal(state.energy, [1, 2, 4])
        np.testing.assert_array_equal(state.fraction, [1, 1, 1])

    def test_readonly_views(self, state):
        with pytest.raises(ValueError):
            state.energy[0] = 0.0
        with pytest.raises(ValueError):
            state.batteries[0] = 0.0

    def test_rejects_bad_batteries(self):
        with pytest.raises(SimulationError):
            EnergyState(np.array([]))
        with pytest.raises(SimulationError):
            EnergyState(np.array([1.0, 0.0]))


class TestDrain:
    def test_linear_drain(self, state):
        deaths = state.drain(np.array([0.5, 0.5, 0.5]), 2.0, 0.0)
        assert deaths == []
        np.testing.assert_allclose(state.energy, [0.0, 1.0, 3.0])

    def test_death_time_interpolated(self, state):
        deaths = state.drain(np.array([1.0, 0.0, 0.0]), 2.0, 10.0)
        assert len(deaths) == 1
        sensor, when = deaths[0]
        assert sensor == 0 and when == pytest.approx(11.0)

    def test_energy_clamped_at_zero(self, state):
        state.drain(np.array([1.0, 0.0, 0.0]), 5.0, 0.0)
        assert state.energy[0] == 0.0

    def test_no_double_death_report(self, state):
        state.drain(np.array([1.0, 0.0, 0.0]), 2.0, 0.0)
        again = state.drain(np.array([1.0, 0.0, 0.0]), 2.0, 2.0)
        assert again == []
        assert len(state.deaths) == 1

    def test_multiple_deaths_sorted_by_time(self):
        s = EnergyState(np.array([1.0, 2.0]))
        deaths = s.drain(np.array([1.0, 4.0]), 1.5, 0.0)
        # sensor 1 dies at 2.0/4.0 = 0.5, sensor 0 at 1.0/1.0 = 1.0.
        assert [d[0] for d in deaths] == [1, 0]
        assert deaths[0][1] == pytest.approx(0.5)
        assert deaths[1][1] == pytest.approx(1.0)

    def test_knife_edge_exact_zero_is_alive(self, state):
        deaths = state.drain(np.array([0.5, 0.0, 0.0]), 2.0, 0.0)
        assert deaths == []  # hits exactly 0.0 -> alive (paper's convention)

    def test_zero_duration_noop(self, state):
        before = state.energy.copy()
        assert state.drain(np.array([1.0, 1.0, 1.0]), 0.0, 0.0) == []
        np.testing.assert_array_equal(state.energy, before)

    def test_negative_duration_raises(self, state):
        with pytest.raises(SimulationError):
            state.drain(np.zeros(3), -1.0, 0.0)

    def test_wrong_shape_raises(self, state):
        with pytest.raises(SimulationError):
            state.drain(np.zeros(2), 1.0, 0.0)

    def test_ever_died_mask(self, state):
        state.drain(np.array([1.0, 0.0, 0.0]), 5.0, 0.0)
        np.testing.assert_array_equal(state.ever_died(), [True, False, False])


class TestCharge:
    def test_charge_full_restores(self, state):
        state.drain(np.array([0.4, 0.4, 0.4]), 1.0, 0.0)
        state.charge_full([0, 2])
        np.testing.assert_allclose(state.energy, [1.0, 1.6, 4.0])

    def test_charge_empty_list_noop(self, state):
        state.charge_full([])
        np.testing.assert_array_equal(state.energy, [1, 2, 4])

    def test_charge_out_of_range_raises(self, state):
        with pytest.raises(SimulationError):
            state.charge_full([5])

    def test_dead_sensor_revives_on_charge(self, state):
        state.drain(np.array([1.0, 0.0, 0.0]), 5.0, 0.0)
        state.charge_full([0])
        assert state.energy[0] == 1.0
        assert state.ever_died()[0]  # history remains

    def test_lifetimes(self, state):
        lt = state.residual_lifetimes(np.array([0.5, 0.0, 2.0]))
        assert lt[0] == pytest.approx(2.0)
        assert lt[1] == np.inf
        assert lt[2] == pytest.approx(2.0)
