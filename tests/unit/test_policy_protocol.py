"""Protocol-conformance tests: every policy behaves uniformly.

The simulator only assumes the :class:`~repro.sim.policies.ChargingPolicy`
protocol; these tests pin the behavioural contract for *every* shipped
policy at once, so adding a policy that violates it fails loudly here.
"""

import math

import numpy as np
import pytest

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.core.mintotal import min_total_distance
from repro.sim.engine import simulate
from repro.sim.policies import ChargingPolicy, PlannedPolicy
from repro.sim.workload import FixedWorkload

HORIZON = 16.0


def _all_policies(net):
    return [
        PlannedPolicy(min_total_distance(net, HORIZON).plan),
        GreedyOnDemandPolicy(),
        NaiveChargeAllPolicy(),
        MinTotalDistanceVarPolicy(),
        MinTotalDistanceVarPolicy(patch_tie_break="defer"),
        MinTotalDistanceVarPolicy(gamma=0.5),
    ]


class TestProtocolConformance:
    def test_all_satisfy_protocol(self, tiny_network):
        for pol in _all_policies(tiny_network):
            assert isinstance(pol, ChargingPolicy), type(pol).__name__

    def test_all_keep_tiny_network_alive(self, tiny_network):
        wl = FixedWorkload.from_network(tiny_network)
        for pol in _all_policies(tiny_network):
            out = simulate(tiny_network, pol, wl, HORIZON)
            assert out.metrics.perpetual, type(pol).__name__

    def test_all_are_reusable_after_reset(self, tiny_network):
        """Two consecutive runs of the same policy object must agree —
        reset() has to clear every piece of internal state."""
        wl = FixedWorkload.from_network(tiny_network)
        for pol in _all_policies(tiny_network):
            a = simulate(tiny_network, pol, wl, HORIZON)
            b = simulate(tiny_network, pol, wl, HORIZON)
            assert a.metrics.service_cost == pytest.approx(
                b.metrics.service_cost), type(pol).__name__
            assert a.metrics.n_charges == b.metrics.n_charges

    def test_dispatch_times_never_in_past(self, tiny_network):
        """next_dispatch_time(now) must be >= now for every policy along a
        real run (the engine enforces it; this isolates the property)."""
        wl = FixedWorkload.from_network(tiny_network)

        class Probe:
            def __init__(self, inner):
                self.inner = inner
                self.violations = 0

            def reset(self, net, horizon):
                self.inner.reset(net, horizon)

            def next_dispatch_time(self, now):
                t = self.inner.next_dispatch_time(now)
                if t is not None and t < now - 1e-9:
                    self.violations += 1
                return t

            def observe(self, view):
                self.inner.observe(view)

            def dispatch(self, view):
                return self.inner.dispatch(view)

        for pol in _all_policies(tiny_network):
            probe = Probe(pol)
            simulate(tiny_network, probe, wl, HORIZON)
            assert probe.violations == 0, type(pol).__name__

    def test_charged_nodes_are_sensors(self, tiny_network):
        """No policy may ever try to 'charge' a depot."""
        wl = FixedWorkload.from_network(tiny_network)
        for pol in _all_policies(tiny_network):
            out = simulate(tiny_network, pol, wl, HORIZON)
            for ev in out.metrics.charges:
                assert 0 <= ev.sensor < tiny_network.n

    def test_costs_are_finite_and_nonnegative(self, tiny_network):
        wl = FixedWorkload.from_network(tiny_network)
        for pol in _all_policies(tiny_network):
            out = simulate(tiny_network, pol, wl, HORIZON)
            assert math.isfinite(out.metrics.service_cost)
            assert out.metrics.service_cost >= 0
            assert np.all(out.metrics.per_charger >= 0)
