"""Unit tests for :mod:`repro.core.mintotal` (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.feasibility import check_feasibility
from repro.core.mintotal import build_block, min_total_distance
from repro.core.quantize import quantize_cycles
from repro.errors import ScheduleError


class TestPlanStructure:
    def test_dispatch_times_are_tau1_grid(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        # tau1 = 1 -> dispatches at 1..15 (never at T itself)
        np.testing.assert_allclose(res.plan.times, np.arange(1.0, 16.0))

    def test_no_dispatch_at_horizon(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=8.0)
        assert res.plan.times[-1] < 8.0

    def test_block_repeats(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=32.0)
        bs = res.quantization.block_size  # 8 (K = 3)
        assert bs == 8
        # Scheduling j and j + block_size share the same tour tuple object.
        for j in range(len(res.plan) - bs):
            assert res.plan[j].tours is res.plan[j + bs].tours

    def test_class_membership_drives_coverage(self, tiny_network):
        # cycles [1,2,4,8,2,4]: sensor0 charged every slot, sensor3 every 8th.
        res = min_total_distance(tiny_network, horizon=16.0)
        assert res.plan.charge_times_of(0) == pytest.approx(list(np.arange(1.0, 16.0)))
        assert res.plan.charge_times_of(3) == pytest.approx([8.0])

    def test_depots_never_charged(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=16.0)
        covered = res.plan.sensors_covered()
        assert covered == set(range(tiny_network.n))

    def test_start_time_offsets_grid(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=10.0, start_time=4.0)
        assert res.plan.times[0] == pytest.approx(5.0)
        assert res.plan.times[-1] < 10.0

    def test_cycles_override(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=8.0,
                                 cycles=np.full(tiny_network.n, 2.0))
        assert res.quantization.K == 0
        np.testing.assert_allclose(res.plan.times, [2.0, 4.0, 6.0])


class TestFeasibility:
    def test_plan_is_feasible(self, paper_network_small):
        res = min_total_distance(paper_network_small, horizon=200.0)
        report = check_feasibility(res.plan, paper_network_small.cycles)
        assert report.feasible, report.summary()

    def test_feasible_under_random_cycles(self, paper_network_random_cycles):
        net = paper_network_random_cycles
        res = min_total_distance(net, horizon=200.0)
        assert check_feasibility(res.plan, net.cycles).feasible


class TestBlockCosts:
    def test_block_costs_monotone_in_coverage(self, tiny_network):
        # The full-coverage scheduling costs at least the V0-only one.
        res = min_total_distance(tiny_network, horizon=16.0)
        costs = res.block_costs(tiny_network.dist)
        assert costs[-1] >= costs[0] - 1e-9

    def test_build_block_caches_identical_sets(self, tiny_network):
        quant = quantize_cycles(tiny_network.cycles)
        block = build_block(tiny_network, quant)
        # Schedulings 1,3,5,7 all cover exactly V0 -> same tuple object.
        assert block[0] is block[2] is block[4] is block[6]

    def test_refine_never_worsens_block(self, paper_network_small):
        plain = min_total_distance(paper_network_small, horizon=64.0)
        refined = min_total_distance(paper_network_small, horizon=64.0, refine=True)
        d = paper_network_small.dist
        assert (refined.plan.total_cost(d) <= plain.plan.total_cost(d) + 1e-9)


class TestValidation:
    def test_bad_horizon_raises(self, tiny_network):
        with pytest.raises(ScheduleError):
            min_total_distance(tiny_network, horizon=0.0)
        with pytest.raises(ScheduleError):
            min_total_distance(tiny_network, horizon=5.0, start_time=5.0)

    def test_bad_cycles_shape_raises(self, tiny_network):
        with pytest.raises(ScheduleError):
            min_total_distance(tiny_network, horizon=10.0, cycles=np.ones(3))

    def test_short_horizon_empty_plan(self, tiny_network):
        # horizon <= tau1: nothing needs charging before T.
        res = min_total_distance(tiny_network, horizon=1.0)
        assert len(res.plan) == 0
