"""Unit tests for :mod:`repro.geometry.distance`."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.distance import (
    check_metric,
    distance_matrix,
    euclidean,
    pairwise_from_points,
    path_length,
)
from repro.geometry.point import Point


class TestDistanceMatrix:
    def test_known_values(self):
        coords = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 8.0]])
        d = distance_matrix(coords)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 2] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(8.0)

    def test_symmetric_zero_diagonal(self, rng):
        coords = rng.uniform(0, 100, size=(40, 2))
        d = distance_matrix(coords)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_array_equal(np.diag(d), np.zeros(40))

    def test_matches_scalar_euclidean(self, rng):
        coords = rng.uniform(0, 10, size=(10, 2))
        d = distance_matrix(coords)
        pts = [Point(x, y) for x, y in coords]
        for i in range(10):
            for j in range(10):
                assert d[i, j] == pytest.approx(euclidean(pts[i], pts[j]))

    def test_single_point(self):
        d = distance_matrix(np.array([[1.0, 2.0]]))
        assert d.shape == (1, 1) and d[0, 0] == 0.0

    @pytest.mark.parametrize("shape", [(0, 2), (3, 3), (4,)])
    def test_rejects_bad_shapes(self, shape):
        with pytest.raises(GeometryError):
            distance_matrix(np.zeros(shape))

    def test_pairwise_from_points_agrees(self):
        pts = [Point(0, 0), Point(1, 1), Point(2, 0)]
        np.testing.assert_allclose(
            pairwise_from_points(pts),
            distance_matrix(np.array([[0, 0], [1, 1], [2, 0]], dtype=float)))


class TestPathLength:
    def test_open_path(self):
        d = distance_matrix(np.array([[0, 0], [3, 4], [3, 0]], dtype=float))
        assert path_length(d, [0, 1, 2]) == pytest.approx(5.0 + 4.0)

    def test_closed_tour_adds_return_edge(self):
        d = distance_matrix(np.array([[0, 0], [3, 4], [3, 0]], dtype=float))
        assert path_length(d, [0, 1, 2], closed=True) == pytest.approx(5 + 4 + 3)

    def test_short_orders(self):
        d = distance_matrix(np.array([[0, 0], [1, 0]], dtype=float))
        assert path_length(d, []) == 0.0
        assert path_length(d, [1]) == 0.0
        assert path_length(d, [0], closed=True) == 0.0


class TestCheckMetric:
    def test_accepts_euclidean(self, rng):
        d = distance_matrix(rng.uniform(0, 50, size=(15, 2)))
        check_metric(d)  # must not raise

    def test_rejects_asymmetric(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(GeometryError, match="symmetric"):
            check_metric(d)

    def test_rejects_negative(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(GeometryError, match="negative"):
            check_metric(d)

    def test_rejects_nonzero_diagonal(self):
        d = np.array([[1.0, 2.0], [2.0, 0.0]])
        with pytest.raises(GeometryError, match="diagonal"):
            check_metric(d)

    def test_rejects_triangle_violation(self):
        d = np.array([[0.0, 1.0, 10.0],
                      [1.0, 0.0, 1.0],
                      [10.0, 1.0, 0.0]])
        with pytest.raises(GeometryError, match="triangle"):
            check_metric(d)

    def test_rejects_non_square(self):
        with pytest.raises(GeometryError, match="square"):
            check_metric(np.zeros((2, 3)))
