"""Unit tests for :mod:`repro.baselines`."""

import numpy as np
import pytest

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.baselines.periodic import periodic_per_sensor_plan
from repro.core.feasibility import check_feasibility
from repro.errors import ConfigError, ScheduleError
from repro.sim.engine import simulate
from repro.sim.workload import FixedWorkload


class TestGreedy:
    def test_perpetual_on_fixed_cycles(self, paper_network_small):
        out = simulate(paper_network_small, GreedyOnDemandPolicy(),
                       FixedWorkload.from_network(paper_network_small), 150.0)
        assert out.metrics.perpetual

    def test_threshold_defaults_to_tau_min(self, tiny_network):
        pol = GreedyOnDemandPolicy()
        pol.reset(tiny_network, 10.0)
        assert pol.threshold == tiny_network.tau_min
        assert pol.interval == pol.threshold

    def test_charges_only_low_sensors(self, tiny_network):
        # cycles [1,2,4,8,2,4]; at the first epoch (t=1) only sensors with
        # residual lifetime <= 1 request: sensors 0 (tau 1) and 1,4 (tau 2).
        out = simulate(tiny_network, GreedyOnDemandPolicy(),
                       FixedWorkload.from_network(tiny_network), 1.5)
        charged = {ev.sensor for ev in out.metrics.charges}
        assert charged == {0, 1, 4}

    def test_charge_counts_scale_with_cycle(self, tiny_network):
        out = simulate(tiny_network, GreedyOnDemandPolicy(),
                       FixedWorkload.from_network(tiny_network), 16.0)
        counts = out.metrics.charges_per_sensor(tiny_network.n)
        # tau=1 sensor charged ~every slot; tau=8 sensor about twice.
        assert counts[0] >= 14
        assert counts[3] <= 3

    def test_explicit_threshold_and_interval(self, tiny_network):
        pol = GreedyOnDemandPolicy(threshold=2.0, decision_interval=1.0)
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 8.0)
        assert out.metrics.perpetual

    def test_interval_exceeding_threshold_rejected(self, tiny_network):
        pol = GreedyOnDemandPolicy(threshold=1.0, decision_interval=2.0)
        with pytest.raises(ConfigError, match="decision_interval"):
            pol.reset(tiny_network, 10.0)

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0}, {"threshold": -1.0}, {"decision_interval": 0.0},
    ])
    def test_bad_params(self, kwargs):
        with pytest.raises(ConfigError):
            GreedyOnDemandPolicy(**kwargs)

    def test_no_dispatch_when_everyone_full(self, tiny_network):
        # Horizon shorter than the first possible request from any sensor
        # with tau > threshold... sensor 0 has tau=1=threshold, so pick a
        # horizon below the first epoch.
        out = simulate(tiny_network, GreedyOnDemandPolicy(),
                       FixedWorkload.from_network(tiny_network), 0.9)
        assert out.metrics.n_dispatches == 0


class TestNaive:
    def test_charges_everyone_each_trigger(self, tiny_network):
        out = simulate(tiny_network, NaiveChargeAllPolicy(),
                       FixedWorkload.from_network(tiny_network), 2.5)
        # Epochs at 1 and 2; sensor 0 (tau=1) triggers both times.
        assert out.metrics.n_dispatches == 2
        assert out.metrics.n_charges == 2 * tiny_network.n

    def test_perpetual(self, tiny_network):
        out = simulate(tiny_network, NaiveChargeAllPolicy(),
                       FixedWorkload.from_network(tiny_network), 16.0)
        assert out.metrics.perpetual

    def test_costs_at_least_greedy(self, paper_network_small):
        wl = FixedWorkload.from_network(paper_network_small)
        naive = simulate(paper_network_small, NaiveChargeAllPolicy(), wl, 100.0)
        greedy = simulate(paper_network_small, GreedyOnDemandPolicy(), wl, 100.0)
        assert naive.metrics.service_cost >= greedy.metrics.service_cost


class TestPeriodicPlan:
    def test_feasible(self, paper_network_small):
        plan = periodic_per_sensor_plan(paper_network_small, 150.0)
        report = check_feasibility(plan, paper_network_small.cycles)
        assert report.feasible, report.summary()

    def test_sensor_periods_on_grid(self, tiny_network):
        plan = periodic_per_sensor_plan(tiny_network, 16.0)
        # Sensor 3 (tau=8): charged at 8 only (16 is the horizon, excluded).
        assert plan.charge_times_of(3) == [8.0]
        # Sensor 2 (tau=4): every 4.
        assert plan.charge_times_of(2) == [4.0, 8.0, 12.0]

    def test_non_integer_ratio_floors(self, tiny_network):
        plan = periodic_per_sensor_plan(
            tiny_network, 10.0,
            cycles=np.array([1.0, 2.5, 2.5, 2.5, 2.5, 2.5]))
        # tau=2.5 -> grid period 2: charged at 2, 4, 6, 8.
        assert plan.charge_times_of(1) == [2.0, 4.0, 6.0, 8.0]

    def test_bad_horizon_raises(self, tiny_network):
        with pytest.raises(ScheduleError):
            periodic_per_sensor_plan(tiny_network, 0.0)

    def test_matches_greedy_cost_on_shared_grid(self, paper_network_small):
        """With its grid pinned to greedy's Δl, the periodic plan and greedy
        coincide: both charge sensor i every floor(tau_i / Δl) * Δl (almost
        surely, for continuously distributed cycles).

        This equality is itself a finding (see DESIGN.md): the power-of-two
        *merging* is the entire source of MinTotalDistance's advantage."""
        wl = FixedWorkload.from_network(paper_network_small)
        from repro.sim.policies import PlannedPolicy

        plan = periodic_per_sensor_plan(paper_network_small, 100.0, grid=1.0)
        per = simulate(paper_network_small, PlannedPolicy(plan), wl, 100.0)
        greedy = simulate(paper_network_small,
                          GreedyOnDemandPolicy(threshold=1.0), wl, 100.0)
        assert per.metrics.service_cost == pytest.approx(
            greedy.metrics.service_cost, rel=1e-6)

    def test_grid_exceeding_min_cycle_rejected(self, paper_network_small):
        with pytest.raises(ScheduleError, match="grid"):
            periodic_per_sensor_plan(paper_network_small, 100.0, grid=100.0)
