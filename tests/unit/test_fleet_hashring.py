"""Unit tests for the fleet's consistent-hash ring and routing key."""

import pytest

from repro.errors import ConfigError
from repro.fleet.hashring import HashRing
from repro.fleet.router import FleetConfig, routing_key
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.io.network_json import network_from_dict

KEYS = [f"key-{i}" for i in range(2000)]


class TestHashRing:
    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert ring.route("anything") == ()
        assert ring.primary("anything") is None
        assert len(ring) == 0

    def test_vnodes_validated(self):
        with pytest.raises(ConfigError):
            HashRing(vnodes=0)

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.primary(k) == "only" for k in KEYS[:50])

    def test_route_is_deterministic_and_distinct(self):
        ring = HashRing(["a", "b", "c", "d"])
        for k in KEYS[:100]:
            order = ring.route(k)
            assert order == ring.route(k)
            assert sorted(order) == ["a", "b", "c", "d"]  # all distinct nodes

    def test_route_n_caps_length(self):
        ring = HashRing(["a", "b", "c"])
        assert len(ring.route("k", 2)) == 2
        assert ring.route("k", 99) == ring.route("k")
        assert ring.route("k", 0) == ()

    def test_membership_independent_of_insert_order(self):
        a = HashRing(["a", "b", "c"])
        b = HashRing(["c", "a", "b"])
        assert all(a.route(k) == b.route(k) for k in KEYS[:200])

    def test_add_remove_idempotent(self):
        ring = HashRing(["a", "b"])
        before = [ring.route(k) for k in KEYS[:50]]
        ring.add("a")
        ring.remove("nope")
        assert [ring.route(k) for k in KEYS[:50]] == before

    def test_removal_only_moves_the_removed_nodes_keys(self):
        ring = HashRing(["a", "b", "c", "d"])
        owners = {k: ring.primary(k) for k in KEYS}
        ring.remove("b")
        for k, owner in owners.items():
            if owner == "b":
                assert ring.primary(k) != "b"
            else:
                assert ring.primary(k) == owner  # everyone else stays put

    def test_failover_successor_matches_post_removal_primary(self):
        # The fail-over contract: route()[1] is exactly where the key
        # lands if its primary is removed from the ring.
        ring = HashRing(["a", "b", "c", "d"])
        for k in KEYS[:200]:
            primary, successor = ring.route(k, 2)
            clone = HashRing(["a", "b", "c", "d"])
            clone.remove(primary)
            assert clone.primary(k) == successor

    def test_balance_within_tolerance(self):
        ring = HashRing(["a", "b", "c", "d"])
        load = ring.load(KEYS)
        assert min(load.values()) > 0.6 * (len(KEYS) / 4)
        assert max(load.values()) < 1.5 * (len(KEYS) / 4)

    def test_readding_restores_ownership(self):
        ring = HashRing(["a", "b", "c"])
        owners = {k: ring.primary(k) for k in KEYS[:300]}
        ring.remove("c")
        ring.add("c")
        assert {k: ring.primary(k) for k in KEYS[:300]} == owners


class TestRoutingKey:
    @pytest.fixture(scope="class")
    def net(self):
        return network_to_dict(build_paper_network(n=14, q=2, seed=9))

    def test_matches_model_fingerprint(self, net):
        # The router's cheap recomputation must equal the model's hash —
        # the property the whole sharding scheme keys on.
        assert routing_key({"network": net, "horizon": 100.0}) == \
            network_from_dict(net).geometry_fingerprint

    def test_ignores_non_geometry_params(self, net):
        a = routing_key({"network": net, "horizon": 100.0})
        b = routing_key({"network": net, "horizon": 999.0, "refine": True,
                         "delay": 0.5})
        assert a == b

    def test_distinct_geometries_distinct_keys(self, net):
        other = network_to_dict(build_paper_network(n=14, q=2, seed=10))
        assert routing_key({"network": net}) != routing_key({"network": other})

    def test_malformed_network_still_routes_deterministically(self):
        bad = {"network": {"sensors": "nonsense"}, "horizon": 1.0}
        assert routing_key(bad) == routing_key(dict(bad))
        assert routing_key(bad) != routing_key({"network": None})


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            FleetConfig(shards=0)
        with pytest.raises(ConfigError):
            FleetConfig(shard_mode="quantum")
        with pytest.raises(ConfigError):
            FleetConfig(retries=-1)

    def test_shard_ids_stable(self):
        assert FleetConfig(shards=3).shard_ids() == \
            ["shard-0", "shard-1", "shard-2"]
