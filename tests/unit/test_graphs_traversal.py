"""Unit tests for :mod:`repro.graphs.traversal`."""

import pytest

from repro.errors import GraphError
from repro.graphs.traversal import adjacency_from_edges, preorder


class TestAdjacencyFromEdges:
    def test_both_directions(self):
        adj = adjacency_from_edges([(0, 1), (1, 2)])
        assert adj[1] == [0, 2]
        assert adj[0] == [1]
        assert adj[2] == [1]

    def test_isolated_nodes_via_nodes_param(self):
        adj = adjacency_from_edges([(0, 1)], nodes=[5])
        assert adj[5] == []

    def test_insertion_order_preserved(self):
        adj = adjacency_from_edges([(0, 3), (0, 1), (0, 2)])
        assert adj[0] == [3, 1, 2]


class TestPreorder:
    def test_path_graph(self):
        adj = adjacency_from_edges([(0, 1), (1, 2), (2, 3)])
        assert preorder(adj, 0) == [0, 1, 2, 3]

    def test_star_graph(self):
        adj = adjacency_from_edges([(0, 1), (0, 2), (0, 3)])
        assert preorder(adj, 0) == [0, 1, 2, 3]

    def test_visits_each_node_once(self):
        edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]
        order = preorder(adjacency_from_edges(edges), 0)
        assert sorted(order) == list(range(6))

    def test_root_first(self):
        edges = [(0, 1), (1, 2)]
        assert preorder(adjacency_from_edges(edges), 2)[0] == 2

    def test_subtree_contiguity(self):
        # In a preorder, each subtree occupies a contiguous block: after
        # descending into child 1 of the root, all of its descendants come
        # before any other child of the root.
        edges = [(0, 1), (1, 2), (1, 3), (0, 4)]
        order = preorder(adjacency_from_edges(edges), 0)
        i1, i4 = order.index(1), order.index(4)
        i2, i3 = order.index(2), order.index(3)
        assert i1 < i2 and i1 < i3
        assert i4 > max(i2, i3) or i4 < i1  # 4 is outside 1's block

    def test_singleton(self):
        assert preorder({7: []}, 7) == [7]

    def test_missing_root_raises(self):
        with pytest.raises(GraphError, match="root"):
            preorder({0: [1], 1: [0]}, 9)

    def test_deep_chain_no_recursion_limit(self):
        n = 50_000
        edges = [(i, i + 1) for i in range(n - 1)]
        order = preorder(adjacency_from_edges(edges), 0)
        assert order == list(range(n))
