"""Unit tests for :mod:`repro.core.schedule`."""

import numpy as np
import pytest

from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.errors import ScheduleError
from repro.geometry.distance import distance_matrix
from repro.tsp.tour import Tour


@pytest.fixture
def dist():
    return distance_matrix(np.array(
        [[0, 0], [10, 0], [10, 10], [0, 10], [5, 5]], dtype=float))


@pytest.fixture
def sched(dist):
    """One scheduling: depot 4 tours sensors 0,1; depot 3 stays home."""
    return ChargingScheduling(
        time=5.0,
        tours=(Tour(depot=4, order=(4, 0, 1)), Tour.empty(3)))


class TestChargingScheduling:
    def test_charged_sensors_excludes_depots(self, sched):
        assert sched.charged_sensors == {0, 1}

    def test_cost_sums_tours(self, sched, dist):
        expected = Tour(depot=4, order=(4, 0, 1)).cost(dist)
        assert sched.cost(dist) == pytest.approx(expected)

    def test_q(self, sched):
        assert sched.q == 2

    def test_at_time_shares_tours(self, sched):
        later = sched.at_time(9.0)
        assert later.time == 9.0
        assert later.tours is sched.tours

    def test_rejects_negative_time(self):
        with pytest.raises(ScheduleError):
            ChargingScheduling(time=-1.0, tours=(Tour.empty(0),))

    def test_rejects_no_tours(self):
        with pytest.raises(ScheduleError):
            ChargingScheduling(time=0.0, tours=())

    def test_rejects_duplicate_depots(self):
        with pytest.raises(ScheduleError, match="one depot"):
            ChargingScheduling(time=0.0, tours=(Tour.empty(3), Tour.empty(3)))


class TestSchedulePlan:
    def _plan(self, sched):
        return SchedulePlan(
            schedulings=(sched.at_time(1.0), sched.at_time(2.0), sched.at_time(8.0)),
            horizon=10.0)

    def test_len_iter_getitem(self, sched):
        plan = self._plan(sched)
        assert len(plan) == 3
        assert [s.time for s in plan] == [1.0, 2.0, 8.0]
        assert plan[1].time == 2.0

    def test_total_cost_caches_repeated_blocks(self, sched, dist):
        plan = self._plan(sched)
        assert plan.total_cost(dist) == pytest.approx(3 * sched.cost(dist))

    def test_charge_times_of(self, sched):
        plan = self._plan(sched)
        assert plan.charge_times_of(0) == [1.0, 2.0, 8.0]
        assert plan.charge_times_of(2) == []

    def test_sensors_covered(self, sched):
        assert self._plan(sched).sensors_covered() == {0, 1}

    def test_between(self, sched):
        plan = self._plan(sched)
        assert [s.time for s in plan.between(1.5, 8.0)] == [2.0]

    def test_rejects_unsorted(self, sched):
        with pytest.raises(ScheduleError, match="increasing"):
            SchedulePlan(schedulings=(sched.at_time(5.0), sched.at_time(1.0)),
                         horizon=10.0)

    def test_rejects_duplicate_times(self, sched):
        with pytest.raises(ScheduleError, match="increasing"):
            SchedulePlan(schedulings=(sched.at_time(5.0), sched.at_time(5.0)),
                         horizon=10.0)

    def test_rejects_dispatch_at_horizon(self, sched):
        with pytest.raises(ScheduleError, match="horizon"):
            SchedulePlan(schedulings=(sched.at_time(10.0),), horizon=10.0)

    def test_from_schedulings_sorts(self, sched):
        plan = SchedulePlan.from_schedulings(
            [sched.at_time(5.0), sched.at_time(1.0)], horizon=10.0)
        assert [s.time for s in plan] == [1.0, 5.0]

    def test_merged_with(self, sched):
        plan = self._plan(sched)
        merged = plan.merged_with([sched.at_time(0.5)])
        assert [s.time for s in merged] == [0.5, 1.0, 2.0, 8.0]

    def test_empty_plan_is_valid(self):
        plan = SchedulePlan(schedulings=(), horizon=10.0)
        assert len(plan) == 0 and plan.sensors_covered() == frozenset()


class TestValidateFor:
    def test_own_plan_validates(self, tiny_network):
        from repro.core.mintotal import min_total_distance

        res = min_total_distance(tiny_network, horizon=8.0)
        res.plan.validate_for(tiny_network)  # must not raise

    def test_wrong_depot_rejected(self, tiny_network):
        # Depot index 0 is a *sensor* in the tiny network (depots are 6, 7).
        tour = Tour(depot=0, order=(0, 1))
        plan = SchedulePlan(
            schedulings=(ChargingScheduling(time=1.0, tours=(tour,)),),
            horizon=10.0)
        with pytest.raises(ScheduleError, match="not a depot"):
            plan.validate_for(tiny_network)

    def test_out_of_range_node_rejected(self, tiny_network):
        depot = tiny_network.depot_index(0)
        tour = Tour(depot=depot, order=(depot, 99))
        plan = SchedulePlan(
            schedulings=(ChargingScheduling(time=1.0, tours=(tour,)),),
            horizon=10.0)
        with pytest.raises(ScheduleError, match="out of range"):
            plan.validate_for(tiny_network)

    def test_cli_simulate_rejects_mismatched_files(self, tmp_path):
        from repro.cli import main
        from repro.core.mintotal import min_total_distance
        from repro.io import save_network, save_plan
        from repro.network.builder import build_paper_network

        big = build_paper_network(n=30, q=3, seed=1)
        small = build_paper_network(n=10, q=2, seed=2)
        plan = min_total_distance(big, 50.0).plan
        net_p = save_network(small, tmp_path / "net.json")
        plan_p = save_plan(plan, tmp_path / "plan.json")
        with pytest.raises(ScheduleError, match="mismatch"):
            main(["simulate", "--network", str(net_p), "--plan", str(plan_p)])
