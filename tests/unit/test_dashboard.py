"""Dashboard state folding, panel rendering, and the score tail."""

from __future__ import annotations

import json

from repro.obs.live import WatchFrame
from repro.reporting.dashboard import (
    DashboardState,
    ScoreTail,
    dashboard_svg,
    render_dashboard,
    save_dashboard_svg,
)


def _aggregate(seq, t, counters=None, **kw):
    return WatchFrame(source="fleet", seq=seq, t=t, kind="aggregate",
                      counters=counters or {}, **kw)


class TestDashboardState:
    def test_aggregate_frames_are_the_view(self):
        state = DashboardState()
        state.ingest(_aggregate(1, 100.0, {"fleet.requests": 10.0},
                                shards={"shard-0": "up"}))
        assert state.frame.counters["fleet.requests"] == 10.0
        assert state.n_frames == 1

    def test_delta_frames_fold_through_local_aggregator(self):
        state = DashboardState()
        state.ingest(WatchFrame(source="serve", seq=1, t=100.0,
                                counters={"serve.requests": 5.0}))
        state.ingest(WatchFrame(source="serve", seq=2, t=101.0,
                                counters={"serve.requests": 3.0}))
        assert state.frame.kind == "aggregate"
        assert state.frame.counters["serve.requests"] == 8.0

    def test_rps_from_counter_window(self):
        state = DashboardState()
        state.ingest(_aggregate(1, 100.0, {"fleet.requests": 0.0}))
        state.ingest(_aggregate(2, 102.0, {"fleet.requests": 20.0}))
        assert state.rps() == 10.0
        assert state.rate_history() == [10.0]

    def test_rate_counter_prefers_fleet_then_serve(self):
        state = DashboardState()
        state.ingest(_aggregate(1, 1.0, {"serve.requests": 1.0}))
        assert state.rate_counter() == "serve.requests"
        state.ingest(_aggregate(2, 2.0, {"serve.requests": 1.0,
                                         "fleet.requests": 1.0}))
        assert state.rate_counter() == "fleet.requests"

    def test_events_retained_across_frames(self):
        state = DashboardState()
        state.ingest(_aggregate(1, 1.0, events=[
            {"event": "shard_down", "shard": "shard-1"}]))
        state.ingest(_aggregate(2, 2.0))
        assert any(e["event"] == "shard_down" for e in state.events)


class TestRender:
    def _state(self):
        state = DashboardState()
        state.ingest(_aggregate(
            1, 100.0,
            counters={"fleet.requests": 5.0, "plan.cache.tours.hit": 3.0,
                      "plan.cache.tours.miss": 1.0},
            gauges={"serve.queue_depth": {"per_shard": {"shard-0": 1.0,
                                                        "shard-1": 2.0},
                                          "max": 2.0}},
            active={"serve.request": 1},
            quantiles={"plan": {"count": 4, "p50": 0.01, "p90": 0.02,
                                "p99": 0.05, "mean": 0.015}},
            shards={"shard-0": "up", "shard-1": "down"}))
        return state

    def test_panel_contains_the_load_bearing_rows(self):
        text = render_dashboard(self._state())
        assert "shard-0:up" in text
        assert "shard-1:down" in text
        assert "tours 3/4" in text
        assert "serve.queue_depth" in text
        assert "plan" in text
        assert "dropped 0" in text

    def test_empty_state_renders_placeholder(self):
        assert "waiting" in render_dashboard(DashboardState())

    def test_svg_is_self_contained(self, tmp_path):
        state = self._state()
        svg = dashboard_svg(state)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "shard-0" in svg
        out = save_dashboard_svg(state, tmp_path / "a" / "dash.svg")
        assert out.read_text().startswith("<svg")

    def test_svg_escapes_markup(self):
        state = DashboardState()
        state.ingest(_aggregate(1, 1.0, events=[{"event": "<oops>"}]))
        assert "<oops>" not in dashboard_svg(state)
        assert "&lt;oops&gt;" in dashboard_svg(state)


class TestScoreTail:
    def _line(self, event, **fields):
        return json.dumps({"stream": "score", "event": event, "t": 0.0,
                           **fields}) + "\n"

    def test_incremental_poll(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(self._line("start", suite="quick",
                                   scenarios=["s1", "s2"],
                                   total_instances=4))
        tail = ScoreTail(path)
        assert tail.poll() is True
        assert tail.suite == "quick"
        assert tail.total == 4
        assert tail.scenarios_total == 2
        with open(path, "a") as fh:
            fh.write(self._line("instance", done=1, total=4, scenario="s1",
                                topology=0))
            fh.write(self._line("scenario", index=1, total=2, scenario="s1",
                                cells={"greedy": {"service_cost": 10.0}}))
        assert tail.poll() is True
        assert tail.done == 1
        assert tail.cells["s1"]["greedy"]["service_cost"] == 10.0
        assert tail.poll() is False  # nothing new

    def test_torn_final_line_waits_for_completion(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(self._line("start", suite="quick", scenarios=[],
                                   total_instances=1)
                        + '{"stream": "score", "event": "ins')  # torn
        tail = ScoreTail(path)
        tail.poll()
        assert tail.suite == "quick"
        assert tail.done == 0
        # The writer finishes the line; the tail picks it up whole.
        with open(path, "a") as fh:
            fh.write('tance", "done": 1, "total": 1}\n')
        assert tail.poll() is True
        assert tail.done == 1

    def test_done_marks_finished(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text(self._line("done", cells=6))
        tail = ScoreTail(path)
        tail.poll()
        assert tail.finished is True

    def test_missing_file_is_not_an_error(self, tmp_path):
        tail = ScoreTail(tmp_path / "not-yet.jsonl")
        assert tail.poll() is False

    def test_golden_deltas_in_panel(self, tmp_path):
        from repro.scenarios import Scorecard

        golden = Scorecard(suite="quick", policies=("greedy",),
                           scenarios={"s1": {"greedy": {
                               "service_cost": 100.0}}})
        golden_path = tmp_path / "golden.json"
        golden.save(golden_path)
        live = tmp_path / "live.jsonl"
        live.write_text(
            self._line("start", suite="quick", scenarios=["s1"],
                       total_instances=1)
            + self._line("scenario", index=1, total=1, scenario="s1",
                         cells={"greedy": {"service_cost": 110.0}}))
        tail = ScoreTail(live, baseline_path=golden_path)
        tail.poll()
        assert tail.golden_cost("s1", "greedy") == 100.0
        state = DashboardState()
        state.ingest(_aggregate(1, 1.0))
        panel = render_dashboard(state, score=tail)
        assert "suite quick" in panel
        assert "+10.00%" in panel
