"""Unit tests for :mod:`repro.experiments.config`."""

import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.network.cycles import LinearCycleDistribution, RandomCycleDistribution


class TestDefaults:
    def test_paper_defaults(self):
        cfg = ExperimentConfig()
        assert (cfg.n, cfg.q) == (200, 5)
        assert cfg.side == 1000.0
        assert cfg.horizon == 1000.0
        assert (cfg.tau_min, cfg.tau_max, cfg.sigma) == (1.0, 50.0, 2.0)
        assert cfg.slot_duration == 10.0
        assert not cfg.variable

    def test_describe_mentions_key_params(self):
        text = ExperimentConfig(n=300, variable=True).describe()
        assert "n=300" in text and "var" in text


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n": 0}, {"q": -1}, {"horizon": 0.0},
        {"distribution": "exponential"},
        {"tau_min": 0.0}, {"tau_min": 10.0, "tau_max": 5.0},
        {"sigma": -1.0}, {"slot_duration": 0.0}, {"n_topologies": 0},
        {"algorithms": ("mtd", "mystery")},
    ])
    def test_rejects_bad(self, kwargs):
        with pytest.raises(ConfigError):
            ExperimentConfig(**kwargs)

    def test_var_algorithm_requires_variable_workload(self):
        with pytest.raises(ConfigError, match="variable"):
            ExperimentConfig(algorithms=("mtd-var",), variable=False)
        ExperimentConfig(algorithms=("mtd-var",), variable=True)  # ok


class TestWith:
    def test_with_returns_new_validated_config(self):
        base = ExperimentConfig()
        new = base.with_(n=300)
        assert new.n == 300 and base.n == 200
        with pytest.raises(ConfigError):
            base.with_(n=-5)


class TestMakeDistribution:
    def test_linear(self):
        d = ExperimentConfig(distribution="linear", sigma=3.0).make_distribution()
        assert isinstance(d, LinearCycleDistribution)
        assert d.sigma == 3.0

    def test_random(self):
        d = ExperimentConfig(distribution="random").make_distribution()
        assert isinstance(d, RandomCycleDistribution)
        assert (d.tau_min, d.tau_max) == (1.0, 50.0)
