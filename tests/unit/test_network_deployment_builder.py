"""Unit tests for :mod:`repro.network.deployment`, :mod:`repro.network.builder`
and :mod:`repro.network.energy`."""

import numpy as np
import pytest

from repro.errors import NetworkModelError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.network.builder import NetworkBuilder, build_paper_network
from repro.network.cycles import LinearCycleDistribution
from repro.network.deployment import deploy_sensors, place_depots
from repro.network.depot import BaseStation
from repro.network.energy import EnergyProfile, cycles_from_rates, rates_from_cycles


class TestDeployment:
    def test_deploy_inside_area(self):
        area = Rect.square(100.0)
        pts = deploy_sensors(50, area, rng=1)
        assert len(pts) == 50
        assert all(area.contains(p) for p in pts)

    def test_deploy_rejects_zero(self):
        with pytest.raises(NetworkModelError):
            deploy_sensors(0, Rect.square(1.0))

    def test_depot0_colocated_with_base(self):
        area = Rect.square(100.0)
        bs = BaseStation(Point(50, 50))
        depots = place_depots(5, area, bs, rng=1)
        assert len(depots) == 5
        assert depots[0].position == bs.position
        assert [d.id for d in depots] == [0, 1, 2, 3, 4]

    def test_no_colocation_option(self):
        area = Rect.square(100.0)
        bs = BaseStation(Point(50, 50))
        rng = np.random.default_rng(99)
        depots = place_depots(3, area, bs, rng, colocate_first=False)
        assert len(depots) == 3
        # With a continuous sampler, exact colocation has probability 0.
        assert depots[0].position != bs.position

    def test_deterministic(self):
        area = Rect.square(100.0)
        bs = BaseStation(Point(50, 50))
        a = place_depots(4, area, bs, rng=5)
        b = place_depots(4, area, bs, rng=5)
        assert [d.position for d in a] == [d.position for d in b]


class TestEnergyConversions:
    def test_round_trip(self):
        tau = np.array([1.0, 2.0, 8.0])
        np.testing.assert_allclose(cycles_from_rates(rates_from_cycles(tau)), tau)

    def test_battery_scaling(self):
        np.testing.assert_allclose(
            rates_from_cycles(np.array([4.0]), batteries=2.0), [0.5])

    def test_rejects_non_positive(self):
        with pytest.raises(NetworkModelError):
            rates_from_cycles(np.array([0.0]))
        with pytest.raises(NetworkModelError):
            cycles_from_rates(np.array([-1.0]))

    def test_profile(self):
        p = EnergyProfile(batteries=np.array([2.0, 2.0]), cycles=np.array([4.0, 1.0]))
        assert p.n == 2
        np.testing.assert_allclose(p.rates, [0.5, 2.0])

    def test_profile_rejects_mismatch(self):
        with pytest.raises(NetworkModelError):
            EnergyProfile(batteries=np.ones(2), cycles=np.ones(3))


class TestNetworkBuilder:
    def test_full_build(self):
        net = (NetworkBuilder()
               .with_area(Rect.square(100.0))
               .with_random_sensors(20, seed=1)
               .with_base_station_at_center()
               .with_random_depots(3, seed=2)
               .with_cycles_from(LinearCycleDistribution(), seed=3)
               .build())
        assert (net.n, net.q) == (20, 3)
        assert net.base_station.position == Point(50, 50)

    def test_explicit_everything(self):
        net = (NetworkBuilder()
               .with_area(Rect.square(10.0))
               .with_sensors_at([Point(1, 1), Point(2, 2)])
               .with_base_station_at(Point(0, 0))
               .with_depots_at([Point(5, 5)])
               .with_cycles([3.0, 4.0])
               .with_batteries(2.0)
               .build())
        np.testing.assert_array_equal(net.cycles, [3, 4])
        np.testing.assert_array_equal(net.batteries, [2, 2])

    def test_build_without_sensors_raises(self):
        with pytest.raises(NetworkModelError, match="sensors"):
            NetworkBuilder().with_depots_at([Point(0, 0)]).build()

    def test_build_without_cycles_raises(self):
        with pytest.raises(NetworkModelError, match="cycles"):
            (NetworkBuilder().with_sensors_at([Point(1, 1)])
             .with_depots_at([Point(0, 0)]).build())

    def test_cycle_count_mismatch_raises(self):
        with pytest.raises(NetworkModelError):
            (NetworkBuilder().with_sensors_at([Point(1, 1), Point(2, 2)])
             .with_depots_at([Point(0, 0)]).with_cycles([1.0]).build())


class TestBuildPaperNetwork:
    def test_defaults(self):
        net = build_paper_network(n=30, q=5, seed=0)
        assert (net.n, net.q) == (30, 5)
        assert net.area.width == 1000.0
        # Depot 0 on the base station (the paper's setup).
        assert net.depots[0].position == net.base_station.position

    def test_seed_reproducibility(self):
        a = build_paper_network(n=25, q=4, seed=11)
        b = build_paper_network(n=25, q=4, seed=11)
        np.testing.assert_array_equal(a.coordinates, b.coordinates)
        np.testing.assert_array_equal(a.cycles, b.cycles)

    def test_different_seeds_differ(self):
        a = build_paper_network(n=25, q=4, seed=11)
        b = build_paper_network(n=25, q=4, seed=12)
        assert not np.array_equal(a.coordinates, b.coordinates)
