"""Unit tests for the planning service's pure pieces.

Covers :mod:`repro.serve.protocol` (framing, validation, error envelopes),
the plan key (single-flight identity), :class:`~repro.serve.ServeConfig`
validation and the client's percentile helper — no sockets anywhere; the
wire behaviour itself is exercised in ``tests/integration/test_serve.py``.
"""

import json

import pytest

from repro.errors import ConfigError, ReproError, ServeError
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.serve import percentile, plan_key
from repro.serve.protocol import (
    BAD_REQUEST,
    ERROR_CODES,
    OVERLOADED,
    decode_request,
    decode_response,
    encode,
    error_response,
    ok_response,
    raise_for_error,
)
from repro.serve.server import ServeConfig


class TestDecodeRequest:
    def test_minimal(self):
        req = decode_request(b'{"type": "health"}\n')
        assert (req.type, req.id, req.deadline, req.params) == ("health", None, None, {})

    def test_envelope_and_params_split(self):
        req = decode_request(
            '{"type": "plan", "id": 7, "deadline": 2.5, "horizon": 100, "refine": true}')
        assert req.id == 7
        assert req.deadline == 2.5
        assert req.params == {"horizon": 100, "refine": True}
        assert "deadline" not in req.params  # envelope keys never leak

    @pytest.mark.parametrize("line", [
        b"not json\n", b"[1, 2]\n", b"42\n",
        b'{"type": "explode"}\n', b"{}\n",
        b'{"type": "plan", "deadline": "soon"}\n',
        b'{"type": "plan", "deadline": 0}\n',
        b'{"type": "plan", "deadline": -1}\n',
    ])
    def test_rejects_malformed(self, line):
        with pytest.raises(ServeError) as exc:
            decode_request(line)
        assert exc.value.code == BAD_REQUEST

    def test_serve_error_is_a_repro_error(self):
        assert issubclass(ServeError, ReproError)


class TestResponses:
    def test_frame_round_trip(self):
        frame = encode(ok_response(3, {"x": 1}))
        assert frame.endswith(b"\n")
        data = decode_response(frame)
        assert data == {"id": 3, "ok": True, "result": {"x": 1}}
        assert raise_for_error(data) == {"x": 1}

    def test_error_round_trip_raises_with_code(self):
        frame = encode(error_response("abc", OVERLOADED, "queue full"))
        with pytest.raises(ServeError) as exc:
            raise_for_error(decode_response(frame))
        assert exc.value.code == OVERLOADED
        assert "queue full" in str(exc.value)

    def test_unknown_error_code_rejected(self):
        with pytest.raises(ValueError):
            error_response(None, "nonsense", "boom")

    @pytest.mark.parametrize("line", [
        b"junk", b"[]", b'{"result": {}}',
        b'{"ok": true}', b'{"ok": true, "result": 5}',
        b'{"ok": false}', b'{"ok": false, "error": "nope"}',
    ])
    def test_malformed_response_envelopes(self, line):
        with pytest.raises(ServeError):
            decode_response(line)

    def test_error_codes_closed_set(self):
        assert len(set(ERROR_CODES)) == len(ERROR_CODES) == 6
        assert "shard_unavailable" in ERROR_CODES


class TestPlanKey:
    @pytest.fixture(scope="class")
    def net(self):
        return network_to_dict(build_paper_network(n=12, q=2, seed=5))

    def test_identical_requests_share_a_key(self, net):
        a = plan_key({"network": net, "horizon": 100.0})
        b = plan_key({"network": json.loads(json.dumps(net)), "horizon": 100})
        assert a == b  # wire round-trip and int/float horizon are identical

    def test_delay_excluded_from_key(self, net):
        assert plan_key({"network": net, "horizon": 100.0}) == \
            plan_key({"network": net, "horizon": 100.0, "delay": 0.5})

    def test_key_fields_discriminate(self, net):
        base = plan_key({"network": net, "horizon": 100.0})
        assert plan_key({"network": net, "horizon": 200.0}) != base
        assert plan_key({"network": net, "horizon": 100.0, "refine": True}) != base
        assert plan_key({"network": net, "horizon": 100.0, "base": 3}) != base
        other = network_to_dict(build_paper_network(n=12, q=2, seed=6))
        assert plan_key({"network": other, "horizon": 100.0}) != base

    def test_cycles_change_changes_key(self, net):
        shifted = json.loads(json.dumps(net))
        shifted["sensors"][0]["cycle"] *= 7.0  # same geometry, new coverage
        assert plan_key({"network": shifted, "horizon": 100.0}) != \
            plan_key({"network": net, "horizon": 100.0})

    def test_saved_file_envelope_accepted(self, net):
        """A `repro plan --network-out` file can be shipped verbatim."""
        from repro.io.files import FORMAT_VERSION
        enveloped = {"kind": "sensor-network", "version": FORMAT_VERSION, "data": net}
        assert plan_key({"network": enveloped, "horizon": 100.0}) == \
            plan_key({"network": net, "horizon": 100.0})

    def test_wrong_envelope_kind_rejected(self, net):
        from repro.io.files import FORMAT_VERSION
        wrapped = {"kind": "schedule-plan", "version": FORMAT_VERSION, "data": net}
        with pytest.raises(ReproError, match="expected 'sensor-network'"):
            plan_key({"network": wrapped, "horizon": 100.0})

    def test_missing_pieces_rejected(self, net):
        with pytest.raises(ReproError):
            plan_key({"horizon": 100.0})
        with pytest.raises(ServeError) as exc:
            plan_key({"network": net})
        assert exc.value.code == BAD_REQUEST


class TestServeConfig:
    def test_defaults_valid(self):
        cfg = ServeConfig()
        assert cfg.workers == 1 and cfg.executor == "process"

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0}, {"workers": -3},
        {"queue_limit": 0},
        {"executor": "fiber"},
        {"plan_responses": -1},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ServeConfig(**kwargs)

    def test_kernel_backend_validated_eagerly(self):
        assert ServeConfig(kernel_backend="fast").kernel_backend == "fast"
        with pytest.raises(ConfigError):
            ServeConfig(kernel_backend="warp-drive")


class TestPlanKeyKernelBackend:
    def test_unknown_backend_is_bad_request(self):
        net = network_to_dict(build_paper_network(seed=5))
        with pytest.raises(ServeError) as exc:
            plan_key({"network": net, "horizon": 100.0,
                      "kernel_backend": "warp-drive"})
        assert exc.value.code == "bad_request"

    def test_exact_backends_share_the_key(self):
        # reference and fast are move-for-move identical, so requests
        # naming either (or neither) must coalesce to one computation.
        net = network_to_dict(build_paper_network(seed=5))
        base = plan_key({"network": net, "horizon": 100.0})
        for name in ("reference", "fast"):
            assert plan_key({"network": net, "horizon": 100.0,
                             "kernel_backend": name}) == base

    def test_non_exact_backend_splits_the_key(self):
        from repro.kernels import KernelBackend, get_backend, register_backend
        from repro.kernels import registry as _registry

        ref = get_backend("reference")
        name = "approx-test-keysplit"
        register_backend(KernelBackend(
            name=name, prim_mst=ref.prim_mst, two_opt=ref.two_opt,
            or_opt=ref.or_opt, exact=False))
        try:
            net = network_to_dict(build_paper_network(seed=5))
            base = plan_key({"network": net, "horizon": 100.0})
            assert plan_key({"network": net, "horizon": 100.0,
                             "kernel_backend": name}) != base
        finally:
            _registry._REGISTRY.pop(name, None)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 0) == 1.0

    def test_single_sample_and_empty(self):
        assert percentile([7.0], 99) == 7.0
        assert percentile([], 50) != percentile([], 50)  # nan

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
