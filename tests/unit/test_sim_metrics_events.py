"""Unit tests for :mod:`repro.sim.metrics` and :mod:`repro.sim.events`."""

import numpy as np

from repro.sim.events import ChargeEvent, DeathEvent, DispatchEvent
from repro.sim.metrics import Metrics


class TestMetrics:
    def test_defaults(self):
        m = Metrics(q=3)
        assert m.service_cost == 0.0
        assert m.per_charger.shape == (3,)
        assert m.perpetual
        assert m.n_dispatches == m.n_charges == m.n_deaths == 0
        assert m.mean_dispatch_cost() == 0.0

    def test_counts(self):
        m = Metrics(q=1)
        m.dispatches.append(DispatchEvent(time=1.0, cost=10.0, n_sensors=2,
                                          n_active_chargers=1))
        m.dispatches.append(DispatchEvent(time=2.0, cost=20.0, n_sensors=1,
                                          n_active_chargers=1))
        m.service_cost = 30.0
        assert m.n_dispatches == 2
        assert m.mean_dispatch_cost() == 15.0

    def test_perpetual_flips_on_death(self):
        m = Metrics(q=1)
        m.deaths.append(DeathEvent(time=3.0, sensor=7))
        assert not m.perpetual
        assert "DEATHS" in m.summary()

    def test_charges_per_sensor(self):
        m = Metrics(q=1)
        for t, s in [(1.0, 0), (2.0, 0), (2.0, 3)]:
            m.charges.append(ChargeEvent(time=t, sensor=s, energy_before=0.5))
        np.testing.assert_array_equal(m.charges_per_sensor(5), [2, 0, 0, 1, 0])

    def test_summary_mentions_cost(self):
        m = Metrics(q=1)
        m.service_cost = 1234.5
        assert "1234.5" in m.summary()
        assert "perpetual" in m.summary()

    def test_cost_per_energy(self):
        m = Metrics(q=1)
        assert m.cost_per_energy() == float("inf")
        m.service_cost = 100.0
        m.energy_delivered = 20.0
        assert m.cost_per_energy() == 5.0

    def test_closest_call(self):
        m = Metrics(q=1)
        assert m.closest_call() is None
        m.charges.append(ChargeEvent(time=1.0, sensor=0, energy_before=0.5))
        m.charges.append(ChargeEvent(time=2.0, sensor=1, energy_before=0.01))
        assert m.closest_call().sensor == 1

    def test_engine_accumulates_energy_delivered(self):
        from repro.core.mintotal import min_total_distance
        from repro.network.builder import build_paper_network
        from repro.sim.engine import simulate
        from repro.sim.policies import PlannedPolicy
        from repro.sim.workload import FixedWorkload

        net = build_paper_network(n=20, q=2, seed=1)
        res = min_total_distance(net, 50.0)
        out = simulate(net, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(net), 50.0)
        # Energy delivered equals energy drained between charges: bounded by
        # total drain over the horizon and strictly positive.
        total_drain = float((net.rates * 50.0).sum())
        assert 0 < out.metrics.energy_delivered <= total_drain + 1e-9
        assert out.metrics.cost_per_energy() > 0


class TestEventRecords:
    def test_frozen(self):
        ev = DeathEvent(time=1.0, sensor=2)
        try:
            ev.time = 5.0  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_fields(self):
        d = DispatchEvent(time=1.0, cost=2.0, n_sensors=3, n_active_chargers=1)
        assert (d.time, d.cost, d.n_sensors, d.n_active_chargers) == (1, 2, 3, 1)
        c = ChargeEvent(time=1.0, sensor=4, energy_before=0.25)
        assert (c.sensor, c.energy_before) == (4, 0.25)
