"""Unit tests for :mod:`repro.sim.engine` and :mod:`repro.sim.policies`."""

import numpy as np
import pytest

from repro.core.mintotal import min_total_distance
from repro.core.schedule import ChargingScheduling
from repro.errors import SensorDeathError, SimulationError
from repro.sim.engine import Simulator, simulate
from repro.sim.policies import PlannedPolicy, SimulationView
from repro.sim.workload import FixedWorkload
from repro.tsp.tour import Tour


class NullPolicy:
    """Never dispatches — sensors just drain."""

    def reset(self, network, horizon):
        pass

    def next_dispatch_time(self, now):
        return None

    def observe(self, view):
        pass

    def dispatch(self, view):
        return None


class OneShotPolicy:
    """Charges a fixed sensor set exactly once at a fixed time."""

    def __init__(self, time, depot, sensors):
        self.time = time
        self.depot = depot
        self.sensors = sensors
        self.fired = False

    def reset(self, network, horizon):
        self.fired = False

    def next_dispatch_time(self, now):
        return None if self.fired else self.time

    def observe(self, view):
        pass

    def dispatch(self, view):
        self.fired = True
        tour = Tour(depot=self.depot, order=(self.depot, *self.sensors))
        return ChargingScheduling(time=view.time, tours=(tour,))


class TestEngineBasics:
    def test_null_policy_records_deaths(self, tiny_network):
        out = simulate(tiny_network, NullPolicy(),
                       FixedWorkload.from_network(tiny_network), 10.0)
        # cycles [1,2,4,8,2,4] all < horizon 10: every sensor dies, each at
        # exactly its cycle.
        dead = {d.sensor for d in out.metrics.deaths}
        assert dead == set(range(6))
        times = {d.sensor: d.time for d in out.metrics.deaths}
        for i, tau in enumerate([1.0, 2.0, 4.0, 8.0, 2.0, 4.0]):
            assert times[i] == pytest.approx(tau)

    def test_strict_mode_raises(self, tiny_network):
        with pytest.raises(SensorDeathError) as exc:
            simulate(tiny_network, NullPolicy(),
                     FixedWorkload.from_network(tiny_network), 10.0, strict=True)
        assert exc.value.sensor_id == 0
        assert exc.value.time == pytest.approx(1.0)

    def test_oneshot_charges_and_costs(self, tiny_network):
        depot = tiny_network.depot_index(0)
        pol = OneShotPolicy(time=0.5, depot=depot, sensors=(0, 1))
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 1.4)
        assert out.metrics.n_dispatches == 1
        assert out.metrics.n_charges == 2
        expected = Tour(depot=depot, order=(depot, 0, 1)).cost(tiny_network.dist)
        assert out.metrics.service_cost == pytest.approx(expected)
        # Sensor 0 (tau=1) charged at 0.5 survives to 1.4 (< 0.5 + 1).
        assert out.metrics.perpetual

    def test_final_energy_reflects_drain(self, tiny_network):
        out = simulate(tiny_network, NullPolicy(),
                       FixedWorkload.from_network(tiny_network), 1.0)
        np.testing.assert_allclose(
            out.final_energy,
            np.maximum(tiny_network.batteries - tiny_network.rates * 1.0, 0.0),
            atol=1e-12)

    def test_bad_horizon_raises(self, tiny_network):
        with pytest.raises(SimulationError):
            simulate(tiny_network, NullPolicy(),
                     FixedWorkload.from_network(tiny_network), 0.0)

    def test_past_dispatch_time_raises(self, tiny_network):
        class BadPolicy(NullPolicy):
            def next_dispatch_time(self, now):
                return now - 5.0 if now > 0 else 0.5

            def dispatch(self, view):
                return None

        with pytest.raises(SimulationError, match="past|current time|dispatch"):
            simulate(tiny_network, BadPolicy(),
                     FixedWorkload.from_network(tiny_network), 10.0)


class TestPlannedPolicy:
    def test_executes_plan_exactly(self, paper_network_small):
        horizon = 100.0
        res = min_total_distance(paper_network_small, horizon)
        out = simulate(paper_network_small, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(paper_network_small), horizon)
        assert out.metrics.n_dispatches == len(res.plan)
        assert out.metrics.service_cost == pytest.approx(
            res.plan.total_cost(paper_network_small.dist))
        assert out.metrics.perpetual

    def test_reusable_after_reset(self, paper_network_small):
        horizon = 50.0
        res = min_total_distance(paper_network_small, horizon)
        pol = PlannedPolicy(res.plan)
        sim = Simulator(paper_network_small)
        wl = FixedWorkload.from_network(paper_network_small)
        a = sim.run(pol, wl, horizon)
        b = sim.run(pol, wl, horizon)  # reset() must rewind the cursor
        assert a.metrics.service_cost == pytest.approx(b.metrics.service_cost)

    def test_charge_events_record_energy_before(self, tiny_network):
        res = min_total_distance(tiny_network, horizon=3.0)
        out = simulate(tiny_network, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(tiny_network), 3.0)
        for ev in out.metrics.charges:
            assert 0.0 <= ev.energy_before <= tiny_network.batteries[ev.sensor]


class TestSimulationView:
    def test_view_fields(self):
        view = SimulationView(time=1.0, energy=np.array([0.5]),
                              batteries=np.array([1.0]),
                              observed_rates=np.array([0.25]))
        assert view.observed_cycles[0] == pytest.approx(4.0)
        assert view.residual_lifetimes[0] == pytest.approx(2.0)

    def test_zero_rate_gives_infinite_lifetime(self):
        view = SimulationView(time=0.0, energy=np.array([0.5]),
                              batteries=np.array([1.0]),
                              observed_rates=np.array([0.0]))
        assert view.residual_lifetimes[0] == np.inf
        assert view.observed_cycles[0] == np.inf
