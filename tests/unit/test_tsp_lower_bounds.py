"""Unit tests for :mod:`repro.tsp.lower_bounds`."""

import itertools

import numpy as np
import pytest

from repro.errors import GraphError
from repro.geometry.distance import distance_matrix, path_length
from repro.tsp.lower_bounds import held_karp_lower_bound, mst_lower_bound


def brute_force_tsp(dist: np.ndarray, nodes: list[int]) -> float:
    """Exact optimal closed tour by enumeration (small inputs only)."""
    best = np.inf
    first, rest = nodes[0], nodes[1:]
    for perm in itertools.permutations(rest):
        best = min(best, path_length(dist, [first, *perm], closed=True))
    return float(best)


@pytest.fixture
def small(rng):
    return distance_matrix(rng.uniform(0, 100, size=(8, 2)))


class TestMstLowerBound:
    def test_below_optimum(self, small):
        nodes = list(range(8))
        assert mst_lower_bound(small, nodes) <= brute_force_tsp(small, nodes) + 1e-9

    def test_singleton_is_zero(self, small):
        assert mst_lower_bound(small, [3]) == 0.0

    def test_pair(self, small):
        assert mst_lower_bound(small, [0, 1]) == pytest.approx(small[0, 1])

    def test_empty_raises(self, small):
        with pytest.raises(GraphError):
            mst_lower_bound(small, [])


class TestHeldKarp:
    def test_sandwiched_between_mst_and_opt(self, small):
        nodes = list(range(8))
        mst = mst_lower_bound(small, nodes)
        hk = held_karp_lower_bound(small, nodes)
        opt = brute_force_tsp(small, nodes)
        assert mst - 1e-9 <= hk <= opt + 1e-9

    def test_tightens_the_mst_bound(self, rng):
        # On random Euclidean instances HK should beat plain MST nearly always.
        wins = 0
        for seed in range(5):
            d = distance_matrix(np.random.default_rng(seed).uniform(0, 100, (9, 2)))
            nodes = list(range(9))
            if held_karp_lower_bound(d, nodes) > mst_lower_bound(d, nodes) + 1e-9:
                wins += 1
        assert wins >= 4

    def test_exact_on_degenerate_sets(self, small):
        assert held_karp_lower_bound(small, [2]) == 0.0
        assert held_karp_lower_bound(small, [0, 5]) == pytest.approx(2 * small[0, 5])

    def test_triangle_is_exact(self):
        d = distance_matrix(np.array([[0, 0], [3, 0], [0, 4]], dtype=float))
        # Any 3-node tour costs the triangle perimeter; HK should find it.
        assert held_karp_lower_bound(d, [0, 1, 2]) == pytest.approx(12.0, rel=1e-6)
