"""Unit tests for :mod:`repro.graphs.unionfind`."""

import pytest

from repro.graphs.unionfind import UnionFind


class TestUnionFind:
    def test_initially_all_singletons(self):
        uf = UnionFind(5)
        assert uf.n_components == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_merges(self):
        uf = UnionFind(4)
        assert uf.union(0, 1) is True
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.n_components == 3

    def test_union_idempotent(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert uf.union(1, 0) is False
        assert uf.n_components == 2

    def test_transitive_connectivity(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        assert uf.connected(0, 2)
        assert not uf.connected(2, 4)

    def test_component_size(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_size(2) == 3
        assert uf.component_size(3) == 1

    def test_components_listing(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        comps = uf.components()
        groups = sorted(sorted(v) for v in comps.values())
        assert groups == [[0, 3], [1], [2]]

    def test_full_merge_chain(self):
        n = 100
        uf = UnionFind(n)
        for i in range(n - 1):
            uf.union(i, i + 1)
        assert uf.n_components == 1
        assert uf.component_size(0) == n

    def test_len(self):
        assert len(UnionFind(7)) == 7

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    def test_empty_is_valid(self):
        assert UnionFind(0).n_components == 0
