"""Unit tests for :mod:`repro.experiments.grid`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import grid_sweep

TINY = ExperimentConfig(n=20, horizon=60.0, n_topologies=2, seed=6,
                        algorithms=("mtd", "greedy"))


@pytest.fixture(scope="module")
def grid():
    return grid_sweep(TINY, {"n": [20, 30], "q": [2, 3, 4]})


class TestGridSweep:
    def test_shape_and_axes(self, grid):
        assert grid.parameters == ("n", "q")
        assert grid.shape == (2, 3)
        assert grid.values == ((20, 30), (2, 3, 4))

    def test_cell_lookup(self, grid):
        cell = grid.cell(n=20, q=3)
        assert cell.config.n == 20 and cell.config.q == 3

    def test_cell_lookup_errors(self, grid):
        with pytest.raises(ConfigError, match="missing"):
            grid.cell(n=20)
        with pytest.raises(ConfigError, match="no cell"):
            grid.cell(n=99, q=3)

    def test_cost_tensor(self, grid):
        t = grid.cost_tensor("mtd")
        assert t.shape == (2, 3)
        assert np.all(t > 0)
        # Tensor entries match direct cell lookups.
        assert t[0, 1] == grid.cell(n=20, q=3).by_name("mtd").mean_cost

    def test_ratio_tensor(self, grid):
        r = grid.ratio_tensor("mtd", "greedy")
        assert r.shape == (2, 3)
        assert np.all(r > 0)

    def test_rows_long_format(self, grid):
        rows = grid.rows()
        assert len(rows) == 6
        assert rows[0][:2] == [20, 2]
        assert len(rows[0]) == 4  # two params + two algorithms

    def test_progress_callback(self):
        lines = []
        grid_sweep(TINY, {"n": [20]}, progress=lines.append)
        assert len(lines) == 1 and "'n': 20" in lines[0]

    def test_validation(self):
        with pytest.raises(ConfigError):
            grid_sweep(TINY, {})
        with pytest.raises(ConfigError):
            grid_sweep(TINY, {"banana": [1]})
        with pytest.raises(ConfigError):
            grid_sweep(TINY, {"n": []})

    def test_deterministic(self, grid):
        again = grid_sweep(TINY, {"n": [20, 30], "q": [2, 3, 4]})
        np.testing.assert_array_equal(grid.cost_tensor("mtd"),
                                      again.cost_tensor("mtd"))
