"""QuantileSketch: accuracy bounds, merge = union, JSON round-trip.

The sketch is the reason fleet-wide latency quantiles can be *merged*
rather than averaged — so the properties that matter are (a) a relative
accuracy bound against exact percentiles, and (b) merge(a, b) being
indistinguishable from a sketch fed both streams.
"""

from __future__ import annotations

import random

import pytest

from repro.obs.quantile import QuantileSketch
from repro.serve.client import percentile


class TestAccuracy:
    def test_relative_error_bounded_uniform(self):
        rng = random.Random(7)
        values = [rng.uniform(0.001, 10.0) for _ in range(5000)]
        sk = QuantileSketch()
        for v in values:
            sk.add(v)
        for q in (0.5, 0.9, 0.99):
            exact = percentile(values, q * 100)
            approx = sk.quantile(q)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_relative_error_bounded_lognormal(self):
        rng = random.Random(11)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        sk = QuantileSketch()
        for v in values:
            sk.add(v)
        for q in (0.5, 0.9, 0.99):
            exact = percentile(values, q * 100)
            # Log-bucketing: relative error is bounded regardless of skew.
            assert sk.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_single_value(self):
        sk = QuantileSketch()
        sk.add(3.5)
        assert sk.quantile(0.0) == pytest.approx(3.5, rel=0.02)
        assert sk.quantile(1.0) == pytest.approx(3.5, rel=0.02)

    def test_empty_quantile_is_zero(self):
        assert QuantileSketch().quantile(0.5) == 0.0

    def test_zeros_and_negatives_land_in_zero_bucket(self):
        sk = QuantileSketch()
        sk.add(0.0)
        sk.add(-1.0)
        sk.add(10.0)
        assert sk.count == 3
        assert sk.quantile(0.0) == 0.0
        assert sk.quantile(1.0) == pytest.approx(10.0, rel=0.02)


class TestMerge:
    def test_merge_equals_union(self):
        rng = random.Random(3)
        a_vals = [rng.uniform(0.01, 5.0) for _ in range(800)]
        b_vals = [rng.uniform(1.0, 50.0) for _ in range(1200)]
        a, b, union = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for v in a_vals:
            a.add(v)
            union.add(v)
        for v in b_vals:
            b.add(v)
            union.add(v)
        a.merge(b)
        assert a.count == union.count
        for q in (0.1, 0.5, 0.9, 0.99):
            assert a.quantile(q) == union.quantile(q)

    def test_merge_rejects_mismatched_alpha(self):
        a = QuantileSketch(alpha=0.01)
        b = QuantileSketch(alpha=0.02)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_quantiles_never_averaged(self):
        # Two shards with disjoint latency bands: the merged p99 must sit
        # in the slow shard's band, not between the bands (which is what
        # averaging per-shard percentiles would produce).
        fast, slow = QuantileSketch(), QuantileSketch()
        for _ in range(1000):
            fast.add(0.001)
        for _ in range(1000):
            slow.add(1.0)
        fast.merge(slow)
        assert fast.quantile(0.99) == pytest.approx(1.0, rel=0.02)
        assert fast.quantile(0.25) == pytest.approx(0.001, rel=0.02)


class TestSerialisation:
    def test_round_trip(self):
        rng = random.Random(9)
        sk = QuantileSketch()
        for _ in range(500):
            sk.add(rng.uniform(0.0, 20.0))  # includes the zeros bucket
        back = QuantileSketch.from_dict(sk.to_dict())
        assert back.count == sk.count
        for q in (0.5, 0.9, 0.99):
            assert back.quantile(q) == sk.quantile(q)

    def test_dict_is_json_safe(self):
        import json

        sk = QuantileSketch()
        sk.add(1.0, count=3)
        encoded = json.loads(json.dumps(sk.to_dict()))
        assert QuantileSketch.from_dict(encoded).count == 3

    def test_copy_is_independent(self):
        sk = QuantileSketch()
        sk.add(2.0)
        cp = sk.copy()
        cp.add(2.0)
        assert cp.count == 2
        assert sk.count == 1
