"""Unit tests for :mod:`repro.network.sensor` and depot/base station."""

import math

import pytest

from repro.errors import NetworkModelError
from repro.geometry.point import Point
from repro.network.depot import BaseStation, Depot
from repro.network.sensor import Sensor


class TestSensor:
    def test_rate_is_battery_over_cycle(self):
        s = Sensor(id=0, position=Point(0, 0), cycle=4.0, battery=2.0)
        assert s.rate == pytest.approx(0.5)

    def test_default_battery_is_unit(self):
        s = Sensor(id=0, position=Point(0, 0), cycle=10.0)
        assert s.battery == 1.0
        assert s.rate == pytest.approx(0.1)

    def test_with_cycle_preserves_rest(self):
        s = Sensor(id=3, position=Point(1, 2), cycle=4.0, battery=2.0)
        s2 = s.with_cycle(8.0)
        assert (s2.id, s2.position, s2.battery) == (3, Point(1, 2), 2.0)
        assert s2.cycle == 8.0
        assert s.cycle == 4.0  # original untouched

    def test_lifetime_from(self):
        s = Sensor(id=0, position=Point(0, 0), cycle=10.0)
        assert s.lifetime_from(1.0) == pytest.approx(10.0)
        assert s.lifetime_from(0.5) == pytest.approx(5.0)
        assert s.lifetime_from(0.0) == 0.0
        assert s.lifetime_from(-1.0) == 0.0

    @pytest.mark.parametrize("cycle", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_bad_cycle(self, cycle):
        with pytest.raises(NetworkModelError):
            Sensor(id=0, position=Point(0, 0), cycle=cycle)

    @pytest.mark.parametrize("battery", [0.0, -2.0, math.inf])
    def test_rejects_bad_battery(self, battery):
        with pytest.raises(NetworkModelError):
            Sensor(id=0, position=Point(0, 0), cycle=1.0, battery=battery)

    def test_rejects_negative_id(self):
        with pytest.raises(NetworkModelError):
            Sensor(id=-1, position=Point(0, 0), cycle=1.0)


class TestDepot:
    def test_fields(self):
        d = Depot(id=2, position=Point(5, 5))
        assert d.id == 2 and d.position == Point(5, 5)

    def test_rejects_negative_id(self):
        with pytest.raises(NetworkModelError):
            Depot(id=-1, position=Point(0, 0))


class TestBaseStation:
    def test_position(self):
        assert BaseStation(position=Point(500, 500)).position == Point(500, 500)
