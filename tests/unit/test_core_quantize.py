"""Unit tests for :mod:`repro.core.quantize`."""

import numpy as np
import pytest

from repro.core.quantize import quantize_cycles
from repro.errors import ScheduleError


class TestBasicStructure:
    def test_powers_of_two(self):
        q = quantize_cycles(np.array([1.0, 2.0, 4.0, 8.0]))
        assert q.tau1 == 1.0
        assert q.K == 3
        np.testing.assert_array_equal(q.k_of, [0, 1, 2, 3])
        np.testing.assert_array_equal(q.assigned, [1, 2, 4, 8])

    def test_interval_membership(self):
        # tau in [2^k tau1, 2^(k+1) tau1) -> class k
        q = quantize_cycles(np.array([1.0, 1.5, 1.99, 2.0, 3.9, 4.0]))
        np.testing.assert_array_equal(q.k_of, [0, 0, 0, 1, 1, 2])

    def test_non_unit_base(self):
        q = quantize_cycles(np.array([3.0, 7.0, 13.0]))
        assert q.tau1 == 3.0
        np.testing.assert_array_equal(q.k_of, [0, 1, 2])
        np.testing.assert_array_equal(q.assigned, [3, 6, 12])

    def test_single_sensor(self):
        q = quantize_cycles(np.array([5.0]))
        assert q.K == 0 and q.block_size == 1 and q.block_cycle == 5.0

    def test_paper_inequality_tau_half(self):
        rng = np.random.default_rng(0)
        tau = rng.uniform(1, 50, size=500)
        q = quantize_cycles(tau)
        assert np.all(q.assigned <= tau * (1 + 1e-9))
        assert np.all(q.assigned > tau / 2 * (1 - 1e-9))

    def test_validate_passes(self):
        quantize_cycles(np.random.default_rng(1).uniform(0.1, 99, 300)).validate()

    def test_float_knife_edge_exact_power(self):
        # 2.0 must land in class 1 (assigned exactly 2), not class 0.
        q = quantize_cycles(np.array([1.0, 2.0 * (1 - 1e-15), 2.0]))
        assert q.k_of[2] == 1
        assert q.assigned[2] == pytest.approx(2.0)


class TestBlockProperties:
    def test_block_size_and_cycle(self):
        q = quantize_cycles(np.array([1.0, 50.0]))
        assert q.K == 5  # floor(log2 50) = 5
        assert q.block_size == 32
        assert q.block_cycle == 32.0

    def test_members_partition(self):
        tau = np.random.default_rng(2).uniform(1, 50, 100)
        q = quantize_cycles(tau)
        all_members = np.concatenate([q.members(k) for k in range(q.K + 1)])
        assert sorted(all_members) == list(range(100))

    def test_members_out_of_range_raises(self):
        q = quantize_cycles(np.array([1.0, 2.0]))
        with pytest.raises(ScheduleError):
            q.members(5)


class TestSensorsDueAt:
    def test_schedule_pattern(self):
        # Classes: sensor0 in V0, sensor1 in V1, sensor2 in V2.
        q = quantize_cycles(np.array([1.0, 2.0, 4.0]))
        assert set(q.sensors_due_at(1)) == {0}
        assert set(q.sensors_due_at(2)) == {0, 1}
        assert set(q.sensors_due_at(3)) == {0}
        assert set(q.sensors_due_at(4)) == {0, 1, 2}

    def test_full_coverage_at_block_end(self):
        tau = np.random.default_rng(3).uniform(1, 50, 60)
        q = quantize_cycles(tau)
        assert set(q.sensors_due_at(q.block_size)) == set(range(60))

    def test_each_sensor_charged_at_its_period(self):
        tau = np.array([1.0, 2.0, 4.0, 8.0])
        q = quantize_cycles(tau)
        for i in range(4):
            period = int(q.assigned[i])
            for j in range(1, q.block_size + 1):
                due = i in q.sensors_due_at(j)
                assert due == (j % period == 0)

    def test_rejects_j_zero(self):
        q = quantize_cycles(np.array([1.0]))
        with pytest.raises(ScheduleError):
            q.sensors_due_at(0)


class TestCoverageLevels:
    def test_level_of_matches_divisor_pattern(self):
        q = quantize_cycles(np.array([1.0, 2.0, 4.0, 8.0]))
        assert [q.level_of(j) for j in range(1, 9)] == [0, 1, 0, 2, 0, 1, 0, 3]
        # Periodic mod b^K: global indices work directly.
        assert q.level_of(8) == q.level_of(16) == 3

    def test_level_of_rejects_j_zero(self):
        q = quantize_cycles(np.array([1.0, 2.0]))
        with pytest.raises(ScheduleError):
            q.level_of(0)

    def test_coverage_sets_are_prefix_unions(self):
        q = quantize_cycles(np.array([1.0, 2.0, 4.0]))
        sets = q.coverage_sets()
        assert sets == (frozenset({0}), frozenset({0, 1}), frozenset({0, 1, 2}))

    def test_coverage_sets_match_sensors_due_at(self):
        tau = np.random.default_rng(4).uniform(1, 50, 40)
        q = quantize_cycles(tau)
        sets = q.coverage_sets()
        for j in range(1, q.block_size + 1):
            assert sets[q.level_of(j)] == frozenset(
                int(s) for s in q.sensors_due_at(j))

    def test_multiplicities_sum_to_block_size(self):
        for tau in ([1.0, 2.0, 4.0, 8.0], [1.0, 50.0], [5.0]):
            q = quantize_cycles(np.array(tau))
            mult = q.coverage_multiplicities()
            assert len(mult) == q.K + 1
            assert sum(mult) == q.block_size
            # Multiplicity of level v = #{j in [1, b^K] : level_of(j) == v}.
            counts = [0] * (q.K + 1)
            for j in range(1, q.block_size + 1):
                counts[q.level_of(j)] += 1
            assert tuple(counts) == mult

    def test_huge_spread_no_materialization(self):
        # Regression: tau_max/tau_1 = 2^40 used to attempt a 2^40-element
        # tuple in coverage_sets() and OOM. Now O(K).
        q = quantize_cycles(np.array([1.0, 2.0 ** 40]))
        assert q.K == 40
        assert q.block_size == 2 ** 40
        sets = q.coverage_sets()
        assert len(sets) == 41
        assert sets[0] == frozenset({0})
        assert sets[-1] == frozenset({0, 1})
        assert sum(q.coverage_multiplicities()) == 2 ** 40
        assert q.level_of(2 ** 40) == 40

    def test_absurd_spread_rejected(self):
        # A ratio beyond b^512 cannot come from a real instance.
        with pytest.raises(ScheduleError, match="not a schedulable instance"):
            quantize_cycles(np.array([1.0, 1e300]))

    def test_enumerable_block_size_guard(self):
        q = quantize_cycles(np.array([1.0, 2.0 ** 40]))
        with pytest.raises(ScheduleError, match="too large to enumerate"):
            q.enumerable_block_size()
        small = quantize_cycles(np.array([1.0, 8.0]))
        assert small.enumerable_block_size() == 8


class TestValidation:
    @pytest.mark.parametrize("bad", [
        np.array([]), np.array([[1.0]]), np.array([0.0]), np.array([-1.0]),
        np.array([np.inf]), np.array([np.nan]),
    ])
    def test_rejects_bad_input(self, bad):
        with pytest.raises(ScheduleError):
            quantize_cycles(bad)

    def test_huge_ratio(self):
        q = quantize_cycles(np.array([0.001, 1000.0]))
        assert q.K == 19  # floor(log2 1e6) = 19
        assert q.assigned[1] <= 1000.0


class TestGeneralBase:
    def test_base3_classes(self):
        q = quantize_cycles(np.array([1.0, 2.9, 3.0, 8.9, 9.0]), base=3)
        np.testing.assert_array_equal(q.k_of, [0, 0, 1, 1, 2])
        np.testing.assert_allclose(q.assigned, [1, 1, 3, 3, 9])
        assert q.block_size == 9

    def test_base_sandwich_inequality(self):
        rng = np.random.default_rng(0)
        tau = rng.uniform(1, 50, 300)
        for b in (2, 3, 4, 5):
            q = quantize_cycles(tau, base=b)
            assert np.all(q.assigned <= tau * (1 + 1e-9))
            assert np.all(q.assigned * b > tau * (1 - 1e-9))

    def test_larger_base_means_fewer_classes(self):
        tau = np.random.default_rng(1).uniform(1, 50, 200)
        ks = [quantize_cycles(tau, base=b).K for b in (2, 3, 4, 8)]
        assert ks == sorted(ks, reverse=True)

    def test_due_pattern_respects_base(self):
        q = quantize_cycles(np.array([1.0, 3.0, 9.0]), base=3)
        assert set(q.sensors_due_at(1)) == {0}
        assert set(q.sensors_due_at(3)) == {0, 1}
        assert set(q.sensors_due_at(9)) == {0, 1, 2}

    @pytest.mark.parametrize("bad", [1, 0, -2, 2.5, "2"])
    def test_rejects_bad_base(self, bad):
        with pytest.raises(ScheduleError):
            quantize_cycles(np.array([1.0, 2.0]), base=bad)

    def test_plan_with_base3_feasible(self, tiny_network):
        from repro.core.feasibility import check_feasibility
        from repro.core.mintotal import min_total_distance

        res = min_total_distance(tiny_network, horizon=30.0, base=3)
        assert check_feasibility(res.plan, tiny_network.cycles).feasible

    def test_plan_with_base3_simulates_perpetually(self, paper_network_small):
        from repro.core.mintotal import min_total_distance
        from repro.sim.engine import simulate
        from repro.sim.policies import PlannedPolicy
        from repro.sim.workload import FixedWorkload

        net = paper_network_small
        res = min_total_distance(net, horizon=120.0, base=3)
        out = simulate(net, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(net), 120.0)
        assert out.metrics.perpetual
