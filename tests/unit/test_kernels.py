"""Unit tests for :mod:`repro.kernels`: the registry, the dispatch
wrappers, fast-vs-reference exactness, and the incremental MSF extension.

The exactness tests here are seeded spot checks; the property-based
sweeps live in ``tests/property/test_prop_kernels.py`` and the
whole-pipeline differential in :mod:`repro.check` (``kernels`` /
``patch`` checks).
"""

import numpy as np
import pytest

from repro.errors import ConfigError, GraphError
from repro.geometry.distance import distance_matrix
from repro.kernels import (
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    or_opt,
    prim_mst,
    register_backend,
    resolve,
    set_default_backend,
    two_opt,
)
from repro.obs.instrument import Instrumentation
from repro.rooted.incremental import extend_q_rooted_msf
from repro.rooted.msf import q_rooted_msf
from repro.tsp.tour import Tour


@pytest.fixture(autouse=True)
def _clean_default():
    """Never leak a process default (or the env var) across tests."""
    set_default_backend(None)
    yield
    set_default_backend(None)


def _random_instance(rng, n):
    return distance_matrix(rng.uniform(0, 100, size=(n, 2)))


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        assert "reference" in names and "fast" in names

    def test_builtin_backends_are_exact(self):
        assert get_backend("reference").exact
        assert get_backend("fast").exact

    def test_unknown_backend_raises_config_error(self):
        with pytest.raises(ConfigError) as exc:
            get_backend("warp-drive")
        assert "warp-drive" in str(exc.value)
        assert "reference" in str(exc.value)  # names the alternatives

    def test_resolve_passes_backend_instances_through(self):
        kb = get_backend("fast")
        assert resolve(kb) is kb

    def test_resolve_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend_name() == DEFAULT_BACKEND
        assert resolve(None).name == "reference"

    def test_resolve_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        assert resolve(None).name == "fast"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "fast")
        set_default_backend("reference")
        assert resolve(None).name == "reference"
        # Explicit argument beats both.
        assert resolve("fast").name == "fast"

    def test_set_default_validates_eagerly(self):
        before = default_backend_name()  # env-dependent, e.g. in fast-backend CI
        with pytest.raises(ConfigError):
            set_default_backend("nope")
        assert default_backend_name() == before  # unchanged

    def test_register_refuses_silent_shadowing(self):
        ref = get_backend("reference")
        clone = KernelBackend(name="reference", prim_mst=ref.prim_mst,
                              two_opt=ref.two_opt, or_opt=ref.or_opt)
        with pytest.raises(ConfigError):
            register_backend(clone)
        register_backend(clone, replace=True)  # explicit replace is allowed
        register_backend(ref, replace=True)    # restore the builtin


class TestDispatchWrappers:
    def test_prim_dispatch_matches_direct_and_counts(self, rng):
        from repro.graphs.mst import prim_mst as direct

        d = _random_instance(rng, 20)
        obs = Instrumentation()
        assert prim_mst(d, root=3, backend="fast", obs=obs) == direct(d, root=3)
        counters = obs.snapshot().counters
        assert counters["kernel.prim.calls"] == 1

    def test_improver_dispatch_matches_direct_and_counts(self, rng):
        from repro.tsp.improve import or_opt as direct_or
        from repro.tsp.improve import two_opt as direct_two

        d = _random_instance(rng, 12)
        tour = Tour(depot=0, order=(0, *range(1, 12)))
        obs = Instrumentation()
        assert two_opt(d, tour, backend="fast", obs=obs) == direct_two(d, tour)
        assert or_opt(d, tour, backend="fast", obs=obs) == direct_or(d, tour)
        counters = obs.snapshot().counters
        assert counters["kernel.two_opt.calls"] == 1
        assert counters["kernel.or_opt.calls"] == 1


class TestFastMatchesReference:
    """Seeded spot checks that ``fast`` is move-for-move exact."""

    def test_prim_identical_edge_lists(self, rng):
        ref, fast = get_backend("reference"), get_backend("fast")
        for n in (2, 3, 10, 40):
            d = _random_instance(rng, n)
            root = int(rng.integers(n))
            assert ref.prim_mst(d, root=root) == fast.prim_mst(d, root=root)

    def test_two_opt_identical_tours(self, rng):
        ref, fast = get_backend("reference"), get_backend("fast")
        for n in (4, 9, 25):
            d = _random_instance(rng, n)
            stops = list(rng.permutation(np.arange(1, n)))
            tour = Tour(depot=0, order=(0, *(int(s) for s in stops)))
            assert ref.two_opt(d, tour) == fast.two_opt(d, tour)

    def test_or_opt_identical_tours(self, rng):
        ref, fast = get_backend("reference"), get_backend("fast")
        for n in (3, 8, 20):
            d = _random_instance(rng, n)
            stops = list(rng.permutation(np.arange(1, n)))
            tour = Tour(depot=0, order=(0, *(int(s) for s in stops)))
            assert ref.or_opt(d, tour) == fast.or_opt(d, tour)


class TestExtendQRootedMsf:
    """The incremental forest extension is exact-or-refuses."""

    def _setup(self, rng, n, q):
        pts = rng.uniform(0, 100, size=(n + q, 2))
        dist = distance_matrix(pts)
        depots = list(range(n, n + q))
        return dist, depots

    def test_matches_from_scratch_forest(self, rng):
        for trial in range(25):
            n = int(rng.integers(6, 30))
            q = int(rng.integers(1, 4))
            dist, depots = self._setup(rng, n, q)
            sensors = list(range(n))
            n_added = int(rng.integers(1, max(2, n // 3)))
            added = sorted(rng.choice(n, size=n_added, replace=False).tolist())
            base = sorted(set(sensors) - set(added))
            if not base:
                continue
            base_forest = q_rooted_msf(dist, base, depots)
            extended = extend_q_rooted_msf(dist, base, base_forest,
                                           added, depots)
            # Float-uniform coordinates: ties are measure zero, so the
            # extension must essentially always certify.
            assert extended is not None
            assert extended == q_rooted_msf(dist, sensors, depots)

    def test_added_empty_returns_base_forest(self, rng):
        dist, depots = self._setup(rng, 8, 2)
        base = list(range(8))
        forest = q_rooted_msf(dist, base, depots)
        assert extend_q_rooted_msf(dist, base, forest, [], depots) is forest

    def test_tie_gate_refuses_degenerate_metrics(self):
        # Integer grid: massively tied weights. The extension must refuse
        # (return None) rather than risk a forest that differs from the
        # from-scratch tie-breaks.
        xs, ys = np.meshgrid(np.arange(4.0), np.arange(4.0))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        dist = distance_matrix(pts)
        depots = [15]
        base = list(range(10))
        forest = q_rooted_msf(dist, base, depots)
        assert extend_q_rooted_msf(dist, base, forest, [10, 11], depots) is None

    def test_counts_calls(self, rng):
        dist, depots = self._setup(rng, 8, 2)
        base = list(range(6))
        forest = q_rooted_msf(dist, base, depots)
        obs = Instrumentation()
        extend_q_rooted_msf(dist, base, forest, [6, 7], depots, obs=obs)
        assert obs.snapshot().counters["msf.incremental.calls"] == 1

    def test_rejects_depot_mismatch(self, rng):
        dist, depots = self._setup(rng, 6, 2)
        base = list(range(5))
        forest = q_rooted_msf(dist, base, depots)
        with pytest.raises(GraphError):
            extend_q_rooted_msf(dist, base, forest, [5], list(reversed(depots)))

    def test_rejects_overlapping_added(self, rng):
        dist, depots = self._setup(rng, 6, 2)
        base = list(range(5))
        forest = q_rooted_msf(dist, base, depots)
        with pytest.raises(GraphError):
            extend_q_rooted_msf(dist, base, forest, [4, 5], depots)

    def test_rejects_forest_not_spanning_base(self, rng):
        dist, depots = self._setup(rng, 6, 2)
        forest = q_rooted_msf(dist, list(range(4)), depots)
        with pytest.raises(GraphError):
            extend_q_rooted_msf(dist, list(range(5)), forest, [5], depots)
