"""Unit tests for :mod:`repro.obs` — counters, spans, traces, logging."""

import json
import logging

import numpy as np
import pytest

from repro.obs import (
    NULL,
    Instrumentation,
    NullInstrumentation,
    RunningStat,
    StatsSnapshot,
    TraceEvent,
    configure_logging,
    ensure,
    get_logger,
    read_jsonl,
    write_jsonl,
)


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.count == 0
        assert s.total == 0.0
        assert s.mean == 0.0

    def test_accumulates(self):
        s = RunningStat()
        for v in (1.0, 3.0, 2.0):
            s.add(v)
        assert s.count == 3
        assert s.total == 6.0
        assert s.mean == 2.0
        assert s.vmin == 1.0
        assert s.vmax == 3.0


class TestCounters:
    def test_incr_creates_and_accumulates(self):
        obs = Instrumentation()
        obs.incr("x")
        obs.incr("x", 2.5)
        assert obs.counters["x"] == 3.5

    def test_observe_series(self):
        obs = Instrumentation()
        obs.observe("len", 10.0)
        obs.observe("len", 30.0)
        stat = obs.series["len"]
        assert stat.count == 2
        assert stat.mean == 20.0

    def test_observe_accepts_numpy_scalars(self):
        obs = Instrumentation()
        obs.observe("v", np.float64(1.5))
        obs.incr("c", np.int64(3))
        assert obs.counters["c"] == 3.0
        assert obs.series["v"].total == 1.5


class TestSpans:
    def test_span_records_timer_and_event(self):
        obs = Instrumentation()
        with obs.span("work", n=7):
            pass
        assert obs.timers["work"].count == 1
        assert obs.timers["work"].total >= 0.0
        (ev,) = obs.spans("work")
        assert ev.kind == "span"
        assert ev.attrs["n"] == 7
        assert ev.dur is not None and ev.dur >= 0.0

    def test_span_set_attaches_attrs(self):
        obs = Instrumentation()
        with obs.span("work") as sp:
            sp.set(result=3)
        assert obs.spans("work")[0].attrs["result"] == 3

    def test_span_records_on_exception(self):
        obs = Instrumentation()
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        assert obs.timers["boom"].count == 1

    def test_spans_filter_by_name(self):
        obs = Instrumentation()
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        obs.event("c")
        assert len(obs.spans()) == 2
        assert [e.name for e in obs.spans("b")] == ["b"]

    def test_nested_spans(self):
        obs = Instrumentation()
        with obs.span("outer"):
            with obs.span("inner"):
                pass
        # Inner exits first, so it files first.
        assert [e.name for e in obs.spans()] == ["inner", "outer"]


class TestDisabled:
    def test_null_is_disabled_and_silent(self):
        assert NULL.enabled is False
        NULL.incr("x")
        NULL.observe("y", 1.0)
        NULL.event("z")
        with NULL.span("w", k=1) as sp:
            sp.set(done=True)
        assert NULL.counters == {}
        assert NULL.timers == {}
        assert NULL.series == {}
        assert NULL.events == []

    def test_ensure_maps_none_to_null(self):
        assert ensure(None) is NULL
        obs = Instrumentation()
        assert ensure(obs) is obs

    def test_enabled_flag(self):
        assert Instrumentation().enabled is True
        assert NullInstrumentation().enabled is False


class TestSnapshotMerge:
    def _populated(self):
        obs = Instrumentation()
        obs.incr("calls", 2)
        obs.observe("len", 10.0)
        obs.observe("len", 30.0)
        with obs.span("work", n=1):
            pass
        return obs

    def test_running_stat_tuple_round_trip(self):
        s = RunningStat()
        for v in (1.0, 3.0, 2.0):
            s.add(v)
        back = RunningStat.from_tuple(s.as_tuple())
        assert (back.count, back.total, back.vmin, back.vmax) == (3, 6.0, 1.0, 3.0)

    def test_running_stat_merge(self):
        a, b = RunningStat(), RunningStat()
        a.add(1.0)
        a.add(5.0)
        b.add(3.0)
        a.merge(b)
        assert (a.count, a.total, a.vmin, a.vmax) == (3, 9.0, 1.0, 5.0)

    def test_snapshot_is_plain_data(self):
        snap = self._populated().snapshot()
        assert isinstance(snap, StatsSnapshot)
        assert snap.counters == {"calls": 2.0}
        assert snap.series["len"] == (2, 40.0, 10.0, 30.0)
        assert [e.name for e in snap.events] == ["work"]
        import pickle

        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_into_empty_reproduces_source(self):
        src = self._populated()
        dst = Instrumentation()
        dst.merge(src.snapshot())
        assert dst.counters == src.counters
        assert dst.series["len"].mean == src.series["len"].mean
        assert dst.timers["work"].count == 1
        assert [e.name for e in dst.events] == [e.name for e in src.events]

    def test_merge_accumulates(self):
        dst = self._populated()
        dst.merge(self._populated().snapshot())
        assert dst.counters["calls"] == 4.0
        assert dst.series["len"].count == 4
        assert dst.timers["work"].count == 2
        assert len(dst.events) == 2

    def test_snapshot_is_a_copy(self):
        obs = self._populated()
        snap = obs.snapshot()
        obs.incr("calls")
        assert snap.counters == {"calls": 2.0}  # unaffected by later incrs

    def test_null_merge_is_noop(self):
        NULL.merge(self._populated().snapshot())
        assert NULL.counters == {}


class TestTrace:
    def test_jsonl_round_trip(self, tmp_path):
        events = [
            TraceEvent(name="a", kind="span", t=0.5, dur=0.25, attrs={"n": 3}),
            TraceEvent(name="b", kind="event", t=1.0, attrs={"why": "test"}),
        ]
        path = write_jsonl(events, tmp_path / "trace.jsonl")
        back = read_jsonl(path)
        assert back == events

    def test_jsonl_coerces_numpy(self, tmp_path):
        ev = TraceEvent(name="a", kind="event", t=0.0,
                        attrs={"x": np.float64(2.5), "n": np.int64(4)})
        path = write_jsonl([ev], tmp_path / "t.jsonl")
        lines = path.read_text().strip().splitlines()
        rec = json.loads(lines[0])
        assert rec["attrs"] == {"x": 2.5, "n": 4}

    def test_write_trace_method(self, tmp_path):
        obs = Instrumentation()
        with obs.span("s"):
            pass
        obs.event("e", note="hi")
        path = obs.write_trace(tmp_path / "out.jsonl")
        back = read_jsonl(path)
        assert [e.name for e in back] == ["s", "e"]


class TestStatsTable:
    def test_contains_all_sections(self):
        obs = Instrumentation()
        obs.incr("plan.calls", 2)
        obs.observe("plan.tour_length", 123.0)
        with obs.span("plan"):
            pass
        text = obs.stats_table()
        assert "instrumentation" in text
        assert "plan.calls" in text
        assert "plan.tour_length" in text
        assert "plan" in text

    def test_empty_context_renders_placeholder(self):
        text = Instrumentation().stats_table()
        assert text.strip()  # never empty / never raises


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger("repro.sim.engine").name == "repro.sim.engine"
        assert get_logger("sim.engine").name == "repro.sim.engine"

    def test_configure_logging_levels(self):
        root = configure_logging(0)
        assert root.level == logging.INFO
        root = configure_logging(1)
        assert root.level == logging.DEBUG

    def test_configure_logging_idempotent(self):
        configure_logging(0)
        configure_logging(0)
        root = logging.getLogger("repro")
        marked = [h for h in root.handlers
                  if getattr(h, "_repro_cli_handler", False)]
        assert len(marked) == 1
