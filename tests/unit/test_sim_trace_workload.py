"""Unit tests for :class:`repro.sim.workload.TraceWorkload` and the new CLI
plan/simulate commands."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.cycles import LinearCycleDistribution
from repro.sim.workload import (
    FixedWorkload,
    ResampledWorkload,
    TraceWorkload,
    Workload,
)


class TestTraceWorkload:
    def test_replays_rows(self):
        trace = np.array([[1.0, 2.0], [3.0, 4.0]])
        wl = TraceWorkload(trace=trace, slot_duration=5.0)
        np.testing.assert_array_equal(wl.rates_at(0), [1, 2])
        np.testing.assert_array_equal(wl.rates_at(1), [3, 4])

    def test_holds_last_row_beyond_trace(self):
        wl = TraceWorkload(trace=np.array([[1.0], [9.0]]))
        np.testing.assert_array_equal(wl.rates_at(99), [9.0])

    def test_satisfies_protocol(self):
        wl = TraceWorkload(trace=np.ones((2, 3)))
        assert isinstance(wl, Workload)

    @pytest.mark.parametrize("bad", [
        np.ones((0, 3)), np.ones((3, 0)), np.ones(3),
        np.array([[-1.0]]), np.array([[np.inf]]),
    ])
    def test_rejects_bad_traces(self, bad):
        with pytest.raises(ConfigError):
            TraceWorkload(trace=bad)

    def test_negative_slot_raises(self):
        with pytest.raises(ConfigError):
            TraceWorkload(trace=np.ones((1, 1))).rates_at(-1)

    def test_record_resampled_reproduces_exactly(self, paper_network_small):
        source = ResampledWorkload(network=paper_network_small,
                                   distribution=LinearCycleDistribution(),
                                   slot_duration=10.0, seed=3)
        trace = TraceWorkload.record(source, n_slots=5,
                                     n=paper_network_small.n)
        for s in range(5):
            np.testing.assert_array_equal(trace.rates_at(s), source.rates_at(s))
        assert trace.slot_duration == 10.0

    def test_record_fixed_workload(self, tiny_network):
        source = FixedWorkload.from_network(tiny_network)
        trace = TraceWorkload.record(source, n_slots=3, n=tiny_network.n)
        np.testing.assert_array_equal(trace.rates_at(0), source.rates_at(0))
        assert np.isfinite(trace.slot_duration)

    def test_replay_drives_simulation_identically(self, paper_network_small):
        """Replaying a recorded trace gives byte-identical metrics."""
        from repro.baselines.greedy import GreedyOnDemandPolicy
        from repro.sim.engine import simulate

        net = paper_network_small
        horizon = 100.0
        source = ResampledWorkload(network=net,
                                   distribution=LinearCycleDistribution(),
                                   slot_duration=10.0, seed=11)
        n_slots = int(horizon / source.slot_duration) + 1
        trace = TraceWorkload.record(source, n_slots=n_slots, n=net.n)
        a = simulate(net, GreedyOnDemandPolicy(threshold=1.0), source, horizon)
        b = simulate(net, GreedyOnDemandPolicy(threshold=1.0), trace, horizon)
        assert a.metrics.service_cost == pytest.approx(b.metrics.service_cost)
        assert a.metrics.n_charges == b.metrics.n_charges


class TestPlanSimulateCli:
    def test_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        net_p = tmp_path / "net.json"
        plan_p = tmp_path / "plan.json"
        assert main(["plan", "--n", "25", "--horizon", "60", "--seed", "3",
                     "--network-out", str(net_p),
                     "--plan-out", str(plan_p)]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out
        assert net_p.exists() and plan_p.exists()

        assert main(["simulate", "--network", str(net_p),
                     "--plan", str(plan_p), "--speed", "100000"]) == 0
        out = capsys.readouterr().out
        assert "perpetual" in out
        assert "timescales" in out

    def test_simulate_missing_file_raises(self, tmp_path):
        from repro.cli import main
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["simulate", "--network", str(tmp_path / "x.json"),
                  "--plan", str(tmp_path / "y.json")])
