"""Unit tests for :mod:`repro.core.feasibility`."""

import numpy as np
import pytest

from repro.core.feasibility import check_feasibility
from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.tsp.tour import Tour


def _plan(times_by_sensor: dict[int, list[float]], horizon: float,
          depot: int = 10) -> SchedulePlan:
    """Build a plan charging each sensor at the given times (one scheduling
    per distinct time)."""
    by_time: dict[float, list[int]] = {}
    for sensor, times in times_by_sensor.items():
        for t in times:
            by_time.setdefault(t, []).append(sensor)
    scheds = []
    for t in sorted(by_time):
        tour = Tour(depot=depot, order=(depot, *sorted(by_time[t])))
        scheds.append(ChargingScheduling(time=t, tours=(tour,)))
    return SchedulePlan(schedulings=tuple(scheds), horizon=horizon)


class TestFeasible:
    def test_regular_charging_ok(self):
        plan = _plan({0: [2.0, 4.0, 6.0, 8.0]}, horizon=10.0)
        report = check_feasibility(plan, np.array([2.0]))
        assert report.feasible
        assert bool(report) is True

    def test_gap_exactly_tau_is_ok(self):
        plan = _plan({0: [3.0, 6.0]}, horizon=9.0)
        assert check_feasibility(plan, np.array([3.0])).feasible

    def test_never_charged_but_tau_covers_horizon(self):
        plan = SchedulePlan(schedulings=(), horizon=5.0)
        assert check_feasibility(plan, np.array([5.0])).feasible

    def test_multiple_sensors_independent(self):
        plan = _plan({0: [1.0, 2.0, 3.0], 1: [2.0]}, horizon=4.0)
        report = check_feasibility(plan, np.array([1.0, 2.0]))
        assert report.feasible


class TestInfeasible:
    def test_initial_gap_violation(self):
        plan = _plan({0: [5.0]}, horizon=6.0)
        report = check_feasibility(plan, np.array([2.0]))
        assert not report.feasible
        v = report.violations[0]
        assert v.sensor == 0 and v.gap_start == 0.0 and v.gap_end == 5.0
        assert v.excess == pytest.approx(3.0)

    def test_final_gap_violation(self):
        plan = _plan({0: [1.0]}, horizon=10.0)
        report = check_feasibility(plan, np.array([2.0]))
        assert not report.feasible
        assert report.violations[0].gap_end == 10.0

    def test_middle_gap_violation(self):
        plan = _plan({0: [2.0, 9.0]}, horizon=10.0)
        report = check_feasibility(plan, np.array([3.0]))
        assert not report.feasible
        assert (report.violations[0].gap_start,
                report.violations[0].gap_end) == (2.0, 9.0)

    def test_summary_mentions_worst(self):
        plan = _plan({0: [9.0], 1: [1.0, 2.0]}, horizon=10.0)
        report = check_feasibility(plan, np.array([1.0, 1.0]))
        assert "INFEASIBLE" in report.summary()

    def test_one_violation_reported_per_sensor(self):
        plan = _plan({0: [4.0, 9.0]}, horizon=14.0)
        report = check_feasibility(plan, np.array([1.0]))
        assert len(report.violations) == 1


class TestOptions:
    def test_sensor_subset(self):
        plan = _plan({0: [3.5], 1: [1.0, 2.0, 3.0]}, horizon=4.0)
        # Sensor 0 (cycle 1) violates, but we only check sensor 1.
        report = check_feasibility(plan, np.array([1.0, 1.0]),
                                   sensors=np.array([1]))
        assert report.feasible
        assert not check_feasibility(plan, np.array([1.0, 1.0])).feasible

    def test_start_time_anchor(self):
        plan = _plan({0: [6.0]}, horizon=7.0)
        assert not check_feasibility(plan, np.array([3.0])).feasible
        assert check_feasibility(plan, np.array([3.0]), start_time=3.0).feasible

    def test_not_initially_full(self):
        plan = _plan({0: [9.0]}, horizon=10.0)
        # With no initial anchor, the only gap is 9 -> 10.
        report = check_feasibility(plan, np.array([2.0]), initially_full=False)
        assert report.feasible
