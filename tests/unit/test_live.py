"""The streaming layer: delta emission, per-kind merge rules, aggregation.

Satellite 3's differential lives here too: the gauge merge rule must
report per-shard values plus the max — an aggregated gauge can never
exceed the max over shard gauges (summing, the old ``stats`` bug, does).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.instrument import Instrumentation
from repro.obs.live import (
    DeltaEmitter,
    LiveAggregator,
    WatchFrame,
    gauge_table,
    is_frame_line,
    merge_counter_tables,
    merge_sketch_tables,
    merge_stat_tables,
    quantile_table,
)
from repro.obs.quantile import QuantileSketch


class TestWatchFrame:
    def test_round_trip_through_json(self):
        frame = WatchFrame(source="shard-0", seq=3, t=123.5,
                           counters={"a": 2.0}, gauges={"g": 1.5},
                           active={"span": 1},
                           timers={"plan": {"count": 1, "total": 0.5}},
                           events=[{"event": "shard_down", "shard": "s1"}],
                           dropped=2)
        back = WatchFrame.from_dict(json.loads(json.dumps(frame.to_dict())))
        assert back == frame

    def test_marker_distinguishes_frames_from_responses(self):
        frame = WatchFrame(source="s", seq=1, t=0.0)
        assert is_frame_line(frame.to_dict())
        assert not is_frame_line({"id": 1, "ok": True, "result": {}})

    def test_empty_sections_omitted_on_the_wire(self):
        encoded = WatchFrame(source="s", seq=1, t=0.0).to_dict()
        assert "counters" not in encoded
        assert "dropped" not in encoded


class TestDeltaEmitter:
    def test_first_frame_carries_cumulative_state(self):
        obs = Instrumentation()
        obs.incr("requests", 5)
        emitter = DeltaEmitter(obs, source="n1")
        frame = emitter.frame()
        assert frame.source == "n1"
        assert frame.seq == 1
        assert frame.counters == {"requests": 5.0}

    def test_subsequent_frames_carry_only_changes(self):
        obs = Instrumentation()
        obs.incr("requests", 5)
        emitter = DeltaEmitter(obs)
        emitter.frame()
        obs.incr("requests", 2)
        obs.incr("fresh")
        frame = emitter.frame()
        assert frame.seq == 2
        assert frame.counters == {"requests": 2.0, "fresh": 1.0}
        # Nothing changed since: the next frame is empty of counters.
        assert emitter.frame().counters == {}

    def test_timer_deltas_include_sketch_buckets(self):
        obs = Instrumentation()
        with obs.span("plan"):
            time.sleep(0.001)
        emitter = DeltaEmitter(obs)
        frame = emitter.frame()
        entry = frame.timers["plan"]
        assert entry["count"] == 1
        assert entry["sketch"]["buckets"]
        with obs.span("plan"):
            time.sleep(0.001)
        second = emitter.frame().timers["plan"]
        assert second["count"] == 1  # the delta, not the running total
        assert sum(second["sketch"]["buckets"].values()) == 1

    def test_gauges_and_active_are_current_not_deltas(self):
        obs = Instrumentation()
        obs.observe("queue", 4.0)
        emitter = DeltaEmitter(obs)
        assert emitter.frame().gauges == {"queue": 4.0}
        obs.observe("queue", 1.0)
        assert emitter.frame().gauges == {"queue": 1.0}


class TestLiveAggregator:
    def _frame(self, source, seq, counters=None, gauges=None):
        return WatchFrame(source=source, seq=seq, t=0.0,
                          counters=counters or {}, gauges=gauges or {})

    def test_counters_sum_across_sources(self):
        agg = LiveAggregator()
        agg.ingest(self._frame("a", 1, counters={"req": 3.0}))
        agg.ingest(self._frame("b", 1, counters={"req": 4.0}))
        assert agg.totals == {"req": 7.0}

    def test_gauges_per_source_plus_max_never_summed(self):
        agg = LiveAggregator()
        agg.ingest(self._frame("a", 1, gauges={"queue": 3.0}))
        agg.ingest(self._frame("b", 1, gauges={"queue": 5.0}))
        view = agg.gauge_view()
        assert view["queue"]["max"] == 5.0
        assert view["queue"]["per_shard"] == {"a": 3.0, "b": 5.0}
        # The differential: aggregate must never exceed the shard max.
        assert view["queue"]["max"] <= max(
            g["queue"] for g in agg.gauges.values())

    def test_sequence_gap_counts_dropped(self):
        agg = LiveAggregator()
        agg.ingest(self._frame("a", 1))
        agg.ingest(self._frame("a", 4))
        assert agg.dropped == 2

    def test_restart_resets_gauges_but_keeps_counters(self):
        agg = LiveAggregator()
        agg.ingest(self._frame("a", 5, counters={"req": 10.0},
                               gauges={"queue": 7.0}))
        # Seq restarts from 1: a new incarnation of the same source.
        agg.ingest(self._frame("a", 1, counters={"req": 2.0}))
        assert agg.totals == {"req": 12.0}  # monotone across the restart
        assert "queue" not in agg.gauge_view()
        assert agg.dropped == 0  # a restart is not data loss

    def test_counter_totals_monotone_over_any_frame_sequence(self):
        agg = LiveAggregator()
        last = 0.0
        for seq, delta in [(1, 3.0), (2, 1.0), (1, 2.0), (2, 0.0), (3, 4.0)]:
            agg.ingest(self._frame("a", seq, counters={"req": delta}))
            assert agg.totals["req"] >= last
            last = agg.totals["req"]

    def test_mark_down_drops_instantaneous_keeps_cumulative(self):
        agg = LiveAggregator()
        agg.ingest(self._frame("a", 1, counters={"req": 5.0},
                               gauges={"queue": 2.0}))
        agg.mark_down("a")
        frame = agg.frame()
        assert frame.shards == {"a": "down"}
        assert frame.counters == {"req": 5.0}
        assert frame.gauges == {}

    def test_aggregate_frame_merges_sketch_quantiles(self):
        fast_sk, slow_sk = QuantileSketch(), QuantileSketch()
        for _ in range(100):
            fast_sk.add(0.001)
            slow_sk.add(1.0)
        agg = LiveAggregator()
        for name, sk, seq in [("a", fast_sk, 1), ("b", slow_sk, 1)]:
            agg.ingest(WatchFrame(
                source=name, seq=seq, t=0.0,
                timers={"plan": {"count": 100, "total": sk.count * 0.5,
                                 "sketch": sk.to_dict()}}))
        q = agg.quantile_view()["plan"]
        assert q["count"] == 200
        assert q["p99"] == pytest.approx(1.0, rel=0.02)
        assert q["p50"] <= q["p99"]


class TestMergeHelpers:
    def test_counter_tables_sum(self):
        merged = merge_counter_tables([{"a": 1.0}, {"a": 2.0, "b": 3.0}, None])
        assert merged == {"a": 3.0, "b": 3.0}

    def test_stat_tables_exact_merge_mean_recomputed(self):
        merged = merge_stat_tables([
            {"plan": {"count": 2, "total": 2.0, "mean": 1.0,
                      "min": 0.5, "max": 1.5}},
            {"plan": {"count": 2, "total": 6.0, "mean": 3.0,
                      "min": 2.0, "max": 4.0}},
        ])
        plan = merged["plan"]
        assert plan["count"] == 4
        assert plan["total"] == 8.0
        assert plan["mean"] == 2.0  # 8/4, NOT (1+3)/2 = 2 by luck — check min/max
        assert plan["min"] == 0.5
        assert plan["max"] == 4.0

    def test_stat_tables_mean_not_averaged(self):
        merged = merge_stat_tables([
            {"t": {"count": 1, "total": 1.0, "mean": 1.0,
                   "min": 1.0, "max": 1.0}},
            {"t": {"count": 9, "total": 90.0, "mean": 10.0,
                   "min": 10.0, "max": 10.0}},
        ])
        assert merged["t"]["mean"] == pytest.approx(9.1)  # not 5.5

    def test_gauge_table_differential_vs_sum(self):
        per_shard = {"s0": {"queue": 2.0}, "s1": {"queue": 3.0}}
        table = gauge_table(per_shard)
        summed = sum(g["queue"] for g in per_shard.values())
        assert table["queue"]["max"] == 3.0
        assert table["queue"]["max"] <= summed
        assert table["queue"]["max"] == max(
            g["queue"] for g in per_shard.values())

    def test_sketch_tables_merge_then_quantiles(self):
        a, b = QuantileSketch(), QuantileSketch()
        for _ in range(50):
            a.add(0.01)
            b.add(2.0)
        merged = merge_sketch_tables([{"plan": a.to_dict()},
                                      {"plan": b.to_dict()}])
        table = quantile_table(merged, {"plan": (100, 100.5)})
        assert table["plan"]["count"] == 100
        assert table["plan"]["mean"] == pytest.approx(1.005)
        assert table["plan"]["p99"] == pytest.approx(2.0, rel=0.02)
