"""Unit tests for :mod:`repro.cli`."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "fig1a", "--reps", "3", "--full", "--csv", "out.csv"])
        assert (args.figure, args.reps, args.full, args.csv) == (
            "fig1a", 3, True, "out.csv")

    def test_jobs_flags(self):
        args = build_parser().parse_args(["run", "fig1a", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["report", "--jobs", "2"])
        assert args.jobs == 2
        assert build_parser().parse_args(["run", "fig1a"]).jobs == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fid in ["fig1a", "fig2b", "fig5", "abl-q"]:
            assert fid in out

    def test_unknown_figure_errors(self, capsys):
        assert main(["run", "fig77"]) == 2
        err = capsys.readouterr().err
        assert "repro: error: unknown figure 'fig77'" in err
        assert "Traceback" not in err

    def test_errors_module_hierarchy(self):
        # Sanity: every library error is catchable as ReproError.
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError) or exc is errors.ReproError


class TestKernelBackendFlag:
    def test_parsed_at_top_level(self):
        args = build_parser().parse_args(["--kernel-backend", "fast", "list"])
        assert args.kernel_backend == "fast"
        assert build_parser().parse_args(["list"]).kernel_backend is None

    def test_unknown_backend_is_a_clean_usage_error(self, capsys):
        from repro.kernels import default_backend_name

        assert main(["--kernel-backend", "warp-drive", "list"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel backend 'warp-drive'" in err
        assert "Traceback" not in err
        # The bad name must not have been installed as the default.
        assert default_backend_name() != "warp-drive"

    def test_valid_backend_sets_the_process_default(self, capsys):
        from repro.kernels import default_backend_name, set_default_backend

        try:
            assert main(["--kernel-backend", "fast", "list"]) == 0
            assert default_backend_name() == "fast"
        finally:
            set_default_backend(None)


class TestJobsValidation:
    """`--jobs 0` used to die deep in the executor; now it is a clean
    one-line usage error (no traceback) before any work starts."""

    @pytest.mark.parametrize("argv,message", [
        (["run", "fig1a", "--jobs", "0"], "--jobs must be >= 1, got 0"),
        (["run", "fig1a", "--jobs", "-4"], "--jobs must be >= 1, got -4"),
        (["report", "--jobs", "0"], "--jobs must be >= 1, got 0"),
        (["serve", "--workers", "0"], "--workers must be >= 1, got 0"),
        (["serve", "--workers", "-1"], "--workers must be >= 1, got -1"),
        (["serve", "--queue-limit", "0"], "--queue-limit must be >= 1, got 0"),
    ])
    def test_nonpositive_rejected_cleanly(self, argv, message, capsys):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert f"repro: error: {message}" in err
        assert "Traceback" not in err


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.command, args.host, args.port) == ("serve", "127.0.0.1", 7351)
        assert (args.workers, args.executor, args.queue_limit) == (1, "process", 32)
        assert args.deadline == 30.0

    def test_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--executor", "thread",
             "--queue-limit", "8", "--deadline", "5", "--drain-timeout", "2"])
        assert (args.port, args.workers, args.executor) == (0, 4, "thread")
        assert (args.queue_limit, args.deadline, args.drain_timeout) == (8, 5.0, 2.0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "fiber"])


class TestCacheCLI:
    """The `repro cache` maintenance group and `--cache-dir` plumbing."""

    def test_parser_defaults_and_flags(self):
        assert build_parser().parse_args(["plan"]).cache_dir is None
        assert build_parser().parse_args(["serve"]).cache_dir is None
        assert build_parser().parse_args(["run", "fig1a"]).cache_dir is None
        args = build_parser().parse_args(
            ["cache", "gc", "--cache-dir", "d", "--max-entries", "5"])
        assert (args.command, args.cache_command) == ("cache", "gc")
        assert (args.cache_dir, args.max_entries, args.max_bytes) == ("d", 5, None)

    def test_cache_dir_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def _plan(self, tmp_path, store):
        return main(["plan", "--n", "12", "--q", "2", "--horizon", "60",
                     "--cache-dir", str(store),
                     "--network-out", str(tmp_path / "n.json"),
                     "--plan-out", str(tmp_path / "p.json")])

    def test_plan_populates_store_and_commands_run(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._plan(tmp_path, store) == 0
        assert self._plan(tmp_path, store) == 0  # warm re-plan, same files

        assert main(["cache", "stats", "--cache-dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and str(store) in out

        assert main(["cache", "verify", "--cache-dir", str(store)]) == 0
        assert "0 corrupt" in capsys.readouterr().out

        assert main(["cache", "gc", "--cache-dir", str(store),
                     "--max-entries", "1"]) == 0
        assert "kept 1" in capsys.readouterr().out

        assert main(["cache", "clear", "--cache-dir", str(store)]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_verify_exit_one_on_corruption(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert self._plan(tmp_path, store) == 0
        victim = sorted((store / "objects").rglob("*.json"))[0]
        victim.write_bytes(b"garbage")
        assert main(["cache", "verify", "--cache-dir", str(store)]) == 1
        assert "1 corrupt" in capsys.readouterr().out

    def test_foreign_directory_rejected_cleanly(self, tmp_path, capsys):
        foreign = tmp_path / "foreign"
        foreign.mkdir()
        (foreign / "data.txt").write_text("precious")
        assert main(["cache", "clear", "--cache-dir", str(foreign)]) == 2
        err = capsys.readouterr().err
        assert "repro: error:" in err and "Traceback" not in err
        assert (foreign / "data.txt").exists()


class TestWatchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["watch"])
        assert (args.command, args.host, args.port) == ("watch", "127.0.0.1", 7350)
        assert (args.interval, args.duration, args.frames) == (1.0, 0.0, 0)
        assert (args.once, args.plain) == (False, False)
        assert (args.jsonl, args.svg, args.score) == (None, None, None)

    def test_flags(self):
        args = build_parser().parse_args(
            ["watch", "--port", "7351", "--interval", "0.25", "--frames", "5",
             "--duration", "30", "--once", "--plain", "--jsonl", "f.jsonl",
             "--svg", "d.svg", "--score", "live.jsonl"])
        assert (args.port, args.interval, args.frames) == (7351, 0.25, 5)
        assert (args.duration, args.once, args.plain) == (30.0, True, True)
        assert (args.jsonl, args.svg, args.score) == (
            "f.jsonl", "d.svg", "live.jsonl")

    def test_nonpositive_interval_is_a_usage_error(self, capsys):
        assert main(["watch", "--interval", "0"]) == 2
        err = capsys.readouterr().err
        assert "--interval" in err and "Traceback" not in err

    def test_unreachable_server_is_a_clean_failure(self, capsys):
        # Nothing listens on this port: one stderr line, exit 1.
        assert main(["watch", "--port", "1", "--frames", "1"]) == 1
        assert "Traceback" not in capsys.readouterr().err
