"""Unit tests for :mod:`repro.cli`."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_options(self):
        args = build_parser().parse_args(
            ["run", "fig1a", "--reps", "3", "--full", "--csv", "out.csv"])
        assert (args.figure, args.reps, args.full, args.csv) == (
            "fig1a", 3, True, "out.csv")

    def test_jobs_flags(self):
        args = build_parser().parse_args(["run", "fig1a", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["report", "--jobs", "2"])
        assert args.jobs == 2
        assert build_parser().parse_args(["run", "fig1a"]).jobs == 1

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_catalogue(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fid in ["fig1a", "fig2b", "fig5", "abl-q"]:
            assert fid in out

    def test_unknown_figure_errors(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["run", "fig77"])

    def test_errors_module_hierarchy(self):
        # Sanity: every library error is catchable as ReproError.
        from repro import errors

        for name in errors.__all__:
            exc = getattr(errors, name)
            assert issubclass(exc, errors.ReproError) or exc is errors.ReproError
