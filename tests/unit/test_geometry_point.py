"""Unit tests for :mod:`repro.geometry.point`."""

import math

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.point import Point, points_to_array


class TestPoint:
    def test_distance_matches_hypot(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.5, -2.0), Point(-3.25, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_distance_to_self_is_zero(self):
        p = Point(2.5, 3.5)
        assert p.distance_to(p) == 0.0

    def test_midpoint(self):
        m = Point(0, 0).midpoint(Point(10, 4))
        assert (m.x, m.y) == (5.0, 2.0)

    def test_translated(self):
        p = Point(1, 2).translated(3, -5)
        assert (p.x, p.y) == (4.0, -3.0)

    def test_as_tuple_and_iter(self):
        p = Point(7, 8)
        assert p.as_tuple() == (7, 8)
        assert tuple(p) == (7, 8)

    def test_frozen_and_hashable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 3  # type: ignore[misc]
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(GeometryError):
            Point(bad, 0)
        with pytest.raises(GeometryError):
            Point(0, bad)


class TestPointsToArray:
    def test_shape_and_values(self):
        arr = points_to_array([Point(1, 2), Point(3, 4)])
        assert arr.shape == (2, 2)
        np.testing.assert_array_equal(arr, [[1, 2], [3, 4]])

    def test_dtype_is_float64(self):
        assert points_to_array([Point(1, 2)]).dtype == np.float64

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            points_to_array([])

    def test_accepts_generator(self):
        arr = points_to_array(Point(i, i) for i in range(3))
        assert arr.shape == (3, 2)
