"""Unit tests for :mod:`repro.experiments.stats`."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments.stats import ConfidenceInterval, mean_ci, paired_ratio_ci


class TestMeanCi:
    def test_known_small_sample(self):
        # n=4, mean 2.5, sd ~1.29: t(3)=3.182, sem=0.6455 -> h=2.054.
        ci = mean_ci(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ci.mean == pytest.approx(2.5)
        assert ci.half_width == pytest.approx(3.182 * np.std([1, 2, 3, 4], ddof=1)
                                              / 2.0, rel=1e-3)
        assert ci.n == 4

    def test_interval_brackets_mean(self):
        rng = np.random.default_rng(0)
        ci = mean_ci(rng.normal(10.0, 2.0, size=50))
        assert ci.lower < ci.mean < ci.upper
        assert ci.contains(ci.mean)

    def test_single_sample_degenerate(self):
        ci = mean_ci(np.array([5.0]))
        assert (ci.mean, ci.lower, ci.upper, ci.n) == (5.0, 5.0, 5.0, 1)

    def test_zero_variance(self):
        ci = mean_ci(np.full(10, 3.0))
        assert ci.half_width == 0.0

    def test_large_sample_uses_normal_quantile(self):
        x = np.arange(100, dtype=float)
        ci = mean_ci(x)
        sem = x.std(ddof=1) / 10.0
        assert ci.half_width == pytest.approx(1.96 * sem, rel=1e-3)

    def test_coverage_monte_carlo(self):
        """~95% of intervals should contain the true mean."""
        rng = np.random.default_rng(7)
        hits = sum(
            mean_ci(rng.normal(0.0, 1.0, size=10)).contains(0.0)
            for _ in range(400))
        assert 0.90 <= hits / 400 <= 0.99

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            mean_ci(np.array([]))

    def test_str(self):
        assert "95% CI" in str(mean_ci(np.array([1.0, 2.0])))


class TestPairedRatioCi:
    def test_constant_ratio_zero_width(self):
        num = np.array([10.0, 20.0, 30.0])
        den = num * 2.0
        ci = paired_ratio_ci(num, den)
        assert ci.mean == pytest.approx(0.5)
        assert ci.half_width == pytest.approx(0.0)

    def test_pairing_tightens_vs_unpaired(self):
        # Costs vary hugely across topologies; ratio is nearly constant.
        rng = np.random.default_rng(1)
        den = rng.uniform(1e5, 1e6, size=20)
        num = den * rng.normal(0.6, 0.01, size=20)
        paired = paired_ratio_ci(num, den)
        assert paired.half_width < 0.02
        assert 0.55 < paired.mean < 0.65

    def test_rejects_mismatch_and_bad_denominator(self):
        with pytest.raises(ConfigError):
            paired_ratio_ci(np.ones(3), np.ones(4))
        with pytest.raises(ConfigError):
            paired_ratio_ci(np.ones(2), np.array([1.0, 0.0]))


class TestCellIntegration:
    def test_cell_ratio_ci(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_cell

        cell = run_cell(ExperimentConfig(n=20, horizon=80.0, n_topologies=3,
                                         seed=5, algorithms=("mtd", "greedy")))
        ci = cell.ratio_ci("mtd", "greedy")
        assert isinstance(ci, ConfidenceInterval)
        assert 0 < ci.lower <= ci.mean <= ci.upper
        cost_ci = cell.cost_ci("mtd")
        assert cost_ci.n == 3
