"""Edge-case tests for the simulation engine's event handling."""

import numpy as np
import pytest

from repro.core.schedule import ChargingScheduling
from repro.sim.engine import simulate
from repro.sim.policies import SimulationView
from repro.sim.workload import FixedWorkload, TraceWorkload
from repro.tsp.tour import Tour


class RecordingPolicy:
    """Dispatches at given times; records every callback it receives."""

    def __init__(self, times, sensors=(0,)):
        self.times = list(times)
        self.sensors = tuple(sensors)
        self.observed_at: list[float] = []
        self.dispatched_at: list[float] = []
        self._i = 0
        self._depot = None

    def reset(self, network, horizon):
        self._i = 0
        self._depot = network.depot_index(0)
        self.observed_at = []
        self.dispatched_at = []

    def next_dispatch_time(self, now):
        while self._i < len(self.times) and self.times[self._i] < now - 1e-12:
            self._i += 1
        return self.times[self._i] if self._i < len(self.times) else None

    def observe(self, view: SimulationView):
        self.observed_at.append(view.time)

    def dispatch(self, view: SimulationView):
        self.dispatched_at.append(view.time)
        self._i += 1
        tour = Tour(depot=self._depot, order=(self._depot, *self.sensors))
        return ChargingScheduling(time=view.time, tours=(tour,))


class TestEventOrdering:
    def test_dispatch_at_time_zero(self, tiny_network):
        pol = RecordingPolicy([0.0])
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 0.9)
        assert pol.dispatched_at == [0.0]
        assert out.metrics.n_dispatches == 1

    def test_initial_observation_precedes_everything(self, tiny_network):
        pol = RecordingPolicy([0.5])
        simulate(tiny_network, pol, FixedWorkload.from_network(tiny_network), 0.9)
        assert pol.observed_at[0] == 0.0

    def test_observation_fires_at_every_slot_boundary(self, tiny_network):
        trace = TraceWorkload(trace=np.tile(tiny_network.rates, (10, 1)),
                              slot_duration=1.0)
        pol = RecordingPolicy([0.4, 1.4, 2.4])
        simulate(tiny_network, pol, trace, 3.5)
        # t=0 initial + boundaries 1, 2, 3.
        assert pol.observed_at == pytest.approx([0.0, 1.0, 2.0, 3.0])

    def test_boundary_observation_precedes_coincident_dispatch(self, tiny_network):
        """When a slot boundary and a dispatch coincide, the policy must see
        fresh rates before dispatching."""
        seen = []

        class Coincident(RecordingPolicy):
            def observe(self, view):
                seen.append(("observe", view.time))
                super().observe(view)

            def dispatch(self, view):
                seen.append(("dispatch", view.time))
                return super().dispatch(view)

        trace = TraceWorkload(trace=np.tile(tiny_network.rates, (10, 1)),
                              slot_duration=1.0)
        simulate(tiny_network, Coincident([2.0]), trace, 3.5)
        at_two = [kind for kind, t in seen if abs(t - 2.0) < 1e-9]
        assert at_two == ["observe", "dispatch"]

    def test_no_dispatch_at_or_after_horizon(self, tiny_network):
        pol = RecordingPolicy([0.5, 5.0, 7.0])
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 5.0)
        assert pol.dispatched_at == [0.5]
        assert all(ev.time < 5.0 for ev in out.metrics.dispatches)

    def test_multiple_dispatches_at_distinct_times(self, tiny_network):
        pol = RecordingPolicy([0.2, 0.7, 0.9], sensors=(0, 1))
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 1.0)
        assert out.metrics.n_dispatches == 3
        assert out.metrics.n_charges == 6

    def test_final_drain_reaches_exact_horizon(self, tiny_network):
        out = simulate(tiny_network, RecordingPolicy([]),
                       FixedWorkload.from_network(tiny_network), 0.5)
        expected = tiny_network.batteries - tiny_network.rates * 0.5
        np.testing.assert_allclose(out.final_energy, np.maximum(expected, 0),
                                   atol=1e-12)

    def test_energy_before_reflects_drain_at_dispatch(self, tiny_network):
        pol = RecordingPolicy([0.5], sensors=(0,))
        out = simulate(tiny_network, pol,
                       FixedWorkload.from_network(tiny_network), 0.9)
        ev = out.metrics.charges[0]
        # Sensor 0 has cycle 1 (rate 1): at t=0.5 half the battery is gone.
        assert ev.energy_before == pytest.approx(0.5)

    def test_view_is_a_snapshot(self, tiny_network):
        """Mutating the view's arrays must not corrupt the simulation."""

        class Mutator(RecordingPolicy):
            def observe(self, view):
                view.energy[:] = 0.0  # vandalism
                view.observed_rates[:] = 99.0
                super().observe(view)

        out = simulate(tiny_network, Mutator([0.5]),
                       FixedWorkload.from_network(tiny_network), 0.9)
        assert out.metrics.perpetual  # truth unaffected by the vandalism
