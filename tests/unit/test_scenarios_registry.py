"""Unit tests for the scenario/policy/suite registries."""

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    METRIC_KEYS,
    METRICS,
    POLICIES,
    SCENARIOS,
    SUITES,
    PolicyEntry,
    ScenarioSpec,
    SuiteSpec,
    get_scenario,
    get_suite,
    policy_names,
    register_policy,
    register_scenario,
    register_suite,
    scenario_names,
)
from repro.scenarios.generators import _BASE


class TestBuiltinRegistrations:
    def test_the_six_builtin_scenarios(self):
        assert set(SCENARIOS) >= {
            "dense-urban", "sparse-wide-area", "heterogeneous-batteries",
            "high-churn", "failure-storm", "request-burst"}

    def test_builtin_policies_and_suites(self):
        assert set(POLICIES) >= {"mtd", "mtd-var", "greedy"}
        assert set(SUITES) >= {"quick", "full"}

    def test_names_in_registration_order(self):
        assert scenario_names()[0] == "dense-urban"
        assert tuple(POLICIES) == policy_names()

    def test_metric_tables_agree(self):
        """score.METRIC_KEYS and golden.METRICS describe the same columns."""
        assert tuple(m.key for m in METRICS) == METRIC_KEYS

    def test_dynamic_scenarios_have_active_dynamics(self):
        for name in ("high-churn", "failure-storm", "request-burst"):
            assert SCENARIOS[name].config.dynamics(0) is not None
        assert SCENARIOS["dense-urban"].config.dynamics(0) is None


class TestRegistrationSemantics:
    def test_reregistration_is_idempotent_by_content(self):
        spec = SCENARIOS["dense-urban"]
        assert register_scenario(spec) is spec
        entry = POLICIES["greedy"]
        assert register_policy("greedy") == entry
        suite = SUITES["quick"]
        assert register_suite(suite) is suite

    def test_conflicting_reregistration_fails_loudly(self):
        clash = SCENARIOS["dense-urban"].with_overrides(n=7)
        with pytest.raises(ConfigError, match="already registered"):
            register_scenario(clash)
        with pytest.raises(ConfigError, match="already registered"):
            register_policy("greedy", "naive")

    def test_unknown_lookups_list_known_names(self):
        with pytest.raises(ConfigError, match="dense-urban"):
            get_scenario("no-such-scenario")
        with pytest.raises(ConfigError, match="quick"):
            get_suite("no-such-suite")


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError, match="non-empty"):
            ScenarioSpec(name="", description="x", config=_BASE)

    def test_bad_battery_range_rejected(self):
        with pytest.raises(ConfigError, match="battery_range"):
            ScenarioSpec(name="x", description="x", config=_BASE,
                         battery_range=(2.0, 1.0))
        with pytest.raises(ConfigError, match="battery_range"):
            ScenarioSpec(name="x", description="x", config=_BASE,
                         battery_range=(0.0, 1.0))

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError, match="unknown algorithm"):
            PolicyEntry(name="x", algorithm="definitely-not-real")

    def test_compatibility_predicate(self):
        adaptive = POLICIES["mtd-var"]
        assert adaptive.compatible(SCENARIOS["dense-urban"])
        assert not adaptive.compatible(SCENARIOS["sparse-wide-area"])
        assert POLICIES["greedy"].compatible(SCENARIOS["sparse-wide-area"])


class TestSuites:
    def test_empty_scenarios_means_all(self):
        members = get_suite("quick").members()
        assert tuple(s.name for s in members) == scenario_names()

    def test_overrides_applied_to_every_member(self):
        for spec in get_suite("full").members():
            assert spec.config.n_topologies == 5
            assert spec.config.horizon == 240.0
        # ... without mutating the registered originals.
        assert SCENARIOS["dense-urban"].config.n_topologies == 2

    def test_explicit_member_list(self):
        suite = SuiteSpec(name="tmp", description="x",
                          scenarios=("failure-storm", "dense-urban"))
        assert tuple(s.name for s in suite.members()) == (
            "failure-storm", "dense-urban")
