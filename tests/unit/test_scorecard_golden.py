"""Unit tests for scorecard serialisation and the golden regression gate.

These run on hand-built scorecards (no simulation), so every branch of
the tolerance/direction/coverage logic is exercised cheaply; the
end-to-end gate (real suite, real golden file, CLI exit codes) lives in
``tests/integration/test_score_cli.py``.
"""

import pytest

from repro.errors import ConfigError
from repro.scenarios import (
    GATED_KEYS,
    METRICS,
    Scorecard,
    compare_scorecards,
    default_baseline_path,
)
from repro.scenarios.golden import MetricSpec


def _card(**cells) -> Scorecard:
    """One-scenario scorecard; cells maps policy -> metrics dict (or None)."""
    return Scorecard(suite="quick", policies=tuple(cells),
                     scenarios={"s1": dict(cells)})


_BASE_METRICS = {
    "service_cost": 1000.0, "deaths": 0.0, "charger_utilization": 0.5,
    "replan_count": 3.0, "cache_hit_rate": 0.4,
}


class TestMetricSpec:
    def test_budget_is_max_of_abs_and_rel(self):
        spec = MetricSpec("m", "m", "lower", rel_tol=0.02, abs_tol=1.0)
        assert spec.budget(1000.0) == pytest.approx(20.0)
        assert spec.budget(10.0) == pytest.approx(1.0)

    def test_worse_by_respects_direction(self):
        lower = MetricSpec("m", "m", "lower")
        higher = MetricSpec("m", "m", "higher")
        assert lower.worse_by(110.0, 100.0) == pytest.approx(10.0)
        assert higher.worse_by(110.0, 100.0) == pytest.approx(-10.0)

    def test_gated_keys_are_the_gated_subset(self):
        assert GATED_KEYS == tuple(m.key for m in METRICS if m.gated)
        assert "replan_latency_p99_ms" not in GATED_KEYS
        assert "service_cost" in GATED_KEYS


class TestCompare:
    def test_identical_cards_have_no_regressions(self):
        card = _card(mtd=dict(_BASE_METRICS))
        regs, improved = compare_scorecards(card, card)
        assert regs == [] and improved == []

    def test_worse_cost_past_tolerance_regresses(self):
        base = _card(mtd=dict(_BASE_METRICS))
        cur = _card(mtd={**_BASE_METRICS, "service_cost": 1030.0})  # +3% > 2%
        regs, _ = compare_scorecards(cur, base)
        assert [(r.scenario, r.policy, r.metric) for r in regs] == \
            [("s1", "mtd", "service_cost")]
        assert regs[0].drift == pytest.approx(30.0)
        assert "lower is better" in regs[0].describe()

    def test_drift_within_tolerance_passes(self):
        base = _card(mtd=dict(_BASE_METRICS))
        cur = _card(mtd={**_BASE_METRICS, "service_cost": 1015.0})  # +1.5%
        regs, improved = compare_scorecards(cur, base)
        assert regs == [] and improved == []

    def test_single_extra_death_regresses(self):
        """deaths has zero tolerance: one extra death fails the gate."""
        base = _card(mtd=dict(_BASE_METRICS))
        cur = _card(mtd={**_BASE_METRICS, "deaths": 1.0})
        regs, _ = compare_scorecards(cur, base)
        assert [r.metric for r in regs] == ["deaths"]

    def test_higher_is_better_direction(self):
        base = _card(mtd=dict(_BASE_METRICS))
        worse = _card(mtd={**_BASE_METRICS, "charger_utilization": 0.4})
        better = _card(mtd={**_BASE_METRICS, "charger_utilization": 0.6})
        regs, _ = compare_scorecards(worse, base)
        assert [r.metric for r in regs] == ["charger_utilization"]
        regs, improved = compare_scorecards(better, base)
        assert regs == []
        assert any("charger_utilization" in note for note in improved)

    def test_improvements_reported_not_fatal(self):
        base = _card(mtd=dict(_BASE_METRICS))
        cur = _card(mtd={**_BASE_METRICS, "service_cost": 900.0})
        regs, improved = compare_scorecards(cur, base)
        assert regs == []
        assert len(improved) == 1 and "improved" in improved[0]

    def test_lost_cell_coverage_regresses(self):
        base = _card(mtd=dict(_BASE_METRICS))
        cur = _card(mtd=None)
        regs, _ = compare_scorecards(cur, base)
        assert len(regs) == 1 and regs[0].metric == "*"
        assert "coverage lost" in regs[0].describe()

    def test_lost_metric_coverage_regresses(self):
        base = _card(mtd=dict(_BASE_METRICS))
        gone = {**_BASE_METRICS, "cache_hit_rate": None}
        regs, _ = compare_scorecards(_card(mtd=gone), base)
        assert [r.metric for r in regs] == ["cache_hit_rate"]

    def test_new_cells_are_additions_not_regressions(self):
        base = _card(mtd=dict(_BASE_METRICS))
        cur = Scorecard(suite="quick", policies=("mtd", "greedy"), scenarios={
            "s1": {"mtd": dict(_BASE_METRICS), "greedy": dict(_BASE_METRICS)},
            "s2": {"mtd": dict(_BASE_METRICS)}})
        regs, _ = compare_scorecards(cur, base)
        assert regs == []

    def test_baseline_none_metric_is_skipped(self):
        """Metrics undefined at blessing time (e.g. cache rate of a
        non-planning policy) never gate."""
        base = _card(greedy={**_BASE_METRICS, "cache_hit_rate": None})
        cur = _card(greedy={**_BASE_METRICS, "cache_hit_rate": 0.9})
        regs, _ = compare_scorecards(cur, base)
        assert regs == []


class TestSerialisation:
    def test_save_load_round_trip(self, tmp_path):
        card = Scorecard(suite="quick", policies=("mtd", "greedy"), scenarios={
            "s1": {"mtd": dict(_BASE_METRICS), "greedy": None}})
        path = card.save(tmp_path / "SCORECARD.json")
        restored = Scorecard.load(path)
        assert restored.suite == card.suite
        assert restored.policies == card.policies
        assert restored.scenarios == card.scenarios
        assert restored.n_cells == 1

    def test_malformed_document_raises_config_error(self):
        with pytest.raises(ConfigError, match="malformed scorecard"):
            Scorecard.from_dict({"suite": "quick"})

    def test_gated_view_strips_ungated_metrics(self):
        full = {**_BASE_METRICS, "replan_latency_p99_ms": 12.5}
        card = _card(mtd=full, greedy=None)
        view = card.gated_view(GATED_KEYS)
        assert set(view["s1"]["mtd"]) == set(GATED_KEYS) & set(full)
        assert view["s1"]["greedy"] is None

    def test_default_baseline_path(self):
        assert str(default_baseline_path("quick")).endswith(
            "golden/SCORECARD.quick.json")
