"""Unit tests for the staged planner pipeline and its artifact cache.

Covers :mod:`repro.plan.cache` (LRU mechanics) and
:mod:`repro.plan.pipeline` (per-stage hit/miss accounting, base-tour
sharing across refine variants, invalidation when cycle changes move
sensors between quantisation classes). The cached-equals-uncached
guarantee is additionally property-tested in
``tests/property/test_prop_plan_cache.py``.
"""

import numpy as np
import pytest

from repro.core.mintotal import min_total_distance
from repro.core.quantize import quantize_cycles
from repro.errors import ConfigError
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.plan import PlanArtifactCache, build_block, distinct_coverage, plan_tours


@pytest.fixture(scope="module")
def net():
    return build_paper_network(n=20, q=3, seed=7)


class TestCacheStore:
    def test_empty(self):
        c = PlanArtifactCache()
        assert c.n_entries == 0
        assert c.get_tours("fp", frozenset({1}), False) is None
        assert c.info() == {"forests": 0, "tours": 0, "hits": 0, "misses": 1}

    def test_put_get_round_trip(self, net):
        c = PlanArtifactCache()
        cov = frozenset({0, 1, 2})
        tours = plan_tours(net, cov)
        c.put_tours("fp", cov, False, tours)
        assert c.get_tours("fp", cov, False) is tours
        assert c.get_tours("fp", cov, True) is None      # refine flag is keyed
        assert c.get_tours("other", cov, False) is None  # fingerprint is keyed

    def test_bad_capacity_raises(self):
        with pytest.raises(ConfigError):
            PlanArtifactCache(max_entries=0)

    def test_lru_eviction(self):
        c = PlanArtifactCache(max_entries=2)
        for i in range(3):
            c.put_tours("fp", frozenset({i}), False, ())
        assert c.get_tours("fp", frozenset({0}), False) is None  # evicted
        assert c.get_tours("fp", frozenset({2}), False) == ()

    def test_lru_touch_on_get(self):
        c = PlanArtifactCache(max_entries=2)
        c.put_tours("fp", frozenset({0}), False, ())
        c.put_tours("fp", frozenset({1}), False, ())
        c.get_tours("fp", frozenset({0}), False)         # 0 becomes most recent
        c.put_tours("fp", frozenset({2}), False, ())     # evicts 1, not 0
        assert c.get_tours("fp", frozenset({0}), False) == ()
        assert c.get_tours("fp", frozenset({1}), False) is None

    def test_clear_keeps_tallies(self, net):
        c = PlanArtifactCache()
        cov = frozenset({0, 1})
        plan_tours(net, cov, cache=c)
        plan_tours(net, cov, cache=c)
        hits_before = c.hits
        c.clear()
        assert c.n_entries == 0
        assert c.hits == hits_before > 0


class TestPlanToursCounters:
    def test_cold_then_warm(self, net):
        c, obs = PlanArtifactCache(), Instrumentation()
        cov = frozenset({0, 1, 2, 3})
        first = plan_tours(net, cov, cache=c, obs=obs)
        assert obs.counters["plan.cache.tours.miss"] == 1
        assert obs.counters["plan.cache.forest.miss"] == 1
        second = plan_tours(net, cov, cache=c, obs=obs)
        assert second is first                       # served by reference
        assert obs.counters["plan.cache.tours.hit"] == 1

    def test_refine_reuses_base_tours(self, net):
        """mtd+2opt after mtd pays only for the 2-opt pass (base hit)."""
        c, obs = PlanArtifactCache(), Instrumentation()
        cov = frozenset(range(8))
        plan_tours(net, cov, refine=False, cache=c, obs=obs)
        plan_tours(net, cov, refine=True, cache=c, obs=obs)
        assert obs.counters["plan.cache.base.hit"] == 1
        assert obs.counters["plan.cache.forest.miss"] == 1  # only the first call
        assert "plan.cache.forest.hit" not in obs.counters

    def test_refine_cold_counts_base_miss(self, net):
        c, obs = PlanArtifactCache(), Instrumentation()
        plan_tours(net, frozenset({1, 2}), refine=True, cache=c, obs=obs)
        assert obs.counters["plan.cache.base.miss"] == 1
        assert obs.counters["plan.cache.forest.miss"] == 1
        # The base tours were stored as a by-product and now hit directly.
        obs2 = Instrumentation()
        plan_tours(net, frozenset({1, 2}), refine=False, cache=c, obs=obs2)
        assert obs2.counters["plan.cache.tours.hit"] == 1

    def test_forest_hit_after_eviction_of_tours(self, net):
        """A surviving forest still saves Algorithm 1 when tours are gone."""
        c = PlanArtifactCache()
        cov = frozenset({0, 1, 2})
        plan_tours(net, cov, cache=c)
        c._tours.clear()  # simulate tour eviction with the forest retained
        obs = Instrumentation()
        plan_tours(net, cov, cache=c, obs=obs)
        assert obs.counters["plan.cache.forest.hit"] == 1

    def test_cached_equals_uncached(self, net):
        cov = frozenset(range(10))
        for refine in (False, True):
            uncached = plan_tours(net, cov, refine=refine)
            cached = plan_tours(net, cov, refine=refine,
                                cache=PlanArtifactCache())
            assert cached == uncached


class TestBlockAndInvalidation:
    def test_distinct_coverage_bound(self, net):
        quant = quantize_cycles(net.cycles)
        distinct = distinct_coverage(quant)
        assert 1 <= len(distinct) <= quant.K + 1
        assert set(distinct) == set(quant.coverage_sets())

    def test_block_solves_each_coverage_once(self, net):
        quant = quantize_cycles(net.cycles)
        obs = Instrumentation()
        block = build_block(net, quant, cache=PlanArtifactCache(), obs=obs)
        assert len(block) == quant.block_size
        assert obs.counters["plan.block.solved"] == len(distinct_coverage(quant))
        assert obs.counters.get("plan.block.reused", 0) == \
            quant.block_size - len(distinct_coverage(quant))
        # Within one block the dedup map resolves repeats before the cache
        # is ever consulted, so every cache lookup was a (tours) miss.
        assert obs.counters["plan.cache.tours.miss"] == \
            obs.counters["plan.block.solved"]

    def test_replan_same_cycles_all_hits(self, net):
        """The mtd-var reuse pattern: a re-plan over unchanged classes is
        answered from the cache for every coverage set."""
        cache, obs = PlanArtifactCache(), Instrumentation()
        quant = quantize_cycles(net.cycles)
        first = build_block(net, quant, cache=cache, obs=obs)
        obs2 = Instrumentation()
        second = build_block(net, quant, cache=cache, obs=obs2)
        assert second == first
        assert obs2.counters["plan.cache.tours.hit"] == \
            obs2.counters["plan.block.solved"]
        assert "plan.cache.tours.miss" not in obs2.counters

    def test_bucket_change_invalidates(self, net):
        """Moving one sensor to another quantisation class changes the
        affected coverage sets, so those schedulings re-plan (cache misses)
        while untouched sets still hit."""
        cache = PlanArtifactCache()
        quant = quantize_cycles(net.cycles)
        build_block(net, quant, cache=cache)

        # Pull one top-class sensor down a class. (Never the base-cycle
        # minimum, so tau_1 and everyone else's class stay put.)
        idx = int(np.argmax(quant.k_of))
        k = int(quant.k_of[idx])
        assert k > 0  # the paper's [1, 50] cycles span multiple classes
        moved = net.cycles.copy()
        moved[idx] = quant.tau1 * quant.base ** (k - 1)
        quant2 = quantize_cycles(moved)
        assert int(quant2.k_of[idx]) == k - 1

        obs = Instrumentation()
        build_block(net, quant2, cache=cache, obs=obs)
        changed = set(quant2.coverage_sets()) - set(quant.coverage_sets())
        assert changed  # the move really altered some coverage sets
        assert obs.counters["plan.cache.tours.miss"] == len(changed)
        unchanged = set(quant2.coverage_sets()) & set(quant.coverage_sets())
        if unchanged:
            assert obs.counters["plan.cache.tours.hit"] == len(unchanged)

    def test_geometry_change_misses(self):
        """Same cycles on different coordinates must never share tours."""
        a = build_paper_network(n=15, q=2, seed=1)
        b = build_paper_network(n=15, q=2, seed=2)
        assert a.geometry_fingerprint != b.geometry_fingerprint
        cache = PlanArtifactCache()
        cov = frozenset(range(5))
        plan_tours(a, cov, cache=cache)
        obs = Instrumentation()
        plan_tours(b, cov, cache=cache, obs=obs)
        assert obs.counters["plan.cache.tours.miss"] == 1


class TestMinTotalDistanceWithCache:
    def test_identical_plans_and_speedy_replan(self, net):
        cache = PlanArtifactCache()
        obs = Instrumentation()
        base = min_total_distance(net, 200.0)
        warm1 = min_total_distance(net, 200.0, cache=cache, obs=obs)
        assert warm1.block == base.block
        assert [s.time for s in warm1.plan] == [s.time for s in base.plan]
        # Second plan over the same geometry + cycles: zero solves.
        obs2 = Instrumentation()
        warm2 = min_total_distance(net, 150.0, cache=cache, obs=obs2)
        assert warm2.block == base.block
        assert "plan.cache.tours.miss" not in obs2.counters

    def test_refine_variant_shares_base(self, net):
        cache, obs = PlanArtifactCache(), Instrumentation()
        plain = min_total_distance(net, 200.0, cache=cache, obs=obs)
        refined = min_total_distance(net, 200.0, refine=True,
                                     cache=cache, obs=obs)
        assert obs.counters["plan.cache.base.hit"] >= 1
        assert "plan.cache.forest.hit" not in obs.counters  # never re-walked
        d = net.dist
        for bt, rt in zip(plain.block_costs(d), refined.block_costs(d)):
            assert rt <= bt + 1e-9


class TestCacheThreadSafety:
    """Regression: the store used to mutate its OrderedDicts unlocked.

    Unsynchronised ``move_to_end`` / ``popitem`` racing against lookups can
    raise ``KeyError``/``RuntimeError`` or corrupt the LRU order once the
    cache is shared — which the planning service's thread-mode workers do.
    Hammer one instance from many threads through every public entry point
    and require zero exceptions plus intact bounds.
    """

    def test_concurrent_hammer(self):
        import random
        import threading

        cache = PlanArtifactCache(max_entries=32)  # tiny: evict constantly
        n_threads, n_ops = 8, 3000
        start = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                start.wait(timeout=10)
                for i in range(n_ops):
                    cov = frozenset({rng.randrange(64)})
                    refine = rng.random() < 0.5
                    op = rng.random()
                    if op < 0.45:
                        cache.put_tours("fp", cov, refine, (seed, i))
                    elif op < 0.9:
                        cache.get_tours("fp", cov, refine)
                    elif op < 0.96:
                        assert cache.n_entries >= 0
                        cache.info()
                    else:
                        cache.clear()
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, f"cache raced: {failures[:3]}"
        info = cache.info()
        assert info["tours"] <= 32
        assert info["hits"] + info["misses"] > 0

    def test_tallies_exact_under_contention(self):
        """Regression: ``hits``/``misses`` were plain attributes read
        unlocked by ``__repr__``/``info()`` and external callers. With the
        locked :meth:`tally` accessor, a deterministic workload (every get
        on a pre-populated key hits, every get on an absent key misses, no
        writes in flight) must account for every single operation."""
        import threading

        cache = PlanArtifactCache()
        present, absent = frozenset({1, 2}), frozenset({9})
        cache.put_tours("fp", present, False, ())
        n_threads, n_ops = 8, 2000
        start = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer() -> None:
            try:
                start.wait(timeout=10)
                for _ in range(n_ops):
                    assert cache.get_tours("fp", present, False) == ()
                    assert cache.get_tours("fp", absent, False) is None
                    h, m = cache.tally()  # consistent pair mid-contention
                    assert 0 <= h <= n_threads * n_ops
                    assert 0 <= m <= n_threads * n_ops
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures, f"tally raced: {failures[:3]}"
        assert cache.tally() == (n_threads * n_ops, n_threads * n_ops)
        info = cache.info()
        assert (info["hits"], info["misses"]) == cache.tally()
        assert (cache.hits, cache.misses) == cache.tally()

    def test_shared_across_planning_threads(self, net):
        """The service's real pattern: many threads planning against ONE
        cache must be crash-free and still produce identical tours."""
        import threading

        cache = PlanArtifactCache()
        reference = min_total_distance(net, 150.0)
        outputs: list[tuple] = []
        failures: list[BaseException] = []
        start = threading.Barrier(6)

        def plan_once() -> None:
            try:
                start.wait(timeout=10)
                for _ in range(5):
                    result = min_total_distance(net, 150.0, cache=cache)
                    outputs.append(result.block)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [threading.Thread(target=plan_once) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures
        assert len(outputs) == 30
        assert all(block == reference.block for block in outputs)
