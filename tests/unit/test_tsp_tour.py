"""Unit tests for :mod:`repro.tsp.tour`."""

import numpy as np
import pytest

from repro.errors import TourError
from repro.geometry.distance import distance_matrix
from repro.tsp.tour import Tour


@pytest.fixture
def square_dist():
    # Unit square: 0=(0,0) 1=(1,0) 2=(1,1) 3=(0,1)
    return distance_matrix(np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float))


class TestConstruction:
    def test_basic(self):
        t = Tour(depot=0, order=(0, 1, 2))
        assert t.depot == 0 and t.n_stops == 2 and not t.is_empty

    def test_empty_tour(self):
        t = Tour.empty(3)
        assert t.is_empty and t.n_stops == 0 and t.order == (3,)

    def test_from_sequence_strips_trailing_depot(self):
        t = Tour.from_sequence(0, [0, 1, 2, 0])
        assert t.order == (0, 1, 2)

    def test_rejects_empty_order(self):
        with pytest.raises(TourError):
            Tour(depot=0, order=())

    def test_rejects_wrong_start(self):
        with pytest.raises(TourError, match="start"):
            Tour(depot=0, order=(1, 0))

    def test_rejects_repeats(self):
        with pytest.raises(TourError, match="repeated"):
            Tour(depot=0, order=(0, 1, 1))


class TestCost:
    def test_square_tour_cost(self, square_dist):
        t = Tour(depot=0, order=(0, 1, 2, 3))
        assert t.cost(square_dist) == pytest.approx(4.0)

    def test_empty_tour_costs_zero(self, square_dist):
        assert Tour.empty(2).cost(square_dist) == 0.0

    def test_two_node_tour_is_round_trip(self, square_dist):
        t = Tour(depot=0, order=(0, 2))
        assert t.cost(square_dist) == pytest.approx(2 * np.sqrt(2))

    def test_reversal_invariance(self, square_dist):
        fwd = Tour(depot=0, order=(0, 1, 2, 3))
        rev = Tour(depot=0, order=(0, 3, 2, 1))
        assert fwd.cost(square_dist) == pytest.approx(rev.cost(square_dist))


class TestEdgesAndQueries:
    def test_edges_close_the_loop(self):
        t = Tour(depot=0, order=(0, 1, 2))
        assert t.edges() == [(0, 1), (1, 2), (2, 0)]

    def test_empty_tour_has_no_edges(self):
        assert Tour.empty(0).edges() == []

    def test_visited_and_stops(self):
        t = Tour(depot=5, order=(5, 2, 7))
        assert t.visited() == {5, 2, 7}
        assert t.stops() == (2, 7)

    def test_validate_against(self):
        t = Tour(depot=0, order=(0, 1, 2))
        t.validate_against([1, 2])
        with pytest.raises(TourError, match="misses"):
            t.validate_against([1, 2, 3])


class TestTransforms:
    def test_with_order(self):
        t = Tour(depot=0, order=(0, 1, 2)).with_order([0, 2, 1])
        assert t.order == (0, 2, 1)

    def test_with_order_keeps_depot_requirement(self):
        with pytest.raises(TourError):
            Tour(depot=0, order=(0, 1)).with_order([1, 0])

    def test_canonical_picks_direction(self):
        a = Tour(depot=0, order=(0, 3, 2, 1)).canonical()
        b = Tour(depot=0, order=(0, 1, 2, 3)).canonical()
        assert a == b

    def test_canonical_noop_for_short_tours(self):
        t = Tour(depot=0, order=(0, 1))
        assert t.canonical() is t
