"""Unit tests for the exact TSP and exact q-rooted solvers."""

import itertools

import numpy as np
import pytest

from repro.errors import TourError
from repro.geometry.distance import distance_matrix, path_length
from repro.rooted.exact import exact_q_rooted_tsp
from repro.rooted.qtsp import q_rooted_tsp, tours_total_cost
from repro.tsp.exact import held_karp_tsp
from repro.tsp.lower_bounds import held_karp_lower_bound


def brute_force_tsp_cost(dist, depot, nodes):
    best = np.inf
    for perm in itertools.permutations(nodes):
        best = min(best, path_length(dist, [depot, *perm], closed=True))
    return float(best)


class TestHeldKarpTsp:
    def test_matches_brute_force(self, rng):
        d = distance_matrix(rng.uniform(0, 100, size=(9, 2)))
        tour = held_karp_tsp(d, 0, list(range(1, 9)))
        assert tour.cost(d) == pytest.approx(
            brute_force_tsp_cost(d, 0, list(range(1, 9))))

    def test_tour_is_valid(self, rng):
        d = distance_matrix(rng.uniform(0, 100, size=(10, 2)))
        tour = held_karp_tsp(d, 3, [i for i in range(10) if i != 3])
        assert tour.order[0] == 3
        assert sorted(tour.order) == list(range(10))

    def test_square_is_perimeter(self):
        d = distance_matrix(np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float))
        tour = held_karp_tsp(d, 0, [1, 2, 3])
        assert tour.cost(d) == pytest.approx(4.0)

    def test_degenerate_sizes(self, rng):
        d = distance_matrix(rng.uniform(0, 10, size=(5, 2)))
        assert held_karp_tsp(d, 2, []).is_empty
        pair = held_karp_tsp(d, 0, [4])
        assert pair.order == (0, 4)

    def test_above_held_karp_lower_bound(self, rng):
        d = distance_matrix(rng.uniform(0, 100, size=(10, 2)))
        opt = held_karp_tsp(d, 0, list(range(1, 10))).cost(d)
        lb = held_karp_lower_bound(d, list(range(10)))
        assert lb <= opt + 1e-6

    def test_heuristics_never_beat_it(self, rng):
        from repro.tsp.construct import (
            cheapest_insertion_tour,
            mst_doubling_tour,
            nearest_neighbor_tour,
        )

        d = distance_matrix(rng.uniform(0, 100, size=(11, 2)))
        nodes = list(range(1, 11))
        opt = held_karp_tsp(d, 0, nodes).cost(d)
        for build in (mst_doubling_tour, nearest_neighbor_tour,
                      cheapest_insertion_tour):
            assert build(d, 0, nodes).cost(d) >= opt - 1e-9

    def test_size_cap_enforced(self):
        d = np.zeros((25, 25))
        with pytest.raises(TourError, match="cap"):
            held_karp_tsp(d, 0, list(range(1, 20)))

    def test_duplicate_nodes_raise(self):
        d = np.zeros((4, 4))
        with pytest.raises(TourError, match="duplicate"):
            held_karp_tsp(d, 0, [1, 1])


class TestExactQRooted:
    def test_optimal_beats_or_matches_algorithm2(self, rng):
        coords = rng.uniform(0, 100, size=(9, 2))
        d = distance_matrix(coords)
        sensors, depots = list(range(7)), [7, 8]
        opt = tours_total_cost(d, exact_q_rooted_tsp(d, sensors, depots))
        approx = tours_total_cost(d, q_rooted_tsp(d, sensors, depots))
        assert opt <= approx + 1e-9
        assert approx <= 2 * opt + 1e-6  # the Theorem-1 ratio, measured

    def test_coverage(self, rng):
        d = distance_matrix(rng.uniform(0, 100, size=(8, 2)))
        tours = exact_q_rooted_tsp(d, list(range(6)), [6, 7])
        covered = set().union(*(set(t.stops()) for t in tours))
        assert covered == set(range(6))
        assert [t.depot for t in tours] == [6, 7]

    def test_empty_sensors(self, rng):
        d = distance_matrix(rng.uniform(0, 10, size=(3, 2)))
        tours = exact_q_rooted_tsp(d, [], [0, 1, 2])
        assert all(t.is_empty for t in tours)

    def test_sensor_cap(self):
        d = np.zeros((15, 15))
        with pytest.raises(TourError, match="cap"):
            exact_q_rooted_tsp(d, list(range(12)), [12, 13])

    def test_no_depots_raises(self):
        with pytest.raises(TourError):
            exact_q_rooted_tsp(np.zeros((2, 2)), [0], [])

    def test_single_depot_reduces_to_exact_tsp(self, rng):
        d = distance_matrix(rng.uniform(0, 100, size=(8, 2)))
        tours = exact_q_rooted_tsp(d, list(range(7)), [7])
        assert tours[0].cost(d) == pytest.approx(
            held_karp_tsp(d, 7, list(range(7))).cost(d))
