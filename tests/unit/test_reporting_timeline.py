"""Unit tests for :mod:`repro.reporting.timeline`."""

import pytest

from repro.errors import ConfigError
from repro.reporting.timeline import cost_histogram, dispatch_timeline, run_digest
from repro.sim.events import DeathEvent, DispatchEvent
from repro.sim.metrics import Metrics


def _metrics_with(dispatches=(), deaths=()):
    m = Metrics(q=2)
    for t, c in dispatches:
        m.dispatches.append(DispatchEvent(time=t, cost=c, n_sensors=1,
                                          n_active_chargers=1))
        m.service_cost += c
    for t, s in deaths:
        m.deaths.append(DeathEvent(time=t, sensor=s))
    return m


class TestDispatchTimeline:
    def test_length_matches_bins(self):
        m = _metrics_with(dispatches=[(1.0, 10.0), (5.0, 20.0)])
        line = dispatch_timeline(m, horizon=10.0, bins=20)
        assert len(line) == 20

    def test_empty_run_is_blank(self):
        line = dispatch_timeline(Metrics(q=1), horizon=10.0, bins=5)
        assert line == "     "

    def test_peak_bin_is_tallest(self):
        m = _metrics_with(dispatches=[(1.0, 1.0), (9.0, 100.0)])
        line = dispatch_timeline(m, horizon=10.0, bins=10)
        assert line[-1] == "█"

    def test_death_marker_line(self):
        m = _metrics_with(dispatches=[(1.0, 10.0)], deaths=[(5.5, 3)])
        out = dispatch_timeline(m, horizon=10.0, bins=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1][5] == "x"

    def test_event_at_horizon_lands_in_last_bin(self):
        m = _metrics_with(dispatches=[(10.0, 10.0)])
        line = dispatch_timeline(m, horizon=10.0, bins=10)
        assert line[-1] != " "

    @pytest.mark.parametrize("bins,horizon", [(0, 10.0), (5, 0.0)])
    def test_rejects_bad_params(self, bins, horizon):
        with pytest.raises(ConfigError):
            dispatch_timeline(Metrics(q=1), horizon=horizon, bins=bins)


class TestCostHistogram:
    def test_bins_partition_and_sum(self):
        m = _metrics_with(dispatches=[(0.5, 10.0), (5.5, 20.0), (9.9, 30.0)])
        rows = cost_histogram(m, horizon=10.0, bins=10)
        assert len(rows) == 10
        assert sum(c for _, _, c in rows) == pytest.approx(60.0)
        assert rows[0][2] == pytest.approx(10.0)
        assert rows[5][2] == pytest.approx(20.0)

    def test_edges_cover_horizon(self):
        rows = cost_histogram(Metrics(q=1), horizon=12.0, bins=4)
        assert rows[0][0] == 0.0
        assert rows[-1][1] == 12.0


class TestRunDigest:
    def test_mentions_busiest_and_deaths(self):
        m = _metrics_with(dispatches=[(1.0, 10.0), (2.0, 99.0)],
                          deaths=[(3.0, 7)])
        out = run_digest(m, horizon=10.0)
        assert "busiest dispatch" in out
        assert "t=2" in out
        assert "FIRST DEATH: sensor 7" in out

    def test_real_simulation_digest(self, tiny_network):
        from repro.core.mintotal import min_total_distance
        from repro.sim.engine import simulate
        from repro.sim.policies import PlannedPolicy
        from repro.sim.workload import FixedWorkload

        res = min_total_distance(tiny_network, horizon=16.0)
        out = simulate(tiny_network, PlannedPolicy(res.plan),
                       FixedWorkload.from_network(tiny_network), 16.0)
        digest = run_digest(out.metrics, 16.0, bins=16)
        assert "perpetual" in digest
        assert len(digest.splitlines()) >= 2
