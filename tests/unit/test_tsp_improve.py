"""Unit tests for :mod:`repro.tsp.improve`."""

import numpy as np
import pytest

from repro.geometry.distance import distance_matrix
from repro.tsp.construct import mst_doubling_tour, nearest_neighbor_tour
from repro.tsp.improve import or_opt, two_opt
from repro.tsp.tour import Tour


@pytest.fixture
def cloud(rng):
    return distance_matrix(rng.uniform(0, 100, size=(30, 2)))


class TestTwoOpt:
    def test_never_worsens(self, cloud):
        t = nearest_neighbor_tour(cloud, 0, list(range(1, 30)))
        improved = two_opt(cloud, t)
        assert improved.cost(cloud) <= t.cost(cloud) + 1e-9

    def test_fixes_obvious_crossing(self):
        # Square visited in crossing order 0-2-1-3 (cost 2 + 2*sqrt2);
        # 2-opt must recover the perimeter (cost 4).
        d = distance_matrix(np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float))
        crossed = Tour(depot=0, order=(0, 2, 1, 3))
        fixed = two_opt(d, crossed)
        assert fixed.cost(d) == pytest.approx(4.0)

    def test_preserves_node_set_and_depot(self, cloud):
        t = nearest_neighbor_tour(cloud, 0, list(range(1, 30)))
        improved = two_opt(cloud, t)
        assert improved.visited() == t.visited()
        assert improved.order[0] == 0

    def test_short_tours_unchanged(self, cloud):
        for order in [(0,), (0, 1), (0, 1, 2)]:
            t = Tour(depot=0, order=order)
            assert two_opt(cloud, t) == t

    def test_idempotent_at_local_optimum(self, cloud):
        t = two_opt(cloud, nearest_neighbor_tour(cloud, 0, list(range(1, 30))))
        again = two_opt(cloud, t)
        assert again.cost(cloud) == pytest.approx(t.cost(cloud))

    def test_deterministic_tie_break_lowest_j(self):
        """Per anchor, the scan is best-improvement via ``argmin``; exactly
        tied improving moves must resolve to the LOWEST candidate ``j``
        (argmin's first minimal index), keeping refined tours reproducible.

        Hand-built integer matrix: for anchor i=1 of tour (0,1,2,3,4) the
        candidate moves j=2 and j=3 both have delta = -2 (exact in integer
        arithmetic) and j=4 is non-improving; after the j=2 reversal no
        further improving move exists anywhere.
        """
        from repro.obs import Instrumentation

        d = np.array([
            [0, 10, 5, 5, 5],
            [10, 0, 6, 7, 7],
            [5, 6, 0, 4, 6],
            [5, 7, 4, 0, 4],
            [5, 7, 6, 4, 0],
        ], dtype=float)
        # Pre-condition of the scenario: the two candidate deltas are tied.
        delta_j2 = (d[0, 2] + d[1, 3]) - (d[0, 1] + d[2, 3])
        delta_j3 = (d[0, 3] + d[1, 4]) - (d[0, 1] + d[3, 4])
        assert delta_j2 == delta_j3 == -2.0

        obs = Instrumentation()
        out = two_opt(d, Tour(depot=0, order=(0, 1, 2, 3, 4)), obs=obs)
        # Lowest j wins: segment p[1:3] reversed, not p[1:4].
        assert out.order == (0, 2, 1, 3, 4)
        assert obs.counters["two_opt.moves"] == 1


class TestOrOpt:
    def test_never_worsens(self, cloud):
        t = mst_doubling_tour(cloud, 0, list(range(1, 30)))
        improved = or_opt(cloud, t)
        assert improved.cost(cloud) <= t.cost(cloud) + 1e-9

    def test_preserves_node_set_and_depot(self, cloud):
        t = mst_doubling_tour(cloud, 0, list(range(1, 30)))
        improved = or_opt(cloud, t)
        assert improved.visited() == t.visited()
        assert improved.order[0] == 0

    def test_relocates_stranded_node(self):
        # Points on a line; order strands node 4 (x=40) at the end.
        coords = np.array([[0, 0], [10, 0], [20, 0], [30, 0], [40, 0], [25, 1]],
                          dtype=float)
        d = distance_matrix(coords)
        bad = Tour(depot=0, order=(0, 1, 2, 3, 5, 4))
        improved = or_opt(d, bad)
        assert improved.cost(d) < bad.cost(d)

    def test_tiny_tours_unchanged(self, cloud):
        t = Tour(depot=0, order=(0, 1))
        assert or_opt(cloud, t) == t

    def test_deterministic_tie_break_lowest_j_unflipped(self):
        # Hand-built symmetric metric with an *exact* tie: relocating node
        # 1 after node 2 (j=2) and after node 3 (j=3) both gain 12. The
        # documented tie-break (ascending j scan with strict > acceptance,
        # un-flipped orientation first) must pick the LOWEST j, so node 1
        # lands right after node 2 — a regressed scan order would yield
        # (0, 2, 3, 1, 4) instead. Pinning this keeps refined tours
        # bit-reproducible and is the contract exact kernel backends
        # (repro.kernels) must reproduce.
        d = np.zeros((5, 5))

        def sym(i, j, w):
            d[i, j] = d[j, i] = w

        sym(0, 1, 10); sym(1, 2, 10); sym(0, 2, 1); sym(1, 3, 2)
        sym(2, 3, 5); sym(1, 4, 10); sym(3, 4, 5); sym(0, 4, 5)
        sym(0, 3, 6); sym(2, 4, 6)
        tour = Tour(depot=0, order=(0, 1, 2, 3, 4))

        # The planted tie really is a tie.
        save = d[0, 1] + d[1, 2] - d[0, 2]
        gain_after_2 = save - (d[2, 1] + d[1, 3] - d[2, 3])
        gain_after_3 = save - (d[3, 1] + d[1, 4] - d[3, 4])
        assert gain_after_2 == gain_after_3 == 12.0

        improved = or_opt(d, tour, segment_lengths=(1,))
        assert improved.order == (0, 2, 1, 3, 4)
        # The full default pass converges to the same tour, and the fast
        # kernel backend reproduces the choice move for move.
        assert or_opt(d, tour).order == (0, 2, 1, 3, 4)
        from repro.kernels import get_backend
        assert get_backend("fast").or_opt(d, tour).order == (0, 2, 1, 3, 4)


class TestPipelines:
    def test_two_opt_then_or_opt_composes(self, cloud):
        t0 = nearest_neighbor_tour(cloud, 0, list(range(1, 30)))
        t1 = two_opt(cloud, t0)
        t2 = or_opt(cloud, t1)
        t3 = two_opt(cloud, t2)
        costs = [t.cost(cloud) for t in (t0, t1, t2, t3)]
        assert costs == sorted(costs, reverse=True) or all(
            costs[i] >= costs[i + 1] - 1e-9 for i in range(3))
