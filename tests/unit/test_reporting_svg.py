"""Unit tests for :mod:`repro.reporting.svg`."""

import xml.etree.ElementTree as ET

import pytest

from repro.errors import ConfigError
from repro.reporting.svg import network_svg, save_network_svg
from repro.rooted.qtsp import q_rooted_tsp


class TestNetworkSvg:
    def test_well_formed_xml(self, tiny_network):
        svg = network_svg(tiny_network)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_marker_counts(self, tiny_network):
        root = ET.fromstring(network_svg(tiny_network))
        ns = "{http://www.w3.org/2000/svg}"
        circles = root.findall(f"{ns}circle")
        rects = root.findall(f"{ns}rect")
        assert len(circles) == tiny_network.n
        # background rect + one square per depot
        assert len(rects) == 1 + tiny_network.q

    def test_tours_drawn_as_polylines(self, tiny_network):
        tours = q_rooted_tsp(tiny_network.dist,
                             [int(i) for i in tiny_network.sensor_indices],
                             [int(i) for i in tiny_network.depot_indices])
        root = ET.fromstring(network_svg(tiny_network, tours))
        ns = "{http://www.w3.org/2000/svg}"
        polylines = root.findall(f"{ns}polyline")
        non_empty = sum(1 for t in tours if not t.is_empty)
        assert len(polylines) == non_empty

    def test_polyline_closes_the_loop(self, tiny_network):
        tours = q_rooted_tsp(tiny_network.dist, [0, 1],
                             [tiny_network.depot_index(0)])
        root = ET.fromstring(network_svg(tiny_network, tours))
        ns = "{http://www.w3.org/2000/svg}"
        pts = root.find(f"{ns}polyline").get("points").split()
        assert pts[0] == pts[-1]  # returns to the depot

    def test_label_escaped(self, tiny_network):
        svg = network_svg(tiny_network, label="a < b & c")
        assert "a &lt; b &amp; c" in svg
        ET.fromstring(svg)  # still valid XML

    def test_uniform_cycles_do_not_crash_gradient(self, tiny_network):
        net = tiny_network.with_cycles([2.0] * tiny_network.n)
        ET.fromstring(network_svg(net))

    def test_bad_size_rejected(self, tiny_network):
        with pytest.raises(ConfigError):
            network_svg(tiny_network, size=0)

    def test_save(self, tiny_network, tmp_path):
        p = save_network_svg(tiny_network, tmp_path / "sub" / "net.svg",
                             label="tiny")
        assert p.exists()
        ET.parse(p)
