"""Unit tests for :mod:`repro.sim.workload`."""

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.cycles import LinearCycleDistribution
from repro.sim.workload import FixedWorkload, ResampledWorkload, StormWorkload, Workload


class TestFixedWorkload:
    def test_constant_rates(self, tiny_network):
        wl = FixedWorkload.from_network(tiny_network)
        np.testing.assert_array_equal(wl.rates_at(0), wl.rates_at(99))
        np.testing.assert_allclose(wl.rates_at(0), tiny_network.rates)

    def test_infinite_slot(self, tiny_network):
        assert FixedWorkload.from_network(tiny_network).slot_duration == math.inf

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigError):
            FixedWorkload(rates=np.array([-1.0]))

    def test_satisfies_protocol(self, tiny_network):
        assert isinstance(FixedWorkload.from_network(tiny_network), Workload)


class TestResampledWorkload:
    def _wl(self, net, seed=7):
        return ResampledWorkload(network=net,
                                 distribution=LinearCycleDistribution(),
                                 slot_duration=10.0, seed=seed)

    def test_deterministic_per_slot(self, paper_network_small):
        a = self._wl(paper_network_small)
        b = self._wl(paper_network_small)
        np.testing.assert_array_equal(a.rates_at(3), b.rates_at(3))

    def test_slots_differ(self, paper_network_small):
        wl = self._wl(paper_network_small)
        assert not np.array_equal(wl.rates_at(0), wl.rates_at(1))

    def test_order_independent_generation(self, paper_network_small):
        a = self._wl(paper_network_small)
        b = self._wl(paper_network_small)
        r5 = a.rates_at(5)  # generate slot 5 first on a
        b.rates_at(0)
        b.rates_at(1)
        np.testing.assert_array_equal(r5, b.rates_at(5))

    def test_seed_changes_process(self, paper_network_small):
        a = self._wl(paper_network_small, seed=1)
        b = self._wl(paper_network_small, seed=2)
        assert not np.array_equal(a.rates_at(0), b.rates_at(0))

    def test_cycles_positive(self, paper_network_small):
        wl = self._wl(paper_network_small)
        for s in range(5):
            assert np.all(wl.cycles_at(s) > 0)

    def test_negative_slot_raises(self, paper_network_small):
        with pytest.raises(ConfigError):
            self._wl(paper_network_small).cycles_at(-1)

    def test_bad_slot_duration_raises(self, paper_network_small):
        with pytest.raises(ConfigError):
            ResampledWorkload(network=paper_network_small,
                              distribution=LinearCycleDistribution(),
                              slot_duration=0.0)


class TestStormWorkload:
    def test_rates_multiply_inside_disc_during_storm(self, tiny_network):
        # Storm over sensor 0 (at (10,10)) between t=10 and t=20.
        wl = StormWorkload(network=tiny_network,
                           storms=((10.0, 20.0, 10.0, 10.0, 5.0, 3.0),),
                           slot_duration=10.0)
        base = tiny_network.rates
        np.testing.assert_allclose(wl.rates_at(0), base)         # t=0: calm
        stormy = wl.rates_at(1)                                   # t=10: storm
        assert stormy[0] == pytest.approx(3.0 * base[0])
        np.testing.assert_allclose(stormy[1:], base[1:])          # others calm
        np.testing.assert_allclose(wl.rates_at(2), base)          # t=20: over

    def test_overlapping_storms_compound(self, tiny_network):
        storms = ((0.0, 10.0, 10.0, 10.0, 5.0, 2.0),
                  (0.0, 10.0, 10.0, 10.0, 5.0, 3.0))
        wl = StormWorkload(network=tiny_network, storms=storms, slot_duration=1.0)
        assert wl.rates_at(0)[0] == pytest.approx(6.0 * tiny_network.rates[0])

    @pytest.mark.parametrize("storm", [
        (10.0, 5.0, 0.0, 0.0, 5.0, 2.0),   # t1 <= t0
        (0.0, 5.0, 0.0, 0.0, -1.0, 2.0),   # bad radius
        (0.0, 5.0, 0.0, 0.0, 5.0, 0.0),    # bad factor
    ])
    def test_rejects_invalid_storms(self, tiny_network, storm):
        with pytest.raises(ConfigError):
            StormWorkload(network=tiny_network, storms=(storm,))
