"""Unit tests for :mod:`repro.rooted.msf` (Algorithm 1)."""

import itertools

import numpy as np
import pytest

from repro.errors import GraphError
from repro.geometry.distance import distance_matrix
from repro.rooted.msf import q_rooted_msf, rooted_msf


def brute_force_msf(dist: np.ndarray, sensors: list[int], depots: list[int]) -> float:
    """Exact optimal q-rooted MSF weight by assignment enumeration + MST.

    For every assignment of sensors to depots, the best forest is the union
    of per-depot MSTs over (depot + its sensors); minimise over assignments.
    Exponential — tiny inputs only.
    """
    from repro.graphs.mst import mst_weight, prim_mst

    best = np.inf
    for assign in itertools.product(range(len(depots)), repeat=len(sensors)):
        total = 0.0
        for l, r in enumerate(depots):
            group = [r] + [s for s, a in zip(sensors, assign) if a == l]
            if len(group) > 1:
                sub = dist[np.ix_(group, group)]
                total += mst_weight(sub, prim_mst(sub))
        best = min(best, total)
    return float(best)


@pytest.fixture
def instance(rng):
    """8 sensors + 2 depots on random coordinates."""
    coords = rng.uniform(0, 100, size=(10, 2))
    return distance_matrix(coords)


class TestRootedMsfEngine:
    def test_empty_sensor_set(self):
        out = rooted_msf(np.zeros((0, 0)), np.zeros((0, 3)))
        assert out.n_sensors == 0 and out.weight == 0.0

    def test_single_sensor_attaches_to_cheapest_root(self):
        out = rooted_msf(np.zeros((1, 1)), np.array([[5.0, 2.0, 7.0]]))
        assert out.owner[0] == 1
        assert out.root_links == ((1, 0),)
        assert out.weight == pytest.approx(2.0)

    def test_chain_prefers_sensor_edges(self):
        # Two sensors 1 apart; roots 10 away: best = one link + one edge.
        sd = np.array([[0.0, 1.0], [1.0, 0.0]])
        rc = np.array([[10.0], [10.5]])
        out = rooted_msf(sd, rc)
        assert out.weight == pytest.approx(11.0)
        assert len(out.sensor_edges) == 1

    def test_all_sensors_owned(self, instance):
        out = rooted_msf(instance[:8, :8], instance[:8, 8:])
        assert set(np.unique(out.owner)).issubset({0, 1})
        assert np.all(out.owner >= 0)

    def test_unreachable_sensor_raises(self):
        with pytest.raises(GraphError, match="cannot reach"):
            rooted_msf(np.zeros((1, 1)), np.array([[np.inf]]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(GraphError):
            rooted_msf(np.zeros((2, 2)), np.zeros((3, 1)))

    def test_no_roots_raises(self):
        with pytest.raises(GraphError):
            rooted_msf(np.zeros((1, 1)), np.zeros((1, 0)))


class TestQRootedMsf:
    def test_optimal_vs_brute_force(self, instance):
        sensors, depots = list(range(8)), [8, 9]
        forest = q_rooted_msf(instance, sensors, depots)
        assert forest.weight(instance) == pytest.approx(
            brute_force_msf(instance, sensors, depots))

    def test_spans_all_sensors(self, instance):
        forest = q_rooted_msf(instance, list(range(8)), [8, 9])
        forest.validate_spanning(range(8))

    def test_trees_rooted_at_depots(self, instance):
        forest = q_rooted_msf(instance, list(range(8)), [8, 9])
        assert forest.roots == (8, 9)

    def test_empty_sensors_gives_isolated_depots(self, instance):
        forest = q_rooted_msf(instance, [], [8, 9])
        assert forest.all_nodes() == {8, 9}
        assert forest.weight(instance) == 0.0

    def test_q1_reduces_to_plain_mst(self, instance):
        from repro.graphs.mst import mst_weight, prim_mst

        nodes = list(range(8)) + [8]
        sub = instance[np.ix_(nodes, nodes)]
        forest = q_rooted_msf(instance, list(range(8)), [8])
        assert forest.weight(instance) == pytest.approx(
            mst_weight(sub, prim_mst(sub)))

    def test_overlapping_sets_raise(self, instance):
        with pytest.raises(GraphError, match="overlap"):
            q_rooted_msf(instance, [0, 8], [8, 9])

    def test_weight_no_worse_than_single_depot(self, instance):
        # Adding a depot can only help (more attachment options).
        w2 = q_rooted_msf(instance, list(range(8)), [8, 9]).weight(instance)
        w1 = q_rooted_msf(instance, list(range(8)), [8]).weight(instance)
        assert w2 <= w1 + 1e-9
