"""Fig. 2 — service cost vs tau_max, fixed cycles, n = 200 (both panels).

Paper: under the linear distribution the algorithms are near-identical for
tau_max <= 10 and MinTotalDistance wins increasingly beyond (panel a);
under the random distribution the difference stays marginal (panel b).
"""

import numpy as np


def test_fig2a_linear_distribution(run_figure_bench):
    result = run_figure_bench("fig2a")
    values = np.asarray(result.values, dtype=float)
    ratios = result.ratio_series("mtd", "greedy")
    small = ratios[values <= 10]
    large = ratios[values >= 35]
    # Near-parity at small tau_max, clear win at large tau_max.
    assert float(small.mean()) > 0.85
    assert float(large.mean()) < 0.70
    # The gap widens monotonically in the aggregate.
    assert float(large.mean()) < float(small.mean())
    for alg in ("mtd", "greedy"):
        assert all(result.deaths(alg) == 0)


def test_fig2b_random_distribution(run_figure_bench):
    result = run_figure_bench("fig2b")
    ratios = result.ratio_series("mtd", "greedy")
    # Paper: "only marginally different" at every tau_max.
    assert float(ratios.mean()) > 0.75
    assert float(ratios.max()) <= 1.05
    for alg in ("mtd", "greedy"):
        assert all(result.deaths(alg) == 0)
