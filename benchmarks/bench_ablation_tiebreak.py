"""Ablation: patch tie-breaking — paper-faithful vs deferring.

When the repair step can absorb an urgent sensor into several schedulings
at equal cost, the paper does not say which to pick. Front-loading
(``immediate``) reproduces the paper's Fig. 5 behaviour — near-parity with
Greedy at ΔT=1 — because every re-plan then dispatches an extra immediate
tour. Deferring the attachment (``defer``) keeps the adaptive algorithm
well below Greedy even under extreme instability, at identical safety.
This bench quantifies the gap.
"""

import numpy as np


def test_ablation_patch_tiebreak(run_figure_bench):
    result = run_figure_bench("abl-tiebreak")
    values = np.asarray(result.values, dtype=float)

    for alg in result.algorithms:
        assert all(result.deaths(alg) == 0), f"{alg} must stay perpetual"

    defer_over_paper = result.ratio_series("mtd-var-defer", "mtd-var")
    # Deferring never costs more, and wins big under extreme instability.
    assert float(defer_over_paper.max()) <= 1.02
    at_dt1 = float(defer_over_paper[values == 1.0][0])
    assert at_dt1 < 0.75, "deferral's advantage concentrates at ΔT=1"

    # The deferring variant beats Greedy across the whole sweep.
    assert float(result.ratio_series("mtd-var-defer", "greedy").max()) < 0.85
