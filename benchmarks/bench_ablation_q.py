"""Ablation: sensitivity to the number of chargers/depots q.

The paper fixes q = 5 (one depot on the base station, the rest uniform).
This bench sweeps q and shows a finding the paper does not report: the
planned algorithm is almost insensitive to fleet size — its depot-0
co-location plus power-of-two batching already captures most of the value —
while Greedy's unbatched emergency tours benefit more from extra depots.
"""

import numpy as np


def test_ablation_charger_count(run_figure_bench):
    result = run_figure_bench("abl-q")
    values = np.asarray(result.values, dtype=float)
    _, mtd = result.series("mtd")
    _, greedy = result.series("greedy")

    # Feasibility at every fleet size, including the q=1 degenerate case.
    for alg in ("mtd", "greedy"):
        assert all(result.deaths(alg) == 0)

    # MTD's q-sensitivity is small: max-to-min spread under 15%.
    assert mtd.max() / mtd.min() < 1.15

    # Greedy improves more from q=1 to q=max than MTD does (relative).
    mtd_gain = mtd[values == 1.0][0] / mtd[-1]
    greedy_gain = greedy[values == 1.0][0] / greedy[-1]
    assert greedy_gain >= mtd_gain * 0.98  # allow ties within noise

    # MTD wins at every q.
    assert float(result.ratio_series("mtd", "greedy").max()) < 0.9
