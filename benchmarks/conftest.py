"""Shared benchmark infrastructure.

Each ``bench_fig*.py`` regenerates one panel of the paper's evaluation:
it runs the registered sweep (coarse grid, a few topologies per point —
raise with ``--bench-reps`` or use the CLI's ``--full`` for paper density),
prints the same series the paper plots plus the paper-vs-measured verdict,
and records the wall-clock through pytest-benchmark (one round — these are
macro-benchmarks; the micro-benchmarks live in ``bench_scaling.py``).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import get_figure
from repro.reporting.summary import figure_report


def pytest_addoption(parser):
    parser.addoption(
        "--bench-reps", type=int, default=3,
        help="topologies per sweep point for figure benches (paper: 100)")
    parser.addoption(
        "--bench-full", action="store_true",
        help="use the paper-dense sweep grids (slow)")


@pytest.fixture(scope="session")
def bench_reps(request) -> int:
    return request.config.getoption("--bench-reps")


@pytest.fixture(scope="session")
def bench_full(request) -> bool:
    return request.config.getoption("--bench-full")


@pytest.fixture
def run_figure_bench(benchmark, bench_reps, bench_full, request):
    """Run one registered figure under the benchmark timer and print its
    paper-vs-measured report (straight to the terminal, bypassing capture);
    returns the sweep for assertions."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def run(figure_id: str):
        spec = get_figure(figure_id)
        result = benchmark.pedantic(
            lambda: spec.run(n_topologies=bench_reps, full=bench_full),
            rounds=1, iterations=1)
        report = "\n" + figure_report(spec, result) + "\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(report, flush=True)
        else:
            print(report)
        return result

    return run
