"""Micro-benchmarks: the discrete-event simulation core.

Three claims the engine rewrite makes, each measured and emitted to
``BENCH_sim.json``:

* a dynamic failure-storm scenario pushes events through the heap at a
  healthy rate (events/sec — the engine's raw throughput);
* on the static slotted scenarios the old loop handled, a 100x-longer
  horizon costs the new engine no more than a small constant factor over
  the frozen legacy loop (``repro.check.legacy_engine``), while producing
  bit-identical results;
* ``max_log_events`` really bounds memory: the 100x-horizon run's event
  logs stay at the ring-buffer ceiling however many events fired.
"""

import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro.check.legacy_engine import simulate_legacy
from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.sim.engine import simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.sources import ScenarioDynamics
from repro.sim.workload import FixedWorkload

_SIM_JSON = Path("BENCH_sim.json")
_measurements: dict = {}


@pytest.fixture(scope="module")
def sim_json():
    """Collects the sim benches' numbers; written out once at module end."""
    yield _measurements
    if _measurements:
        _SIM_JSON.write_text(
            json.dumps(_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\nsim measurements -> {_SIM_JSON.resolve()}")


@pytest.fixture(scope="module")
def instance():
    net = build_paper_network(n=100, q=5, seed=13)
    net.dist  # pre-warm the cached distance matrix
    horizon = 200.0
    plan = min_total_distance(net, horizon).plan
    return net, plan, horizon


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_bench_event_throughput(benchmark, sim_json, instance):
    """Events/sec through the heap on a dense dynamic scenario.

    Failures, churn and Poisson requests all active, so the queue carries
    every event class at once — the configuration the legacy loop could
    not express at all.
    """
    net, plan, horizon = instance
    dynamics = ScenarioDynamics(failure_rate=0.05, failure_mttr=5.0,
                                churn_rate=2.0, churn_downtime=5.0,
                                request_rate=10.0, seed=7)
    workload = FixedWorkload(rates=net.rates, slot_duration=5.0)

    def run():
        obs = Instrumentation()
        simulate(net, PlannedPolicy(plan), workload, horizon,
                 sources=dynamics.build_sources(), instrumentation=obs)
        return obs

    run()  # warm-up (allocator, numpy caches)
    elapsed, obs = benchmark.pedantic(lambda: _timed(run), rounds=1, iterations=1)
    events = obs.counters["sim.events"]
    assert events > 1_000  # the storm actually generated a storm
    eps = events / elapsed
    sim_json["throughput"] = {
        "n": net.n, "q": net.q, "horizon": horizon,
        "events": int(events), "wall_s": round(elapsed, 4),
        "events_per_sec": round(eps, 1),
    }
    print(f"\nthroughput: {int(events)} events in {elapsed * 1e3:.1f}ms "
          f"({eps:,.0f} events/s)")


def test_bench_100x_horizon_vs_legacy(benchmark, sim_json, instance):
    """100x-horizon wall time, new engine vs the frozen slotted baseline.

    Same network, same plan, slotted workload — exactly what the legacy
    loop was built for, stretched two orders of magnitude. The event
    queue's overhead (heap ops, coincidence batching) must stay within a
    small constant factor, and the results must stay bit-identical.
    """
    net, _, base_horizon = instance
    horizon = 100.0 * base_horizon
    plan = min_total_distance(net, horizon).plan
    policy_old, policy_new = PlannedPolicy(plan), PlannedPolicy(plan)
    workload = FixedWorkload(rates=net.rates, slot_duration=50.0)

    simulate(net, PlannedPolicy(plan), workload, horizon)  # warm-up
    t_old, old = _timed(lambda: simulate_legacy(net, policy_old, workload, horizon))
    t_new, new = benchmark.pedantic(
        lambda: _timed(lambda: simulate(net, policy_new, workload, horizon)),
        rounds=1, iterations=1)

    np.testing.assert_array_equal(old.final_energy, new.final_energy)
    assert old.metrics.service_cost == new.metrics.service_cost

    overhead = t_new / t_old
    sim_json["horizon_100x"] = {
        "n": net.n, "q": net.q, "horizon": horizon,
        "dispatches": new.metrics.n_dispatches,
        "legacy_s": round(t_old, 4), "engine_s": round(t_new, 4),
        "overhead": round(overhead, 2),
    }
    print(f"\n100x horizon: legacy {t_old * 1e3:.1f}ms, "
          f"engine {t_new * 1e3:.1f}ms, overhead {overhead:.2f}x")
    # Generous bar: the queue may cost real constant factors, but a
    # blow-up past 4x would mean the engine scales worse than the loop.
    assert overhead <= 4.0, (
        f"event engine is {overhead:.2f}x the legacy loop at 100x horizon")


def test_bench_bounded_log_ceiling(benchmark, sim_json, instance):
    """A long dynamic run with ``max_log_events`` keeps every in-memory
    log at the ring ceiling while the exact totals keep counting."""
    net, plan, horizon = instance
    dynamics = ScenarioDynamics(failure_rate=0.05, failure_mttr=5.0,
                                churn_rate=2.0, churn_downtime=5.0,
                                request_rate=10.0, seed=7)
    ceiling = 256
    out = benchmark.pedantic(
        lambda: simulate(net, PlannedPolicy(plan),
                         FixedWorkload(rates=net.rates, slot_duration=math.inf),
                         10.0 * horizon, sources=dynamics.build_sources(),
                         max_log_events=ceiling),
        rounds=1, iterations=1)
    m = out.metrics
    logs = [m.dispatches, m.charges, m.deaths, m.fleet, m.churn, m.requests]
    total = sum(log.total for log in logs)
    kept = sum(len(log) for log in logs)
    assert all(len(log) <= ceiling for log in logs)
    assert total > kept  # the ceiling actually bit
    sim_json["bounded_log"] = {
        "horizon": 10.0 * horizon, "ceiling": ceiling,
        "events_total": total, "events_kept": kept,
        "events_dropped": sum(log.dropped for log in logs),
    }
    print(f"\nbounded log: {total} events, {kept} kept "
          f"(ceiling {ceiling}/log)")
