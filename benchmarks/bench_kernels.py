"""Micro-benchmarks for the kernel backends (:mod:`repro.kernels`).

Times the numeric hot paths through the ``reference`` and ``fast``
backends at n in {500, 2000, 5000}, plus the incremental q-rooted MSF
extension against a from-scratch Algorithm 1 rebuild. Every timed pair
also cross-checks outputs: the fast backend and the incremental
extension are *exact*, so speed never trades answers.

The 2-opt sweep runs on the planner's *actual* inputs — MST-doubled
tours from Algorithm 2 (:func:`repro.rooted.qtsp.q_rooted_tsp`) — not
random permutations. That distinction is load-bearing: doubled-MST tours
are locally mostly-good with sparse crossings, which is the regime the
fast backend's neighbor lists and don't-look bits are engineered for
(on adversarial random permutations, where nearly every exchange
improves, the full-matrix reference scan wins instead).

Measurements are emitted to ``BENCH_kernels.json`` in the working
directory. Acceptance bars (the PR-level contracts):

* fast 2-opt >= 5x reference at n = 5000 (and already faster at 2000);
* incremental forest extension >= 3x the from-scratch rebuild.

Dense Prim has no speedup bar: the fast backend delegates it to the
reference implementation, whose contiguous full-row scan measured faster
than every frontier-compaction variant tried (see
:func:`repro.kernels.fast.prim_mst`). The sweep here records the parity.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.geometry.distance import distance_matrix
from repro.kernels import get_backend
from repro.rooted.incremental import extend_q_rooted_msf
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp

_KERNELS_JSON = Path("BENCH_kernels.json")
_measurements: dict = {}

#: Tour sizes for the per-backend sweeps (the paper's largest instances
#: sit near the low end; 5000 is the headroom point the fast backend is
#: engineered for).
_SIZES = (500, 2000, 5000)


@pytest.fixture(scope="module")
def kernels_json():
    """Collects the module's numbers; written once at the end (partial
    runs emit whatever they measured)."""
    yield _measurements
    if _measurements:
        _KERNELS_JSON.write_text(
            json.dumps(_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\nkernel measurements -> {_KERNELS_JSON.resolve()}")


def _instance(n, seed=42):
    rng = np.random.default_rng(seed)
    return distance_matrix(rng.uniform(0, 1000, size=(n, 2)))


def _best_of(fn, repeats):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_prim_backends(kernels_json):
    """Parity sweep: fast delegates to reference, so times track 1:1."""
    ref, fast = get_backend("reference"), get_backend("fast")
    for n in _SIZES:
        dist = _instance(n)
        repeats = 3 if n <= 2000 else 2
        t_ref, e_ref = _best_of(lambda: ref.prim_mst(dist), repeats)
        t_fast, e_fast = _best_of(lambda: fast.prim_mst(dist), repeats)
        assert e_ref == e_fast  # exactness is part of the contract
        kernels_json[f"prim_n{n}"] = {
            "reference_s": t_ref, "fast_s": t_fast,
            "speedup": t_ref / t_fast if t_fast > 0 else float("inf"),
        }


def test_two_opt_backends(kernels_json):
    ref, fast = get_backend("reference"), get_backend("fast")
    for n in _SIZES:
        # The planner's real 2-opt input: the MST-doubled tour Algorithm 2
        # builds over n sensors anchored at a single depot (index n).
        dist = _instance(n + 1)
        tour = q_rooted_tsp(dist, list(range(n)), [n])[0]
        repeats = 2 if n <= 2000 else 1
        t_ref, r_ref = _best_of(lambda: ref.two_opt(dist, tour), repeats)
        t_fast, r_fast = _best_of(lambda: fast.two_opt(dist, tour), repeats)
        assert r_ref == r_fast
        speedup = t_ref / t_fast if t_fast > 0 else float("inf")
        kernels_json[f"two_opt_n{n}"] = {
            "reference_s": t_ref, "fast_s": t_fast, "speedup": speedup,
        }
        if n >= 5000:
            assert speedup >= 5.0, (
                f"fast 2-opt speedup {speedup:.2f}x at n={n} is below the "
                f"5x acceptance bar")


def test_incremental_replan(kernels_json):
    """Extending a cached forest vs re-running Algorithm 1 from scratch
    (the adaptive patch step's re-tour path on a grown scheduling)."""
    n, q, n_added = 5000, 4, 25
    rng = np.random.default_rng(42)
    dist = distance_matrix(rng.uniform(0, 1000, size=(n + q, 2)))
    depots = list(range(n, n + q))
    added = sorted(rng.choice(n, size=n_added, replace=False).tolist())
    base = sorted(set(range(n)) - set(added))
    base_forest = q_rooted_msf(dist, base, depots)

    t_full, scratch = _best_of(
        lambda: q_rooted_msf(dist, list(range(n)), depots), 3)
    t_inc, extended = _best_of(
        lambda: extend_q_rooted_msf(dist, base, base_forest, added, depots), 3)
    assert extended is not None and extended == scratch
    speedup = t_full / t_inc if t_inc > 0 else float("inf")
    kernels_json[f"incremental_msf_n{n}_add{n_added}"] = {
        "full_rebuild_s": t_full, "incremental_s": t_inc, "speedup": speedup,
    }
    assert speedup >= 3.0, (
        f"incremental replan speedup {speedup:.2f}x is below the 3x "
        f"acceptance bar")
