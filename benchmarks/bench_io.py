"""Micro-benchmarks: serialisation throughput and store warm restarts.

Plans repeat tour sets, and the encoder deduplicates them; these benches
verify round-trips stay cheap even for season-long plans (thousands of
schedulings), i.e. that the dedup actually bites. The warm-restart bench
measures the on-disk :class:`~repro.plan.store.PlanArtifactStore`'s whole
reason to exist — a restarted process replanning from persisted artifacts
must beat the cold path by >= 2x — and emits its numbers to
``BENCH_store.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.mintotal import min_total_distance
from repro.io.network_json import network_from_dict, network_to_dict
from repro.io.plan_json import plan_from_dict, plan_to_dict
from repro.network.builder import build_paper_network
from repro.plan import PlanArtifactCache, PlanArtifactStore


@pytest.fixture(scope="module")
def big_instance():
    net = build_paper_network(n=300, q=5, seed=13)
    plan = min_total_distance(net, 1000.0).plan
    return net, plan


def test_bench_network_encode(benchmark, big_instance):
    net, _ = big_instance
    data = benchmark(network_to_dict, net)
    assert len(data["sensors"]) == 300


def test_bench_network_decode(benchmark, big_instance):
    net, _ = big_instance
    data = network_to_dict(net)
    loaded = benchmark(network_from_dict, data)
    assert loaded.n == 300


def test_bench_plan_encode(benchmark, big_instance):
    _, plan = big_instance
    data = benchmark(plan_to_dict, plan)
    # Dedup must collapse ~1000 schedulings into a handful of tour sets.
    assert len(data["schedulings"]) == len(plan)
    assert len(data["tour_sets"]) <= 10


def test_bench_plan_decode(benchmark, big_instance):
    net, plan = big_instance
    data = plan_to_dict(plan)
    loaded = benchmark(plan_from_dict, data)
    assert len(loaded) == len(plan)
    assert loaded.total_cost(net.dist) == pytest.approx(plan.total_cost(net.dist))


# --------------------------------------------------------------------------
# Artifact-store warm restart
# --------------------------------------------------------------------------

_STORE_JSON = Path("BENCH_store.json")
_store_measurements: dict = {}


@pytest.fixture(scope="module")
def store_json():
    """Collects the store benches' numbers; written out once at module end."""
    yield _store_measurements
    if _store_measurements:
        _STORE_JSON.write_text(
            json.dumps(_store_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\nstore measurements -> {_STORE_JSON.resolve()}")


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_bench_warm_restart_speedup(benchmark, store_json, tmp_path_factory):
    """Cold plan vs replan after a simulated process restart.

    Cold runs Algorithms 1–3 end to end against an empty memory cache; the
    restarted run gets a fresh (empty) memory cache too, but a new
    :class:`~repro.plan.store.PlanArtifactStore` handle over the directory
    the first run persisted — so everything below the coverage sets is
    answered from disk. Acceptance bar: >= 2x, with the warm plan
    tour-identical to the cold one (the store is a pure accelerator).
    """
    net = build_paper_network(n=300, q=5, seed=13)
    net.dist  # pre-warm the cached distance matrix
    horizon = 300.0
    root = tmp_path_factory.mktemp("plan-store")

    def cold():
        return min_total_distance(net, horizon, refine=True,
                                  cache=PlanArtifactCache())

    def warm():
        return min_total_distance(net, horizon, refine=True,
                                  cache=PlanArtifactCache(),
                                  store=PlanArtifactStore(root))

    cold()  # warm-up (allocator, numpy caches)
    t_cold = _timed(cold)
    cold_result = cold()

    # First store-backed run populates the directory (write-through).
    min_total_distance(net, horizon, refine=True, cache=PlanArtifactCache(),
                       store=PlanArtifactStore(root))

    t_warm = benchmark.pedantic(lambda: _timed(warm), rounds=1, iterations=1)
    warm_result = warm()
    assert warm_result.levels == cold_result.levels  # tour-identical

    speedup = t_cold / t_warm
    store_json["warm_restart"] = {
        "n": net.n, "q": net.q, "horizon": horizon, "refine": True,
        "entries": PlanArtifactStore(root).n_entries,
        "cold_s": round(t_cold, 4), "warm_s": round(t_warm, 4),
        "speedup": round(speedup, 2),
    }
    print(f"\nwarm restart: cold {t_cold * 1e3:.1f}ms, "
          f"warm {t_warm * 1e3:.1f}ms, speedup {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"warm-restart speedup {speedup:.2f}x is below the 2x bar")
