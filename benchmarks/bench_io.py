"""Micro-benchmarks: serialisation throughput.

Plans repeat tour sets, and the encoder deduplicates them; these benches
verify round-trips stay cheap even for season-long plans (thousands of
schedulings), i.e. that the dedup actually bites.
"""

import pytest

from repro.core.mintotal import min_total_distance
from repro.io.network_json import network_from_dict, network_to_dict
from repro.io.plan_json import plan_from_dict, plan_to_dict
from repro.network.builder import build_paper_network


@pytest.fixture(scope="module")
def big_instance():
    net = build_paper_network(n=300, q=5, seed=13)
    plan = min_total_distance(net, 1000.0).plan
    return net, plan


def test_bench_network_encode(benchmark, big_instance):
    net, _ = big_instance
    data = benchmark(network_to_dict, net)
    assert len(data["sensors"]) == 300


def test_bench_network_decode(benchmark, big_instance):
    net, _ = big_instance
    data = network_to_dict(net)
    loaded = benchmark(network_from_dict, data)
    assert loaded.n == 300


def test_bench_plan_encode(benchmark, big_instance):
    _, plan = big_instance
    data = benchmark(plan_to_dict, plan)
    # Dedup must collapse ~1000 schedulings into a handful of tour sets.
    assert len(data["schedulings"]) == len(plan)
    assert len(data["tour_sets"]) <= 10


def test_bench_plan_decode(benchmark, big_instance):
    net, plan = big_instance
    data = plan_to_dict(plan)
    loaded = benchmark(plan_from_dict, data)
    assert len(loaded) == len(plan)
    assert loaded.total_cost(net.dist) == pytest.approx(plan.total_cost(net.dist))
