"""Fig. 1 — service cost vs network size, fixed cycles (both panels).

Paper: under the linear distribution MinTotalDistance costs 55–60% of
Greedy (panel a); under the random distribution 87–93% (panel b).
"""


def test_fig1a_linear_distribution(run_figure_bench):
    result = run_figure_bench("fig1a")
    ratios = result.ratio_series("mtd", "greedy")
    # Shape assertions, tolerant of coarse-grid noise.
    assert float(ratios.mean()) < 0.75, "MTD must clearly beat Greedy (paper: 0.55-0.60)"
    assert all(result.deaths("mtd") == 0)
    assert all(result.deaths("greedy") == 0)
    # Costs grow with network size for both algorithms.
    _, mtd = result.series("mtd")
    _, greedy = result.series("greedy")
    assert mtd[-1] > mtd[0]
    assert greedy[-1] > greedy[0]


def test_fig1b_random_distribution(run_figure_bench):
    result = run_figure_bench("fig1b")
    ratios = result.ratio_series("mtd", "greedy")
    # Paper: only a marginal win (87-93%); the gap must be small but real.
    assert 0.70 <= float(ratios.mean()) <= 1.02
    assert all(result.deaths("mtd") == 0)
    assert all(result.deaths("greedy") == 0)
