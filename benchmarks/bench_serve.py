"""Serving benchmarks: throughput and tail latency of the planning service.

Starts a real :class:`~repro.serve.server.PlanningServer` (thread executor;
no process-spawn noise in the numbers) and drives it with the load
generator at several concurrency levels, the way an external harness
would. Three workloads:

* ``plan_cN`` — distinct-ish planning traffic (a pool of topologies, the
  parent response cache disabled) at concurrency ``N``: the end-to-end
  planner-under-load numbers.
* ``coalesce`` — one hot payload under a concurrent burst: how much work
  single-flight coalescing plus the response cache absorb.
* ``health`` — protocol floor: transport + event-loop latency without any
  planning.

All measurements (throughput + p50/p95/p99 latency) are emitted to
``BENCH_serve.json`` in the working directory, mirroring
``BENCH_pipeline.json`` from ``bench_scaling.py``.
"""

import json
from pathlib import Path

import pytest

from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.serve import LoadGenerator, ServeConfig, ServerThread

_SERVE_JSON = Path("BENCH_serve.json")
_serve_measurements: dict = {}

#: Concurrency levels for the planning workload.
_LEVELS = (1, 4, 8)
_N_REQUESTS = 48
_N_TOPOLOGIES = 6


@pytest.fixture(scope="module")
def serve_json():
    """Collects this module's numbers; written once at the end (partial
    runs emit whatever they measured)."""
    yield _serve_measurements
    if _serve_measurements:
        _SERVE_JSON.write_text(
            json.dumps(_serve_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\nserving measurements -> {_SERVE_JSON.resolve()}")


@pytest.fixture(scope="module")
def topology_pool():
    return [network_to_dict(build_paper_network(n=40, q=4, seed=s))
            for s in range(_N_TOPOLOGIES)]


def _report_line(tag: str, rep) -> None:
    lat = rep.latency_summary()
    print(f"{tag}: {rep.throughput:7.1f} req/s  "
          f"p50 {lat['p50']:7.2f}ms  p95 {lat['p95']:7.2f}ms  "
          f"p99 {lat['p99']:7.2f}ms  "
          f"(ok {rep.n_ok}/{rep.n_requests}, coalesced {rep.coalesced}, "
          f"planner runs {rep.planner_runs})")


@pytest.mark.parametrize("concurrency", _LEVELS)
def test_serve_plan_throughput(serve_json, topology_pool, concurrency):
    """Planning traffic over a topology pool at one concurrency level."""
    config = ServeConfig(executor="thread", workers=4, queue_limit=256,
                         default_deadline=300.0, plan_responses=0)
    with ServerThread(config) as srv:
        host, port = srv.address
        requests = [("plan", {"network": topology_pool[i % _N_TOPOLOGIES],
                              "horizon": 300.0})
                    for i in range(_N_REQUESTS)]
        rep = LoadGenerator(host, port, concurrency=concurrency).run(requests)
    assert rep.n_ok == rep.n_requests, (
        f"serving failed under load: {rep.to_dict()}")
    _report_line(f"plan   c{concurrency}", rep)
    serve_json[f"plan_c{concurrency}"] = rep.to_dict()


def test_serve_coalescing_burst(serve_json, topology_pool):
    """A hot identical payload: single-flight + response cache absorb most
    of the burst, so planner executions stay far below request count."""
    config = ServeConfig(executor="thread", workers=2, queue_limit=256,
                         default_deadline=300.0)
    with ServerThread(config) as srv:
        host, port = srv.address
        requests = [("plan", {"network": topology_pool[0], "horizon": 300.0,
                              "delay": 0.05})] * 32
        rep = LoadGenerator(host, port, concurrency=8).run(requests)
    assert rep.n_ok == rep.n_requests
    assert rep.planner_runs <= 2  # the burst collapsed onto 1-2 executions
    assert rep.coalesced + rep.plan_cache_hits >= 30
    _report_line("coalesce  ", rep)
    serve_json["coalesce_burst"] = rep.to_dict()


def test_serve_health_floor(serve_json):
    """Protocol floor: health probes, no planning work at all."""
    with ServerThread(ServeConfig(executor="thread", workers=1)) as srv:
        host, port = srv.address
        rep = LoadGenerator(host, port, concurrency=4).run([("health", {})] * 200)
    assert rep.n_ok == rep.n_requests
    _report_line("health    ", rep)
    serve_json["health"] = rep.to_dict()
