"""Ablation: how tight is Algorithm 3 against the Lemma-3 lower bound?

Theorem 2 guarantees ``cost <= 2(K+2) * OPT`` (= 14x at the paper's
defaults, K = 5). The Lemma-3 certificate lets us measure the *empirical*
ratio ``cost / LB >= cost / OPT`` per instance; this bench reports it
across network sizes, showing the delivered plans are far closer to
optimal than the worst case suggests.
"""

import numpy as np
import pytest

from repro.core.bounds import empirical_ratio, lemma3_lower_bound
from repro.core.cost import service_cost
from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.reporting.table import format_table

HORIZON = 1000.0


def _one_instance(n: int, seed: int) -> tuple[float, float, int]:
    net = build_paper_network(n=n, q=5, seed=seed)
    res = min_total_distance(net, HORIZON)
    cost = service_cost(net.dist, res.plan)
    lb = lemma3_lower_bound(net, HORIZON)
    return cost, lb.bound, res.quantization.K


def test_ablation_lower_bound(benchmark, bench_reps, request):
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def run():
        rows = []
        for n in (100, 200, 300):
            ratios = []
            K = 0
            for seed in range(bench_reps):
                cost, bound, K = _one_instance(n, 1000 + seed)
                ratios.append(empirical_ratio(cost, bound))
            rows.append([n, float(np.mean(ratios)), 2 * (K + 2)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = format_table(
        ["n", "empirical cost/LB", "worst-case guarantee 2(K+2)"],
        rows, precision=2)
    report = ("\n== abl-lb: empirical approximation ratio vs Lemma-3 bound ==\n"
              + table + "\n(the lower bound itself is loose, so the true "
              "optimality gap is smaller still)\n")
    if capman is not None:
        with capman.global_and_fixture_disabled():
            print(report, flush=True)

    for n, ratio, guarantee in rows:
        assert ratio <= guarantee + 1e-9, \
            f"n={n}: measured ratio {ratio} exceeds the proven bound"
        assert ratio == pytest.approx(ratio)  # finite
        assert ratio < guarantee, "empirical ratio should beat the worst case"
