"""Ablation: the geometric base of the cycle quantisation.

The paper rounds cycles down to powers of 2. Any integer base ``b >= 2``
preserves the algorithm's structure (classes still nest: ``b^k | b^(k+1)``)
with a different trade: larger ``b`` means fewer classes — a smaller
``K = floor(log_b(tau_max/tau_min))`` and hence a smaller worst-case
factor — but cruder rounding: a sensor may be charged up to ``b`` times
more often than its cycle requires. This bench measures where the trade
lands on the paper's default instances. Measured: monotone degradation with
growing base — on tau in [1, 50] the rounding loss always dominates the
class-count saving, and by b=6 the planner loses to greedy outright. The
paper's b=2 is the right choice.
"""

import numpy as np


def test_ablation_quantization_base(run_figure_bench):
    result = run_figure_bench("abl-base")
    values = np.asarray(result.values, dtype=int)
    _, mtd = result.series("mtd")

    # Feasibility must hold at every base (the safety direction of the
    # rounding is base-independent).
    for alg in ("mtd", "greedy"):
        assert all(result.deaths(alg) == 0)

    # Greedy ignores the base: its column must be constant across the sweep.
    _, greedy = result.series("greedy")
    np.testing.assert_allclose(greedy, greedy[0], rtol=1e-9)

    # b=2 is the sweet spot on the paper's tau range: costs degrade
    # monotonically as the base grows (cruder rounding dominates the
    # smaller K), and by b=6 the planner over-charges so much it loses to
    # greedy outright — a finding that vindicates the paper's choice.
    assert all(mtd[i + 1] >= mtd[i] * 0.98 for i in range(len(mtd) - 1))
    ratios = result.ratio_series("mtd", "greedy")
    assert float(ratios[values == 2][0]) < 0.70
    assert float(ratios[values == 4][0]) < 1.0
