"""Fig. 6 — service cost vs cycle variance σ (n=200, τ=[1,50], ΔT=10).

Paper: both algorithms' costs increase with σ, and MinTotalDistance-var's
cost approaches Greedy's as σ reaches 50 (far sensors can then draw short
cycles, destroying the geometric structure the algorithm exploits).
"""

import numpy as np


def test_fig6_cycle_variance(run_figure_bench):
    result = run_figure_bench("fig6")
    values = np.asarray(result.values, dtype=float)
    ratios = result.ratio_series("mtd-var", "greedy")

    # Costs rise with sigma for both algorithms.
    _, var_costs = result.series("mtd-var")
    _, greedy_costs = result.series("greedy")
    assert var_costs[-1] > var_costs[0] * 1.5
    assert greedy_costs[-1] > greedy_costs[0] * 1.5

    # The win shrinks as sigma grows: ratio at sigma=50 close to 1, clearly
    # larger than at the paper default sigma=2.
    at_low = float(ratios[values <= 2].mean())
    at_50 = float(ratios[values == 50.0][0])
    assert at_50 > at_low
    assert at_50 > 0.85

    assert all(result.deaths("mtd-var") == 0)
    assert all(result.deaths("greedy") == 0)
