"""Fig. 3 — service cost vs network size, VARIABLE cycles (ΔT=10, σ=2).

Paper: MinTotalDistance-var "is still competitive as it did under fixed
maximum charging cycles" — a clear win over Greedy across n = 100..500.
"""


def test_fig3_variable_cycles_vs_n(run_figure_bench):
    result = run_figure_bench("fig3")
    ratios = result.ratio_series("mtd-var", "greedy")
    assert float(ratios.mean()) < 0.85, \
        "MTD-var must stay clearly cheaper than Greedy under ΔT=10, sigma=2"
    # Perpetual operation is the hard constraint — zero deaths everywhere.
    assert all(result.deaths("mtd-var") == 0)
    assert all(result.deaths("greedy") == 0)
    # Cost grows with n for both.
    _, var_costs = result.series("mtd-var")
    assert var_costs[-1] > var_costs[0]
