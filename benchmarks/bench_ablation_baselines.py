"""Ablation: the naive charge-everything strawman and the periodic plan.

Two claims are quantified here:

1. The paper's Section III.C remark — "a naive strategy of charging all
   sensors per round will significantly increase the service cost" — as a
   measured multiple rather than an assertion.
2. A structural finding: per-sensor periodic charging *without* the
   power-of-two merging coincides exactly with Greedy under the paper's
   defaults (both charge sensor i every floor(tau_i / tau_min) * tau_min),
   so the merging is the entire source of MinTotalDistance's advantage.
"""

import numpy as np


def test_ablation_baselines(run_figure_bench):
    result = run_figure_bench("abl-baselines")

    for alg in result.algorithms:
        assert all(result.deaths(alg) == 0)

    # (1) naive is several times the cost of everything else.
    naive_over_greedy = result.ratio_series("naive", "greedy")
    assert float(naive_over_greedy.min()) > 2.0
    assert float(result.ratio_series("mtd", "naive").max()) < 0.5

    # (2) periodic-without-merging lands exactly on greedy.
    per_over_greedy = result.ratio_series("periodic", "greedy")
    np.testing.assert_allclose(per_over_greedy, 1.0, rtol=1e-6)
