"""Fleet benchmarks: serving capacity scaling and the shared tier-3 store.

Boots real fleets — ``repro serve`` *subprocesses* behind the
consistent-hash router (``shard_mode="process"``: each shard is its own
interpreter with its own GIL) — and drives them with the load generator:

* ``shards_N`` — the same delay-padded planning workload against fleets
  of 1/2/4 shards. Each request carries a fixed synthetic service time
  (``delay``) on top of a real (small) planning problem, so throughput
  measures the fleet's *serving capacity* — shards x workers concurrent
  slots behind one address — deterministically, independent of how many
  cores the benchmark host happens to have (on a multi-core host the same
  process shards also deliver CPU scale-out; on the single-core CI box a
  CPU-bound workload could never show it). The acceptance gate is
  near-linear capacity scaling: >= 1.6x throughput at 2 shards over the
  single-shard fleet.
* ``cross_shard_store`` — the tier-3 contract: a plan computed (and
  write-through published) by its owning shard is served from the shared
  :class:`~repro.plan.store.PlanArtifactStore` by the fail-over shard
  after the owner is killed — payload-identical, with the survivor's
  ``plan.cache.disk.hits`` proving it read the other shard's artifacts
  instead of replanning from scratch.

Workloads are balanced *per ring*: geometries are picked so every shard
of the fleet under test owns the same number of requests (consistent-hash
spread over a handful of keys is lumpy by nature — the hashring unit
tests characterise that; here it would only add noise to the scaling
number). All measurements land in ``BENCH_fleet.json``.
"""

import json
import time
from pathlib import Path

import pytest

from repro.fleet import Fleet, FleetConfig
from repro.fleet.router import routing_key
from repro.io.network_json import network_to_dict
from repro.network.builder import build_paper_network
from repro.serve import LoadGenerator, ServeClient

_FLEET_JSON = Path("BENCH_fleet.json")
_fleet_measurements: dict = {}

_LEVELS = (1, 2, 4)
_WORKERS = 2                    # worker threads per shard
_DELAY_S = 0.2                  # synthetic service time per request
_TOTAL_REQUESTS = 24            # divisible by every level's shard count


@pytest.fixture(scope="module")
def fleet_json():
    yield _fleet_measurements
    if _fleet_measurements:
        _FLEET_JSON.write_text(
            json.dumps(_fleet_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\nfleet measurements -> {_FLEET_JSON.resolve()}")


@pytest.fixture(scope="module")
def candidate_pool():
    """More geometries than any level needs, keyed for ring placement."""
    pool = []
    for seed in range(100, 180):
        net = network_to_dict(build_paper_network(n=20, q=2, seed=seed))
        pool.append((routing_key({"network": net}), net))
    return pool


def _config(shards, **overrides):
    defaults = dict(shards=shards, shard_mode="process", workers=_WORKERS,
                    executor="thread", queue_limit=256,
                    default_deadline=300.0, retries=2, supervisor_poll=1.0,
                    seed=0)
    defaults.update(overrides)
    return FleetConfig(**defaults)


def _balanced_requests(fleet, candidate_pool, per_shard):
    """``per_shard`` requests owned by each shard of ``fleet``'s ring."""
    quota = {shard_id: per_shard for shard_id in fleet.config.shard_ids()}
    requests = []
    for key, net in candidate_pool:
        owner = fleet.router._ring.primary(key)
        if quota.get(owner, 0) > 0:
            quota[owner] -= 1
            requests.append(("plan", {"network": net, "horizon": 300.0,
                                      "delay": _DELAY_S}))
    assert not any(quota.values()), f"candidate pool too small: {quota}"
    return requests


def _report_line(tag, rep):
    lat = rep.latency_summary()
    print(f"{tag}: {rep.throughput:6.1f} req/s  "
          f"p50 {lat['p50']:7.1f}ms  p95 {lat['p95']:7.1f}ms  "
          f"(ok {rep.n_ok}/{rep.n_requests}, retries {rep.n_retries})")


@pytest.mark.parametrize("shards", _LEVELS)
def test_fleet_capacity_scaling(fleet_json, candidate_pool, shards):
    """One delay-padded workload against a fleet of ``shards`` shards."""
    with Fleet(_config(shards)) as fleet:
        host, port = fleet.router.address
        requests = _balanced_requests(
            fleet, candidate_pool, _TOTAL_REQUESTS // shards)
        concurrency = min(2 * shards * _WORKERS, _TOTAL_REQUESTS)
        rep = LoadGenerator(host, port, concurrency=concurrency,
                            timeout=300.0).run(requests)
    assert rep.n_ok == rep.n_requests, f"fleet failed under load: {rep.to_dict()}"
    _report_line(f"shards {shards}", rep)
    fleet_json[f"shards_{shards}"] = rep.to_dict()


def test_fleet_scaling_is_near_linear(fleet_json):
    """The PR's acceptance gate: >= 1.6x at 2 shards over single-node."""
    assert "shards_1" in fleet_json and "shards_2" in fleet_json, \
        "run the capacity tests first (whole-module run)"
    t1 = _TOTAL_REQUESTS / fleet_json["shards_1"]["duration_s"]
    t2 = _TOTAL_REQUESTS / fleet_json["shards_2"]["duration_s"]
    speedup = t2 / t1
    fleet_json["scaling"] = {"speedup_2_over_1": speedup}
    if "shards_4" in fleet_json:
        t4 = _TOTAL_REQUESTS / fleet_json["shards_4"]["duration_s"]
        fleet_json["scaling"]["speedup_4_over_1"] = t4 / t1
    print(f"capacity speedup: 2 shards = {speedup:.2f}x over 1 "
          f"(gate: >= 1.6x)")
    assert speedup >= 1.6


def test_fleet_cross_shard_store_hit(fleet_json, candidate_pool, tmp_path):
    """Kill a plan's owner: the fail-over shard serves it from the shared
    store (payload-identical, artifacts read not recomputed)."""
    root = tmp_path / "store"
    # Slow supervisor: the victim must stay dead for the whole probe.
    with Fleet(_config(2, cache_dir=str(root), supervisor_poll=60.0)) as fleet:
        host, port = fleet.router.address
        key, net = candidate_pool[0]
        victim = fleet.router._ring.primary(key)
        with ServeClient(host, port, timeout=300.0) as client:
            t0 = time.perf_counter()
            first = client.plan(net, 300.0)
            cold_s = time.perf_counter() - t0
            fleet.kill_shard(victim)
            t0 = time.perf_counter()
            again = client.plan(net, 300.0)
            warm_s = time.perf_counter() - t0
            # Post-kill stats only reach the survivor, which never planned
            # this geometry: its disk hits are the cross-shard reads.
            counters = client.stats()["counters"]
        assert again["plan"] == first["plan"]
        assert again["service_cost"] == first["service_cost"]
        disk_hits = int(counters.get("plan.cache.disk.hits", 0))
        assert disk_hits >= 1, "fail-over shard recomputed instead of reading " \
                               "the shared store"
        assert fleet.obs.counters.get("fleet.failover.served", 0) >= 1
    print(f"cross-shard store: cold {cold_s * 1e3:.1f}ms, "
          f"fail-over warm {warm_s * 1e3:.1f}ms, disk hits {disk_hits}")
    fleet_json["cross_shard_store"] = {
        "cold_s": cold_s, "failover_warm_s": warm_s,
        "survivor_disk_hits": disk_hits, "payload_identical": True,
    }
