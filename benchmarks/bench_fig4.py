"""Fig. 4 — service cost vs tau_max, VARIABLE cycles (n=200, ΔT=10, σ=2).

Paper: the Fig. 2(a) shape survives the move to variable cycles —
near-parity at small tau_max, a growing win for MinTotalDistance-var after.
"""

import numpy as np


def test_fig4_variable_cycles_vs_tau_max(run_figure_bench):
    result = run_figure_bench("fig4")
    values = np.asarray(result.values, dtype=float)
    ratios = result.ratio_series("mtd-var", "greedy")
    small = ratios[values <= 10]
    large = ratios[values >= 35]
    assert float(large.mean()) < float(small.mean()), \
        "the win must grow with tau_max"
    assert float(large.mean()) < 0.80
    assert all(result.deaths("mtd-var") == 0)
    assert all(result.deaths("greedy") == 0)
