"""Ablation: what does 2-opt refinement of Algorithm 2's tours buy?

The paper's tours come from MST doubling (provably <= 2x optimal). A 2-opt
post-pass keeps the guarantee (strict-improvement acceptance) while
shrinking real tours; this bench measures by how much, for both the
planned algorithm and the greedy baseline.
"""


def test_ablation_refinement(run_figure_bench):
    result = run_figure_bench("abl-refine")

    ratio_mtd = result.ratio_series("mtd+2opt", "mtd")
    ratio_greedy = result.ratio_series("greedy+2opt", "greedy")
    # Refinement must help and must never hurt.
    assert float(ratio_mtd.max()) <= 1.0 + 1e-9
    assert float(ratio_greedy.max()) <= 1.0 + 1e-9
    assert float(ratio_mtd.mean()) < 0.97, "2-opt should shave a few percent"

    # Refinement preserves feasibility.
    for alg in result.algorithms:
        assert all(result.deaths(alg) == 0)

    # The refined planner must still beat refined greedy (the paper's win is
    # structural, not an artefact of sloppy tours).
    assert float(result.ratio_series("mtd+2opt", "greedy+2opt").mean()) < 0.80
