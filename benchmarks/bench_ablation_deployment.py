"""Ablation: does the win survive non-uniform deployments?

The paper evaluates uniform-random sensor placement only. The class
structure MinTotalDistance exploits lives in the *cycles*, not the
coordinates, so the advantage should survive clustered (hotspot) and grid
(engineered) layouts — this bench checks that, using the same linear cycle
distribution over each geometry.
"""


def test_ablation_deployment_patterns(run_figure_bench):
    result = run_figure_bench("abl-deployment")

    for alg in ("mtd", "greedy"):
        assert all(result.deaths(alg) == 0)

    ratios = result.ratio_series("mtd", "greedy")
    labels = list(result.values)
    by_label = dict(zip(labels, ratios))
    # A clear win on every layout.
    for label, ratio in by_label.items():
        assert ratio < 0.80, f"{label}: ratio {ratio:.3f} too close to greedy"
    # Uniform is the paper's headline number; the others stay in its vicinity.
    assert abs(by_label["clustered"] - by_label["uniform"]) < 0.25
    assert abs(by_label["grid"] - by_label["uniform"]) < 0.25
