"""Micro-benchmarks: runtime scaling of the core algorithms.

These are proper pytest-benchmark measurements (many rounds) of the three
algorithmic layers, sized to the paper's largest instances:

* Algorithm 1 (q-rooted MSF) — the paper charges O(n^2);
* Algorithm 2 (q-rooted TSP) — O(n^2) on top of the MSF;
* Algorithm 3 (MinTotalDistance) — O((tau_max/tau_min) n^2 + (T/tau_min) n).

Regressions here mean someone de-vectorised a kernel.
"""

import pytest

from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp
from repro.tsp.improve import two_opt


@pytest.fixture(scope="module", params=[100, 300, 500])
def sized_network(request):
    return build_paper_network(n=request.param, q=5, seed=42)


def test_scaling_q_rooted_msf(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    forest = benchmark(q_rooted_msf, net.dist, sensors, depots)
    assert forest.all_nodes() >= set(sensors)


def test_scaling_q_rooted_tsp(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    tours = benchmark(q_rooted_tsp, net.dist, sensors, depots)
    assert sum(t.n_stops for t in tours) == net.n


def test_scaling_min_total_distance(benchmark, sized_network):
    net = sized_network
    result = benchmark.pedantic(
        min_total_distance, args=(net, 1000.0), rounds=3, iterations=1)
    assert len(result.plan) > 0


def test_scaling_two_opt(benchmark):
    net = build_paper_network(n=200, q=1, seed=7)
    tours = q_rooted_tsp(net.dist,
                         [int(i) for i in net.sensor_indices],
                         [int(i) for i in net.depot_indices])
    improved = benchmark(two_opt, net.dist, tours[0])
    assert improved.cost(net.dist) <= tours[0].cost(net.dist) + 1e-9
