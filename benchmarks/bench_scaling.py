"""Micro-benchmarks: runtime scaling of the core algorithms.

These are proper pytest-benchmark measurements (many rounds) of the three
algorithmic layers, sized to the paper's largest instances:

* Algorithm 1 (q-rooted MSF) — the paper charges O(n^2);
* Algorithm 2 (q-rooted TSP) — O(n^2) on top of the MSF;
* Algorithm 3 (MinTotalDistance) — O((tau_max/tau_min) n^2 + (T/tau_min) n).

Regressions here mean someone de-vectorised a kernel.

The instrumentation overhead guard at the bottom holds the ``repro.obs``
hooks to their contract: planning with the disabled (``None``) context must
stay within noise of an instrumentation-free run, and even the enabled
context must stay cheap (hooks fire per algorithm invocation, not per
inner-loop iteration).
"""

import time

import pytest

from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp
from repro.tsp.improve import two_opt


@pytest.fixture(scope="module", params=[100, 300, 500])
def sized_network(request):
    return build_paper_network(n=request.param, q=5, seed=42)


def test_scaling_q_rooted_msf(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    forest = benchmark(q_rooted_msf, net.dist, sensors, depots)
    assert forest.all_nodes() >= set(sensors)


def test_scaling_q_rooted_tsp(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    tours = benchmark(q_rooted_tsp, net.dist, sensors, depots)
    assert sum(t.n_stops for t in tours) == net.n


def test_scaling_min_total_distance(benchmark, sized_network):
    net = sized_network
    result = benchmark.pedantic(
        min_total_distance, args=(net, 1000.0), rounds=3, iterations=1)
    assert len(result.plan) > 0


def test_scaling_two_opt(benchmark):
    net = build_paper_network(n=200, q=1, seed=7)
    tours = q_rooted_tsp(net.dist,
                         [int(i) for i in net.sensor_indices],
                         [int(i) for i in net.depot_indices])
    improved = benchmark(two_opt, net.dist, tours[0])
    assert improved.cost(net.dist) <= tours[0].cost(net.dist) + 1e-9


def test_instrumentation_overhead_guard(benchmark):
    """Disabled instrumentation must cost (close to) nothing.

    Times ``min_total_distance`` with refinement — the hook-densest path:
    plan -> block -> Algorithm 2 -> Algorithm 1 + 2-opt — under the
    disabled context vs a fresh enabled one, best-of-N wall clock each.
    The acceptance bound for the disabled path is 5%; measurement noise on
    a loaded CI box dominates real overhead there, so the guard allows
    1.25x. The enabled path is held to 1.5x as a hook-granularity tripwire
    (per-iteration hooks in a hot loop blow far past that).
    """
    net = build_paper_network(n=200, q=5, seed=42)
    net.dist  # pre-warm the cached distance matrix

    def best_of(n_rounds, **kwargs):
        best = float("inf")
        for _ in range(n_rounds):
            t0 = time.perf_counter()
            min_total_distance(net, 1000.0, refine=True, **kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    best_of(1)  # warm-up round (allocator, caches)
    disabled = best_of(5)           # obs defaults to None -> NULL
    enabled = best_of(5, obs=Instrumentation())
    baseline = benchmark.pedantic(
        lambda: best_of(5), rounds=1, iterations=1)

    disabled_ratio = disabled / baseline
    enabled_ratio = enabled / baseline
    print(f"\ninstrumentation overhead: baseline {baseline * 1e3:.2f}ms, "
          f"disabled {disabled_ratio:.3f}x, enabled {enabled_ratio:.3f}x")
    assert disabled_ratio < 1.25, (
        f"disabled instrumentation costs {disabled_ratio:.2f}x baseline")
    assert enabled_ratio < 1.5, (
        f"enabled instrumentation costs {enabled_ratio:.2f}x baseline")
