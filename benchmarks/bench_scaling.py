"""Micro-benchmarks: runtime scaling of the core algorithms.

These are proper pytest-benchmark measurements (many rounds) of the three
algorithmic layers, sized to the paper's largest instances:

* Algorithm 1 (q-rooted MSF) — the paper charges O(n^2);
* Algorithm 2 (q-rooted TSP) — O(n^2) on top of the MSF;
* Algorithm 3 (MinTotalDistance) — O((tau_max/tau_min) n^2 + (T/tau_min) n).

Regressions here mean someone de-vectorised a kernel.

The instrumentation overhead guard holds the ``repro.obs`` hooks to their
contract: planning with the disabled (``None``) context must stay within
noise of an instrumentation-free run, and even the enabled context must
stay cheap (hooks fire per algorithm invocation, not per inner-loop
iteration).

The pipeline benches at the bottom time the PR-level contracts of the
staged planner (:mod:`repro.plan`): the plan-artifact cache must make the
``mtd-var`` replan pattern at least 2x faster with identical output, and
the parallel experiment executor must stay byte-identical to the serial
path. Their measurements are emitted to ``BENCH_pipeline.json`` in the
working directory.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.mintotal import min_total_distance
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell
from repro.network.builder import build_paper_network
from repro.obs import Instrumentation
from repro.plan import PlanArtifactCache
from repro.rooted.msf import q_rooted_msf
from repro.rooted.qtsp import q_rooted_tsp
from repro.tsp.improve import two_opt


@pytest.fixture(scope="module", params=[100, 300, 500])
def sized_network(request):
    return build_paper_network(n=request.param, q=5, seed=42)


def test_scaling_q_rooted_msf(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    forest = benchmark(q_rooted_msf, net.dist, sensors, depots)
    assert forest.all_nodes() >= set(sensors)


def test_scaling_q_rooted_tsp(benchmark, sized_network):
    net = sized_network
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]
    tours = benchmark(q_rooted_tsp, net.dist, sensors, depots)
    assert sum(t.n_stops for t in tours) == net.n


def test_scaling_min_total_distance(benchmark, sized_network):
    net = sized_network
    result = benchmark.pedantic(
        min_total_distance, args=(net, 1000.0), rounds=3, iterations=1)
    assert len(result.plan) > 0


def test_scaling_two_opt(benchmark):
    net = build_paper_network(n=200, q=1, seed=7)
    tours = q_rooted_tsp(net.dist,
                         [int(i) for i in net.sensor_indices],
                         [int(i) for i in net.depot_indices])
    improved = benchmark(two_opt, net.dist, tours[0])
    assert improved.cost(net.dist) <= tours[0].cost(net.dist) + 1e-9


def test_instrumentation_overhead_guard(benchmark):
    """Disabled instrumentation must cost (close to) nothing.

    Times ``min_total_distance`` with refinement — the hook-densest path:
    plan -> block -> Algorithm 2 -> Algorithm 1 + 2-opt — under the
    disabled context vs a fresh enabled one, best-of-N wall clock each.
    The acceptance bound for the disabled path is 5%; measurement noise on
    a loaded CI box dominates real overhead there, so the guard allows
    1.25x. The enabled path is held to 1.5x as a hook-granularity tripwire
    (per-iteration hooks in a hot loop blow far past that).
    """
    net = build_paper_network(n=200, q=5, seed=42)
    net.dist  # pre-warm the cached distance matrix

    def best_of(n_rounds, **kwargs):
        best = float("inf")
        for _ in range(n_rounds):
            t0 = time.perf_counter()
            min_total_distance(net, 1000.0, refine=True, **kwargs)
            best = min(best, time.perf_counter() - t0)
        return best

    best_of(1)  # warm-up round (allocator, caches)
    disabled = best_of(5)           # obs defaults to None -> NULL
    enabled = best_of(5, obs=Instrumentation())
    baseline = benchmark.pedantic(
        lambda: best_of(5), rounds=1, iterations=1)

    disabled_ratio = disabled / baseline
    enabled_ratio = enabled / baseline
    print(f"\ninstrumentation overhead: baseline {baseline * 1e3:.2f}ms, "
          f"disabled {disabled_ratio:.3f}x, enabled {enabled_ratio:.3f}x")
    assert disabled_ratio < 1.25, (
        f"disabled instrumentation costs {disabled_ratio:.2f}x baseline")
    assert enabled_ratio < 1.5, (
        f"enabled instrumentation costs {enabled_ratio:.2f}x baseline")


def test_watch_delta_emission_cost(benchmark):
    """One streaming frame must stay microscopic next to its interval.

    A subscribed server snapshots its ``Instrumentation`` once per watch
    interval (``DeltaEmitter.frame`` + JSON encoding). Sized like a busy
    node — hundreds of counters, dozens of timers with populated quantile
    sketches — a frame must cost well under a millisecond, i.e. noise
    against the default 1 s interval. The unwatched path is covered by
    ``test_instrumentation_overhead_guard``: no subscription, no emitter,
    no snapshot at all.
    """
    from repro.obs.live import DeltaEmitter

    obs = Instrumentation()
    for i in range(300):
        obs.incr(f"serve.counter.{i}", i)
    for i in range(30):
        name = f"serve.timer.{i}"
        for _ in range(50):
            with obs.span(name):
                pass
    emitter = DeltaEmitter(obs, source="bench")
    emitter.frame()  # first frame carries the cumulative state; skip it

    def one_frame():
        obs.incr("serve.counter.0")
        with obs.span("serve.timer.0"):
            pass
        return json.dumps(emitter.frame().to_dict())

    encoded = benchmark(one_frame)
    assert '"stream": "watch"' in encoded or '"stream"' in encoded


# --------------------------------------------------------------------------
# Staged-pipeline benches (plan-artifact cache; parallel executor)
# --------------------------------------------------------------------------

_PIPELINE_JSON = Path("BENCH_pipeline.json")
_pipeline_measurements: dict = {}


@pytest.fixture(scope="module")
def pipeline_json():
    """Collects the pipeline benches' numbers; written out once at the end
    of the module (partial runs emit whatever they measured)."""
    yield _pipeline_measurements
    if _pipeline_measurements:
        _PIPELINE_JSON.write_text(
            json.dumps(_pipeline_measurements, indent=2, sort_keys=True) + "\n")
        print(f"\npipeline measurements -> {_PIPELINE_JSON.resolve()}")


def test_replan_cache_speedup(benchmark, pipeline_json):
    """The mtd-var replan pattern: repeated Algorithm 3 runs over one fixed
    geometry whose cycle estimates oscillate between two quantisations.

    With a shared :class:`PlanArtifactCache` every replan after the first
    exposure of each quantisation is answered from memoized forests/tours;
    the acceptance bar is >= 2x over the uncached path, with plan output
    identical block-for-block (the cache is a pure accelerator).
    """
    net = build_paper_network(n=400, q=5, seed=42)
    net.dist  # pre-warm the cached distance matrix
    cycles2 = net.cycles.copy()
    cycles2[::2] *= 2.0  # every other sensor drifts one class up
    variants = (None, cycles2)  # None -> the nominal cycles
    n_replans = 8
    horizon = 200.0  # short: the un-cacheable schedule unroll stays small

    def replan_loop(cache):
        return [min_total_distance(net, horizon, refine=True,
                                   cycles=variants[r % len(variants)],
                                   cache=cache)
                for r in range(n_replans)]

    replan_loop(None)  # warm-up (allocator, caches)
    t0 = time.perf_counter()
    uncached = replan_loop(None)
    t_uncached = time.perf_counter() - t0

    cache = PlanArtifactCache()
    t_cached = benchmark.pedantic(
        lambda: _timed(replan_loop, cache), rounds=1, iterations=1)

    # Identical output, replan for replan (the cache-disabled path is the
    # reference semantics).
    cached = replan_loop(cache)
    for a, b in zip(cached, uncached):
        assert a.block == b.block

    speedup = t_uncached / t_cached
    pipeline_json["replan_cache"] = {
        "n": net.n, "q": net.q, "replans": n_replans,
        "uncached_s": round(t_uncached, 4), "cached_s": round(t_cached, 4),
        "speedup": round(speedup, 2),
    }
    print(f"\nreplan cache: uncached {t_uncached * 1e3:.1f}ms, "
          f"cached {t_cached * 1e3:.1f}ms, speedup {speedup:.2f}x")
    assert speedup >= 2.0, (
        f"plan-artifact cache speedup {speedup:.2f}x is below the 2x bar")


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def test_executor_serial_vs_parallel(benchmark, pipeline_json):
    """Times one experiment cell serially and on a 2-worker pool.

    The contract asserted here is byte-identical results; the wall-clock
    ratio is *reported*, not asserted — on single-core CI boxes the pool
    only adds process overhead, while multi-core machines should see it
    approach the worker count for large cells.
    """
    cfg = ExperimentConfig(n=80, horizon=400.0, n_topologies=4, seed=42,
                           algorithms=("mtd", "greedy"))
    run_cell(cfg.with_(n_topologies=1))  # warm-up

    t0 = time.perf_counter()
    serial = run_cell(cfg)
    t_serial = time.perf_counter() - t0

    jobs = 2
    t_parallel = benchmark.pedantic(
        lambda: _timed(lambda: run_cell(cfg, jobs=jobs)), rounds=1, iterations=1)
    parallel = run_cell(cfg, jobs=jobs)

    for a, b in zip(serial.results, parallel.results):
        assert a.costs.tobytes() == b.costs.tobytes()
        assert a.deaths.tobytes() == b.deaths.tobytes()

    pipeline_json["executor"] = {
        "n": cfg.n, "topologies": cfg.n_topologies, "jobs": jobs,
        "serial_s": round(t_serial, 4), "parallel_s": round(t_parallel, 4),
        "parallel_over_serial": round(t_parallel / t_serial, 2),
    }
    print(f"\nexecutor: serial {t_serial:.2f}s, "
          f"parallel(jobs={jobs}) {t_parallel:.2f}s")
