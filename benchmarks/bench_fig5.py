"""Fig. 5 — service cost vs slot length ΔT (n=200, τ=[1,50], σ=2).

Paper: at ΔT=1 (extremely unstable cycles) MinTotalDistance-var is almost
identical to Greedy; both costs fall as ΔT grows, and the adaptive
algorithm is already clearly ahead by ΔT=4 ("can quickly adapt").
"""

import numpy as np


def test_fig5_workload_stability(run_figure_bench):
    result = run_figure_bench("fig5")
    values = np.asarray(result.values, dtype=float)
    ratios = result.ratio_series("mtd-var", "greedy")

    at_1 = float(ratios[values == 1.0][0])
    stable = float(ratios[values >= 10].mean())
    # The gap narrows sharply under extreme instability (the paper reports
    # near-parity; measured values land 0.80-1.0 depending on topology mix)...
    assert at_1 > 0.75
    # ...and a clear win once slots are moderately stable.
    assert stable < 0.70
    assert stable < at_1 - 0.15, "the ratio must climb materially toward ΔT=1"
    # The ratio series is monotone non-increasing in ΔT (up to small noise).
    assert all(ratios[i + 1] <= ratios[i] + 0.05 for i in range(len(ratios) - 1))

    # Both algorithms' absolute costs decrease with stability.
    _, var_costs = result.series("mtd-var")
    assert var_costs[values >= 10].mean() < var_costs[values == 1.0][0]

    assert all(result.deaths("mtd-var") == 0)
    assert all(result.deaths("greedy") == 0)
