#!/usr/bin/env python3
"""Fleet sizing: how many mobile chargers does a deployment need?

A question the paper leaves to the operator: the algorithms work for any
``q``, but each depot/vehicle costs money. This example sweeps
``q = 1 .. 8`` on a fixed 200-sensor deployment and reports the service
cost of MinTotalDistance and Greedy at each fleet size, plus the marginal
saving of each extra charger — the knee of that curve is the economic
fleet size.

(Also exercises the q-rooted machinery at its q=1 degenerate point, where
Algorithm 1 is a plain MST and Algorithm 2 the classic double-tree TSP
approximation.)

Run:  python examples/fleet_sizing.py
"""

from repro import ExperimentConfig
from repro.experiments import run_cell
from repro.reporting import format_table

HORIZON = 1000.0


def main() -> None:
    rows = []
    prev_cost = None
    base = ExperimentConfig(n=200, horizon=HORIZON, algorithms=("mtd", "greedy"),
                            n_topologies=3, seed=77)
    print(f"sweeping fleet size on: {base.describe()}\n")
    for q in range(1, 9):
        cell = run_cell(base.with_(q=q))
        mtd = cell.by_name("mtd")
        greedy = cell.by_name("greedy")
        saving = (prev_cost - mtd.mean_cost) if prev_cost is not None else float("nan")
        rows.append([q, mtd.mean_cost, greedy.mean_cost,
                     cell.ratio("mtd", "greedy"), saving])
        prev_cost = mtd.mean_cost

    print(format_table(
        ["q", "MTD cost (m)", "Greedy cost (m)", "MTD/Greedy", "marginal saving (m)"],
        rows, precision=3))
    print("\nreading: MinTotalDistance is remarkably insensitive to fleet "
          "size — depot #1 sits on the base station next to the hottest "
          "sensors, and the power-of-two batching already amortises the "
          "long hauls, so extra random depots shave little. Greedy benefits "
          "more from extra depots (its unbatched emergency tours are the "
          "ones long hauls hurt). For this deployment, one well-placed "
          "charger is nearly as good as eight.")


if __name__ == "__main__":
    main()
