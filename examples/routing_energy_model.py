#!/usr/bin/env python3
"""Deriving charging cycles from a physical routing model.

The paper *postulates* its linear cycle distribution ("sensors near the
base station relay data for remote sensors, so their cycles are shorter").
This example derives the same structure from first principles using the
library's routing substrate:

1. build the unit-disk communication graph over sensors + base station,
2. route everyone to the sink along a minimum-hop shortest-path tree,
3. compute per-sensor relay load (own packets + subtree packets),
4. convert load to a drain rate with a first-order radio model and hence to
   a maximum charging cycle,

then verifies the emergent cycles correlate with distance-to-sink the way
the linear distribution assumes, and runs MinTotalDistance on them.

Run:  python examples/routing_energy_model.py
"""

import numpy as np

from repro import (
    FixedWorkload,
    GreedyOnDemandPolicy,
    PlannedPolicy,
    build_paper_network,
    min_total_distance,
    simulate,
)
from repro.network import RoutingCycleDistribution
from repro.network.routing import CommunicationGraph, RoutingTree, relay_loads

HORIZON = 1000.0
COMM_RANGE = 180.0  # metres; dense enough for connectivity at n=150


def main() -> None:
    # Geometry first (cycles get replaced below).
    base_net = build_paper_network(n=150, q=5, seed=5)
    coords = base_net.coordinates[: base_net.n]
    bs = base_net.base_station.position

    # ---- the physical story -------------------------------------------------
    graph = CommunicationGraph(
        coords=np.vstack([coords, [bs.x, bs.y]]), comm_range=COMM_RANGE)
    print(f"unit-disk graph at range {COMM_RANGE:g} m: "
          f"connected={graph.is_connected()}")
    tree = RoutingTree.shortest_path(graph, metric="hops")
    loads = relay_loads(tree)
    print(f"relay load: max={loads.max():.0f} packets/round "
          f"(a sink-adjacent sensor), median={np.median(loads):.0f}")

    # ---- emergent cycles ----------------------------------------------------
    dist = RoutingCycleDistribution(
        comm_range=COMM_RANGE, tau_min=1.0, tau_max=50.0,
        coords=tuple((float(x), float(y)) for x, y in coords),
        base_position=(bs.x, bs.y))
    cycles = dist.sample(base_net.base_distances, np.random.default_rng(5))
    corr = np.corrcoef(base_net.base_distances, cycles)[0, 1]
    print(f"correlation(cycle, distance to sink) = {corr:.2f} "
          f"(the linear distribution postulates ~1.0; routing gives the "
          f"same direction with realistic noise)")

    net = base_net.with_cycles(cycles)

    # ---- schedule against the derived cycles --------------------------------
    result = min_total_distance(net, HORIZON)
    workload = FixedWorkload.from_network(net)
    mtd = simulate(net, PlannedPolicy(result.plan), workload, HORIZON)
    greedy = simulate(net, GreedyOnDemandPolicy(), workload, HORIZON)
    assert mtd.metrics.perpetual and greedy.metrics.perpetual
    print(f"\nMinTotalDistance: {mtd.metrics.summary()}")
    print(f"Greedy          : {greedy.metrics.summary()}")
    print(f"ratio = {mtd.metrics.service_cost / greedy.metrics.service_cost:.3f}")
    print("reading: minimum-hop routing concentrates relay load on a few "
          "bottleneck sensors, so most cycles end up long and the few short "
          "ones are scattered — closer to the paper's *random* regime "
          "(ratio ~0.9-1.0) than its linear one. The size of "
          "MinTotalDistance's win is governed by how strongly drain "
          "correlates with sink distance, which is exactly the paper's "
          "stated rationale for evaluating both distributions.")


if __name__ == "__main__":
    main()
