#!/usr/bin/env python3
"""Quickstart: keep a 100-sensor network alive with 5 mobile chargers.

Builds one random topology with the paper's defaults, plans with the
2(K+2)-approximate MinTotalDistance algorithm, simulates the whole
monitoring period, and compares against the greedy on-demand baseline.

Run:  python examples/quickstart.py
"""

from repro import (
    FixedWorkload,
    GreedyOnDemandPolicy,
    PlannedPolicy,
    build_paper_network,
    check_feasibility,
    lemma3_lower_bound,
    min_total_distance,
    simulate,
)

HORIZON = 1000.0  # the paper's monitoring period T


def main() -> None:
    # One topology: 100 sensors uniform in 1000m x 1000m, base station at the
    # centre, 5 depots (first co-located with the base station), maximum
    # charging cycles linear in distance-to-sink within [1, 50].
    net = build_paper_network(n=100, q=5, seed=42)
    print(f"network: n={net.n} sensors, q={net.q} chargers, "
          f"cycles in [{net.tau_min:.2f}, {net.tau_max:.2f}]")

    # ---- plan offline with Algorithm 3 -----------------------------------
    result = min_total_distance(net, HORIZON)
    quant = result.quantization
    print(f"MinTotalDistance: {quant.K + 1} cycle classes (K={quant.K}), "
          f"block of {quant.block_size} tour sets repeated over T={HORIZON:g}, "
          f"{len(result.plan)} schedulings total")

    # The plan is feasible by construction; verify both analytically and by
    # simulation (belt and braces — they are independent checkers).
    report = check_feasibility(result.plan, net.cycles)
    assert report.feasible, report.summary()

    workload = FixedWorkload.from_network(net)
    mtd = simulate(net, PlannedPolicy(result.plan), workload, HORIZON)
    assert mtd.metrics.perpetual
    print(f"  simulated: {mtd.metrics.summary()}")

    # ---- greedy baseline --------------------------------------------------
    greedy = simulate(net, GreedyOnDemandPolicy(), workload, HORIZON)
    print(f"Greedy on-demand:\n  simulated: {greedy.metrics.summary()}")

    # ---- compare -----------------------------------------------------------
    ratio = mtd.metrics.service_cost / greedy.metrics.service_cost
    print(f"\nservice-cost ratio MinTotalDistance / Greedy = {ratio:.3f} "
          f"(paper reports 0.55-0.60 for the linear distribution)")

    lb = lemma3_lower_bound(net, HORIZON)
    print(f"Lemma-3 lower bound on OPT: {lb.bound:,.0f} m "
          f"-> plan is within {mtd.metrics.service_cost / lb.bound:.2f}x of optimal "
          f"(worst-case guarantee: {2 * (quant.K + 2)}x)")

    # ---- optional: draw the full-coverage round -----------------------------
    from repro.reporting import save_network_svg

    full_round = result.plan[quant.block_size - 1]  # the all-sensors scheduling
    path = save_network_svg(net, "quickstart_tours.svg", tours=full_round.tours,
                            label=f"full-coverage round, {net.n} sensors, "
                                  f"{net.q} chargers")
    print(f"\ntour map written to {path} (sensors coloured by cycle: red=hot)")


if __name__ == "__main__":
    main()
