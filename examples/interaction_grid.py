#!/usr/bin/env python3
"""Exploring parameter interactions with a grid sweep.

The paper varies one parameter at a time. This example asks an interaction
question its evaluation leaves open: *does the value of extra chargers
depend on network size?* — by sweeping the (n, q) grid and printing the
MTD/Greedy cost-ratio heatmap as text.

Run:  python examples/interaction_grid.py
"""

from repro.experiments import ExperimentConfig
from repro.experiments.grid import grid_sweep
from repro.reporting import format_table

N_VALUES = [100, 200, 300]
Q_VALUES = [1, 3, 5, 8]


def main() -> None:
    base = ExperimentConfig(horizon=500.0, n_topologies=2, seed=33,
                            algorithms=("mtd", "greedy"))
    print(f"grid: n in {N_VALUES} x q in {Q_VALUES} "
          f"({base.n_topologies} topologies per cell) ...\n")
    grid = grid_sweep(base, {"n": N_VALUES, "q": Q_VALUES})

    ratios = grid.ratio_tensor("mtd", "greedy")
    rows = [[n] + [float(ratios[i, j]) for j in range(len(Q_VALUES))]
            for i, n in enumerate(N_VALUES)]
    print("MTD/Greedy mean cost ratio (rows: n, columns: q):")
    print(format_table(["n \\ q"] + [str(q) for q in Q_VALUES], rows,
                       precision=3))

    costs = grid.cost_tensor("mtd")
    rows = [[n] + [float(costs[i, j]) / 1000.0 for j in range(len(Q_VALUES))]
            for i, n in enumerate(N_VALUES)]
    print("\nMTD mean service cost (km):")
    print(format_table(["n \\ q"] + [str(q) for q in Q_VALUES], rows,
                       precision=0))

    print("\nreading: the ratio is remarkably flat across the grid — the "
          "merging advantage is a property of the cycle structure, not of "
          "fleet size or density. MTD's absolute cost barely moves with q "
          "(depot #1 on the base station plus batching do the work), so "
          "the paper's q=5 is a safe but not critical choice.")


if __name__ == "__main__":
    main()
