#!/usr/bin/env python3
"""Operating a constrained fleet: charging windows and vehicle range.

The paper's model lets every charger drive arbitrarily far in a charging
round. Two practical constraints its companion works study (its references
[16] and [7]) are implemented as extensions in :mod:`repro.rooted`:

1. **Charging window** — a round must finish within W hours; chargers drive
   in parallel, so the binding metric is the *longest* tour (makespan), not
   the total. `minmax_q_rooted_tours` rebalances Algorithm 2's tours.
2. **Vehicle range** — a charger can drive at most R metres per trip before
   returning to its depot. `split_tour_by_budget` turns any tour into a
   sequence of within-range trips.

This example runs both on the paper's full-coverage scheduling (the most
demanding round: all n sensors at once).

Run:  python examples/constrained_fleet.py
"""

from repro import build_paper_network
from repro.rooted import (
    makespan,
    minmax_q_rooted_tours,
    q_rooted_tsp,
    split_tours_by_budget,
    tours_total_cost,
)

SPEED_M_PER_MIN = 100.0  # 6 km/h service vehicle


def main() -> None:
    net = build_paper_network(n=150, q=5, seed=21)
    sensors = [int(i) for i in net.sensor_indices]
    depots = [int(i) for i in net.depot_indices]

    # ---- baseline: the paper's min-total tours -----------------------------
    tours = q_rooted_tsp(net.dist, sensors, depots, refine=True)
    total = tours_total_cost(net.dist, tours)
    span = makespan(net.dist, tours)
    print("full-coverage round, min-TOTAL objective (the paper's):")
    print(f"  total distance {total:,.0f} m; longest tour {span:,.0f} m "
          f"(~{span / SPEED_M_PER_MIN:.0f} min at {SPEED_M_PER_MIN:.0f} m/min)")
    per = sorted(round(t.cost(net.dist)) for t in tours)
    print(f"  per-charger tour lengths: {per}")

    # ---- constraint 1: finish the round within a window --------------------
    balanced = minmax_q_rooted_tours(net.dist, sensors, depots)
    print("\nmin-MAX rebalancing (charging-window objective):")
    print(f"  makespan {balanced.initial_makespan:,.0f} -> "
          f"{balanced.final_makespan:,.0f} m "
          f"({balanced.improvement:.0%} shorter round, {balanced.moves} relocations)")
    new_total = tours_total_cost(net.dist, balanced.tours)
    print(f"  total distance cost of balancing: {total:,.0f} -> {new_total:,.0f} m "
          f"({(new_total / total - 1):+.1%})")

    # ---- constraint 2: vehicle range ----------------------------------------
    budget = max(0.6 * balanced.final_makespan,
                 max(2 * net.dist[t.depot, s]
                     for t in balanced.tours for s in t.stops()))
    results = split_tours_by_budget(net.dist, balanced.tours, budget)
    n_trips = sum(r.n_trips for r in results)
    split_total = sum(r.total_cost for r in results)
    print(f"\nrange limit R = {budget:,.0f} m per trip:")
    print(f"  {len(balanced.tours)} tours -> {n_trips} within-range trips; "
          f"total distance {split_total:,.0f} m "
          f"({(split_total / new_total - 1):+.1%} overhead for returning to refuel)")
    worst = max(trip.cost(net.dist) for r in results for trip in r.trips)
    assert worst <= budget * (1 + 1e-6)
    print(f"  longest single trip {worst:,.0f} m (within budget)")


if __name__ == "__main__":
    main()
