#!/usr/bin/env python3
"""Multimedia surveillance WSN: the paper's *random* cycle distribution.

Camera sensors spend most of their energy on local image processing, so a
sensor's drain rate is unrelated to its distance from the sink (paper,
Section VII.A). Under this regime the paper finds MinTotalDistance's
advantage shrinks to 87-93% of greedy — the short-cycle sensors are
scattered, so every algorithm must sweep the whole field often.

This example reproduces that contrast on a single pair of topologies that
differ *only* in the cycle distribution, and also reports the naive
charge-everything strawman for scale.

Run:  python examples/multimedia_surveillance.py
"""

from repro import (
    FixedWorkload,
    GreedyOnDemandPolicy,
    LinearCycleDistribution,
    NaiveChargeAllPolicy,
    PlannedPolicy,
    RandomCycleDistribution,
    build_paper_network,
    min_total_distance,
    simulate,
)

HORIZON = 1000.0
N = 150
SEED = 11


def run_one(label: str, distribution) -> None:
    net = build_paper_network(n=N, q=5, distribution=distribution, seed=SEED)
    workload = FixedWorkload.from_network(net)
    plan = min_total_distance(net, HORIZON).plan
    mtd = simulate(net, PlannedPolicy(plan), workload, HORIZON)
    greedy = simulate(net, GreedyOnDemandPolicy(), workload, HORIZON)
    naive = simulate(net, NaiveChargeAllPolicy(), workload, HORIZON)
    assert mtd.metrics.perpetual and greedy.metrics.perpetual and naive.metrics.perpetual
    r = mtd.metrics.service_cost / greedy.metrics.service_cost
    print(f"{label}:")
    print(f"  MinTotalDistance : {mtd.metrics.service_cost:12,.0f} m")
    print(f"  Greedy on-demand : {greedy.metrics.service_cost:12,.0f} m "
          f"(MTD/Greedy = {r:.3f})")
    print(f"  Naive charge-all : {naive.metrics.service_cost:12,.0f} m "
          f"({naive.metrics.service_cost / greedy.metrics.service_cost:.1f}x greedy)")


def main() -> None:
    print(f"n={N} sensors, q=5 chargers, T={HORIZON:g}, same geometry seed, "
          f"two energy regimes\n")
    run_one("data-gathering regime (linear cycles — relay load dominates)",
            LinearCycleDistribution(tau_min=1, tau_max=50, sigma=2))
    print()
    run_one("multimedia regime (random cycles — local processing dominates)",
            RandomCycleDistribution(tau_min=1, tau_max=50))
    print("\npaper's finding: the win is large in the first regime (0.55-0.60) "
          "and marginal in the second (0.87-0.93) — short-cycle sensors near "
          "the sink cluster onto cheap tours only when drain follows distance")


if __name__ == "__main__":
    main()
