#!/usr/bin/env python3
"""Flood-detection WSN with storms: the paper's motivating variable workload.

The paper's introduction argues for decoupling charging from routing with a
flood-detection example: "high data sampling rates of sensors are required
to better monitor water levels ... when there is a storm". This example
builds exactly that scenario:

* a 150-sensor network monitoring a river basin (linear cycle distribution —
  sensors near the sink relay the most),
* two storms sweeping through during the monitoring period, tripling the
  drain rate of every sensor within 300 m of the storm centre,
* the adaptive MinTotalDistance-var policy (Section VI) versus the greedy
  on-demand baseline, both facing the same ground truth.

The interesting part is the *replan trail*: the adaptive policy keeps its
plan through calm stretches and re-plans (with patch schedulings) when a
storm hits or clears.

Run:  python examples/flood_monitoring.py
"""

from repro import GreedyOnDemandPolicy, MinTotalDistanceVarPolicy, build_paper_network, simulate
from repro.sim import StormWorkload

HORIZON = 600.0
STORMS = (
    # (t_start, t_end, centre_x, centre_y, radius, drain factor)
    (100.0, 180.0, 300.0, 700.0, 300.0, 3.0),   # storm over the north-west
    (350.0, 420.0, 750.0, 250.0, 300.0, 3.0),   # storm over the south-east
)


def main() -> None:
    net = build_paper_network(n=150, q=5, seed=7)
    workload = StormWorkload(network=net, storms=STORMS, slot_duration=10.0)
    print(f"flood basin: n={net.n} sensors, {len(STORMS)} storms over T={HORIZON:g}")
    for i, (t0, t1, cx, cy, r, f) in enumerate(STORMS):
        print(f"  storm {i + 1}: t in [{t0:g}, {t1:g}), centre ({cx:g}, {cy:g}), "
              f"radius {r:g} m, {f:g}x drain")

    adaptive = MinTotalDistanceVarPolicy()
    var = simulate(net, adaptive, workload, HORIZON)
    # A 3x storm pushes the hottest sensors' effective cycle to tau_min / 3,
    # *below* greedy's default decision grid of Δl = tau_min — sensors would
    # die between epochs. The operator must provision greedy's reaction time
    # for the worst storm (decision_interval <= tau_min / factor); the
    # adaptive policy needs no such tuning, its patch step re-times charges
    # automatically.
    greedy = simulate(net, GreedyOnDemandPolicy(decision_interval=0.25),
                      workload, HORIZON)

    print(f"\nMinTotalDistance-var: {var.metrics.summary()} "
          f"({adaptive.n_replans} replans)")
    print(f"Greedy on-demand    : {greedy.metrics.summary()} "
          f"(decision grid tightened to 0.25 to survive the storms)")
    assert var.metrics.perpetual, "adaptive policy must keep every sensor alive"
    assert greedy.metrics.perpetual

    ratio = var.metrics.service_cost / greedy.metrics.service_cost
    print(f"\nservice-cost ratio var/greedy = {ratio:.3f}")
    print("during storms the adaptive policy front-loads charges for the "
          "affected region (patch schedulings), then relaxes back to the "
          "cheap periodic plan once the storm passes")

    # Show how often each sensor group got charged.
    charges = var.metrics.charges_per_sensor(net.n)
    hot = charges.argmax()
    print(f"most-charged sensor: #{hot} with {charges[hot]} charges "
          f"(cycle {net.cycles[hot]:.1f}); median charges "
          f"{int(sorted(charges)[net.n // 2])}")


if __name__ == "__main__":
    main()
