"""Command-line interface.

::

    repro list                         # catalogue of reproducible figures
    repro run fig1a                    # run a figure (coarse grid)
    repro run fig2a --full --reps 100  # the paper-dense version
    repro run fig2a --jobs 4           # fan topologies over 4 processes
    repro run fig3 --csv out/fig3.csv  # also export the series
    repro demo                         # 30-second end-to-end demo
    repro --profile demo               # ... plus the instrumentation table
    repro --profile --trace t.jsonl plan   # ... plus a JSONL trace file
    repro --kernel-backend fast run fig1a  # vectorised hot-path kernels
                                           # (identical output, less time)
    repro serve --port 7351 --workers 4    # long-lived planning service
    repro check fuzz --seed 4 --budget 50  # differential verification fuzzer
    repro check replay check_reproducer.json   # re-run a shrunk failure
    repro check selftest                   # assert the harness catches planted bugs
    repro check sim                        # event engine == legacy loop, bit for bit
    repro run fig1a --failures 0.01:5      # any panel under charger breakdowns
    repro simulate --network n.json --plan p.json --churn 0.05:12 \
          --event-spill events.jsonl       # dynamic replay, full event history
    repro plan --cache-dir .plan-store     # persist plan artifacts across runs
    repro cache stats --cache-dir .plan-store    # inspect the on-disk store
    repro cache verify --cache-dir .plan-store   # integrity-scan + quarantine
    repro score --suite quick --jobs 2     # scenario scoreboard vs the golden
    repro score --suite quick --update-golden    # re-bless the golden scorecard
    repro watch --port 7350                # live dashboard over a fleet/serve
    repro watch --port 7350 --svg dash.svg --jsonl frames.jsonl   # + sinks
    repro score --jobs 2 --live progress.jsonl &   # pair with:
    repro watch --port 7350 --score progress.jsonl # scoreboard deltas live

Also available as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.errors import CheckError, ConfigError
from repro.experiments.figures import FIGURES, get_figure
from repro.obs import Instrumentation, configure_logging, get_logger
from repro.reporting.csvio import sweep_to_csv
from repro.reporting.summary import figure_report

__all__ = ["main", "build_parser"]

log = get_logger(__name__)


def _require_positive(value: int, flag: str) -> int:
    """Reject non-positive worker counts before any pool is constructed.

    ``--jobs 0`` (or a negative value) used to surface as a raw executor
    traceback deep inside the run; fail fast with a clean
    :class:`~repro.errors.ConfigError` naming the flag instead.
    """
    if value < 1:
        raise ConfigError(f"{flag} must be >= 1, got {value}")
    return value


def _parse_rate_pair(raw: str, flag: str) -> tuple[float, float]:
    """Parse a ``RATE:DURATION`` flag value (e.g. ``--failures 0.01:5``)."""
    rate_s, sep, dur_s = raw.partition(":")
    try:
        if not sep:
            raise ValueError("missing ':'")
        rate, duration = float(rate_s), float(dur_s)
    except ValueError:
        raise ConfigError(
            f"{flag} expects RATE:DURATION (e.g. 0.01:5), got {raw!r}") from None
    return rate, duration


def _add_dynamics_flags(p: "argparse.ArgumentParser") -> None:
    """The dynamic-scenario knobs shared by ``run`` and ``simulate``."""
    p.add_argument("--failures", default=None, metavar="RATE:MTTR",
                   help="charger breakdowns: exponential failure rate per "
                        "charger and mean time to repair (e.g. 0.01:5)")
    p.add_argument("--churn", default=None, metavar="RATE:DOWNTIME",
                   help="sensor membership churn: leave rate across the "
                        "network and per-absence downtime (e.g. 0.05:12)")
    p.add_argument("--requests", type=float, default=None, metavar="RATE",
                   help="Poisson on-demand charging-request arrival rate")
    p.add_argument("--dynamics-seed", type=int, default=0, metavar="SEED",
                   help="seed for the failure/churn/request event streams "
                        "(default 0)")


def _dynamics_overrides(args: argparse.Namespace) -> dict:
    """Map the parsed dynamics flags to ExperimentConfig overrides."""
    overrides: dict = {}
    if args.failures is not None:
        rate, mttr = _parse_rate_pair(args.failures, "--failures")
        overrides.update(failure_rate=rate, failure_mttr=mttr)
    if args.churn is not None:
        rate, down = _parse_rate_pair(args.churn, "--churn")
        overrides.update(churn_rate=rate, churn_downtime=down)
    if args.requests is not None:
        overrides.update(request_rate=args.requests)
    if overrides:
        overrides.update(dynamics_seed=args.dynamics_seed)
    return overrides


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Reproduction of 'Towards Perpetual Sensor Networks via "
                     "Deploying Multiple Mobile Wireless Chargers' (ICPP 2014)"),
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="debug-level diagnostics (repeatable)")
    parser.add_argument("--profile", action="store_true",
                        help="collect instrumentation and print the stats "
                             "table after the command")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the instrumentation trace (JSONL) here; "
                             "implies --profile collection")
    parser.add_argument("--kernel-backend", default=None, metavar="NAME",
                        help="numeric kernel backend for the planner hot "
                             "paths ('reference' or 'fast'; default: "
                             "$REPRO_KERNEL_BACKEND or 'reference'). Exact "
                             "backends are output-identical")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="catalogue of reproducible figures/ablations")

    run = sub.add_parser("run", help="run one registered figure")
    run.add_argument("figure", help=f"figure id, one of: {', '.join(sorted(FIGURES))}")
    run.add_argument("--reps", type=int, default=None,
                     help="topologies per point (default: figure's setting; paper uses 100)")
    run.add_argument("--full", action="store_true",
                     help="use the paper-dense sweep grid")
    run.add_argument("--csv", default=None, metavar="PATH",
                     help="export the series to a CSV file")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes per cell (topology jobs; results "
                          "are bit-identical to --jobs 1)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="persist plan artifacts to this on-disk store; "
                          "repeat runs replan warm (results unchanged)")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    _add_dynamics_flags(run)

    sub.add_parser("demo", help="end-to-end demo on one small topology")

    report = sub.add_parser(
        "report", help="run figures and write a paper-vs-measured markdown report")
    report.add_argument("--figures", nargs="+", default=None, metavar="ID",
                        help="figure ids to include (default: the 8 paper panels)")
    report.add_argument("--reps", type=int, default=None,
                        help="topologies per point (default: figure settings)")
    report.add_argument("--full", action="store_true",
                        help="paper-dense sweep grids")
    report.add_argument("--out", default="EXPERIMENTS.md", metavar="PATH",
                        help="output markdown file (default: EXPERIMENTS.md)")
    report.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per cell (topology jobs; results "
                             "are bit-identical to --jobs 1)")
    report.add_argument("--quiet", action="store_true")

    plan = sub.add_parser(
        "plan", help="build a topology, plan it with MinTotalDistance, save both")
    plan.add_argument("--n", type=int, default=100, help="sensors (default 100)")
    plan.add_argument("--q", type=int, default=5, help="chargers (default 5)")
    plan.add_argument("--horizon", type=float, default=1000.0,
                      help="monitoring period T (default 1000)")
    plan.add_argument("--seed", type=int, default=2014)
    plan.add_argument("--distribution", choices=["linear", "random"],
                      default="linear")
    plan.add_argument("--refine", action="store_true",
                      help="2-opt refine all tours")
    plan.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="read/write plan artifacts through this on-disk "
                           "store; a repeat plan over the same geometry "
                           "replans warm (results unchanged)")
    plan.add_argument("--network-out", default="network.json", metavar="PATH")
    plan.add_argument("--plan-out", default="plan.json", metavar="PATH")

    simulate_p = sub.add_parser(
        "simulate", help="replay a saved plan against its saved network")
    simulate_p.add_argument("--network", required=True, metavar="PATH")
    simulate_p.add_argument("--plan", required=True, metavar="PATH")
    simulate_p.add_argument("--speed", type=float, default=None,
                            help="vehicle speed for the timescale check "
                                 "(distance units per time unit)")
    _add_dynamics_flags(simulate_p)
    simulate_p.add_argument("--event-spill", default=None, metavar="PATH",
                            help="stream the full per-event log to this JSONL "
                                 "file (readable with repro.obs.trace)")
    simulate_p.add_argument("--event-log-limit", type=int, default=None,
                            metavar="N",
                            help="keep only the last N events of each kind in "
                                 "memory (counts stay exact; combine with "
                                 "--event-spill for the full history)")

    serve_p = sub.add_parser(
        "serve", help="long-lived planning service (newline-delimited JSON over TCP)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=7351,
                         help="TCP port (0 picks an ephemeral one; default 7351)")
    serve_p.add_argument("--workers", type=int, default=1, metavar="N",
                         help="planner workers (processes by default)")
    serve_p.add_argument("--executor", choices=["process", "thread"],
                         default="process",
                         help="worker pool kind: 'process' for CPU parallelism "
                              "(per-process artifact caches), 'thread' for one "
                              "shared cache and cheap startup")
    serve_p.add_argument("--queue-limit", type=int, default=32, metavar="N",
                         help="max in-flight jobs before requests are rejected "
                              "with a structured 'overloaded' error")
    serve_p.add_argument("--deadline", type=float, default=30.0, metavar="SEC",
                         help="default per-request deadline (0 disables)")
    serve_p.add_argument("--drain-timeout", type=float, default=10.0, metavar="SEC",
                         help="grace period for in-flight requests on SIGTERM")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="persist worker plan artifacts to this on-disk "
                              "store; pools warm-start from it at boot and "
                              "flush to it on drain")
    serve_p.add_argument("--port-file", default=None, metavar="PATH",
                         help="write 'host:port' here once bound (how a fleet "
                              "supervisor learns a --port 0 shard's address)")

    fleet_p = sub.add_parser(
        "fleet", help="sharded planning fleet: consistent-hash router in "
                      "front of N supervised serve shards")
    fleet_p.add_argument("--host", default="127.0.0.1")
    fleet_p.add_argument("--port", type=int, default=7350,
                         help="router TCP port (0 picks an ephemeral one; "
                              "default 7350)")
    fleet_p.add_argument("--shards", type=int, default=2, metavar="N",
                         help="backend serve shards (default 2)")
    fleet_p.add_argument("--shard-mode", choices=["process", "thread"],
                         default="process",
                         help="'process' runs each shard as its own repro "
                              "serve subprocess (true CPU scale-out, the "
                              "default); 'thread' embeds them in-process "
                              "(cheap, tests/smoke)")
    fleet_p.add_argument("--workers", type=int, default=1, metavar="N",
                         help="planner workers per shard")
    fleet_p.add_argument("--executor", choices=["process", "thread"],
                         default="thread",
                         help="worker pool kind inside each shard")
    fleet_p.add_argument("--queue-limit", type=int, default=64, metavar="N",
                         help="per-shard admission queue limit")
    fleet_p.add_argument("--deadline", type=float, default=60.0, metavar="SEC",
                         help="default per-request deadline (0 disables)")
    fleet_p.add_argument("--retries", type=int, default=2, metavar="N",
                         help="fail-over shards tried after the primary "
                              "before the client sees shard_unavailable")
    fleet_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared tier-3 artifact store root — one "
                              "directory for every shard, so a plan computed "
                              "anywhere is warm everywhere")

    cache_p = sub.add_parser(
        "cache", help="inspect and maintain an on-disk plan-artifact store")
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)

    def _cache_sub(name: str, help_: str) -> argparse.ArgumentParser:
        p = cache_sub.add_parser(name, help=help_)
        p.add_argument("--cache-dir", required=True, metavar="DIR",
                       help="store directory (as passed to plan/run/serve)")
        return p

    _cache_sub("stats", "entry counts, byte totals and session traffic")
    _cache_sub("verify", "integrity-scan every entry; quarantine corrupt ones")
    gc_p = _cache_sub("gc", "trim the store to size budgets, oldest-read first")
    gc_p.add_argument("--max-entries", type=int, default=None, metavar="N",
                      help="keep at most N entries")
    gc_p.add_argument("--max-bytes", type=int, default=None, metavar="BYTES",
                      help="keep at most BYTES of entry data")
    _cache_sub("clear", "delete every entry (and quarantined file)")

    check_p = sub.add_parser(
        "check", help="differential verification harness (fuzz / replay / selftest)")
    check_sub = check_p.add_subparsers(dest="check_command", required=True)

    fuzz_p = check_sub.add_parser(
        "fuzz", help="fuzz random scenarios through the differential suite")
    fuzz_p.add_argument("--seed", default="0", metavar="SEED",
                        help="determinism seed; any string is accepted "
                             "(non-integers, e.g. a commit hash, are mapped "
                             "through sha256)")
    fuzz_p.add_argument("--budget", type=int, default=50, metavar="N",
                        help="scenarios to run (default 50)")
    fuzz_p.add_argument("--out", default="check_reproducer.json", metavar="PATH",
                        help="where to write the shrunk reproducer on failure")
    fuzz_p.add_argument("--serve-every", type=int, default=5, metavar="N",
                        help="run the serve differential every N-th scenario "
                             "(0 disables)")
    fuzz_p.add_argument("--executor-every", type=int, default=25, metavar="N",
                        help="run the executor differential every N-th "
                             "scenario (0 disables)")
    fuzz_p.add_argument("--quiet", action="store_true",
                        help="suppress per-scenario progress lines")

    replay_p = check_sub.add_parser(
        "replay", help="re-run a reproducer file written by a failing fuzz")
    replay_p.add_argument("reproducer", metavar="PATH",
                          help="reproducer JSON (default fuzz output: "
                               "check_reproducer.json)")

    check_sub.add_parser(
        "selftest", help="plant known bugs and assert the harness catches them")

    sim_p = check_sub.add_parser(
        "sim", help="prove the event engine equivalent to the legacy slotted "
                    "loop and the failure-storm scenario deterministic")
    sim_p.add_argument("--seed", type=int, default=0,
                       help="scenario seed (default 0)")

    fleetcheck_p = check_sub.add_parser(
        "fleet", help="fleet differential: responses through the router are "
                      "payload-identical to single-node serve, including "
                      "across an injected mid-run shard kill")
    fleetcheck_p.add_argument("--seed", type=int, default=0,
                              help="scenario seed (default 0)")
    fleetcheck_p.add_argument("--shards", type=int, default=2, metavar="N",
                              help="fleet size for the comparison (default 2)")

    score_p = sub.add_parser(
        "score", help="run the scenario suite over every registered policy "
                      "and gate against the golden scorecard")
    score_p.add_argument("--suite", default="quick", metavar="NAME",
                         help="registered suite to run (default: quick)")
    score_p.add_argument("--policies", nargs="+", default=None, metavar="NAME",
                         help="subset of registered policies (default: all)")
    score_p.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="worker processes for the scenario/topology "
                              "fan-out (gated metrics are identical to "
                              "--jobs 1)")
    score_p.add_argument("--out", default="SCORECARD.json", metavar="PATH",
                         help="scorecard output path (default: SCORECARD.json)")
    score_p.add_argument("--baseline", default=None, metavar="PATH",
                         help="golden scorecard to gate against (default: "
                              "golden/SCORECARD.<suite>.json)")
    score_p.add_argument("--update-golden", action="store_true",
                         help="write the baseline instead of comparing "
                              "against it (bless the current behaviour)")
    score_p.add_argument("--markdown", default=None, metavar="PATH",
                         help="also write the scorecard as a markdown table")
    score_p.add_argument("--svg", default=None, metavar="PATH",
                         help="also write the scorecard as an SVG table")
    score_p.add_argument("--quiet", action="store_true",
                         help="suppress per-scenario progress lines")
    score_p.add_argument("--live", default=None, metavar="PATH",
                         help="stream NDJSON progress events here while "
                              "running (tail with 'repro watch --score PATH')")

    watch_p = sub.add_parser(
        "watch", help="live terminal dashboard over a serve/fleet 'watch' "
                      "metric subscription")
    watch_p.add_argument("--host", default="127.0.0.1")
    watch_p.add_argument("--port", type=int, default=7350,
                         help="serve or fleet-router port (default: the "
                              "fleet router's 7350)")
    watch_p.add_argument("--interval", type=float, default=1.0, metavar="SEC",
                         help="frame period requested from the server "
                              "(default 1.0)")
    watch_p.add_argument("--duration", type=float, default=0.0, metavar="SEC",
                         help="stop after this long (0 = until the stream "
                              "ends or Ctrl-C)")
    watch_p.add_argument("--frames", type=int, default=0, metavar="N",
                         help="stop after N frames (0 = unlimited)")
    watch_p.add_argument("--once", action="store_true",
                         help="render a single frame and exit "
                              "(same as --frames 1)")
    watch_p.add_argument("--plain", action="store_true",
                         help="append panels instead of redrawing in place "
                              "(no ANSI escapes; logs, pipes, CI)")
    watch_p.add_argument("--jsonl", default=None, metavar="PATH",
                         help="also append every received frame here as "
                              "NDJSON (replayable, machine-readable)")
    watch_p.add_argument("--svg", default=None, metavar="PATH",
                         help="also rewrite the panel here as SVG on every "
                              "frame (CI artifact / README screenshot)")
    watch_p.add_argument("--score", default=None, metavar="PATH",
                         help="tail a 'repro score --live PATH' progress "
                              "stream into the panel (with golden deltas)")
    return parser


def _cmd_list() -> int:
    width = max(len(k) for k in FIGURES)
    for fid in sorted(FIGURES):
        spec = FIGURES[fid]
        print(f"{fid.ljust(width)}  {spec.title}")
        print(f"{' ' * width}  paper: {spec.paper_claim}")
    return 0


def _cmd_run(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    _require_positive(args.jobs, "--jobs")
    spec = get_figure(args.figure)
    progress = None if args.quiet else log.info
    t0 = time.perf_counter()
    result = spec.run(n_topologies=args.reps, full=args.full, progress=progress,
                      obs=obs, jobs=args.jobs, cache_dir=args.cache_dir,
                      overrides=_dynamics_overrides(args))
    elapsed = time.perf_counter() - t0
    print()
    print(figure_report(spec, result, instrumentation=obs))
    log.info("(completed in %.1fs)", elapsed)
    if args.csv:
        path = sweep_to_csv(result, args.csv)
        log.info("series written to %s", path)
    return 0


def _cmd_demo(obs: Instrumentation | None) -> int:
    from repro.baselines.greedy import GreedyOnDemandPolicy
    from repro.core.bounds import empirical_ratio, lemma3_lower_bound
    from repro.core.mintotal import min_total_distance
    from repro.network.builder import build_paper_network
    from repro.sim.engine import simulate
    from repro.sim.policies import PlannedPolicy
    from repro.sim.workload import FixedWorkload

    log.info("Building one paper topology: n=100 sensors, q=5 chargers, "
             "1000m x 1000m, linear cycles in [1, 50] ...")
    net = build_paper_network(n=100, q=5, seed=2014)
    horizon = 1000.0
    workload = FixedWorkload.from_network(net)

    result = min_total_distance(net, horizon, obs=obs)
    print(f"MinTotalDistance: K={result.quantization.K}, "
          f"{len(result.plan)} schedulings, guarantee 2(K+2) = "
          f"{2 * (result.quantization.K + 2)}x")
    mtd = simulate(net, PlannedPolicy(result.plan), workload, horizon,
                   instrumentation=obs)
    greedy = simulate(net, GreedyOnDemandPolicy(), workload, horizon,
                      instrumentation=obs)
    lb = lemma3_lower_bound(net, horizon)
    print(f"MinTotalDistance service cost: {mtd.metrics.service_cost:,.0f} m "
          f"({mtd.metrics.summary()})")
    print(f"Greedy           service cost: {greedy.metrics.service_cost:,.0f} m "
          f"({greedy.metrics.summary()})")
    print(f"cost ratio MTD/Greedy: "
          f"{mtd.metrics.service_cost / greedy.metrics.service_cost:.3f} "
          f"(paper: 0.55-0.60 under the linear distribution)")
    print(f"Lemma-3 lower bound: {lb.bound:,.0f} m -> empirical approximation "
          f"ratio {empirical_ratio(mtd.metrics.service_cost, lb):.2f}")
    return 0


def _cmd_report(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    _require_positive(args.jobs, "--jobs")
    from pathlib import Path

    from repro.reporting.experiments_md import PAPER_PANELS, experiments_markdown

    ids = args.figures if args.figures else list(PAPER_PANELS)
    for fid in ids:
        get_figure(fid)  # validate before the long run
    progress = None if args.quiet else log.info
    text = experiments_markdown(ids, n_topologies=args.reps, full=args.full,
                                progress=progress, obs=obs, jobs=args.jobs)
    out = Path(args.out)
    out.write_text(text)
    log.info("report written to %s", out.resolve())
    return 0


def _cmd_plan(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    from repro.core.feasibility import check_feasibility
    from repro.core.mintotal import min_total_distance
    from repro.io import save_network, save_plan
    from repro.network.builder import build_paper_network
    from repro.network.cycles import LinearCycleDistribution, RandomCycleDistribution

    dist = (LinearCycleDistribution() if args.distribution == "linear"
            else RandomCycleDistribution())
    net = build_paper_network(n=args.n, q=args.q, distribution=dist,
                              seed=args.seed)
    store = None
    if args.cache_dir is not None:
        from repro.plan.store import PlanArtifactStore

        store = PlanArtifactStore(args.cache_dir)
    result = min_total_distance(net, args.horizon, refine=args.refine,
                                store=store, obs=obs)
    report = check_feasibility(result.plan, net.cycles)
    if not report.feasible:  # cannot happen by Lemma 2; belt and braces
        log.error("%s", report.summary())
        return 1
    net_path = save_network(net, args.network_out)
    plan_path = save_plan(result.plan, args.plan_out)
    cost = result.plan.total_cost(net.dist)
    print(f"topology : n={net.n} q={net.q} seed={args.seed} "
          f"({args.distribution} cycles) -> {net_path}")
    print(f"plan     : {len(result.plan)} schedulings over T={args.horizon:g}, "
          f"K={result.quantization.K}, service cost {cost:,.0f} m -> {plan_path}")
    print(f"guarantee: within 2(K+2) = {2 * (result.quantization.K + 2)}x of optimal; "
          f"{report.summary()}")
    return 0


def _cmd_simulate(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    from repro.io import load_network, load_plan
    from repro.reporting.timeline import run_digest
    from repro.sim.engine import simulate as run_sim
    from repro.sim.policies import PlannedPolicy
    from repro.sim.workload import FixedWorkload

    net = load_network(args.network)
    plan = load_plan(args.plan)
    plan.validate_for(net)  # catch mismatched files before simulating
    dyn = _dynamics_overrides(args)
    sources = ()
    if dyn:
        from repro.sim.sources import ScenarioDynamics

        dynamics = ScenarioDynamics(
            failure_rate=dyn.get("failure_rate", 0.0),
            failure_mttr=dyn.get("failure_mttr", 0.0),
            churn_rate=dyn.get("churn_rate", 0.0),
            churn_downtime=dyn.get("churn_downtime", 0.0),
            request_rate=dyn.get("request_rate", 0.0),
            seed=args.dynamics_seed)
        sources = dynamics.build_sources()
    out = run_sim(net, PlannedPolicy(plan), FixedWorkload.from_network(net),
                  plan.horizon, instrumentation=obs, sources=sources,
                  max_log_events=args.event_log_limit,
                  event_spill=args.event_spill)
    print(run_digest(out.metrics, plan.horizon))
    if args.speed is not None:
        from repro.analysis.timescale import validate_timescales

        report = validate_timescales(plan, net.dist, net.cycles,
                                     speed=args.speed)
        print(report.summary())
    return 0 if out.metrics.perpetual else 1


def _coerce_seed(raw: str) -> int:
    """Accept any string as a fuzz seed.

    Integers pass through; anything else (a git commit hash in CI, a branch
    name) is mapped through sha256 so the same string always fuzzes the
    same scenarios.
    """
    import hashlib

    try:
        return int(raw, 0)
    except ValueError:
        digest = hashlib.sha256(raw.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")


def _cmd_check(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    from repro.check import fuzz, replay, run_selftest

    if args.check_command == "fuzz":
        _require_positive(args.budget, "--budget")
        seed = _coerce_seed(args.seed)
        if str(seed) != args.seed:
            log.info("seed %r -> %d", args.seed, seed)
        progress = None if args.quiet else print
        report = fuzz(seed, args.budget, out=args.out,
                      serve_every=args.serve_every,
                      executor_every=args.executor_every,
                      obs=obs, progress=progress)
        print(report.summary())
        return 0 if report.ok else 1
    if args.check_command == "replay":
        failures = replay(args.reproducer, obs=obs)
        if failures:
            print(f"replay: {args.reproducer} still fails:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print(f"replay: {args.reproducer} no longer fails")
        return 0
    if args.check_command == "sim":
        from repro.check.simcheck import run_sim_check

        problems = run_sim_check(seed=args.seed, obs=obs)
        if problems:
            print(f"sim check (seed {args.seed}): FAILED:")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"sim check (seed {args.seed}): engine equivalence and "
              f"failure-storm determinism hold")
        return 0
    if args.check_command == "fleet":
        from repro.check.fleetcheck import run_fleet_check

        _require_positive(args.shards, "--shards")
        problems = run_fleet_check(seed=args.seed, shards=args.shards, obs=obs)
        if problems:
            print(f"fleet check (seed {args.seed}): FAILED:")
            for p in problems:
                print(f"  - {p}")
            return 1
        print(f"fleet check (seed {args.seed}): fleet responses identical to "
              f"single-node across {args.shards} shards, fail-over invisible")
        return 0
    # selftest
    problems = run_selftest(obs=obs)
    if problems:
        print("selftest: the harness has gone blind:")
        for p in problems:
            print(f"  - {p}")
        return 1
    print("selftest: all planted mutations caught")
    return 0


def _cmd_score(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    _require_positive(args.jobs, "--jobs")
    from pathlib import Path

    from repro.reporting.scorecard import save_scorecard_svg, scorecard_markdown
    from repro.scenarios import (
        METRICS,
        Scorecard,
        compare_scorecards,
        default_baseline_path,
        score_suite,
    )

    progress = None if args.quiet else log.info
    t0 = time.perf_counter()
    card = score_suite(args.suite,
                       tuple(args.policies) if args.policies else None,
                       jobs=args.jobs, obs=obs, progress=progress,
                       live=args.live)
    elapsed = time.perf_counter() - t0
    out = card.save(args.out)
    log.info("scored %d cells across %d scenarios in %.1fs -> %s",
             card.n_cells, len(card.scenarios), elapsed, out)

    columns = [(m.key, m.label, m.fmt) for m in METRICS]
    if args.markdown:
        text = scorecard_markdown(card.scenarios, columns,
                                  title=f"Scorecard — suite {card.suite}")
        path = Path(args.markdown)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        log.info("markdown scorecard written to %s", path.resolve())
    if args.svg:
        path = save_scorecard_svg(card.scenarios, columns, args.svg,
                                  title=f"Scorecard — suite {card.suite}")
        log.info("SVG scorecard written to %s", path)

    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path(card.suite))
    if args.update_golden:
        written = card.save(baseline_path)
        print(f"golden scorecard updated: {written}")
        return 0
    if not baseline_path.exists():
        print(f"score: no golden scorecard at {baseline_path}; run "
              f"'repro score --suite {card.suite} --update-golden' to "
              f"create one (not gating this run)")
        return 0
    baseline = Scorecard.load(baseline_path)
    regressions, improvements = compare_scorecards(card, baseline)
    for note in improvements:
        print(f"improved: {note}")
    if regressions:
        print(f"score: {len(regressions)} regression(s) vs {baseline_path}:")
        for reg in regressions:
            print(f"  - {reg.describe()}")
        return 1
    print(f"score: {card.n_cells} cells within tolerance of {baseline_path}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.errors import ServeError
    from repro.reporting.dashboard import (
        DashboardState,
        ScoreTail,
        render_dashboard,
        save_dashboard_svg,
    )
    from repro.serve.watch import WatchClient

    if args.interval <= 0:
        raise ConfigError(f"--interval must be > 0, got {args.interval}")
    n_frames = 1 if args.once else args.frames
    state = DashboardState()
    tail = ScoreTail(args.score) if args.score else None
    try:
        client = WatchClient(args.host, args.port, interval=args.interval)
    except (OSError, ServeError) as exc:
        print(f"repro watch: cannot subscribe to {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return 1
    log.info("watching %s:%s (%s, every %.2fs)", args.host, args.port,
             client.info.get("role", "?"), client.info.get("interval", 0.0))
    jsonl = open(args.jsonl, "a", encoding="utf-8") if args.jsonl else None
    deadline = (time.monotonic() + args.duration) if args.duration > 0 else None
    try:
        for frame in client.frames():
            state.ingest(frame)
            if jsonl is not None:
                jsonl.write(_json_line(frame.to_dict()))
                jsonl.flush()
            if tail is not None:
                tail.poll()
            panel = render_dashboard(state, score=tail)
            if args.plain:
                print(panel, end="\n\n", flush=True)
            else:
                # Clear + home, then the panel: redraw in place.
                print(f"\x1b[2J\x1b[H{panel}", flush=True)
            if args.svg:
                save_dashboard_svg(state, args.svg, score=tail)
            if n_frames and state.n_frames >= n_frames:
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
    except KeyboardInterrupt:
        pass
    finally:
        client.close()
        if jsonl is not None:
            jsonl.close()
    if state.n_frames == 0:
        print("repro watch: stream ended before the first frame",
              file=sys.stderr)
        return 1
    log.info("watch closed: %d frames, %d gap(s)",
             state.n_frames, client.n_dropped)
    return 0


def _json_line(data: dict) -> str:
    import json

    return json.dumps(data, separators=(",", ":")) + "\n"


def _cmd_serve(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    _require_positive(args.workers, "--workers")
    _require_positive(args.queue_limit, "--queue-limit")
    from repro.serve.server import ServeConfig, serve

    config = ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        executor=args.executor, queue_limit=args.queue_limit,
        default_deadline=(args.deadline if args.deadline > 0 else None),
        drain_timeout=args.drain_timeout, cache_dir=args.cache_dir,
        kernel_backend=args.kernel_backend)
    return serve(config, obs=obs, port_file=args.port_file)


def _cmd_fleet(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    _require_positive(args.shards, "--shards")
    _require_positive(args.workers, "--workers")
    _require_positive(args.queue_limit, "--queue-limit")
    if args.retries < 0:
        raise ConfigError(f"--retries must be >= 0, got {args.retries}")
    from repro.fleet import FleetConfig, serve_fleet

    config = FleetConfig(
        host=args.host, port=args.port, shards=args.shards,
        shard_mode=args.shard_mode, workers=args.workers,
        executor=args.executor, queue_limit=args.queue_limit,
        default_deadline=(args.deadline if args.deadline > 0 else None),
        retries=args.retries, cache_dir=args.cache_dir,
        kernel_backend=args.kernel_backend)
    return serve_fleet(config, obs=obs)


def _cmd_cache(args: argparse.Namespace, obs: Instrumentation | None) -> int:
    from repro.plan.store import PlanArtifactStore

    store = PlanArtifactStore(args.cache_dir)
    if args.cache_command == "stats":
        flat: dict[str, object] = {}
        for key, value in store.stats().items():
            if isinstance(value, dict):  # session tallies, incl. lock waits
                for sub, v in value.items():
                    flat[f"{key}.{sub}"] = round(v, 6) if isinstance(v, float) else v
            else:
                flat[key] = value
        width = max(len(k) for k in flat)
        for key, value in flat.items():
            print(f"{key.ljust(width)}  {value}")
        return 0
    if args.cache_command == "verify":
        report = store.verify(obs=obs)
        print(f"verify: {report['checked']} checked, {report['ok']} ok, "
              f"{report['corrupt']} corrupt (quarantined)")
        return 0 if report["corrupt"] == 0 else 1
    if args.cache_command == "gc":
        report = store.gc(max_entries=args.max_entries,
                          max_bytes=args.max_bytes, obs=obs)
        print(f"gc: kept {report['kept']}, removed {report['removed']}, "
              f"purged {report['quarantine_purged']} quarantined")
        return 0
    # clear
    removed = store.clear(obs=obs)
    print(f"clear: removed {removed} entries from {args.cache_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    configure_logging(args.verbose)
    obs = Instrumentation() if (args.profile or args.trace) else None
    try:
        if args.kernel_backend is not None:
            from repro.kernels import set_default_backend

            # Validates eagerly: an unknown name dies here as a one-line
            # usage error instead of deep inside the first plan.
            set_default_backend(args.kernel_backend)
        if args.command == "list":
            return _cmd_list()
        if args.command == "run":
            return _cmd_run(args, obs)
        if args.command == "demo":
            return _cmd_demo(obs)
        if args.command == "report":
            return _cmd_report(args, obs)
        if args.command == "plan":
            return _cmd_plan(args, obs)
        if args.command == "simulate":
            return _cmd_simulate(args, obs)
        if args.command == "serve":
            return _cmd_serve(args, obs)
        if args.command == "fleet":
            return _cmd_fleet(args, obs)
        if args.command == "check":
            return _cmd_check(args, obs)
        if args.command == "score":
            return _cmd_score(args, obs)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "cache":
            return _cmd_cache(args, obs)
        return 2  # unreachable: argparse enforces the choices
    except (CheckError, ConfigError) as exc:
        # Invalid flag values (--jobs 0, --workers 0, ...) are usage
        # errors: one line on stderr, argparse's exit code, no traceback.
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if obs is not None:
            if args.profile:
                print()
                print(obs.stats_table())
            if args.trace:
                path = obs.write_trace(args.trace)
                log.info("trace written to %s", path)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
