"""Rectangular deployment areas.

The paper deploys sensors uniformly at random in a 1000 m x 1000 m square;
:class:`Rect` generalises that to any axis-aligned rectangle and provides the
uniform sampler and membership test the deployment generators use.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rng import make_rng

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]``.

    Parameters
    ----------
    x0, y0:
        Lower-left corner.
    x1, y1:
        Upper-right corner; must satisfy ``x1 > x0`` and ``y1 > y0``.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x1 > self.x0 and self.y1 > self.y0):
            raise GeometryError(
                f"degenerate rectangle [{self.x0}, {self.x1}] x [{self.y0}, {self.y1}]"
            )

    @classmethod
    def square(cls, side: float, *, origin: tuple[float, float] = (0.0, 0.0)) -> "Rect":
        """Square of the given ``side`` with lower-left corner at ``origin``.

        ``Rect.square(1000.0)`` is the paper's deployment area.
        """
        if side <= 0:
            raise GeometryError(f"square side must be positive, got {side}")
        ox, oy = origin
        return cls(ox, oy, ox + side, oy + side)

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre of the rectangle — where the paper places the base station."""
        return Point((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the rectangle's diagonal (an upper bound on any
        pairwise distance inside it)."""
        return float(np.hypot(self.width, self.height))

    def contains(self, p: Point, *, tol: float = 1e-9) -> bool:
        """Whether ``p`` lies inside the rectangle (closed, with tolerance)."""
        return (self.x0 - tol <= p.x <= self.x1 + tol
                and self.y0 - tol <= p.y <= self.y1 + tol)

    def sample(self, n: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """``(n, 2)`` array of points drawn uniformly at random in the rect."""
        if n < 0:
            raise GeometryError(f"sample size must be non-negative, got {n}")
        gen = make_rng(rng)
        xs = gen.uniform(self.x0, self.x1, size=n)
        ys = gen.uniform(self.y0, self.y1, size=n)
        return np.column_stack([xs, ys])

    def sample_points(self, n: int,
                      rng: int | np.random.Generator | None = None) -> list[Point]:
        """Like :meth:`sample` but returning :class:`Point` objects."""
        return [Point(float(x), float(y)) for x, y in self.sample(n, rng)]
