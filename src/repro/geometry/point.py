"""Immutable 2-D points and conversions to NumPy coordinate arrays."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError

__all__ = ["Point", "points_to_array"]


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane.

    Frozen so points can be dictionary keys and shared freely between the
    network model, schedules, and the simulator without defensive copies.

    Parameters
    ----------
    x, y:
        Cartesian coordinates in metres.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"point coordinates must be finite, got ({self.x}, {self.y})")

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Point halfway between ``self`` and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """``(x, y)`` tuple, convenient for NumPy construction."""
        return (self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y


def points_to_array(points: Iterable[Point] | Sequence[Point]) -> np.ndarray:
    """Stack points into an ``(n, 2)`` float64 array.

    The inverse direction (array row -> :class:`Point`) is a one-liner at the
    call sites; this helper exists because the packing direction is the hot
    one (every distance-matrix build goes through it).

    Raises
    ------
    GeometryError
        If the iterable is empty — a zero-point geometry is always a caller
        bug in this library.
    """
    arr = np.asarray([(p.x, p.y) for p in points], dtype=np.float64)
    if arr.size == 0:
        raise GeometryError("points_to_array: empty point collection")
    return arr
