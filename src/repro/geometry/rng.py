"""Deterministic random-number plumbing.

Every stochastic component in the library (deployments, cycle distributions,
workload variation) draws from a :class:`numpy.random.Generator` that is
threaded in explicitly — there is no hidden global state, so an experiment
seed fully determines every sampled byte. ``spawn`` derives independent
child streams the same way :mod:`numpy`'s ``SeedSequence`` machinery does,
which keeps repeated topologies statistically independent *and* reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned as-is, so callers can thread one
    stream through a pipeline), an integer seed, or ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Used by the experiment runner to give each of the ``n_topologies``
    repetitions its own stream: the streams never collide, and re-running the
    same experiment seed reproduces every repetition bit-for-bit regardless
    of execution order.
    """
    if n < 0:
        raise ValueError(f"spawn: n must be non-negative, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
