"""Planar geometry substrate: points, seeded RNG, distance matrices.

Every instance the paper's algorithms operate on is a finite set of points in
a two-dimensional deployment area under the Euclidean metric. This package
provides the small, fully vectorised toolkit the rest of the library builds
on:

* :class:`~repro.geometry.point.Point` — an immutable 2-D point.
* :func:`~repro.geometry.distance.distance_matrix` — dense pairwise
  Euclidean distances (NumPy broadcasting, no Python loops).
* :func:`~repro.geometry.rng.make_rng` / :func:`~repro.geometry.rng.spawn` —
  deterministic random-generator plumbing used by all stochastic components.
* :class:`~repro.geometry.bbox.Rect` — the rectangular deployment area.
"""

from repro.geometry.bbox import Rect
from repro.geometry.distance import (
    check_metric,
    distance_matrix,
    euclidean,
    pairwise_from_points,
    path_length,
)
from repro.geometry.point import Point, points_to_array
from repro.geometry.rng import make_rng, spawn

__all__ = [
    "Point",
    "Rect",
    "check_metric",
    "distance_matrix",
    "euclidean",
    "make_rng",
    "pairwise_from_points",
    "path_length",
    "points_to_array",
    "spawn",
]
