"""Dense Euclidean distance matrices and metric-space sanity checks.

Everything in the paper runs on complete metric graphs of at most a few
hundred nodes, so the natural representation is a dense ``(n, n)`` float64
matrix. All routines here are vectorised; the HPC guides' first rule —
replace Python-level loops with broadcasting — is the whole design.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point, points_to_array

__all__ = [
    "euclidean",
    "distance_matrix",
    "pairwise_from_points",
    "path_length",
    "check_metric",
]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_matrix(coords: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances of an ``(n, 2)`` coordinate array.

    Uses the ``(n, 1, 2) - (1, n, 2)`` broadcasting pattern: one temporary of
    ``n^2 * 2`` floats, no Python loops. For the instance sizes in the paper
    (n <= ~600) this is far below cache-pressure territory.

    Parameters
    ----------
    coords:
        ``(n, 2)`` array of point coordinates.

    Returns
    -------
    numpy.ndarray
        ``(n, n)`` symmetric matrix with an exactly-zero diagonal.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 2:
        raise GeometryError(f"distance_matrix expects (n, 2) coordinates, got shape {coords.shape}")
    if coords.shape[0] == 0:
        raise GeometryError("distance_matrix: empty coordinate array")
    diff = coords[:, np.newaxis, :] - coords[np.newaxis, :, :]
    d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(d, 0.0)
    return d


def pairwise_from_points(points: Iterable[Point] | Sequence[Point]) -> np.ndarray:
    """:func:`distance_matrix` over a collection of :class:`Point`."""
    return distance_matrix(points_to_array(points))


def path_length(dist: np.ndarray, order: Sequence[int], *, closed: bool = False) -> float:
    """Length of the walk visiting ``order`` under distance matrix ``dist``.

    Parameters
    ----------
    dist:
        ``(n, n)`` distance matrix.
    order:
        Node indices in visiting order. Fewer than two nodes gives length 0.
    closed:
        If true, add the edge from the last node back to the first (tour
        length rather than path length).
    """
    idx = np.asarray(order, dtype=np.intp)
    if idx.size < 2:
        return 0.0
    total = float(dist[idx[:-1], idx[1:]].sum())
    if closed:
        total += float(dist[idx[-1], idx[0]])
    return total


def check_metric(dist: np.ndarray, *, rtol: float = 1e-9, atol: float = 1e-9) -> None:
    """Validate that ``dist`` is a metric: symmetric, non-negative, zero
    diagonal, and triangle inequality (checked exhaustively, O(n^3) — test
    and debug use only, never on the hot path).

    Raises
    ------
    GeometryError
        On the first violated axiom, with a message naming it.
    """
    d = np.asarray(dist, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise GeometryError(f"check_metric: matrix must be square, got shape {d.shape}")
    if not np.allclose(d, d.T, rtol=rtol, atol=atol):
        raise GeometryError("check_metric: matrix is not symmetric")
    if np.any(d < -atol):
        raise GeometryError("check_metric: negative distances present")
    if not np.allclose(np.diag(d), 0.0, atol=atol):
        raise GeometryError("check_metric: diagonal is not zero")
    n = d.shape[0]
    # d[i, k] <= d[i, j] + d[j, k] for all i, j, k — vectorised per-j slab.
    slack = atol + rtol * np.abs(d)
    for j in range(n):
        via_j = d[:, j][:, np.newaxis] + d[j, :][np.newaxis, :]
        if np.any(d > via_j + slack):
            raise GeometryError(f"check_metric: triangle inequality violated via node {j}")
