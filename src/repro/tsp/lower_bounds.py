"""Lower bounds on optimal TSP tours.

Used to report *empirical* approximation ratios in the benches: the paper
proves Algorithm 2 is within 2x of optimal; these bounds let us measure how
far from optimal the delivered tours actually are without solving TSPs
exactly.

* :func:`mst_lower_bound` — weight of the MST over the node set; any tour
  minus one edge is a spanning tree, so ``MST <= OPT``.
* :func:`held_karp_lower_bound` — 1-tree bound with subgradient ascent on
  node potentials (a light Held–Karp); always >= the MST bound and typically
  within a few percent of OPT on Euclidean instances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.mst import prim_mst

__all__ = ["mst_lower_bound", "held_karp_lower_bound"]


def _subgraph(dist: np.ndarray, nodes: Sequence[int]) -> np.ndarray:
    idx = np.asarray(list(nodes), dtype=np.intp)
    if idx.size < 1:
        raise GraphError("lower bound: empty node set")
    return np.asarray(dist)[np.ix_(idx, idx)]


def mst_lower_bound(dist: np.ndarray, nodes: Sequence[int]) -> float:
    """MST weight over ``nodes`` — a lower bound on any closed tour.

    Returns 0 for singleton sets (the empty tour is optimal there).
    """
    sub = _subgraph(dist, nodes)
    k = sub.shape[0]
    if k == 1:
        return 0.0
    edges = prim_mst(sub)
    e = np.asarray(edges, dtype=np.intp)
    return float(sub[e[:, 0], e[:, 1]].sum())


def held_karp_lower_bound(dist: np.ndarray, nodes: Sequence[int],
                          *, iterations: int = 50) -> float:
    """1-tree lower bound sharpened by subgradient ascent.

    Maintains node potentials ``pi`` and iterates on the reduced costs
    ``d'[u, v] = d[u, v] + pi[u] + pi[v]``; each 1-tree weight minus
    ``2 * sum(pi)`` is a valid lower bound on the original OPT, and the
    ascent pushes node degrees towards 2. Returns the best bound seen.

    Degenerate sets (fewer than 3 nodes) fall back to the exact tour cost
    (0 or the back-and-forth distance).
    """
    sub = _subgraph(dist, nodes).astype(np.float64, copy=True)
    k = sub.shape[0]
    if k == 1:
        return 0.0
    if k == 2:
        return float(2.0 * sub[0, 1])

    pi = np.zeros(k)
    best = -np.inf
    # Step-size schedule: proportional to the current gap proxy, decaying.
    base_step = float(sub[np.isfinite(sub)].max()) / (2.0 * k)
    for it in range(iterations):
        mod = sub + pi[:, np.newaxis] + pi[np.newaxis, :]
        np.fill_diagonal(mod, 0.0)
        # Degrees of the minimum 1-tree under modified costs.
        inner_edges = prim_mst(mod[1:, 1:])
        deg = np.zeros(k, dtype=np.float64)
        w = 0.0
        for u, v in inner_edges:
            deg[u + 1] += 1
            deg[v + 1] += 1
            w += mod[u + 1, v + 1]
        row = mod[0, 1:]
        two = np.argsort(row)[:2]
        for t in two:
            deg[0] += 1
            deg[t + 1] += 1
            w += row[t]
        bound = w - 2.0 * pi.sum()
        best = max(best, float(bound))
        grad = deg - 2.0
        if not np.any(grad):
            break  # the 1-tree is a tour: bound is exactly OPT
        step = base_step * (1.0 - it / iterations)
        pi += step * grad
    return best
