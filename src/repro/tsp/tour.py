"""Closed tours anchored at a depot.

A :class:`Tour` is the atomic object of the paper's solutions: the closed
walk one mobile charger drives, starting and ending at its depot. Tours are
stored as the *open* visiting order beginning with the depot; the closing
edge back to the depot is implicit and included in :meth:`Tour.cost`.

The degenerate single-node tour (charger never leaves home) is legal and has
cost zero — the paper explicitly allows ``V(C_{j,l}) = {r_l}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import TourError
from repro.geometry.distance import path_length

__all__ = ["Tour"]


@dataclass(frozen=True)
class Tour:
    """An immutable closed tour.

    Parameters
    ----------
    depot:
        Graph index of the anchoring depot; must equal ``order[0]``.
    order:
        Visiting order (graph indices), starting with the depot, each node
        at most once. The return edge ``order[-1] -> order[0]`` is implicit.
    """

    depot: int
    order: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.order:
            raise TourError("Tour: empty order (must at least contain the depot)")
        if self.order[0] != self.depot:
            raise TourError(
                f"Tour: order must start at depot {self.depot}, starts at {self.order[0]}")
        if len(set(self.order)) != len(self.order):
            raise TourError(f"Tour: repeated node in order {self.order}")

    @classmethod
    def from_sequence(cls, depot: int, seq: Iterable[int]) -> "Tour":
        """Build from any iterable; a trailing repeat of the depot (as
        produced by Eulerian circuits) is stripped."""
        nodes = [int(v) for v in seq]
        if len(nodes) >= 2 and nodes[-1] == nodes[0]:
            nodes = nodes[:-1]
        return cls(depot=int(depot), order=tuple(nodes))

    @classmethod
    def empty(cls, depot: int) -> "Tour":
        """The stay-at-home tour ``{r_l}`` of cost zero."""
        return cls(depot=int(depot), order=(int(depot),))

    # ------------------------------------------------------------ properties
    @property
    def n_stops(self) -> int:
        """Number of non-depot nodes visited."""
        return len(self.order) - 1

    @property
    def is_empty(self) -> bool:
        """True for the stay-at-home tour."""
        return len(self.order) == 1

    def visited(self) -> frozenset[int]:
        """All nodes on the tour, including the depot."""
        return frozenset(self.order)

    def stops(self) -> tuple[int, ...]:
        """Non-depot nodes in visiting order."""
        return self.order[1:]

    # ----------------------------------------------------------------- costs
    def cost(self, dist: np.ndarray) -> float:
        """Closed-tour length under distance matrix ``dist``."""
        return path_length(np.asarray(dist), self.order, closed=True)

    def edges(self) -> list[tuple[int, int]]:
        """The tour's edges, including the closing one (empty if no stops)."""
        if self.is_empty:
            return []
        out = [(self.order[i], self.order[i + 1]) for i in range(len(self.order) - 1)]
        out.append((self.order[-1], self.order[0]))
        return out

    # ------------------------------------------------------------- transforms
    def with_order(self, order: Sequence[int]) -> "Tour":
        """Copy with a new visiting order (same depot; order must start
        with it). Used by local-search improvers."""
        return Tour(depot=self.depot, order=tuple(int(v) for v in order))

    def canonical(self) -> "Tour":
        """Direction-normalised copy: of the two traversal directions, pick
        the one whose second node has the smaller index. Costs are invariant
        under reversal (symmetric metric); tests use this to compare tours
        structurally."""
        if len(self.order) <= 2:
            return self
        fwd = self.order
        rev = (self.order[0],) + tuple(reversed(self.order[1:]))
        return self if fwd[1] <= rev[1] else Tour(depot=self.depot, order=rev)

    def validate_against(self, required: Iterable[int]) -> None:
        """Raise :class:`TourError` unless the tour covers all of
        ``required`` (besides the depot)."""
        missing = set(required) - set(self.order)
        if missing:
            raise TourError(f"Tour from depot {self.depot} misses nodes {sorted(missing)}")
