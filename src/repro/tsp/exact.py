"""Exact TSP for small instances (Held–Karp dynamic programming).

``O(2^k k^2)`` time and ``O(2^k k)`` memory — practical to ``k ≈ 18``.
Used to measure *true* approximation ratios of the heuristics on small
instances (the bounds in :mod:`repro.tsp.lower_bounds` only certify one
side), and by :mod:`repro.rooted.exact` for the exact q-rooted problem.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import TourError
from repro.tsp.tour import Tour

__all__ = ["held_karp_tsp", "EXACT_TSP_MAX_NODES"]

#: Hard cap on instance size; beyond this the DP table exceeds ~100 MB.
EXACT_TSP_MAX_NODES = 18


def held_karp_tsp(dist: np.ndarray, depot: int, nodes: Sequence[int]) -> Tour:
    """The optimal closed tour over ``{depot} ∪ nodes``.

    Parameters
    ----------
    dist:
        Full distance matrix.
    depot:
        Anchor node (tour starts/ends here).
    nodes:
        The other nodes to visit; at most ``EXACT_TSP_MAX_NODES - 1``.

    Returns
    -------
    Tour
        A provably minimum closed tour.

    Notes
    -----
    Standard Held–Karp: ``dp[S][j]`` is the cheapest path from the depot
    through exactly the subset ``S`` of stops, ending at stop ``j``; the
    answer closes back to the depot. The inner loop is vectorised over the
    end vertex, so the Python-level work is ``O(2^k k)`` dictionary-free
    array updates.
    """
    d = np.asarray(dist, dtype=np.float64)
    stops = [int(v) for v in nodes if int(v) != int(depot)]
    if len(set(stops)) != len(stops):
        raise TourError("held_karp_tsp: duplicate nodes")
    k = len(stops)
    if k + 1 > EXACT_TSP_MAX_NODES:
        raise TourError(
            f"held_karp_tsp: {k + 1} nodes exceeds the exact-solver cap "
            f"of {EXACT_TSP_MAX_NODES}")
    if k == 0:
        return Tour.empty(depot)
    if k == 1:
        return Tour(depot=depot, order=(depot, stops[0]))

    idx = np.asarray(stops, dtype=np.intp)
    from_depot = d[depot, idx]              # (k,)
    between = d[np.ix_(idx, idx)]           # (k, k)

    size = 1 << k
    dp = np.full((size, k), np.inf)
    parent = np.full((size, k), -1, dtype=np.int32)
    for j in range(k):
        dp[1 << j, j] = from_depot[j]

    for mask in range(1, size):
        row = dp[mask]
        finite = np.isfinite(row)
        if not finite.any():
            continue
        ends = np.nonzero(finite)[0]
        for j in ends:
            base = row[j]
            # Extend to every stop not in the mask, vectorised.
            rest = ~(mask >> np.arange(k) & 1).astype(bool)
            if not rest.any():
                continue
            targets = np.nonzero(rest)[0]
            cand = base + between[j, targets]
            new_masks = mask | (1 << targets)
            better = cand < dp[new_masks, targets]
            if better.any():
                upd = targets[better]
                dp[new_masks[better], upd] = cand[better]
                parent[new_masks[better], upd] = j

    full = size - 1
    closing = dp[full] + d[idx, depot]
    j = int(np.argmin(closing))
    if not np.isfinite(closing[j]):
        raise TourError("held_karp_tsp: internal error — no tour found")

    # Reconstruct.
    order_rev = []
    mask = full
    while j != -1:
        order_rev.append(stops[j])
        pj = int(parent[mask, j])
        mask ^= 1 << j
        j = pj
    order_rev.reverse()
    return Tour(depot=depot, order=(depot, *order_rev))
