"""TSP toolbox: tours, constructors, local search, lower bounds.

The paper reduces everything to rooted travelling-salesman subproblems, so a
small but complete single-TSP kit underpins the q-rooted layer:

* :class:`~repro.tsp.tour.Tour` — an immutable closed tour anchored at a
  depot, with cost, validation and canonicalisation.
* :mod:`~repro.tsp.construct` — tour constructors: MST-doubling (the 2-approx
  the paper uses), nearest neighbour, cheapest insertion.
* :mod:`~repro.tsp.improve` — 2-opt and Or-opt local search, used by the
  optional refinement layer (an ablation; the paper's guarantees do not
  depend on it).
* :mod:`~repro.tsp.lower_bounds` — MST and Held–Karp-style 1-tree lower
  bounds for empirical-approximation-ratio reporting.
"""

from repro.tsp.construct import (
    cheapest_insertion_tour,
    mst_doubling_tour,
    nearest_neighbor_tour,
)
from repro.tsp.exact import held_karp_tsp
from repro.tsp.improve import or_opt, two_opt
from repro.tsp.lower_bounds import held_karp_lower_bound, mst_lower_bound
from repro.tsp.tour import Tour

__all__ = [
    "Tour",
    "cheapest_insertion_tour",
    "held_karp_lower_bound",
    "held_karp_tsp",
    "mst_doubling_tour",
    "mst_lower_bound",
    "nearest_neighbor_tour",
    "or_opt",
    "two_opt",
]
