"""Tour constructors.

:func:`mst_doubling_tour` is the constructor the paper's Algorithm 2 applies
to each rooted tree — double the MST, take an Eulerian circuit, shortcut —
implemented as a single DFS preorder (provably the same result on trees).
The other constructors (nearest neighbour, cheapest insertion) exist for the
ablation benches and as independent cross-checks in tests; none of the
paper's guarantees rely on them.

All functions work on an arbitrary *node index list* plus the full distance
matrix: subproblems are index arrays, never copied submatrices, so the hot
path allocates ``O(k)`` per call, not ``O(k^2)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import TourError
from repro.graphs.traversal import adjacency_from_edges, preorder
from repro.kernels import KernelBackend, prim_mst
from repro.obs.instrument import Instrumentation
from repro.tsp.tour import Tour

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (graphs -> tsp)
    from repro.graphs.forest import RootedForest

__all__ = ["mst_doubling_tour", "nearest_neighbor_tour",
           "cheapest_insertion_tour", "tours_from_forest"]


def tours_from_forest(forest: "RootedForest") -> list[Tour]:
    """The double/Euler/shortcut step applied to every tree of ``forest``.

    This is the *tour construction* stage of the planner pipeline
    (:mod:`repro.plan.pipeline`): given a solved q-rooted forest, walk each
    tree in DFS preorder — provably identical to doubling the tree, taking
    an Eulerian circuit and short-cutting repeats. Exposed as a standalone
    stage so the plan-artifact cache can re-tour a memoized forest without
    re-running Algorithm 1, and so the adaptive heuristic can re-tour
    patched node sets.
    """
    tours: list[Tour] = []
    for l in range(forest.q):
        order = forest.preorder_of(l)
        tours.append(Tour(depot=forest.roots[l], order=tuple(order)))
    return tours


def _prepare(dist: np.ndarray, depot: int, nodes: Sequence[int]) -> tuple[np.ndarray, list[int]]:
    """Common argument validation; returns (dist, node list with depot first)."""
    d = np.asarray(dist)
    node_list = [int(v) for v in nodes]
    if depot in node_list:
        node_list.remove(int(depot))
    members = [int(depot)] + node_list
    if len(set(members)) != len(members):
        raise TourError(f"duplicate nodes in tour construction: {members}")
    for v in members:
        if not (0 <= v < d.shape[0]):
            raise TourError(f"node {v} out of range for distance matrix of size {d.shape[0]}")
    return d, members


def mst_doubling_tour(dist: np.ndarray, depot: int, nodes: Sequence[int],
                      *, backend: "str | KernelBackend | None" = None,
                      obs: Instrumentation | None = None) -> Tour:
    """2-approximate tour over ``{depot} ∪ nodes``: MST + preorder walk.

    This is exactly Algorithm 2's per-tree step. The MST is computed on the
    induced complete subgraph; walking it in DFS preorder and closing back to
    the depot costs at most twice the MST weight, which in turn lower-bounds
    the optimal tour. The MST goes through the :mod:`repro.kernels`
    registry; ``backend`` selects the implementation (``None`` resolves via
    the process default / ``REPRO_KERNEL_BACKEND``).
    """
    d, members = _prepare(dist, depot, nodes)
    if len(members) == 1:
        return Tour.empty(depot)
    sub = d[np.ix_(members, members)]
    edges = prim_mst(sub, root=0, backend=backend, obs=obs)
    adj = adjacency_from_edges(edges, nodes=range(len(members)))
    order_local = preorder(adj, 0)
    return Tour(depot=depot, order=tuple(members[i] for i in order_local))


def nearest_neighbor_tour(dist: np.ndarray, depot: int, nodes: Sequence[int]) -> Tour:
    """Greedy constructor: repeatedly hop to the closest unvisited node.

    ``O(k^2)`` with a vectorised argmin per step. No worst-case guarantee
    (its ratio is Θ(log k)) — benchmark/baseline use only.
    """
    d, members = _prepare(dist, depot, nodes)
    if len(members) == 1:
        return Tour.empty(depot)
    idx = np.asarray(members, dtype=np.intp)
    remaining = np.ones(len(members), dtype=bool)
    remaining[0] = False
    order = [0]
    current = 0
    for _ in range(len(members) - 1):
        row = d[idx[current], idx]
        masked = np.where(remaining, row, np.inf)
        nxt = int(np.argmin(masked))
        order.append(nxt)
        remaining[nxt] = False
        current = nxt
    return Tour(depot=depot, order=tuple(members[i] for i in order))


def cheapest_insertion_tour(dist: np.ndarray, depot: int, nodes: Sequence[int]) -> Tour:
    """Cheapest-insertion constructor (2-approximate on metrics).

    Start from the depot and the node nearest to it; repeatedly insert the
    unrouted node whose best insertion position increases the tour least.
    ``O(k^2)`` via incremental best-insertion bookkeeping per node.
    """
    d, members = _prepare(dist, depot, nodes)
    k = len(members)
    if k == 1:
        return Tour.empty(depot)
    idx = np.asarray(members, dtype=np.intp)
    sub = d[np.ix_(idx, idx)]

    first = int(np.argmin(np.where(np.arange(k) == 0, np.inf, sub[0])))
    route = [0, first]
    unrouted = set(range(k)) - {0, first}
    while unrouted:
        best_cost = np.inf
        best_node = -1
        best_pos = -1
        route_arr = np.asarray(route, dtype=np.intp)
        nxt_arr = np.roll(route_arr, -1)
        for v in unrouted:
            # Insertion of v between consecutive pair (a, b): cost
            # d(a,v) + d(v,b) - d(a,b); vectorised over all pairs at once.
            inc = sub[route_arr, v] + sub[v, nxt_arr] - sub[route_arr, nxt_arr]
            pos = int(np.argmin(inc))
            if inc[pos] < best_cost:
                best_cost = float(inc[pos])
                best_node = v
                best_pos = pos
        route.insert(best_pos + 1, best_node)
        unrouted.remove(best_node)
    # Rotate so the depot (local index 0) is first.
    zero_at = route.index(0)
    route = route[zero_at:] + route[:zero_at]
    return Tour(depot=depot, order=tuple(members[i] for i in route))
