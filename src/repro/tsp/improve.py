"""Local-search tour improvement: 2-opt and Or-opt.

These improvers never worsen a tour (strict-improvement acceptance), so
applying them after Algorithm 2 keeps every approximation guarantee while
typically shaving 10–25 % off MST-doubling tours on uniform instances — the
``abl-refine`` bench quantifies exactly this. The depot stays fixed at
position 0 throughout; only the visiting order of the stops changes.

Implementation notes (per the HPC guides: vectorise the bottleneck): the
2-opt inner scan evaluates all candidate ``j`` for a fixed ``i`` in one
NumPy expression instead of a double Python loop, turning the
``O(k^2)``-candidate sweep into ``O(k)`` vector operations.
"""

from __future__ import annotations

import numpy as np

from repro.obs.instrument import Instrumentation, ensure
from repro.tsp.tour import Tour

__all__ = ["two_opt", "or_opt"]

#: Minimum gain for a move to be accepted; guards against float-noise loops.
_EPS = 1e-10


def two_opt(dist: np.ndarray, tour: Tour, *, max_rounds: int = 50,
            obs: Instrumentation | None = None) -> Tour:
    """Best-improvement-per-anchor 2-opt with vectorised candidate evaluation.

    Repeatedly replaces edge pairs ``(p[i-1], p[i])``, ``(p[j], p[j+1])`` by
    ``(p[i-1], p[j])``, ``(p[i], p[j+1])`` (reversing the segment between)
    whenever that shortens the closed tour, until a full pass finds no
    improving move or ``max_rounds`` passes elapse. For each anchor ``i``
    the vectorised scan evaluates *every* candidate ``j`` and applies the
    single best move (``argmin`` over the whole row) — not the first
    improving one. Ties on the minimum delta break to the **lowest** ``j``
    (NumPy's ``argmin`` returns the first minimal index), which keeps
    refined tours bit-reproducible across platforms and BLAS builds.

    Parameters
    ----------
    dist:
        Full distance matrix.
    tour:
        Tour to improve; returned unchanged if it has fewer than 3 stops.
    max_rounds:
        Safety cap on improvement passes (each pass is O(k^2) candidate
        evaluations in O(k) NumPy calls).
    obs:
        Optional instrumentation context; accumulates the ``two_opt.passes``
        and ``two_opt.moves`` counters (one hook call per invocation — the
        hot candidate scan itself is never instrumented).
    """
    k = len(tour.order)
    if k < 4:  # depot + <3 stops: no non-trivial 2-opt move exists
        return tour
    d = np.asarray(dist)
    p = np.asarray(tour.order, dtype=np.intp)

    passes = 0
    moves = 0
    for _ in range(max_rounds):
        improved = False
        passes += 1
        # i ranges over segment starts (1..k-2), j over segment ends (i+1..k-1).
        for i in range(1, k - 1):
            a, b = p[i - 1], p[i]
            # Candidates j = i+1 .. k-1; successor of p[j] is p[(j+1) % k].
            js = np.arange(i + 1, k)
            cs = p[js]
            ds = p[np.where(js + 1 < k, js + 1, 0)]
            delta = (d[a, cs] + d[b, ds]) - (d[a, b] + d[cs, ds])
            best = int(np.argmin(delta))
            if delta[best] < -_EPS:
                j = int(js[best])
                p[i:j + 1] = p[i:j + 1][::-1]
                improved = True
                moves += 1
        if not improved:
            break
    o = ensure(obs)
    o.incr("two_opt.passes", passes)
    o.incr("two_opt.moves", moves)
    return tour.with_order(p.tolist())


def or_opt(dist: np.ndarray, tour: Tour, *, segment_lengths: tuple[int, ...] = (1, 2, 3),
           max_rounds: int = 20, obs: Instrumentation | None = None) -> Tour:
    """Or-opt: relocate short segments to better positions.

    For each segment length ``s`` in ``segment_lengths``, tries moving every
    consecutive run of ``s`` stops to every other position (both
    orientations), accepting strict improvements. Complements 2-opt, which
    cannot express single-node relocations cheaply.

    Tie-breaking is deterministic by construction: the best-move scan uses
    strict ``>`` acceptance while iterating insertion points ``j`` in
    ascending order with the un-flipped orientation first, so equal-gain
    candidates resolve to the **lowest** ``j``, un-flipped — refined tours
    are bit-reproducible across platforms, and exact kernel backends
    (:mod:`repro.kernels`) must reproduce this choice move for move.

    ``obs`` accumulates the ``or_opt.passes`` / ``or_opt.moves`` counters.
    """
    k = len(tour.order)
    if k < 3:
        return tour
    d = np.asarray(dist)
    p = list(tour.order)
    passes = 0
    moves = 0

    def closed_gain(seq: list[int], i: int, s: int, j: int, flip: bool) -> float:
        """Gain (positive = better) of moving seq[i:i+s] after position j."""
        n = len(seq)
        seg = seq[i:i + s]
        pre, post = seq[i - 1], seq[(i + s) % n]
        # Removal saving.
        save = d[pre, seg[0]] + d[seg[-1], post] - d[pre, post]
        # Insertion cost between j and its successor (indices in the list
        # *after* removal are handled by the caller choosing j outside the
        # removed span).
        a, b = seq[j], seq[(j + 1) % n]
        head, tail = (seg[-1], seg[0]) if flip else (seg[0], seg[-1])
        add = d[a, head] + d[tail, b] - d[a, b]
        return float(save - add)

    for _ in range(max_rounds):
        improved = False
        passes += 1
        n = len(p)
        for s in segment_lengths:
            if n - s < 2:
                continue
            i = 1
            while i + s <= n:
                best_gain, best_j, best_flip = _EPS, -1, False
                for j in range(0, n):
                    # j must not touch the removed span [i-1, i+s].
                    if i - 1 <= j <= i + s - 1:
                        continue
                    for flip in (False, True):
                        g = closed_gain(p, i, s, j, flip)
                        if g > best_gain:
                            best_gain, best_j, best_flip = g, j, flip
                if best_j >= 0:
                    seg = p[i:i + s]
                    if best_flip:
                        seg = seg[::-1]
                    rest = p[:i] + p[i + s:]
                    # Recompute insertion anchor position within `rest`.
                    anchor = p[best_j]
                    at = rest.index(anchor)
                    p = rest[:at + 1] + seg + rest[at + 1:]
                    improved = True
                    moves += 1
                    n = len(p)
                i += 1
        if not improved:
            break
    # Rotate depot back to front if a relocation moved it (it cannot — j
    # skips the span and i >= 1 — but canonicalise defensively).
    if p[0] != tour.depot:
        at = p.index(tour.depot)
        p = p[at:] + p[:at]
    o = ensure(obs)
    o.incr("or_opt.passes", passes)
    o.incr("or_opt.moves", moves)
    return tour.with_order(p)
