"""Fault injection for the serve stack.

Drives a real :class:`~repro.serve.server.PlanningServer` through its
failure paths with *actual* faults — raw corrupted frames on the socket,
workers that raise or hard-exit mid-request, clients that vanish — and
asserts the contract the protocol promises:

* every answered failure carries a code from the closed
  :data:`~repro.serve.protocol.ERROR_CODES` set (never a traceback dump),
* one connection's misbehaviour never affects another,
* a broken worker pool is rebuilt and the server keeps serving,
* graceful drain still completes with faults in flight.

:func:`run_fault_suite` is the programmatic entry used by the integration
tests; the raw-socket helpers are exported so tests can compose their own
corruptions.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.check.differential import CheckFailure
from repro.errors import ServeError
from repro.network.builder import build_paper_network
from repro.io.network_json import network_to_dict
from repro.obs.instrument import Instrumentation
from repro.serve.protocol import BAD_REQUEST, DEADLINE_EXCEEDED, ERROR_CODES, INTERNAL

__all__ = ["raw_exchange", "send_truncated", "run_fault_suite"]


def raw_exchange(address: tuple[str, int], payload: bytes, *,
                 timeout: float = 30.0) -> dict[str, Any] | None:
    """Send raw bytes on a fresh connection; decode one response line.

    Bypasses :class:`~repro.serve.client.ServeClient` entirely — the point
    is to put frames on the wire the client could never produce. Returns
    the decoded response dict, or ``None`` if the server closed without
    answering.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        try:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            # The server may answer and close while we are still writing
            # (e.g. an oversized line is rejected mid-stream); any response
            # it sent is still buffered for recv below.
            pass
        chunks = []
        while True:
            try:
                data = sock.recv(65536)
            except OSError:
                break
            if not data:
                break
            chunks.append(data)
            if b"\n" in data:
                break
    line = b"".join(chunks).split(b"\n", 1)[0]
    if not line.strip():
        return None
    return json.loads(line.decode("utf-8"))


def send_truncated(address: tuple[str, int], payload: bytes, *,
                   timeout: float = 30.0) -> None:
    """Open a connection, send a frame with no terminating newline, and
    disconnect mid-request — the 'client died while writing' fault."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.sendall(payload.rstrip(b"\n"))
        # Closing without the newline leaves the server's readline pending;
        # the close must surface as a clean EOF, not an error response.


def _expect_error(response: dict[str, Any] | None, code: str,
                  what: str, failures: list[CheckFailure]) -> None:
    if response is None:
        failures.append(CheckFailure(
            "faults", f"{what}: server closed the connection instead of "
                      f"answering a structured {code!r} error"))
        return
    if response.get("ok") is not False:
        failures.append(CheckFailure(
            "faults", f"{what}: expected an error response, got {response!r}"))
        return
    got = response.get("error", {}).get("code")
    if got not in ERROR_CODES:
        failures.append(CheckFailure(
            "faults", f"{what}: error code {got!r} is outside the closed set "
                      f"{sorted(ERROR_CODES)}"))
    elif got != code:
        failures.append(CheckFailure(
            "faults", f"{what}: expected code {code!r}, got {got!r}"))


def run_fault_suite(obs: Instrumentation | None = None) -> list[CheckFailure]:
    """Run the in-process (thread-executor) fault suite; returns failures.

    Process-pool faults (killed workers) need a real
    ``ProcessPoolExecutor`` and live in the integration tests — this suite
    covers every fault injectable against the cheap thread server.
    """
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig, ServerThread

    failures: list[CheckFailure] = []
    net_doc = network_to_dict(build_paper_network(n=8, q=2, seed=7, side=100.0))
    config = ServeConfig(executor="thread", workers=2, queue_limit=8,
                        default_deadline=60.0, drain_timeout=5.0,
                        max_line_bytes=64 * 1024)

    with ServerThread(config, obs=obs) as srv:
        assert srv.address is not None
        address = srv.address

        # ---- oversized frame: larger than max_line_bytes
        big = b'{"type": "health", "pad": "' + b"x" * (2 * config.max_line_bytes) + b'"}\n'
        _expect_error(raw_exchange(address, big), BAD_REQUEST,
                      "oversized line", failures)

        # ---- truncated frame then disconnect: server must survive silently
        send_truncated(address, b'{"type": "plan", "horizon": 10')

        # ---- non-JSON garbage
        _expect_error(raw_exchange(address, b"\x00\xff not json\n"),
                      BAD_REQUEST, "binary garbage", failures)

        # ---- unknown request type
        _expect_error(raw_exchange(address, b'{"type": "explode", "id": 1}\n'),
                      BAD_REQUEST, "unknown request type", failures)

        # ---- duplicate request id on one connection
        dup = (b'{"type": "health", "id": 7}\n'
               b'{"type": "health", "id": 7}\n')
        with socket.create_connection(address, timeout=30.0) as sock:
            f = sock.makefile("rwb")
            f.write(dup)
            f.flush()
            first = json.loads(f.readline())
            second = json.loads(f.readline())
        if first.get("ok") is not True:
            failures.append(CheckFailure(
                "faults", f"first use of an id must succeed, got {first!r}"))
        _expect_error(second, BAD_REQUEST, "duplicate request id", failures)

        # ---- worker exception: must map to 'internal', not kill the server
        with ServeClient(*address) as client:
            try:
                client.plan(net_doc, 20.0, fault="exception")
                failures.append(CheckFailure(
                    "faults", "injected worker exception produced an ok "
                              "response"))
            except ServeError as exc:
                if exc.code != INTERNAL:
                    failures.append(CheckFailure(
                        "faults", f"injected worker exception mapped to "
                                  f"{exc.code!r}, expected {INTERNAL!r}"))
            # ---- slow worker past the deadline
            try:
                client.plan(net_doc, 20.0, delay=5.0, deadline=0.2)
                failures.append(CheckFailure(
                    "faults", "request past its deadline returned ok"))
            except ServeError as exc:
                if exc.code != DEADLINE_EXCEEDED:
                    failures.append(CheckFailure(
                        "faults", f"deadline overrun mapped to {exc.code!r}, "
                                  f"expected {DEADLINE_EXCEEDED!r}"))

        # ---- after all that abuse the server still answers cleanly
        with ServeClient(*address) as client:
            health = client.health()
            if health.get("status") != "ok":
                failures.append(CheckFailure(
                    "faults", f"server unhealthy after fault sequence: "
                              f"{health!r}"))
            plan = client.plan(net_doc, 20.0)
            if "plan" not in plan:
                failures.append(CheckFailure(
                    "faults", "post-fault plan request returned no plan"))
    return failures
