"""Check scenarios: small random instances as explicit documents.

A :class:`Scenario` is one complete verification input — a network document
(the :func:`~repro.io.network_json.network_to_dict` form), a horizon and
the planner knobs. The fuzzer stores the *instance data* rather than the
generator seed on purpose: shrinking transforms the instance (drop a
sensor, round a coordinate, compress the cycle spread), and those edits
have no seed-space representation. Keeping the document explicit also
makes every reproducer file self-contained — replaying needs nothing but
the JSON.

Generated instances stay deliberately tiny (≤ ~10 sensors): the exact
q-rooted TSP oracle is exponential, and small instances shrink to readable
reproducers. Coverage comes from *many* scenarios, not big ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckError
from repro.geometry.bbox import Rect
from repro.geometry.point import Point
from repro.io.files import load_json, save_json
from repro.io.network_json import network_from_dict, network_to_dict
from repro.network.builder import NetworkBuilder
from repro.network.model import SensorNetwork

__all__ = ["Scenario", "random_scenario", "SCENARIO_KIND"]

#: Envelope kind of a serialised scenario (see :mod:`repro.io.files`).
SCENARIO_KIND = "check-scenario"


@dataclass(frozen=True)
class Scenario:
    """One verification instance.

    Parameters
    ----------
    name:
        Human-readable label (``fuzz-<seed>-<iteration>``, or a test name).
    network_doc:
        The :func:`~repro.io.network_json.network_to_dict` document. Treated
        as immutable — transforms build a new dict.
    horizon:
        Monitoring period ``T`` for planning and simulation.
    refine:
        Whether the planner's 2-opt post-pass is on.
    base:
        Geometric base of the cycle quantisation.
    """

    name: str
    network_doc: dict[str, Any]
    horizon: float
    refine: bool = False
    base: int = 2

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise CheckError(f"scenario {self.name!r}: horizon must be positive, "
                             f"got {self.horizon}")

    # ------------------------------------------------------------- accessors
    @property
    def n_sensors(self) -> int:
        return len(self.network_doc["sensors"])

    @property
    def n_depots(self) -> int:
        return len(self.network_doc["depots"])

    @property
    def cycles(self) -> np.ndarray:
        return np.asarray([s["cycle"] for s in self.network_doc["sensors"]],
                          dtype=np.float64)

    def build_network(self) -> SensorNetwork:
        """Materialise the network (validates the document)."""
        return network_from_dict(self.network_doc)

    def describe(self) -> str:
        tau = self.cycles
        return (f"{self.name}: n={self.n_sensors} q={self.n_depots} "
                f"tau=[{tau.min():g},{tau.max():g}] T={self.horizon:g} "
                f"refine={self.refine} base={self.base}")

    # ----------------------------------------------------------- persistence
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "network": self.network_doc,
            "horizon": self.horizon,
            "refine": self.refine,
            "base": self.base,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        try:
            return cls(name=str(data["name"]), network_doc=dict(data["network"]),
                       horizon=float(data["horizon"]),
                       refine=bool(data.get("refine", False)),
                       base=int(data.get("base", 2)))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckError(f"malformed scenario document ({exc})") from exc

    def save(self, path: str | Path) -> Path:
        return save_json(path, SCENARIO_KIND, self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "Scenario":
        return cls.from_dict(load_json(path, SCENARIO_KIND))

    # ------------------------------------------------------------ transforms
    def with_doc(self, network_doc: dict[str, Any], suffix: str) -> "Scenario":
        """Copy with a new network document and a name suffix (shrinking)."""
        return replace(self, network_doc=network_doc,
                       name=f"{self.name}~{suffix}")

    def with_horizon(self, horizon: float, suffix: str) -> "Scenario":
        return replace(self, horizon=horizon, name=f"{self.name}~{suffix}")

    def __str__(self) -> str:
        return self.describe()

    def stable_digest(self) -> int:
        """Process-independent content hash (unlike ``hash(str)``, which is
        salted per interpreter). Seeds derived computations — e.g. the
        executor differential's experiment seed — so a replayed reproducer
        runs the identical work in a fresh process."""
        canonical = json.dumps(self.to_dict(), sort_keys=True).encode()
        return int.from_bytes(hashlib.sha256(canonical).digest()[:4], "big")

    def __hash__(self) -> int:
        return self.stable_digest()


def _random_cycles(rng: np.random.Generator, n: int, tau1: float) -> np.ndarray:
    """One cycle vector; styles chosen to exercise different quantisations.

    ``pow2`` lands every ratio exactly on a class boundary (the float-care
    edge in :mod:`repro.core.quantize`); ``uniform`` produces generic
    spreads; ``tight`` collapses to K = 0 (single-class degenerate block).
    """
    style = rng.choice(["pow2", "uniform", "tight"], p=[0.4, 0.4, 0.2])
    if style == "pow2":
        k = rng.integers(0, 4, size=n)
        return tau1 * np.power(2.0, k)
    if style == "uniform":
        spread = float(rng.uniform(1.5, 12.0))
        return rng.uniform(tau1, tau1 * spread, size=n)
    return np.full(n, tau1, dtype=np.float64)


def random_scenario(rng: np.random.Generator, name: str) -> Scenario:
    """One random small instance, fully determined by ``rng``'s state.

    Topology, cycle spread, horizon and planner knobs are all drawn here;
    the caller owns determinism by seeding the generator (the fuzzer uses
    ``default_rng([seed, iteration])``).
    """
    n = int(rng.integers(3, 11))
    q = int(rng.integers(1, 4))
    side = float(rng.choice([10.0, 100.0, 1000.0]))
    area = Rect.square(side)

    sensors = [Point(float(x), float(y))
               for x, y in rng.uniform(0.0, side, size=(n, 2))]
    depots = [Point(float(x), float(y))
              for x, y in rng.uniform(0.0, side, size=(q, 2))]
    tau1 = float(rng.uniform(0.5, 4.0))
    cycles = _random_cycles(rng, n, tau1)

    net = (NetworkBuilder()
           .with_area(area)
           .with_sensors_at(sensors)
           .with_base_station_at_center()
           .with_depots_at(depots)
           .with_cycles(cycles)
           .build())

    # Horizon comfortably past the longest cycle so every quantisation
    # level sees at least one full Lemma-3 window (>= 2x the block cycle,
    # which the bound differential requires) and the plan repeats blocks.
    horizon = float(cycles.max() * rng.uniform(2.5, 6.0))
    refine = bool(rng.random() < 0.25)
    base = 2 if rng.random() < 0.8 else 3
    return Scenario(name=name, network_doc=network_to_dict(net),
                    horizon=horizon, refine=refine, base=base)
