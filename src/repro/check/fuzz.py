"""The deterministic scenario fuzzer (``repro check fuzz``).

Budgeted loop: iteration ``i`` seeds ``default_rng([seed, i])``, draws one
:func:`~repro.check.scenario.random_scenario`, and runs the differential +
invariant suite on it. The expensive cross-process checks (``serve``,
``executor``) run on a cadence instead of every iteration, so a
``--budget 50`` run stays interactive while still covering them several
times.

On the first failing scenario the fuzzer *shrinks*: it greedily applies
reducing transformations — drop a sensor, drop a depot, round coordinates,
compress the cycle spread (lower ``K``), shorten the horizon, turn off
refine — keeping each edit only if the failure survives, until no edit
reproduces it. The minimal scenario, the failures and the provenance are
written as one replayable JSON reproducer
(:func:`replay` / ``repro check replay`` runs it back).

Everything is deterministic in ``(seed, budget)``: no wall clock, no
global RNG, no ordering dependence — the property CI leans on when it
fuzzes with the commit hash as the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterator

import numpy as np

from repro.check.differential import ALL_CHECKS, CheckFailure, ScenarioChecker
from repro.check.scenario import Scenario, random_scenario
from repro.errors import CheckError
from repro.io.files import load_json, save_json
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger

__all__ = ["FuzzReport", "fuzz", "shrink", "replay", "REPRODUCER_KIND"]

log = get_logger(__name__)

#: Envelope kind of a reproducer file.
REPRODUCER_KIND = "check-reproducer"

#: Hard cap on accepted shrink steps (each step re-runs the failing checks).
_MAX_SHRINK_STEPS = 64


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzz run.

    Parameters
    ----------
    seed, budget:
        The run's determinism inputs.
    scenarios_run:
        Iterations completed (== ``budget`` on a clean run; the failing
        iteration's 1-based index otherwise).
    failures:
        The failing scenario's check failures (empty = clean run).
    scenario:
        The *shrunk* failing scenario, or ``None``.
    reproducer_path:
        Where the reproducer JSON was written, or ``None``.
    """

    seed: int
    budget: int
    scenarios_run: int
    failures: tuple[CheckFailure, ...] = ()
    scenario: Scenario | None = None
    reproducer_path: Path | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.ok:
            return (f"fuzz: {self.scenarios_run} scenario(s) clean "
                    f"(seed {self.seed})")
        lines = [f"fuzz: FAILED at scenario {self.scenarios_run}/{self.budget} "
                 f"(seed {self.seed})"]
        if self.scenario is not None:
            lines.append(f"  shrunk to: {self.scenario.describe()}")
        lines += [f"  - {f}" for f in self.failures]
        if self.reproducer_path is not None:
            lines.append(f"  reproducer: {self.reproducer_path}")
        return "\n".join(lines)


def _shrink_candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Reducing edits, most aggressive first.

    Each candidate is strictly 'smaller' along some axis (fewer sensors,
    fewer depots, rounder numbers, fewer quantisation classes, shorter
    horizon, fewer knobs), so greedy acceptance terminates.
    """
    doc = scenario.network_doc

    # Drop one sensor (keep at least one).
    if len(doc["sensors"]) > 1:
        for i in range(len(doc["sensors"])):
            smaller = dict(doc)
            smaller["sensors"] = doc["sensors"][:i] + doc["sensors"][i + 1:]
            yield scenario.with_doc(smaller, f"drop-sensor{i}")

    # Drop one depot (keep at least one).
    if len(doc["depots"]) > 1:
        for i in range(len(doc["depots"])):
            smaller = dict(doc)
            smaller["depots"] = doc["depots"][:i] + doc["depots"][i + 1:]
            yield scenario.with_doc(smaller, f"drop-depot{i}")

    # Compress the cycle spread: clamp every cycle to the minimum
    # (collapses the quantisation to K = 0), then to half the spread.
    cycles = scenario.cycles
    tau1 = float(cycles.min())
    for cap, tag in ((tau1, "flat-cycles"),
                     (float(np.sqrt(tau1 * cycles.max())), "half-spread")):
        if cycles.max() > cap * (1 + 1e-12):
            smaller = dict(doc)
            smaller["sensors"] = [
                dict(s, cycle=min(float(s["cycle"]), cap))
                for s in doc["sensors"]]
            yield scenario.with_doc(smaller, tag)

    # Round every coordinate to integers (readable reproducers).
    def rounded(v: float) -> float:
        return float(round(v))

    r = dict(doc)
    r["sensors"] = [dict(s, x=rounded(s["x"]), y=rounded(s["y"]))
                    for s in doc["sensors"]]
    r["depots"] = [[rounded(x), rounded(y)] for x, y in doc["depots"]]
    r["base_station"] = [rounded(v) for v in doc["base_station"]]
    if r != doc:
        yield scenario.with_doc(r, "round-coords")

    # Shorten the horizon (keep enough room for one block of schedulings).
    if scenario.horizon > 2.2 * cycles.max():
        yield scenario.with_horizon(scenario.horizon / 2.0, "half-horizon")

    # Turn off the optional knobs.
    if scenario.refine:
        yield Scenario(name=f"{scenario.name}~no-refine",
                       network_doc=doc, horizon=scenario.horizon,
                       refine=False, base=scenario.base)
    if scenario.base != 2:
        yield Scenario(name=f"{scenario.name}~base2",
                       network_doc=doc, horizon=scenario.horizon,
                       refine=scenario.refine, base=2)


def shrink(scenario: Scenario, failing_checks: tuple[str, ...],
           checker: ScenarioChecker,
           *, max_steps: int = _MAX_SHRINK_STEPS,
           obs: Instrumentation | None = None) -> tuple[Scenario,
                                                        list[CheckFailure]]:
    """Greedily minimise a failing scenario.

    Re-runs only the checks that failed (cheaper, and it keeps the
    reproducer anchored to the original defect rather than drifting onto a
    different one). Returns the smallest scenario still failing and its
    failures.
    """
    o = ensure(obs)

    def still_fails(candidate: Scenario) -> list[CheckFailure]:
        try:
            return checker.check(candidate, checks=failing_checks)
        except CheckError:
            return []  # candidate became invalid: not a useful reduction

    current = scenario
    failures = still_fails(current)
    if not failures:
        # The failure did not replay on the unmodified scenario (flaky
        # environment, not instance): nothing to shrink.
        return current, failures

    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _shrink_candidates(current):
            found = still_fails(candidate)
            if found:
                current, failures = candidate, found
                steps += 1
                o.incr("check.shrink.steps")
                improved = True
                break
    return current, failures


def _write_reproducer(path: Path, scenario: Scenario,
                      failures: list[CheckFailure], *, seed: int,
                      iteration: int,
                      checks: tuple[str, ...]) -> Path:
    data: dict[str, Any] = {
        "scenario": scenario.to_dict(),
        "failures": [{"check": f.check, "message": f.message}
                     for f in failures],
        "provenance": {"seed": seed, "iteration": iteration,
                       "checks": list(checks)},
    }
    return save_json(path, REPRODUCER_KIND, data)


def _checks_for(iteration: int, *, serve_every: int,
                executor_every: int) -> tuple[str, ...]:
    checks = ["oracle", "engine", "cache", "store", "exact", "bound",
              "kernels", "patch"]
    if serve_every > 0 and iteration % serve_every == 0:
        checks.append("serve")
    if executor_every > 0 and iteration % executor_every == 0:
        checks.append("executor")
    return tuple(checks)


def fuzz(seed: int, budget: int, *,
         out: str | Path | None = None,
         serve_every: int = 5,
         executor_every: int = 25,
         obs: Instrumentation | None = None,
         progress: Callable[[str], None] | None = None) -> FuzzReport:
    """Run the fuzzer; see the module docstring.

    Parameters
    ----------
    seed, budget:
        Determinism inputs: iteration ``i`` is a pure function of
        ``(seed, i)``.
    out:
        Reproducer path for a failure (default ``check_reproducer.json``).
    serve_every, executor_every:
        Cadence of the expensive checks (``0`` disables one entirely).
    obs:
        Optional instrumentation (``check.*`` counters).
    progress:
        Optional per-iteration callback (the CLI's progress line).
    """
    if budget < 1:
        raise CheckError(f"fuzz: budget must be >= 1, got {budget}")
    out_path = Path(out) if out is not None else Path("check_reproducer.json")
    o = ensure(obs)

    with ScenarioChecker(obs=obs) as checker:
        for i in range(budget):
            rng = np.random.default_rng([seed, i])
            scenario = random_scenario(rng, f"fuzz-{seed}-{i}")
            checks = _checks_for(i, serve_every=serve_every,
                                 executor_every=executor_every)
            if progress is not None:
                progress(f"[{i + 1}/{budget}] {scenario.describe()} "
                         f"(checks: {', '.join(checks)})")
            failures = checker.check(scenario, checks=checks)
            if not failures:
                continue

            o.incr("check.fuzz.failed_scenarios")
            failing_checks = tuple(dict.fromkeys(f.check for f in failures))
            log.warning("fuzz: scenario %s failed %s; shrinking ...",
                        scenario.name, failing_checks)
            shrunk, final = shrink(scenario, failing_checks, checker, obs=obs)
            if not final:  # could not replay: report the original
                shrunk, final = scenario, failures
            path = _write_reproducer(out_path, shrunk, final, seed=seed,
                                     iteration=i, checks=failing_checks)
            return FuzzReport(seed=seed, budget=budget, scenarios_run=i + 1,
                              failures=tuple(final), scenario=shrunk,
                              reproducer_path=path)

    return FuzzReport(seed=seed, budget=budget, scenarios_run=budget)


def replay(path: str | Path, *,
           obs: Instrumentation | None = None) -> list[CheckFailure]:
    """Re-run a reproducer file; returns the failures it still produces.

    Runs the checks recorded in the reproducer's provenance (falling back
    to the full suite), so a fixed bug turns the replay green without
    editing the file.
    """
    data = load_json(path, REPRODUCER_KIND)
    try:
        scenario = Scenario.from_dict(data["scenario"])
        checks = tuple(data.get("provenance", {}).get("checks") or ALL_CHECKS)
    except (KeyError, TypeError) as exc:
        raise CheckError(f"malformed reproducer file {path} ({exc})") from exc
    unknown = set(checks) - set(ALL_CHECKS)
    if unknown:
        raise CheckError(f"reproducer names unknown checks {sorted(unknown)}")
    with ScenarioChecker(obs=obs) as checker:
        return checker.check(scenario, checks=checks)
