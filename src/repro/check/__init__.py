"""Differential verification & fault-injection harness.

The library now has several execution paths that must produce the *same*
answers: the staged planner pipeline (cold vs. cached), the serial vs.
parallel experiment executor, and the in-process planner vs. the
:mod:`repro.serve` wire protocol. This package machine-checks that
equivalence, plus the paper's own invariants, on randomized instances:

* :mod:`repro.check.scenario` — small random problem instances as explicit,
  serialisable documents (so failures replay and *shrink*).
* :mod:`repro.check.invariants` — a :class:`~repro.sim.engine.SimulationHooks`
  observer that shadow-integrates every run and verifies energy accounting,
  event monotonicity, full-charge semantics, tour/depot structure and
  service-cost consistency.
* :mod:`repro.check.differential` — the cross-path oracle suite (exact
  solver, cache, executor, serve).
* :mod:`repro.check.fuzz` — the deterministic scenario fuzzer behind
  ``repro check fuzz``, with greedy shrinking to a minimal reproducer.
* :mod:`repro.check.selftest` — plants known mutations and asserts the
  harness catches them (so the checker itself cannot silently rot).
* :mod:`repro.check.faults` — fault injection for the serve stack.
* :mod:`repro.check.legacy_engine` / :mod:`repro.check.simcheck` — the
  frozen pre-event-queue simulation loop and the differential that proves
  the event engine replays it bit for bit (``repro check sim``), plus the
  failure-storm determinism check.

Everything reports through ``check.*`` counters on an optional
:class:`~repro.obs.Instrumentation` context.
"""

from repro.check.differential import CheckFailure, ScenarioChecker, plans_equal
from repro.check.fleetcheck import canonical_response, run_fleet_check
from repro.check.fuzz import FuzzReport, fuzz, replay, shrink
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.scenario import Scenario, random_scenario
from repro.check.selftest import run_selftest
from repro.check.simcheck import (
    check_determinism,
    check_engine_equivalence,
    run_sim_check,
)

__all__ = [
    "Scenario",
    "random_scenario",
    "InvariantChecker",
    "InvariantViolation",
    "ScenarioChecker",
    "CheckFailure",
    "plans_equal",
    "FuzzReport",
    "fuzz",
    "replay",
    "shrink",
    "run_selftest",
    "run_fleet_check",
    "canonical_response",
    "run_sim_check",
    "check_engine_equivalence",
    "check_determinism",
]
