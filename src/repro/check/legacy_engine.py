"""The pre-event-queue slotted simulation loop, kept as a reference.

This is a faithful port of the engine's original hand-rolled loop — the
``min(next boundary, next dispatch, horizon)`` stepper that predated
:mod:`repro.sim.queue` — retained *only* so the differential harness can
prove the event-queue core replays every slotted scenario event-for-event
identically (``repro check sim`` and the ``engine`` check in
:mod:`repro.check.differential`). It supports exactly what the old engine
supported: static topology, always-available chargers, slot boundaries and
policy dispatches. Do not grow it; new behaviour belongs in
:mod:`repro.sim.engine`.

The one deliberate deviation from the seed code: coincidence tests use the
relative-or-absolute :func:`repro.sim.queue.time_tolerance` (the absolute
``1e-9`` was below one float64 ulp for ``t >= 1e7``), so the differential
isolates the control-flow change rather than the tolerance fix.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.schedule import ChargingScheduling
from repro.errors import SensorDeathError, SimulationError
from repro.network.model import SensorNetwork
from repro.sim.engine import SimulationResult
from repro.sim.events import ChargeEvent, DeathEvent, DispatchEvent
from repro.sim.metrics import Metrics
from repro.sim.policies import ChargingPolicy, SimulationView
from repro.sim.queue import time_tolerance
from repro.sim.state import EnergyState
from repro.sim.workload import Workload

__all__ = ["simulate_legacy"]


def _view(net: SensorNetwork, t: float, state: EnergyState,
          rates: np.ndarray) -> SimulationView:
    return SimulationView(time=t, energy=state.energy.copy(),
                          batteries=net.batteries,
                          observed_rates=rates.copy())


def _execute(net: SensorNetwork, sched: ChargingScheduling, t: float,
             state: EnergyState, metrics: Metrics) -> None:
    d = net.dist
    total = 0.0
    active = 0
    for l, tour in enumerate(sched.tours):
        c = tour.cost(d)
        total += c
        if not tour.is_empty:
            active += 1
        if l < metrics.per_charger.shape[0]:
            metrics.per_charger[l] += c
    sensors = sorted(sched.charged_sensors)
    for s in sensors:
        if s >= net.n:
            raise SimulationError(f"scheduling charges non-sensor node {s}")
        before = float(state.energy[s])
        metrics.charges.append(ChargeEvent(time=t, sensor=s, energy_before=before))
        metrics.energy_delivered += float(net.batteries[s]) - before
    state.charge_full(sensors)
    metrics.service_cost += total
    metrics.dispatches.append(DispatchEvent(
        time=t, cost=total, n_sensors=len(sensors), n_active_chargers=active))


def simulate_legacy(network: SensorNetwork, policy: ChargingPolicy,
                    workload: Workload, horizon: float, *,
                    strict: bool = False) -> SimulationResult:
    """Run the original slotted loop; same result type as the real engine."""
    if horizon <= 0 or not math.isfinite(horizon):
        raise SimulationError(f"horizon must be positive and finite, got {horizon}")
    net = network
    state = EnergyState(net.batteries)
    metrics = Metrics(q=net.q)
    policy.reset(net, horizon)

    slot_len = workload.slot_duration
    slot = 0
    rates = np.asarray(workload.rates_at(0), dtype=np.float64)
    if rates.shape != (net.n,):
        raise SimulationError(
            f"workload produced rates of shape {rates.shape}, expected ({net.n},)")

    policy.observe(_view(net, 0.0, state, rates))

    t = 0.0
    guard = 0
    max_iterations = 10_000_000
    while t < horizon - time_tolerance(horizon):
        guard += 1
        if guard > max_iterations:
            raise SimulationError("simulation exceeded iteration guard "
                                  "(policy likely returning non-advancing times)")
        tol = time_tolerance(t)
        t_boundary = (slot + 1) * slot_len if math.isfinite(slot_len) else math.inf
        t_policy_raw = policy.next_dispatch_time(t)
        t_policy = math.inf if t_policy_raw is None else float(t_policy_raw)
        if t_policy < t - tol:
            raise SimulationError(
                f"policy requested dispatch at {t_policy} < current time {t}")
        t_next = min(horizon, t_boundary, max(t_policy, t))

        deaths = state.drain(rates, t_next - t, t)
        for sensor, when in deaths:
            metrics.deaths.append(DeathEvent(time=when, sensor=sensor))
            if strict:
                raise SensorDeathError(
                    f"sensor {sensor} died at t={when:.6g}", sensor_id=sensor,
                    time=when)
        t = t_next
        if t >= horizon - time_tolerance(horizon):
            break
        tol = time_tolerance(t)

        if abs(t - t_boundary) <= tol:
            slot += 1
            rates = np.asarray(workload.rates_at(slot), dtype=np.float64)
            policy.observe(_view(net, t, state, rates))
            # The observation may have changed the next dispatch time; loop
            # around rather than acting on a stale t_policy.
            if not (abs(t - t_policy) <= tol):
                continue
            t_policy_raw = policy.next_dispatch_time(t)
            t_policy = math.inf if t_policy_raw is None else float(t_policy_raw)

        if abs(t - t_policy) <= tol:
            sched = policy.dispatch(_view(net, t, state, rates))
            if sched is not None:
                _execute(net, sched, t, state, metrics)

    return SimulationResult(metrics=metrics, final_energy=state.energy.copy(),
                            horizon=horizon)
