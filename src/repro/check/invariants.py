"""Runtime invariant checking for the simulation engine.

:class:`InvariantChecker` is a :class:`~repro.sim.engine.SimulationHooks`
observer that re-derives the engine's state transitions independently and
compares at every event. It maintains a *shadow* energy vector integrated
with the same closed-form arithmetic the engine uses, so any divergence —
a skipped drain, a mis-clamped death, a phantom charge — surfaces at the
exact event that introduced it.

Checked invariants:

* **monotone time** — intervals advance contiguously; dispatch and death
  times fall inside the interval that produced them.
* **energy accounting** — the engine's post-drain energies equal the
  shadow integral (clamped at zero), for every sensor, at every event.
* **death completeness** — a sensor whose shadow energy crosses below the
  death tolerance has a recorded death event, and no death is recorded
  for a sensor that did not cross.
* **full-charge semantics** — after a dispatch, every charged *online*
  sensor sits exactly at battery capacity; non-charged sensors are
  untouched.
* **tour structure** — each scheduling carries one tour per charger,
  anchored at that charger's depot, charging only real sensors.
* **fleet availability** — a charger reported broken down must run only
  stay-at-home tours until its repair event (the engine hands hooks the
  *effective* scheduling, so a non-empty tour on a downed charger is an
  engine bug).
* **membership** — offline (churned-out) sensors must not drain (their
  effective rate is zero) and must not be charged.
* **service cost** — the metrics' accumulated cost equals the sum of tour
  costs this checker measured, and matches
  :func:`repro.core.cost.service_cost` over the observed plan.

Violations are collected on :attr:`InvariantChecker.violations`; by
default the first one also raises :class:`~repro.errors.CheckError`, so a
strict run aborts at the violating event with the full context in hand.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import service_cost
from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.errors import CheckError, ScheduleError
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.sim.engine import SimulationHooks, SimulationResult

__all__ = ["InvariantViolation", "InvariantChecker"]

#: Matching absolute slack for shadow-vs-engine energy comparisons,
#: battery-relative. The shadow repeats the engine's own vectorised
#: arithmetic, so divergence beyond a few ulps is a real bug.
_ENERGY_REL_TOL = 1e-9

#: Death tolerance, battery-relative — mirrors ``repro.sim.state._REL_TOL``
#: (the knife-edge "charged exactly at zero" stays alive).
_DEATH_REL_TOL = 1e-6

#: Slack for time comparisons — mirrors the relative-or-absolute
#: :func:`repro.sim.queue.time_tolerance` (scaled by ``max(1, |t|)`` at
#: every use site).
_TIME_TOL = 1e-9

#: Relative slack for cost totals (sums of many tour lengths).
_COST_REL_TOL = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant.

    Parameters
    ----------
    invariant:
        Machine-readable name (``"energy"``, ``"full_charge"``, ...).
    time:
        Simulation time of the violating event.
    message:
        Human-readable description with the offending values.
    """

    invariant: str
    time: float
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant} @ t={self.time:.6g}] {self.message}"


class InvariantChecker(SimulationHooks):
    """Shadow-integrating invariant observer (see the module docstring).

    Parameters
    ----------
    network:
        The simulated network (for batteries, distances, depot layout).
    raise_on_violation:
        If true (default), the first violation raises
        :class:`~repro.errors.CheckError` at the offending event. If
        false, violations accumulate and the run continues — the fuzzer's
        mode, which wants *all* of them for the report.
    obs:
        Optional instrumentation; every violation bumps
        ``check.invariant.violations`` and each completed run bumps
        ``check.invariant.runs``.
    """

    def __init__(self, network: SensorNetwork, *,
                 raise_on_violation: bool = True,
                 obs: Instrumentation | None = None) -> None:
        self.network = network
        self.raise_on_violation = raise_on_violation
        self.violations: list[InvariantViolation] = []
        self._obs = ensure(obs)
        self._shadow: np.ndarray | None = None
        self._dead: np.ndarray | None = None
        self._t = 0.0
        self._horizon = 0.0
        # Deaths the shadow integral predicts for the interval just
        # advanced; the engine must report exactly these before the next
        # advance/dispatch. Maps sensor -> predicted crossing time.
        self._expected_deaths: dict[int, float] = {}
        self._reported_deaths: list[tuple[int, float]] = []
        self._schedulings: list[ChargingScheduling] = []
        self._expected_cost = 0.0
        # Dynamic-scenario mirrors, driven by on_fleet / on_churn.
        self._online = network.membership_mask()
        self._available = np.ones(network.q, dtype=bool)

    # -------------------------------------------------------------- plumbing
    def _fail(self, invariant: str, time: float, message: str) -> None:
        violation = InvariantViolation(invariant=invariant, time=time,
                                       message=message)
        self.violations.append(violation)
        self._obs.incr("check.invariant.violations")
        self._obs.incr(f"check.invariant.violations.{invariant}")
        if self.raise_on_violation:
            raise CheckError(str(violation), invariant=invariant)

    def _flush_expected_deaths(self, time: float) -> None:
        """Any death predicted by the last drain must have been reported."""
        if self._expected_deaths:
            missing = dict(self._expected_deaths)
            self._expected_deaths.clear()
            self._fail("death", time,
                       f"shadow energy of sensor(s) {sorted(missing)} crossed "
                       f"below zero but the engine recorded no death event")

    # ----------------------------------------------------------------- hooks
    def on_start(self, network: SensorNetwork, horizon: float,
                 energy: np.ndarray) -> None:
        self._shadow = self.network.batteries.astype(np.float64).copy()
        self._dead = np.zeros(self.network.n, dtype=bool)
        self._online = self.network.membership_mask()
        self._available = np.ones(self.network.q, dtype=bool)
        self._t = 0.0
        self._horizon = float(horizon)
        if not np.array_equal(energy, self._shadow):
            self._fail("energy", 0.0,
                       "initial energies differ from battery capacities")

    def on_advance(self, t_from: float, t_to: float, rates: np.ndarray,
                   energy: np.ndarray) -> None:
        assert self._shadow is not None and self._dead is not None
        self._flush_expected_deaths(t_from)
        tol_t = _TIME_TOL * max(1.0, abs(t_from))
        if abs(t_from - self._t) > tol_t:
            self._fail("time", t_from,
                       f"interval starts at {t_from!r} but the previous event "
                       f"ended at {self._t!r} (non-contiguous timeline)")
        if t_to < t_from - _TIME_TOL:
            self._fail("time", t_to,
                       f"interval runs backwards: [{t_from!r}, {t_to!r}]")

        duration = t_to - t_from
        r = np.asarray(rates, dtype=np.float64)
        if not np.all(self._online) and np.any(r[~self._online] != 0.0):
            bad = int(np.nonzero(~self._online & (r != 0.0))[0][0])
            self._fail("membership", t_from,
                       f"offline sensor {bad} drains at rate {float(r[bad])!r} "
                       f"(effective rates must zero churned-out sensors)")
        before = self._shadow.copy()
        # Mirror EnergyState.drain exactly: subtract, detect crossings of
        # not-currently-dead sensors past the death tolerance, clamp.
        self._shadow -= r * max(duration, 0.0)
        batteries = self.network.batteries
        crossing = ~self._dead & (self._shadow < -batteries * _DEATH_REL_TOL)
        for i in np.nonzero(crossing)[0]:
            self._expected_deaths[int(i)] = float(t_from + before[i] / r[i])
            self._dead[i] = True
        np.clip(self._shadow, 0.0, None, out=self._shadow)
        self._t = t_to

        slack = np.maximum(batteries * _ENERGY_REL_TOL, 1e-300)
        diff = np.abs(np.asarray(energy, dtype=np.float64) - self._shadow)
        if np.any(diff > slack):
            worst = int(np.argmax(diff - slack))
            self._fail("energy", t_to,
                       f"engine energy of sensor {worst} is "
                       f"{float(energy[worst])!r}, shadow integral says "
                       f"{float(self._shadow[worst])!r} "
                       f"(diff {float(diff[worst]):.3e})")

    def on_death(self, sensor: int, time: float) -> None:
        self._reported_deaths.append((int(sensor), float(time)))
        expected = self._expected_deaths.pop(int(sensor), None)
        if expected is None:
            self._fail("death", time,
                       f"engine reported sensor {sensor} dead at t={time!r} "
                       f"but its shadow energy never crossed zero there")
            return
        tol = _TIME_TOL * max(1.0, abs(expected))
        if abs(time - expected) > max(tol, 1e-6 * max(1.0, self._horizon)):
            self._fail("death", time,
                       f"sensor {sensor} death reported at t={time!r}, shadow "
                       f"crossing time is {expected!r}")

    def on_dispatch(self, time: float, scheduling: ChargingScheduling,
                    energy: np.ndarray) -> None:
        assert self._shadow is not None and self._dead is not None
        self._flush_expected_deaths(time)
        net = self.network
        tol_t = _TIME_TOL * max(1.0, abs(time))
        if abs(time - self._t) > tol_t:
            self._fail("time", time,
                       f"dispatch at t={time!r} but the last drain ended at "
                       f"t={self._t!r}")

        # ---- tour structure: one tour per charger, each on its own depot
        depots = [int(i) for i in net.depot_indices]
        tours = scheduling.tours
        if len(tours) != len(depots):
            self._fail("tours", time,
                       f"scheduling has {len(tours)} tours for {len(depots)} "
                       f"chargers")
        for l, tour in enumerate(tours):
            if l < len(depots) and tour.depot != depots[l]:
                self._fail("tours", time,
                           f"tour {l} anchors at node {tour.depot}, charger "
                           f"{l}'s depot is node {depots[l]}")
            if tour.order[0] != tour.depot:
                self._fail("tours", time,
                           f"tour {l} does not start at its depot")
            bad = [s for s in tour.stops() if not (0 <= s < net.n)]
            if bad:
                self._fail("tours", time,
                           f"tour {l} visits non-sensor node(s) {bad}")
            if l < len(self._available) and not self._available[l] \
                    and not tour.is_empty:
                self._fail("fleet", time,
                           f"charger {l} is broken down but runs a "
                           f"{tour.n_stops}-stop tour (must stay at home "
                           f"until repaired)")

        # ---- full-charge semantics (offline sensors are never charged)
        charged = sorted(s for s in scheduling.charged_sensors
                         if self._online[s])
        batteries = net.batteries
        e = np.asarray(energy, dtype=np.float64)
        for s in charged:
            if abs(e[s] - batteries[s]) > batteries[s] * _ENERGY_REL_TOL:
                self._fail("full_charge", time,
                           f"sensor {s} holds {float(e[s])!r} after being "
                           f"charged; battery capacity is {float(batteries[s])!r}")
        self._shadow[charged] = batteries[charged]
        self._dead[charged] = False
        slack = np.maximum(batteries * _ENERGY_REL_TOL, 1e-300)
        diff = np.abs(e - self._shadow)
        if np.any(diff > slack):
            worst = int(np.argmax(diff - slack))
            self._fail("full_charge", time,
                       f"dispatch changed un-charged sensor {worst}: engine "
                       f"says {float(e[worst])!r}, shadow says "
                       f"{float(self._shadow[worst])!r}")

        self._expected_cost += sum(t.cost(net.dist) for t in tours)
        self._schedulings.append(scheduling)

    def on_fleet(self, charger: int, time: float, available: bool) -> None:
        l = int(charger)
        if not 0 <= l < len(self._available):
            self._fail("fleet", time,
                       f"fleet event for charger {l}, fleet size is "
                       f"{len(self._available)}")
            return
        if bool(self._available[l]) == bool(available):
            self._fail("fleet", time,
                       f"charger {l} reported {'repaired' if available else 'down'} "
                       f"but it already was (duplicate fleet event)")
        self._available[l] = bool(available)

    def on_churn(self, sensor: int, time: float, online: bool) -> None:
        s = int(sensor)
        if not 0 <= s < self.network.n:
            self._fail("membership", time,
                       f"churn event for non-sensor {s} (n={self.network.n})")
            return
        if bool(self._online[s]) == bool(online):
            self._fail("membership", time,
                       f"sensor {s} reported {'rejoined' if online else 'left'} "
                       f"but it already had (duplicate churn event)")
        self._online[s] = bool(online)

    def on_finish(self, result: SimulationResult) -> None:
        self._flush_expected_deaths(self._horizon)
        self._obs.incr("check.invariant.runs")
        m = result.metrics

        cost_slack = _COST_REL_TOL * max(1.0, self._expected_cost)
        if abs(m.service_cost - self._expected_cost) > cost_slack:
            self._fail("cost", self._horizon,
                       f"metrics report service cost {m.service_cost!r}; the "
                       f"observed tours sum to {self._expected_cost!r}")

        # Cross-check against the cost module over the observed plan. Only
        # possible when the dispatch times form a legal SchedulePlan
        # (strictly increasing, within the horizon) — always true for the
        # planned policies this harness drives.
        if self._schedulings:
            try:
                plan = SchedulePlan(schedulings=tuple(self._schedulings),
                                    horizon=self._horizon)
            except ScheduleError:
                plan = None
            if plan is not None:
                via_module = service_cost(self.network.dist, plan)
                if abs(via_module - m.service_cost) > cost_slack:
                    self._fail(
                        "cost", self._horizon,
                        f"core.cost.service_cost computes {via_module!r} for "
                        f"the observed plan; metrics say {m.service_cost!r}")

        reported = {s for s, _ in self._reported_deaths}
        recorded = {d.sensor for d in m.deaths}
        if reported != recorded:
            self._fail("death", self._horizon,
                       f"death events seen via hooks {sorted(reported)} differ "
                       f"from the metrics' record {sorted(recorded)}")

    # --------------------------------------------------------------- reading
    @property
    def observed_plan_cost(self) -> float:
        """Sum of tour costs over every dispatched scheduling."""
        return self._expected_cost

    def summary(self) -> str:
        if not self.violations:
            return "invariants: all hold"
        lines = [f"invariants: {len(self.violations)} violation(s)"]
        lines += [f"  - {v}" for v in self.violations]
        return "\n".join(lines)
