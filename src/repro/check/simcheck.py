"""Engine-equivalence differential and the sim-determinism smoke.

Two machine checks behind ``repro check sim`` (and the CI smoke step):

* **Equivalence** — every slotted scenario class (fixed / resampled /
  storm workloads, offline-planned and online-greedy policies) must
  produce *identical* metrics and event sequences on the event-queue core
  (:mod:`repro.sim.engine`) and on the preserved legacy loop
  (:mod:`repro.check.legacy_engine`). Identical means exact float
  equality, event-for-event — the refactor is a proof obligation, not a
  tolerance negotiation.
* **Determinism** — a failure-storm scenario (charger breakdowns + sensor
  churn + charging requests on a storm workload) run twice from one seed
  must serialize to byte-identical event logs
  (:meth:`~repro.sim.metrics.Metrics.event_log_jsonl`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.check.legacy_engine import simulate_legacy
from repro.core.mintotal import min_total_distance
from repro.network.builder import build_paper_network
from repro.network.cycles import LinearCycleDistribution
from repro.obs.instrument import Instrumentation, ensure
from repro.sim.engine import SimulationResult, simulate
from repro.sim.metrics import Metrics
from repro.sim.policies import PlannedPolicy
from repro.sim.sources import ScenarioDynamics
from repro.sim.workload import FixedWorkload, ResampledWorkload, StormWorkload

__all__ = ["result_diffs", "check_engine_equivalence", "check_determinism",
           "run_sim_check", "FAILURE_STORM"]

#: The canonical failure-storm dynamics used by the determinism smoke:
#: frequent charger breakdowns, sensor churn and request arrivals, all on
#: top of a storm workload.
FAILURE_STORM = ScenarioDynamics(failure_rate=0.02, failure_mttr=8.0,
                                 churn_rate=0.05, churn_downtime=12.0,
                                 request_rate=0.1, seed=0)

#: Event-log names compared field-by-field between two runs.
_LOGS = ("dispatches", "charges", "deaths", "fleet", "churn", "requests")


def _metrics_diffs(a: Metrics, b: Metrics, label: str) -> list[str]:
    problems: list[str] = []
    if a.service_cost != b.service_cost:
        problems.append(f"{label}: service_cost {a.service_cost!r} != "
                        f"{b.service_cost!r}")
    if a.energy_delivered != b.energy_delivered:
        problems.append(f"{label}: energy_delivered {a.energy_delivered!r} != "
                        f"{b.energy_delivered!r}")
    if not np.array_equal(a.per_charger, b.per_charger):
        problems.append(f"{label}: per_charger {a.per_charger.tolist()} != "
                        f"{b.per_charger.tolist()}")
    for name in _LOGS:
        ea, eb = list(getattr(a, name)), list(getattr(b, name))
        if ea != eb:
            k = min(len(ea), len(eb))
            first = next((i for i in range(k) if ea[i] != eb[i]), k)
            problems.append(
                f"{label}: {name} logs diverge at event {first} "
                f"({ea[first] if first < len(ea) else '<absent>'} vs "
                f"{eb[first] if first < len(eb) else '<absent>'}; "
                f"lengths {len(ea)}/{len(eb)})")
    return problems


def result_diffs(a: SimulationResult, b: SimulationResult,
                 label: str = "run") -> list[str]:
    """Exact (bit-level) differences between two simulation results."""
    problems = _metrics_diffs(a.metrics, b.metrics, label)
    if not np.array_equal(a.final_energy, b.final_energy):
        worst = int(np.argmax(np.abs(a.final_energy - b.final_energy)))
        problems.append(
            f"{label}: final_energy differs (sensor {worst}: "
            f"{float(a.final_energy[worst])!r} vs "
            f"{float(b.final_energy[worst])!r})")
    return problems


@dataclass(frozen=True)
class _SlottedCase:
    name: str
    workload_kind: str  # "fixed" | "resampled" | "storm"
    policy_kind: str    # "planned" | "greedy"


_CASES = (
    _SlottedCase("fixed/planned", "fixed", "planned"),
    _SlottedCase("fixed/greedy", "fixed", "greedy"),
    _SlottedCase("resampled/planned", "resampled", "planned"),
    _SlottedCase("resampled/greedy", "resampled", "greedy"),
    _SlottedCase("storm/planned", "storm", "planned"),
    _SlottedCase("storm/greedy", "storm", "greedy"),
)


def _make_workload(kind: str, net, seed: int):
    if kind == "fixed":
        return FixedWorkload.from_network(net)
    if kind == "resampled":
        return ResampledWorkload(network=net,
                                 distribution=LinearCycleDistribution(),
                                 slot_duration=10.0, seed=seed)
    side = float(net.coordinates[: net.n, 0].max() - net.coordinates[: net.n, 0].min())
    cx = float(net.coordinates[: net.n, 0].mean())
    cy = float(net.coordinates[: net.n, 1].mean())
    storms = ((20.0, 40.0, cx, cy, max(side / 3.0, 1.0), 1.5),
              (60.0, 70.0, cx, cy, max(side / 4.0, 1.0), 2.0))
    return StormWorkload(network=net, storms=storms, slot_duration=5.0)


def _make_policy(kind: str, net, horizon: float):
    if kind == "planned":
        return PlannedPolicy(min_total_distance(net, horizon).plan)
    return GreedyOnDemandPolicy()


def check_engine_equivalence(seed: int = 0, *,
                             obs: Instrumentation | None = None) -> list[str]:
    """Prove the event-queue core replays every slotted scenario class
    identically to the legacy loop; returns human-readable differences."""
    o = ensure(obs)
    problems: list[str] = []
    net = build_paper_network(n=30, q=2, seed=seed)
    horizon = 100.0
    for case in _CASES:
        o.incr("check.sim.equivalence.cases")
        workload = _make_workload(case.workload_kind, net, seed)
        policy = _make_policy(case.policy_kind, net, horizon)
        reference = simulate_legacy(net, policy, workload, horizon)
        candidate = simulate(net, policy, workload, horizon)
        found = result_diffs(reference, candidate, label=case.name)
        for p in found:
            o.incr("check.sim.equivalence.fail")
        problems.extend(found)
    return problems


def check_determinism(seed: int = 0, *,
                      obs: Instrumentation | None = None) -> list[str]:
    """Run the canonical failure-storm scenario twice from one seed and
    assert byte-identical serialized event logs."""
    o = ensure(obs)
    net = build_paper_network(n=24, q=2, seed=seed)
    horizon = 150.0
    workload = _make_workload("storm", net, seed)
    dynamics = FAILURE_STORM.with_seed(seed)

    def run_once() -> SimulationResult:
        return simulate(net, GreedyOnDemandPolicy(), workload, horizon,
                        sources=dynamics.build_sources())

    a, b = run_once(), run_once()
    problems = result_diffs(a, b, label="failure-storm")
    if a.metrics.event_log_jsonl() != b.metrics.event_log_jsonl():
        problems.append("failure-storm: serialized event logs are not "
                        "byte-identical across two same-seed runs")
    if not (a.metrics.fleet and a.metrics.churn and a.metrics.requests):
        problems.append(
            "failure-storm: scenario produced no dynamic events "
            f"(fleet={len(a.metrics.fleet)}, churn={len(a.metrics.churn)}, "
            f"requests={len(a.metrics.requests)}) — the smoke is vacuous")
    for p in problems:
        o.incr("check.sim.determinism.fail")
    o.incr("check.sim.determinism.runs")
    return problems


def run_sim_check(seed: int = 0, *,
                  obs: Instrumentation | None = None) -> list[str]:
    """Equivalence + determinism; empty list means everything holds."""
    return (check_engine_equivalence(seed, obs=obs)
            + check_determinism(seed, obs=obs))
