"""Harness self-test: plant known bugs, assert the checkers catch them.

A verification harness that silently stops detecting is worse than none —
green runs breed false confidence. This module keeps the harness honest by
injecting two known mutations and requiring a failure:

* **Coverage mutation** — :meth:`~repro.core.quantize.Quantization.coverage_sets`
  (the method the planner pipeline actually builds tours from) is
  monkeypatched so the top coverage level silently omits class ``V_K``,
  the exact bug class Algorithm 3's construction exists to prevent.
  Sensors in ``V_K`` are then never charged, so the oracle check must
  flag the plan (Lemma 2 broken: infeasible plan and/or simulated deaths).
* **Cache poisoning** — two tour-set entries in a warmed
  :class:`~repro.plan.cache.PlanArtifactCache` are swapped under each
  other's keys. The cache differential must see the warm re-plan diverge
  from the cold plan (via the same :func:`~repro.check.differential.plans_equal`
  predicate the production check uses).
* **Store corruption** — a bit is flipped inside a persisted
  :class:`~repro.plan.store.PlanArtifactStore` entry. The store's
  integrity layer must quarantine it on the next read (never serve it),
  and the disk-warm re-plan must still equal the cold plan.

The mutations are applied under ``try/finally`` so a crashing self-test
cannot leak a mutated library into the process.

``run_selftest`` returns the list of problems (empty = the harness works);
``repro check selftest`` maps that to the exit code.
"""

from __future__ import annotations

import numpy as np

from repro.check.differential import ScenarioChecker, plans_equal
from repro.check.scenario import Scenario
from repro.core.quantize import Quantization
from repro.errors import CheckError
from repro.io.network_json import network_to_dict
from repro.io.plan_json import plan_to_dict
from repro.network.builder import NetworkBuilder
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.plan.cache import PlanArtifactCache

__all__ = ["run_selftest", "selftest_scenario"]

log = get_logger(__name__)


def selftest_scenario() -> Scenario:
    """A fixed two-class instance (K = 1) every self-test runs against.

    Hand-placed rather than fuzzed: the coverage mutation needs ``K >= 1``
    (there must *be* a highest class to skip) and the cache poisoning
    needs at least two distinct coverage sets to swap.
    """
    from repro.geometry.bbox import Rect
    from repro.geometry.point import Point

    net = (NetworkBuilder()
           .with_area(Rect.square(100.0))
           .with_sensors_at([Point(10.0, 10.0), Point(90.0, 10.0),
                             Point(10.0, 90.0), Point(90.0, 90.0),
                             Point(50.0, 20.0), Point(20.0, 50.0)])
           .with_base_station_at_center()
           .with_depots_at([Point(50.0, 50.0), Point(80.0, 80.0)])
           .with_cycles(np.asarray([1.0, 2.0, 1.0, 2.0, 2.0, 1.0]))
           .build())
    return Scenario(name="selftest", network_doc=network_to_dict(net),
                    horizon=9.0, refine=False, base=2)


_original_coverage_sets = Quantization.coverage_sets


def _mutated_coverage_sets(self: Quantization) -> tuple[frozenset[int], ...]:
    """The planted bug: the top coverage level silently omits class ``V_K``.

    A no-op at ``K = 0`` (no higher class to skip; the fuzz shrinker does
    produce such instances) — :func:`selftest_scenario` guarantees
    ``K >= 1`` so the self-test always exercises the bug.
    """
    sets = _original_coverage_sets(self)
    if len(sets) < 2:
        return sets
    return sets[:-1] + (sets[-2],)


def _problem_if(condition: bool, message: str,
                problems: list[str]) -> None:
    if condition:
        problems.append(message)


def run_selftest(obs: Instrumentation | None = None) -> list[str]:
    """Run all planted-mutation checks; returns problems (empty = pass)."""
    o = ensure(obs)
    problems: list[str] = []
    scenario = selftest_scenario()
    base_checks = ("oracle", "engine", "cache", "store", "exact", "bound",
                   "kernels", "patch")

    with ScenarioChecker(obs=obs) as checker:
        # ---- 0. baseline: the unmutated library must pass clean
        clean = checker.check(scenario, checks=base_checks)
        _problem_if(bool(clean),
                    f"baseline scenario fails without any mutation: "
                    f"{[str(f) for f in clean]}", problems)

        # ---- 1. coverage mutation must be caught by the oracle suite
        try:
            Quantization.coverage_sets = _mutated_coverage_sets
            caught = checker.check(scenario, checks=("oracle", "bound"))
        finally:
            Quantization.coverage_sets = _original_coverage_sets
        _problem_if(not caught,
                    "planted coverage_sets mutation (skip class V_K) was "
                    "NOT caught — the oracle check is blind", problems)
        if caught:
            log.info("selftest: coverage mutation caught by %s",
                     sorted({f.check for f in caught}))
            o.incr("check.selftest.caught")

        # ---- 2. cache poisoning must be visible to the cache differential
        problems.extend(_poisoned_cache_check(scenario))

        # ---- 3. planted on-disk corruption must be quarantined, not served
        problems.extend(_corrupted_store_check(scenario))

    if problems:
        o.incr("check.selftest.problems", len(problems))
    return problems


def _poisoned_cache_check(scenario: Scenario) -> list[str]:
    """Swap two cached tour sets; the warm plan must diverge from cold."""
    from repro.core.mintotal import min_total_distance

    net = scenario.build_network()
    cold = plan_to_dict(min_total_distance(
        net, scenario.horizon, refine=scenario.refine,
        base=scenario.base).plan)

    cache = PlanArtifactCache()
    min_total_distance(net, scenario.horizon, refine=scenario.refine,
                       base=scenario.base, cache=cache)
    tour_keys = cache.keys()["tours"]
    if len(tour_keys) < 2:
        raise CheckError("selftest scenario produced fewer than two distinct "
                         "tour-set entries; cannot poison the cache")

    # Swap the artifacts stored under the first two keys.
    (fp_a, cov_a, ref_a), (fp_b, cov_b, ref_b) = tour_keys[0], tour_keys[1]
    tours_a = cache.get_tours(fp_a, cov_a, ref_a)
    tours_b = cache.get_tours(fp_b, cov_b, ref_b)
    cache.put_tours(fp_a, cov_a, ref_a, tours_b)
    cache.put_tours(fp_b, cov_b, ref_b, tours_a)

    warm = plan_to_dict(min_total_distance(
        net, scenario.horizon, refine=scenario.refine,
        base=scenario.base, cache=cache).plan)
    if plans_equal(cold, warm):
        return ["poisoned cache produced a plan indistinguishable from the "
                "cold one — the cache differential cannot detect corrupt "
                "artifacts"]
    log.info("selftest: cache poisoning visible to the plan differential")
    return []


def _corrupted_store_check(scenario: Scenario) -> list[str]:
    """Bit-flip a persisted entry; the store must quarantine, not serve it."""
    import shutil
    import tempfile
    from pathlib import Path

    from repro.core.mintotal import min_total_distance
    from repro.plan.store import PlanArtifactStore

    net = scenario.build_network()
    cold = plan_to_dict(min_total_distance(
        net, scenario.horizon, refine=scenario.refine,
        base=scenario.base).plan)

    root = tempfile.mkdtemp(prefix="repro-selftest-store-")
    try:
        min_total_distance(net, scenario.horizon, refine=scenario.refine,
                           base=scenario.base, cache=PlanArtifactCache(),
                           store=PlanArtifactStore(root))
        entries = sorted((Path(root) / "objects").rglob("*.json"))
        if not entries:
            raise CheckError("selftest plan persisted no store entries; "
                             "cannot plant on-disk corruption")
        # Flip one bit in every persisted entry: each one read during the
        # re-plan MUST be quarantined, and none may leak into the plan.
        for path in entries:
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0x01
            path.write_bytes(bytes(blob))

        store = PlanArtifactStore(root)
        warm = plan_to_dict(min_total_distance(
            net, scenario.horizon, refine=scenario.refine, base=scenario.base,
            cache=PlanArtifactCache(), store=store).plan)
        problems: list[str] = []
        if not plans_equal(cold, warm):
            problems.append(
                "a corrupted store entry leaked into the re-plan — the "
                "integrity layer served bad data instead of quarantining it")
        if store.stats()["session"]["corrupt"] == 0:
            problems.append(
                "every store entry was corrupted on disk yet none was "
                "quarantined during the re-plan — the checksum check is blind")
        if not problems:
            log.info("selftest: on-disk corruption quarantined, re-plan "
                     "matches cold")
        return problems
    finally:
        shutil.rmtree(root, ignore_errors=True)
