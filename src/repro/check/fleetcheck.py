"""The fleet differential: a sharded fleet must be invisible to clients.

``repro check fleet`` sends one fixed request sequence twice — once to a
single-node :mod:`repro.serve` server, once through a
:class:`~repro.fleet.service.Fleet` router — and requires the response
envelopes to be payload-identical, *including* after one shard is killed
abruptly halfway through the fleet run. The kill is injected while the
supervisor is deliberately too slow to notice, so the router must
discover the death through failed requests and fail over on the ring;
clients may never see the difference. Volatile decorations that honestly
differ between the two paths (``cached``/``coalesced`` — which tier
answered, not what the answer is) are stripped before comparison;
everything else, byte for byte.

The sequence revisits the killed shard's geometry after the kill, so at
least one fail-over is *guaranteed* to be exercised — and asserted: a
differential that silently stopped covering the fail-over path would rot.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.serve.protocol import encode

__all__ = ["run_fleet_check", "canonical_response"]

log = get_logger(__name__)

#: Result keys that legitimately differ between serving paths: they say
#: which cache tier/flight answered, not what the answer is.
_VOLATILE_RESULT_KEYS = ("cached", "coalesced")


def canonical_response(response: dict[str, Any]) -> dict[str, Any]:
    """A response envelope with path-dependent decorations removed."""
    out = dict(response)
    result = out.get("result")
    if isinstance(result, dict):
        out["result"] = {k: v for k, v in result.items()
                         if k not in _VOLATILE_RESULT_KEYS}
    return out


def _exchange(host: str, port: int,
              messages: list[dict[str, Any]],
              timeout: float = 120.0) -> list[dict[str, Any]]:
    """Send ``messages`` sequentially over one connection; collect replies.

    Raw frames on purpose: the differential compares full envelopes
    (including error responses), which :class:`~repro.serve.client.ServeClient`
    would collapse into exceptions.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        fh = sock.makefile("rwb")
        responses = []
        for message in messages:
            fh.write(encode(message))
            fh.flush()
            line = fh.readline()
            if not line:
                raise ConnectionError("server closed the connection mid-exchange")
            responses.append(json.loads(line))
        return responses


def _build_messages(seed: int) -> list[dict[str, Any]]:
    """The fixed request sequence (phase 1 = first half, phase 2 = rest).

    Index 0's geometry is the kill victim's; it is planned again (and
    simulated) in phase 2, which forces post-kill fail-over traffic onto
    the dead shard's ring successor.
    """
    from repro.io.network_json import network_to_dict
    from repro.network.builder import build_paper_network

    nets = [network_to_dict(build_paper_network(
        n=16 + 2 * i, q=2 + (i % 2), seed=seed * 100 + i)) for i in range(4)]
    plans = [
        {"type": "plan", "network": nets[i % 4],
         "horizon": 150.0 + 25.0 * i, "refine": bool(i % 2)}
        for i in range(6)  # i in {4, 5} revisits nets[0] / nets[1]
    ]
    # One deliberately malformed request: the router routes it by its
    # canonical-JSON hash and the owning shard must produce the very same
    # bad_request a single node would.
    plans.append({"type": "plan", "network": {"sensors": "nonsense"},
                  "horizon": 100.0})
    return plans


def run_fleet_check(*, seed: int = 0, shards: int = 2,
                    obs: Instrumentation | None = None) -> list[str]:
    """Run the differential; returns human-readable problems (empty = pass)."""
    from repro.fleet.router import FleetConfig, routing_key
    from repro.fleet.service import Fleet
    from repro.serve.server import ServeConfig, ServerThread

    o = ensure(obs)
    problems: list[str] = []
    with o.span("check.fleet"):
        plan_messages = _build_messages(seed)

        # ---------------------------------------------------- single node
        with ServerThread(ServeConfig(
                executor="thread", workers=2, queue_limit=64,
                default_deadline=120.0)) as single:
            host, port = single.address
            for i, m in enumerate(plan_messages):
                m["id"] = i
            single_plan = _exchange(host, port, plan_messages)
            sim_messages = []
            for i, response in enumerate(single_plan):
                if not response.get("ok"):
                    continue
                sim_messages.append({
                    "type": "simulate", "id": 1000 + i,
                    "network": plan_messages[i]["network"],
                    "plan": response["result"]["plan"]})
            single_sim = _exchange(host, port, sim_messages)
        messages = plan_messages + sim_messages
        single_responses = single_plan + single_sim

        # ----------------------------------------------------------- fleet
        # supervisor_poll is longer than the whole run: the router must
        # discover the kill through failing requests, not be told.
        config = FleetConfig(
            shards=shards, shard_mode="thread", workers=2, executor="thread",
            queue_limit=64, default_deadline=120.0, supervisor_poll=30.0,
            retries=max(2, shards - 1), seed=seed)
        with Fleet(config) as fleet:
            host, port = fleet.router.address
            victim = fleet.router._ring.primary(
                routing_key({k: v for k, v in messages[0].items()
                             if k not in ("type", "id", "deadline")}))
            half = len(messages) // 2
            fleet_responses = _exchange(host, port, messages[:half])
            fleet.kill_shard(victim)
            fleet_responses += _exchange(host, port, messages[half:])
            counters = dict(fleet.router.obs.counters)

        # ------------------------------------------------------- comparison
        o.incr("check.fleet.requests", len(messages))
        for message, mine, theirs in zip(messages, single_responses,
                                         fleet_responses):
            a, b = canonical_response(mine), canonical_response(theirs)
            if a != b:
                o.incr("check.fleet.mismatches")
                problems.append(
                    f"fleet response diverged for {message['type']} "
                    f"id={message['id']}: single-node "
                    f"{json.dumps(a, sort_keys=True)[:400]} != fleet "
                    f"{json.dumps(b, sort_keys=True)[:400]}")
        if counters.get("fleet.failover", 0) < 1:
            problems.append(
                f"differential did not exercise fail-over: shard {victim} "
                f"was killed but fleet.failover stayed 0 (counters: "
                f"{ {k: v for k, v in counters.items() if k.startswith('fleet')} })")
        if problems:
            o.incr("check.fleet.failed")
        log.info("fleet check: %d request(s), %d shard(s), victim %s, "
                 "%d fail-over(s), %d problem(s)", len(messages), shards,
                 victim, int(counters.get("fleet.failover", 0)), len(problems))
    return problems
