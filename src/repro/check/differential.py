"""The cross-path differential oracle suite.

Every check pits two independent computations of the same answer against
each other on one :class:`~repro.check.scenario.Scenario`:

``oracle``
    Algorithm 3's plan must be feasible by construction (the paper's
    Lemma 2), the analytical :func:`~repro.core.feasibility.check_feasibility`
    verdict must agree with trajectory-level death detection in
    :mod:`repro.sim.engine`, and the run must pass the full
    :class:`~repro.check.invariants.InvariantChecker` suite.
``cache``
    Plans built cold, against a fresh :class:`~repro.plan.cache.PlanArtifactCache`,
    and against the same cache warmed, must be tour-for-tour identical —
    the cache is a pure accelerator, never a semantic switch. A warm
    re-plan must also create no new cache entries.
``store``
    Same contract for the on-disk tier: a plan re-built from a *fresh
    process state* (empty memory cache, new
    :class:`~repro.plan.store.PlanArtifactStore` handle over a populated
    directory) must be tour-identical to the cold plan and must actually
    hit disk; bit-flipped and truncated entries must be quarantined —
    never served — with the re-plan still exactly matching cold.
``exact``
    On coverage sets small enough for :func:`~repro.rooted.exact.exact_q_rooted_tsp`,
    the pipeline's tour set must cost at least the optimum and at most
    twice it (Algorithm 2's guarantee).
``bound``
    The plan's service cost must dominate the Lemma-3 lower bound and, for
    the paper's base-2 quantisation with at least one full window per
    level, stay within the ``4(K+1)`` factor the Theorem-2 argument
    certifies against that bound.
``engine``
    The event-queue simulation core must replay the scenario's plan (and
    an online greedy run) with metrics and event logs *exactly* equal to
    the preserved legacy slotted loop
    (:mod:`repro.check.legacy_engine`) — the refactor's bit-compatibility
    proof, also run standalone by ``repro check sim``.
``kernels``
    The ``fast`` kernel backend (:mod:`repro.kernels`) must be
    move-for-move identical to ``reference``: whole plans built through
    either backend (with and without refinement) must be tour-for-tour
    equal, and the raw kernels (Prim, 2-opt, Or-opt) must agree edge-for-
    edge / tour-for-tour on the scenario's own metric.
``patch``
    :func:`~repro.adaptive.patch.build_patch` with the incremental forest
    extension (``incremental=True`` over a warm cache) must produce
    *exactly* the sets and tours of the from-scratch repair — the
    incremental path is a pure accelerator, never a semantic switch.
``serve``
    A plan/simulate answered over the :mod:`repro.serve` wire must match
    the in-process computation byte-for-byte (plan document) and
    number-for-number (metrics).
``executor``
    :func:`~repro.experiments.runner.run_cell` with ``jobs=2`` must be
    bit-identical to the serial run.

Checks *report* failures (as :class:`CheckFailure` values) rather than
raising, so the fuzzer can count, continue, and shrink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

import numpy as np

from repro.adaptive.patch import build_patch
from repro.check.invariants import InvariantChecker
from repro.check.scenario import Scenario
from repro.core.bounds import lemma3_lower_bound
from repro.core.feasibility import check_feasibility
from repro.core.mintotal import MinTotalDistanceResult, min_total_distance
from repro.errors import CheckError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_cell
from repro.io.network_json import network_to_dict
from repro.io.plan_json import plan_to_dict
from repro.kernels import get_backend
from repro.obs.instrument import Instrumentation, ensure
from repro.plan.cache import PlanArtifactCache
from repro.plan.pipeline import distinct_coverage, plan_tours
from repro.plan.store import PlanArtifactStore
from repro.rooted.exact import exact_q_rooted_tsp
from repro.rooted.qtsp import tours_total_cost
from repro.sim.engine import SimulationResult, simulate
from repro.sim.policies import PlannedPolicy
from repro.sim.workload import FixedWorkload
from repro.tsp.tour import Tour

__all__ = ["CheckFailure", "ScenarioChecker", "ALL_CHECKS", "plans_equal"]

#: Check names in execution order. ``serve`` and ``executor`` are the
#: expensive ones — the fuzzer runs them on a cadence.
ALL_CHECKS = ("oracle", "engine", "cache", "store", "exact", "bound",
              "kernels", "patch", "serve", "executor")

#: Per-coverage-set sensor cap for the exact oracle: ``q^m`` assignments,
#: kept below the library's own cap so fuzz iterations stay sub-second.
_EXACT_SENSOR_CAP = 7

#: Relative slack for cost comparisons between independent computations.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class CheckFailure:
    """One differential check that did not hold.

    Parameters
    ----------
    check:
        The check's name (an element of :data:`ALL_CHECKS`).
    message:
        What disagreed, with the values.
    """

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


def plans_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Structural equality of two plan documents.

    Both sides go through :func:`~repro.io.plan_json.plan_to_dict`, which
    canonicalises shared tour sets, so plain ``==`` is an exact
    tour-for-tour, time-for-time comparison. Split out (rather than
    inlined) because the self-test uses the *same* predicate to prove a
    poisoned cache would be caught — the detector under test must be the
    detector in production.
    """
    return a == b


def _close(a: float, b: float, *, rel: float = _REL_TOL) -> bool:
    return math.isclose(a, b, rel_tol=rel, abs_tol=rel)


class ScenarioChecker:
    """Runs the differential suite against scenarios.

    One checker instance amortises the expensive fixtures — most notably a
    lazily started thread-mode :class:`~repro.serve.server.ServerThread`
    reused across every ``serve`` check — so a fuzz run pays server
    startup once, not per scenario. Call :meth:`close` (or use as a
    context manager) to tear the server down.

    Parameters
    ----------
    obs:
        Optional instrumentation: ``check.scenarios``, ``check.failures``
        and per-check ``check.<name>.fail`` counters.
    """

    def __init__(self, obs: Instrumentation | None = None) -> None:
        self._obs = ensure(obs)
        self._server = None   # lazily started ServerThread
        self._client = None   # lazily connected ServeClient

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the shared serve fixture (idempotent)."""
        if self._client is not None:
            try:
                self._client.close()
            finally:
                self._client = None
        if self._server is not None:
            try:
                self._server.stop()
            finally:
                self._server = None

    def __enter__(self) -> "ScenarioChecker":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------ entry point
    def check(self, scenario: Scenario,
              checks: Iterable[str] = ALL_CHECKS) -> list[CheckFailure]:
        """Run the named checks; returns every failure (empty = clean)."""
        self._obs.incr("check.scenarios")
        failures: list[CheckFailure] = []
        for name in checks:
            runner = getattr(self, f"_check_{name}", None)
            if runner is None:
                raise CheckError(f"unknown check {name!r}; "
                                 f"available: {ALL_CHECKS}")
            try:
                found = runner(scenario)
            except CheckError as exc:
                found = [CheckFailure(check=name, message=str(exc))]
            except ReproError as exc:
                # The library rejecting a scenario outright is also a
                # harness failure: scenarios are generated to be valid.
                found = [CheckFailure(
                    check=name,
                    message=f"library error ({type(exc).__name__}): {exc}")]
            for f in found:
                self._obs.incr("check.failures")
                self._obs.incr(f"check.{f.check}.fail")
            failures.extend(found)
        return failures

    # --------------------------------------------------------------- helpers
    def _plan(self, scenario: Scenario,
              cache: PlanArtifactCache | None = None,
              store: PlanArtifactStore | None = None) -> MinTotalDistanceResult:
        return min_total_distance(
            scenario.build_network(), scenario.horizon,
            refine=scenario.refine, base=scenario.base, cache=cache,
            store=store)

    def _simulate(self, scenario: Scenario,
                  result: MinTotalDistanceResult,
                  hooks: InvariantChecker | None = None) -> SimulationResult:
        net = scenario.build_network()
        return simulate(net, PlannedPolicy(result.plan),
                        FixedWorkload.from_network(net), scenario.horizon,
                        hooks=hooks)

    # ---------------------------------------------------------------- checks
    def _check_oracle(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        net = scenario.build_network()
        result = self._plan(scenario)
        report = check_feasibility(result.plan, net.cycles)
        checker = InvariantChecker(net, raise_on_violation=False,
                                   obs=self._obs)
        run = self._simulate(scenario, result, hooks=checker)
        deaths = len(run.metrics.deaths)

        if not report.feasible:
            failures.append(CheckFailure(
                "oracle", f"MinTotalDistance produced an infeasible plan "
                          f"(Lemma 2 broken): {report.summary()}"))
        if deaths > 0:
            failures.append(CheckFailure(
                "oracle", f"simulating the MinTotalDistance plan killed "
                          f"{deaths} sensor(s): "
                          f"{[(d.sensor, d.time) for d in run.metrics.deaths]}"))
        if report.feasible != (deaths == 0):
            failures.append(CheckFailure(
                "oracle", f"analytical feasibility ({bool(report)}) disagrees "
                          f"with trajectory death count ({deaths})"))
        failures.extend(
            CheckFailure("oracle", f"invariant violation: {v}")
            for v in checker.violations)

        if not _close(run.metrics.service_cost,
                      result.plan.total_cost(net.dist),
                      rel=1e-9):
            failures.append(CheckFailure(
                "oracle", f"simulated service cost "
                          f"{run.metrics.service_cost!r} differs from the "
                          f"plan's own total "
                          f"{result.plan.total_cost(net.dist)!r}"))
        return failures

    def _check_engine(self, scenario: Scenario) -> list[CheckFailure]:
        from repro.baselines.greedy import GreedyOnDemandPolicy
        from repro.check.legacy_engine import simulate_legacy
        from repro.check.simcheck import result_diffs

        net = scenario.build_network()
        workload = FixedWorkload.from_network(net)
        result = self._plan(scenario)
        failures: list[CheckFailure] = []
        for label, policy in (("planned", PlannedPolicy(result.plan)),
                              ("greedy", GreedyOnDemandPolicy())):
            reference = simulate_legacy(net, policy, workload, scenario.horizon)
            candidate = simulate(net, policy, workload, scenario.horizon)
            failures.extend(
                CheckFailure("engine", msg)
                for msg in result_diffs(reference, candidate, label=label))
        return failures

    def _check_cache(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        cold = plan_to_dict(self._plan(scenario, cache=None).plan)
        cache = PlanArtifactCache()
        first = plan_to_dict(self._plan(scenario, cache=cache).plan)
        entries_after_first = cache.keys()
        warm = plan_to_dict(self._plan(scenario, cache=cache).plan)
        entries_after_warm = cache.keys()

        if not plans_equal(cold, first):
            failures.append(CheckFailure(
                "cache", "plan built against an empty cache differs from the "
                         "uncached plan"))
        if not plans_equal(first, warm):
            failures.append(CheckFailure(
                "cache", "warm re-plan differs from the cold plan (cache "
                         "returned a wrong artifact)"))
        # Compare as sets: a warm hit legitimately reorders the LRU recency
        # list, but must never add or drop an entry.
        for kind in ("forests", "tours"):
            before = set(entries_after_first[kind])
            after = set(entries_after_warm[kind])
            if before != after:
                failures.append(CheckFailure(
                    "cache", f"warm re-plan changed the cached {kind} key set: "
                             f"added {sorted(after - before, key=repr)}, "
                             f"dropped {sorted(before - after, key=repr)}"))
        return failures

    def _check_store(self, scenario: Scenario) -> list[CheckFailure]:
        import shutil
        import tempfile

        failures: list[CheckFailure] = []
        cold = plan_to_dict(self._plan(scenario).plan)
        root = tempfile.mkdtemp(prefix="repro-check-store-")
        try:
            first = plan_to_dict(self._plan(
                scenario, cache=PlanArtifactCache(),
                store=PlanArtifactStore(root)).plan)
            if not plans_equal(cold, first):
                failures.append(CheckFailure(
                    "store", "plan built against an empty store differs from "
                             "the storeless plan"))

            # Simulated restart: a fresh process state is an empty memory
            # cache plus a new store handle over the same directory.
            warm_store = PlanArtifactStore(root)
            warm = plan_to_dict(self._plan(
                scenario, cache=PlanArtifactCache(), store=warm_store).plan)
            session = warm_store.stats()["session"]
            if not plans_equal(cold, warm):
                failures.append(CheckFailure(
                    "store", "disk-warm re-plan differs from the cold plan "
                             "(the store returned a wrong artifact)"))
            if session["hits"] == 0:
                failures.append(CheckFailure(
                    "store", "disk-warm re-plan never hit the store — the "
                             "persisted artifacts are not being read back"))

            # Fault injection: flip one bit in one entry and truncate
            # another. Each corrupted entry must be quarantined — on read
            # during the re-plan, or by verify() if never read — and the
            # re-plan must still match the cold plan exactly.
            objects = sorted((Path(root) / "objects").rglob("*.json"))
            flip, cut = objects[0], objects[-1]
            blob = bytearray(flip.read_bytes())
            blob[len(blob) // 2] ^= 0x40
            flip.write_bytes(bytes(blob))
            cut.write_bytes(cut.read_bytes()[:max(1, cut.stat().st_size // 2)])
            n_corrupted = len({flip, cut})

            hurt_store = PlanArtifactStore(root)
            hurt = plan_to_dict(self._plan(
                scenario, cache=PlanArtifactCache(), store=hurt_store).plan)
            if not plans_equal(cold, hurt):
                failures.append(CheckFailure(
                    "store", "re-plan over a corrupted store differs from "
                             "the cold plan — a corrupt entry was served"))
            quarantined = (hurt_store.stats()["session"]["corrupt"]
                           + hurt_store.verify()["corrupt"])
            if quarantined < n_corrupted:
                failures.append(CheckFailure(
                    "store", f"corrupted {n_corrupted} entries but only "
                             f"{quarantined} were quarantined across re-plan "
                             f"and verify — the integrity check is blind"))
        finally:
            shutil.rmtree(root, ignore_errors=True)
        return failures

    def _check_exact(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        net = scenario.build_network()
        quant = self._plan(scenario).quantization
        depots = [int(i) for i in net.depot_indices]
        for coverage in distinct_coverage(quant):
            if not coverage or len(coverage) > _EXACT_SENSOR_CAP:
                continue
            approx = plan_tours(net, coverage, refine=scenario.refine)
            optimal = exact_q_rooted_tsp(net.dist, sorted(coverage), depots)
            c_approx = tours_total_cost(net.dist, approx)
            c_exact = tours_total_cost(net.dist, optimal)
            slack = _REL_TOL * max(1.0, c_exact)
            if c_approx < c_exact - slack:
                failures.append(CheckFailure(
                    "exact", f"pipeline tours over {sorted(coverage)} cost "
                             f"{c_approx!r} < exact optimum {c_exact!r} — "
                             f"the 'exact' solver is not exact or the tours "
                             f"skip required sensors"))
            if c_approx > 2.0 * c_exact + slack:
                failures.append(CheckFailure(
                    "exact", f"pipeline tours over {sorted(coverage)} cost "
                             f"{c_approx!r} > 2x the exact optimum "
                             f"{c_exact!r} (Algorithm 2's guarantee broken)"))
        return failures

    def _check_bound(self, scenario: Scenario) -> list[CheckFailure]:
        if scenario.base != 2:
            return []  # Lemma 3 is stated (and implemented) for base 2
        failures: list[CheckFailure] = []
        net = scenario.build_network()
        result = self._plan(scenario)
        plan_cost = result.plan.total_cost(net.dist)
        lb = lemma3_lower_bound(net, scenario.horizon)
        quant = lb.quantization
        slack = _REL_TOL * max(1.0, plan_cost, lb.bound)

        if plan_cost < lb.bound - slack:
            failures.append(CheckFailure(
                "bound", f"plan cost {plan_cost!r} beats the Lemma-3 lower "
                         f"bound {lb.bound!r} — a feasible plan cheaper than "
                         f"the certified optimum is impossible"))

        # Upper factor: scheduling j covers prefix class v2(j), Algorithm 2
        # tours cost <= 2 MSF, and floor(T/(2^k tau1)) windows of level k
        # give cost <= sum_k 4 * per_level[k] <= 4(K+1) * bound. Valid only
        # when every level has a full window (no per-level zeroing), i.e.
        # horizon >= 2 * block_cycle.
        if scenario.horizon >= 2.0 * quant.block_cycle and lb.bound > 0:
            factor = 4.0 * (quant.K + 1)
            if plan_cost > factor * lb.bound + slack:
                failures.append(CheckFailure(
                    "bound", f"plan cost {plan_cost!r} exceeds "
                             f"{factor:g}x the Lemma-3 bound {lb.bound!r} "
                             f"(K={quant.K}) — the approximation argument "
                             f"no longer holds"))
        return failures

    def _check_kernels(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        net = scenario.build_network()
        ref = get_backend("reference")
        fast = get_backend("fast")

        # Whole-pipeline differential: plans built through either backend
        # must be tour-for-tour identical, both on the bare Algorithm 1+2
        # path and with the 2-opt/Or-opt refinement pass engaged.
        for refine in (False, True):
            docs = {}
            for kb in (ref, fast):
                docs[kb.name] = plan_to_dict(min_total_distance(
                    net, scenario.horizon, refine=refine,
                    base=scenario.base, kernel_backend=kb).plan)
            if not plans_equal(docs["reference"], docs["fast"]):
                failures.append(CheckFailure(
                    "kernels", f"plan built with the fast backend differs "
                               f"from the reference plan (refine={refine}) — "
                               f"the fast kernels are not move-for-move "
                               f"exact"))

        # Raw-kernel differential on the scenario's own metric: the MST of
        # the full graph and the improvers over one tour through everything.
        dist = net.dist
        depot = int(net.depot_indices[0])
        if ref.prim_mst(dist, root=depot) != fast.prim_mst(dist, root=depot):
            failures.append(CheckFailure(
                "kernels", "fast prim_mst edge list differs from reference "
                           "on the scenario's full distance matrix"))
        tour = Tour(depot=depot, order=(depot, *range(net.n)))
        if ref.two_opt(dist, tour) != fast.two_opt(dist, tour):
            failures.append(CheckFailure(
                "kernels", "fast two_opt tour differs from reference on the "
                           "scenario's all-sensor tour"))
        if ref.or_opt(dist, tour) != fast.or_opt(dist, tour):
            failures.append(CheckFailure(
                "kernels", "fast or_opt tour differs from reference on the "
                           "scenario's all-sensor tour"))
        return failures

    def _check_patch(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        net = scenario.build_network()
        quant = self._plan(scenario).quantization

        # Residual lifetimes engineered to exercise every repair path:
        # scaling tau'_i by U(0.1, 2.5) makes some sensors urgent (< tau'),
        # some immediate (< tau_1), and leaves some safe — deterministically
        # per scenario, so shrinking reproduces.
        rng = np.random.default_rng(scenario.stable_digest())
        lifetimes = quant.assigned * rng.uniform(0.1, 2.5, size=net.n)

        for tie_break in ("immediate", "defer"):
            results = {}
            for incremental in (True, False):
                # Each side gets its own identically warmed cache: the
                # incremental path extends the base forests this plan put
                # there, the from-scratch side must not see the other
                # side's insertions.
                cache = PlanArtifactCache()
                min_total_distance(net, scenario.horizon,
                                   refine=scenario.refine,
                                   base=scenario.base, cache=cache)
                results[incremental] = build_patch(
                    net, quant, lifetimes, refine=scenario.refine,
                    tie_break=tie_break, cache=cache,
                    incremental=incremental)
            inc, full = results[True], results[False]
            for attr in ("sets", "tours", "urgent"):
                if getattr(inc, attr) != getattr(full, attr):
                    failures.append(CheckFailure(
                        "patch", f"incremental patch {attr} differ from the "
                                 f"from-scratch repair "
                                 f"(tie_break={tie_break!r}) — the forest "
                                 f"extension changed the answer"))
        return failures

    def _check_serve(self, scenario: Scenario) -> list[CheckFailure]:
        failures: list[CheckFailure] = []
        client = self._ensure_server()
        net = scenario.build_network()
        doc = network_to_dict(net)
        local = self._plan(scenario)
        local_doc = plan_to_dict(local.plan)
        local_cost = local.plan.total_cost(net.dist)

        remote = client.plan(doc, scenario.horizon, refine=scenario.refine,
                             base=scenario.base)
        if not plans_equal(remote["plan"], local_doc):
            failures.append(CheckFailure(
                "serve", "plan document over the wire differs from the "
                         "in-process plan"))
        if not _close(float(remote["service_cost"]), local_cost):
            failures.append(CheckFailure(
                "serve", f"server reports service cost "
                         f"{remote['service_cost']!r}, local plan costs "
                         f"{local_cost!r}"))

        run = self._simulate(scenario, local)
        sim = client.simulate(doc, local_doc)
        for key, local_value in (
                ("service_cost", run.metrics.service_cost),
                ("n_deaths", len(run.metrics.deaths)),
                ("n_dispatches", len(run.metrics.dispatches))):
            remote_value = sim[key]
            same = (_close(float(remote_value), float(local_value))
                    if isinstance(local_value, float)
                    else int(remote_value) == int(local_value))
            if not same:
                failures.append(CheckFailure(
                    "serve", f"simulate over the wire reports {key}="
                             f"{remote_value!r}, in-process run says "
                             f"{local_value!r}"))
        return failures

    def _check_executor(self, scenario: Scenario) -> list[CheckFailure]:
        # The executor differential is scenario-seeded but runs the
        # library's own topology generator (run_cell is a fixed pipeline);
        # the scenario contributes the seed so each fuzz iteration
        # exercises a different stream.
        seed = scenario.stable_digest() % (2 ** 31)
        config = ExperimentConfig(
            n=12, q=2, side=200.0, horizon=60.0, tau_min=1.0, tau_max=8.0,
            algorithms=("mtd", "greedy"), n_topologies=2, seed=seed)
        serial = run_cell(config, jobs=1)
        parallel = run_cell(config, jobs=2)
        failures: list[CheckFailure] = []
        for s, p in zip(serial.results, parallel.results):
            for attr in ("costs", "deaths", "dispatches"):
                a = getattr(s, attr)
                b = getattr(p, attr)
                if not np.array_equal(a, b):
                    failures.append(CheckFailure(
                        "executor", f"{s.algorithm}: {attr} differ between "
                                    f"jobs=1 ({a.tolist()}) and jobs=2 "
                                    f"({b.tolist()}) — parallel runs must be "
                                    f"bit-identical"))
        return failures

    # ----------------------------------------------------------- serve fixture
    def _ensure_server(self):
        if self._client is None:
            from repro.serve.client import ServeClient
            from repro.serve.server import ServeConfig, ServerThread

            self._server = ServerThread(ServeConfig(
                executor="thread", workers=2, queue_limit=32,
                default_deadline=120.0, drain_timeout=10.0),
                obs=self._obs)
            host, port = self._server.start()
            self._client = ServeClient(host, port, timeout=120.0)
        return self._client
