"""Exact q-rooted TSP for tiny instances.

Enumerates every assignment of sensors to depots (``q^m`` of them) and
solves each depot's tour exactly with Held–Karp. Exponential twice over —
usable to ``m ≈ 9`` sensors — but it computes the *true* optimum, which
turns "Algorithm 2 is a 2-approximation" from a theorem about bounds into
a measured property in the test suite.
"""

from __future__ import annotations

import itertools
from typing import Sequence

import numpy as np

from repro.errors import TourError
from repro.tsp.exact import held_karp_tsp
from repro.tsp.tour import Tour

__all__ = ["exact_q_rooted_tsp", "EXACT_QROOTED_MAX_SENSORS"]

#: Enumeration cap: q^m assignments, each with an exact TSP.
EXACT_QROOTED_MAX_SENSORS = 9


def exact_q_rooted_tsp(dist: np.ndarray, sensors: Sequence[int],
                       depots: Sequence[int]) -> list[Tour]:
    """The provably optimal q-rooted tour set (tiny instances only).

    Parameters
    ----------
    dist:
        Full distance matrix.
    sensors:
        Graph indices of the to-be-covered sensors; at most
        ``EXACT_QROOTED_MAX_SENSORS``.
    depots:
        Graph indices of the depots (one tour each; empty tours allowed).

    Returns
    -------
    list[Tour]
        Optimal tours in depot order.
    """
    s_list = [int(v) for v in sensors]
    r_list = [int(v) for v in depots]
    if not r_list:
        raise TourError("exact_q_rooted_tsp: need at least one depot")
    if len(s_list) > EXACT_QROOTED_MAX_SENSORS:
        raise TourError(
            f"exact_q_rooted_tsp: {len(s_list)} sensors exceeds the cap of "
            f"{EXACT_QROOTED_MAX_SENSORS}")
    d = np.asarray(dist, dtype=np.float64)
    q = len(r_list)
    if not s_list:
        return [Tour.empty(r) for r in r_list]

    # Memoise exact tours per (depot, frozenset-of-sensors).
    cache: dict[tuple[int, frozenset[int]], Tour] = {}

    def tour_for(depot: int, group: tuple[int, ...]) -> Tour:
        key = (depot, frozenset(group))
        if key not in cache:
            cache[key] = held_karp_tsp(d, depot, list(group))
        return cache[key]

    best_cost = np.inf
    best: list[Tour] | None = None
    for assign in itertools.product(range(q), repeat=len(s_list)):
        groups: list[list[int]] = [[] for _ in range(q)]
        for s, a in zip(s_list, assign):
            groups[a].append(s)
        tours = [tour_for(r_list[l], tuple(groups[l])) for l in range(q)]
        cost = sum(t.cost(d) for t in tours)
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = tours
    assert best is not None
    return best
