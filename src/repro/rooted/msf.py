"""Algorithm 1: the exact q-rooted minimum spanning forest.

The q-rooted MSF problem asks for ``q`` vertex-disjoint trees, one per
depot, jointly spanning a sensor set ``V^c`` at minimum total edge weight.
The paper's exact algorithm (its Lemma 1):

1. *Contract* all ``q`` depots into a single super-root ``r`` with
   ``w(v, r) = min_l w(v, r_l)`` for every sensor ``v``.
2. Compute an MST of the contracted graph (``O(n^2)`` dense Prim).
3. *Un-contract*: each MST edge ``(v, r)`` becomes ``(v, argmin_l w(v, r_l))``,
   and each subtree hanging off the super-root lands in the tree of the
   depot its bridging edge selected.

This module exposes the contraction engine twice:

* :func:`rooted_msf` — the general form over an explicit
  ``(sensor-sensor distances, sensor-root costs)`` pair. The adaptive
  heuristic (Section VI) calls this with *scheduling supernodes* as roots,
  where ``root_costs[i, j]`` is the nearest distance from sensor ``i`` to
  any node already in scheduling ``j``.
* :func:`q_rooted_msf` — the depot-rooted special case over a
  :class:`~repro.network.model.SensorNetwork`-style full distance matrix,
  returning a :class:`~repro.graphs.forest.RootedForest` in graph indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.forest import RootedForest
from repro.kernels import KernelBackend, prim_mst
from repro.obs.instrument import Instrumentation, ensure

__all__ = ["MsfAssignment", "rooted_msf", "q_rooted_msf"]


@dataclass(frozen=True)
class MsfAssignment:
    """Result of the contraction engine, in *local* sensor indices.

    Parameters
    ----------
    n_sensors, n_roots:
        Problem dimensions.
    sensor_edges:
        Tree edges between sensors, as local index pairs.
    root_links:
        Bridging edges ``(root, sensor)`` produced by un-contraction; one per
        subtree hanging off the super-root.
    owner:
        ``(n_sensors,)`` array; ``owner[i]`` is the root whose tree sensor
        ``i`` belongs to.
    weight:
        Total forest weight (sensor edges + root links).
    """

    n_sensors: int
    n_roots: int
    sensor_edges: tuple[tuple[int, int], ...]
    root_links: tuple[tuple[int, int], ...]
    owner: np.ndarray
    weight: float

    def sensors_of(self, root: int) -> np.ndarray:
        """Local indices of the sensors assigned to ``root``."""
        return np.nonzero(self.owner == root)[0]


def rooted_msf(sensor_dist: np.ndarray, root_costs: np.ndarray,
               *, backend: "str | KernelBackend | None" = None,
               obs: Instrumentation | None = None) -> MsfAssignment:
    """Exact rooted MSF via depot contraction.

    Parameters
    ----------
    sensor_dist:
        ``(m, m)`` distances among the ``m`` sensors to be spanned.
    root_costs:
        ``(m, R)`` cost of attaching each sensor directly to each of the
        ``R`` roots (``inf`` allowed to forbid an attachment, as long as
        every sensor can reach some root).
    backend:
        Kernel backend for the MST step (:mod:`repro.kernels`); ``None``
        resolves via the process default / ``REPRO_KERNEL_BACKEND``.
    obs:
        Optional instrumentation context; records an ``msf`` span plus the
        ``msf.calls`` / ``msf.mst_rounds`` counters.

    Returns
    -------
    MsfAssignment
        Optimal forest. With ``m == 0`` the result is the empty forest.

    Notes
    -----
    Optimality argument (paper's Lemma 1): any feasible forest maps to a
    spanning tree of the contracted graph of equal weight, and conversely;
    the MST therefore has the minimum feasible weight, and un-contraction
    preserves it exactly because each super-root edge is realised by its
    cheapest depot.
    """
    sd = np.asarray(sensor_dist, dtype=np.float64)
    rc = np.asarray(root_costs, dtype=np.float64)
    if sd.ndim != 2 or sd.shape[0] != sd.shape[1]:
        raise GraphError(f"rooted_msf: sensor_dist must be square, got {sd.shape}")
    m = sd.shape[0]
    if rc.shape[0] != m or rc.ndim != 2:
        raise GraphError(
            f"rooted_msf: root_costs shape {rc.shape} incompatible with m={m}")
    n_roots = rc.shape[1]
    if n_roots < 1:
        raise GraphError("rooted_msf: need at least one root")
    if m == 0:
        return MsfAssignment(0, n_roots, (), (), np.empty(0, dtype=np.intp), 0.0)

    o = ensure(obs)
    o.incr("msf.calls")
    o.incr("msf.mst_rounds", m)  # Prim runs m rounds on the contracted graph
    with o.span("msf", sensors=m, roots=n_roots):
        # Contract: node m is the super-root.
        best_root_cost = rc.min(axis=1)
        best_root = rc.argmin(axis=1)
        if not np.all(np.isfinite(best_root_cost)):
            bad = int(np.argmax(~np.isfinite(best_root_cost)))
            raise GraphError(f"rooted_msf: sensor {bad} cannot reach any root")
        contracted = np.empty((m + 1, m + 1), dtype=np.float64)
        contracted[:m, :m] = sd
        contracted[:m, m] = best_root_cost
        contracted[m, :m] = best_root_cost
        contracted[m, m] = 0.0

        # MST rooted at the super-root so bridging edges appear as (m, v).
        edges = prim_mst(contracted, root=m, backend=backend, obs=obs)

        sensor_edges: list[tuple[int, int]] = []
        root_links: list[tuple[int, int]] = []
        weight = 0.0
        for u, v in edges:
            if u == m:
                root_links.append((int(best_root[v]), int(v)))
                weight += float(best_root_cost[v])
            elif v == m:  # cannot happen with root=m orientation, kept for safety
                root_links.append((int(best_root[u]), int(u)))
                weight += float(best_root_cost[u])
            else:
                sensor_edges.append((int(u), int(v)))
                weight += float(sd[u, v])

        # Ownership: BFS each super-root subtree from its bridging sensor.
        adj: list[list[int]] = [[] for _ in range(m)]
        for u, v in sensor_edges:
            adj[u].append(v)
            adj[v].append(u)
        owner = np.full(m, -1, dtype=np.intp)
        for root, start in root_links:
            stack = [start]
            owner[start] = root
            while stack:
                x = stack.pop()
                for y in adj[x]:
                    if owner[y] == -1:
                        owner[y] = root
                        stack.append(y)
        if np.any(owner == -1):
            raise GraphError("rooted_msf: internal error — unassigned sensor after MST")
        # Assignments may be shared by reference (the plan-artifact cache
        # hands forests to many callers); freeze the array so no consumer
        # can corrupt another's view.
        owner.setflags(write=False)
    return MsfAssignment(
        n_sensors=m, n_roots=n_roots,
        sensor_edges=tuple(sensor_edges), root_links=tuple(root_links),
        owner=owner, weight=weight,
    )


def q_rooted_msf(dist: np.ndarray, sensors: Sequence[int],
                 depots: Sequence[int],
                 *, backend: "str | KernelBackend | None" = None,
                 obs: Instrumentation | None = None) -> RootedForest:
    """Algorithm 1 over graph indices: span ``sensors`` with one tree per
    depot in ``depots``.

    Parameters
    ----------
    dist:
        Full ``(N, N)`` distance matrix (network convention: sensors then
        depots, but any consistent indexing works).
    sensors:
        Graph indices of the to-be-charged sensors ``V^c`` (may be empty —
        the result is then ``q`` isolated roots).
    depots:
        Graph indices of the ``q`` depots; these become the forest's roots.
    backend:
        Kernel backend for the MST step (:mod:`repro.kernels`).

    Returns
    -------
    RootedForest
        Optimal q-rooted spanning forest in graph indices; depots with no
        assigned sensors get empty trees.
    """
    d = np.asarray(dist, dtype=np.float64)
    s_idx = np.asarray(list(sensors), dtype=np.intp)
    r_idx = np.asarray(list(depots), dtype=np.intp)
    if r_idx.size == 0:
        raise GraphError("q_rooted_msf: need at least one depot")
    if len(set(r_idx.tolist()) & set(s_idx.tolist())) > 0:
        raise GraphError("q_rooted_msf: sensor and depot index sets overlap")
    if s_idx.size == 0:
        return RootedForest(roots=tuple(int(r) for r in r_idx),
                            trees=tuple(() for _ in r_idx))

    assignment = rooted_msf(d[np.ix_(s_idx, s_idx)], d[np.ix_(s_idx, r_idx)],
                            backend=backend, obs=obs)
    trees: list[list[tuple[int, int]]] = [[] for _ in range(r_idx.size)]
    for root, sensor in assignment.root_links:
        trees[root].append((int(r_idx[root]), int(s_idx[sensor])))
    for u, v in assignment.sensor_edges:
        trees[int(assignment.owner[u])].append((int(s_idx[u]), int(s_idx[v])))
    return RootedForest(roots=tuple(int(r) for r in r_idx),
                        trees=tuple(tuple(t) for t in trees))
