"""Min-max q-rooted tours: balance the fleet's workload.

The paper minimises the *total* travel distance; its companion work
(Xu, Liang, Lin, "Approximation algorithms for min-max cycle cover
problems", cited as [16]) minimises the *longest* tour instead — the right
objective when a charging round must finish within a time window and the
chargers drive in parallel.

This module provides that objective as an extension:
:func:`minmax_q_rooted_tours` starts from the cost-optimal-ish Algorithm 2
solution and rebalances it with a best-improvement relocation local search:
repeatedly take the longest tour and move one of its stops to the position
(in any other tour) that most reduces the makespan. Every accepted move
strictly reduces the makespan, so termination is guaranteed; coverage and
the one-tour-per-depot structure are preserved throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TourError
from repro.rooted.qtsp import q_rooted_tsp
from repro.tsp.improve import two_opt
from repro.tsp.tour import Tour

__all__ = ["MinMaxResult", "minmax_q_rooted_tours", "makespan"]

_EPS = 1e-9


def makespan(dist: np.ndarray, tours: Sequence[Tour]) -> float:
    """The longest tour's length — the fleet's parallel completion metric."""
    d = np.asarray(dist)
    return max((t.cost(d) for t in tours), default=0.0)


@dataclass(frozen=True)
class MinMaxResult:
    """Outcome of the balancing heuristic.

    Parameters
    ----------
    tours:
        The balanced tours, one per depot.
    initial_makespan / final_makespan:
        Longest-tour length before and after balancing.
    moves:
        Number of accepted relocations.
    """

    tours: tuple[Tour, ...]
    initial_makespan: float
    final_makespan: float
    moves: int

    @property
    def improvement(self) -> float:
        """Relative makespan reduction in ``[0, 1)``."""
        if self.initial_makespan <= 0:
            return 0.0
        return 1.0 - self.final_makespan / self.initial_makespan


def _best_insertion(d: np.ndarray, tour: Tour, node: int) -> tuple[float, int]:
    """Cheapest insertion of ``node`` into ``tour``: (cost delta, position).

    Position ``p`` means "insert after ``order[p]``".
    """
    order = tour.order
    k = len(order)
    arr = np.asarray(order, dtype=np.intp)
    nxt = np.roll(arr, -1)
    deltas = d[arr, node] + d[node, nxt] - d[arr, nxt]
    p = int(np.argmin(deltas))
    return float(deltas[p]), p


def _remove_stop(tour: Tour, node: int) -> Tour:
    if node == tour.depot:
        raise TourError("cannot remove the depot from a tour")
    return tour.with_order([v for v in tour.order if v != node])


def _insert_stop(tour: Tour, node: int, after_pos: int) -> Tour:
    order = list(tour.order)
    order.insert(after_pos + 1, node)
    return tour.with_order(order)


def minmax_q_rooted_tours(dist: np.ndarray, sensors: Sequence[int],
                          depots: Sequence[int], *, refine: bool = True,
                          max_moves: int = 10_000) -> MinMaxResult:
    """Balanced q-rooted tours covering ``sensors``.

    Parameters
    ----------
    dist:
        Full distance matrix.
    sensors / depots:
        Graph indices, as for :func:`~repro.rooted.qtsp.q_rooted_tsp`.
    refine:
        Run 2-opt on each tour before balancing and on every tour modified
        by a relocation (keeps the per-tour orders tight so makespan
        comparisons are meaningful).
    max_moves:
        Safety cap on accepted relocations.

    Returns
    -------
    MinMaxResult
        Balanced tours plus before/after makespans. The final makespan
        never exceeds the initial one.
    """
    d = np.asarray(dist)
    tours: list[Tour] = list(q_rooted_tsp(d, sensors, depots, refine=refine))
    costs = [t.cost(d) for t in tours]
    initial = max(costs) if costs else 0.0
    moves = 0

    while moves < max_moves:
        worst = int(np.argmax(costs))
        worst_cost = costs[worst]
        if tours[worst].n_stops == 0:
            break
        # Best relocation of any stop of the worst tour into any other tour.
        best_new_makespan = worst_cost - _EPS
        best_move: tuple[int, int, int] | None = None  # (node, target, pos)
        others = [l for l in range(len(tours)) if l != worst]
        for node in tours[worst].stops():
            removed_cost = _remove_stop(tours[worst], node).cost(d)
            for l in others:
                delta, pos = _best_insertion(d, tours[l], node)
                candidate = max(removed_cost, costs[l] + delta,
                                *(costs[m] for m in others if m != l))
                if candidate < best_new_makespan - _EPS:
                    best_new_makespan = candidate
                    best_move = (node, l, pos)
        if best_move is None:
            break
        node, target, pos = best_move
        tours[worst] = _remove_stop(tours[worst], node)
        tours[target] = _insert_stop(tours[target], node, pos)
        if refine:
            tours[worst] = two_opt(d, tours[worst])
            tours[target] = two_opt(d, tours[target])
        costs[worst] = tours[worst].cost(d)
        costs[target] = tours[target].cost(d)
        moves += 1

    final = max(costs) if costs else 0.0
    return MinMaxResult(tours=tuple(tours), initial_makespan=initial,
                        final_makespan=final, moves=moves)
