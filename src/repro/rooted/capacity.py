"""Charger-range constraints: split tours that exceed a travel budget.

The paper assumes "each mobile charger has enough energy to replenish all
sensors if needed in each charging tour". Real vehicles have a range; the
companion work it cites as [7] (Liang et al., LCN 2014) studies exactly
this constraint. This extension adapts any tour to a range budget by the
classic tour-splitting construction:

Walk the tour's stop sequence; greedily extend the current *trip* while the
closed trip (depot -> stops so far -> depot) stays within the budget; when
the next stop would overflow, close the trip at the depot and start a new
one. On a metric, each trip's length is at most ``budget`` whenever every
individual stop is reachable at all (``2 * d(depot, stop) <= budget``), and
the number of trips is within a constant factor of the minimum possible for
budgets at least twice the tour's radius (the standard splitting argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import TourError
from repro.tsp.tour import Tour

__all__ = ["SplitResult", "split_tour_by_budget", "split_tours_by_budget"]

_EPS = 1e-9


@dataclass(frozen=True)
class SplitResult:
    """Outcome of splitting one tour.

    Parameters
    ----------
    trips:
        The resulting closed trips, each anchored at the original depot and
        each within the budget. A single trip means no split was needed.
    total_cost:
        Sum of trip lengths (>= the unsplit tour's cost; the overhead is
        the price of the range constraint).
    """

    trips: tuple[Tour, ...]
    total_cost: float

    @property
    def n_trips(self) -> int:
        return len(self.trips)


def split_tour_by_budget(dist: np.ndarray, tour: Tour, budget: float) -> SplitResult:
    """Split ``tour`` into depot-anchored trips each of length <= ``budget``.

    Parameters
    ----------
    dist:
        Full distance matrix.
    tour:
        The tour to split (its stop *order* is preserved across trips —
        keeping the orders of a 2-approximate tour keeps the splitting
        argument's guarantees).
    budget:
        Maximum closed-trip length. Must admit every stop individually:
        ``2 * d(depot, stop) <= budget`` for all stops, else the constraint
        is infeasible and a :class:`~repro.errors.TourError` is raised.

    Returns
    -------
    SplitResult
    """
    d = np.asarray(dist)
    if budget <= 0:
        raise TourError(f"split budget must be positive, got {budget}")
    depot = tour.depot
    stops = list(tour.stops())
    if not stops:
        return SplitResult(trips=(Tour.empty(depot),), total_cost=0.0)

    unreachable = [s for s in stops if 2.0 * d[depot, s] > budget * (1 + _EPS)]
    if unreachable:
        raise TourError(
            f"budget {budget} cannot reach stops {unreachable} "
            f"(round trip exceeds the budget)")

    trips: list[Tour] = []
    current: list[int] = []
    current_len = 0.0  # open path length: depot -> ... -> current[-1]
    for s in stops:
        last = current[-1] if current else depot
        extended = current_len + d[last, s]
        if current and extended + d[s, depot] > budget * (1 + _EPS):
            trips.append(Tour(depot=depot, order=(depot, *current)))
            current = [s]
            current_len = d[depot, s]
        else:
            current.append(s)
            current_len = extended
    trips.append(Tour(depot=depot, order=(depot, *current)))

    total = float(sum(t.cost(d) for t in trips))
    for t in trips:
        if t.cost(d) > budget * (1 + 1e-6):
            raise TourError("internal error: emitted trip exceeds the budget")
    return SplitResult(trips=tuple(trips), total_cost=total)


def split_tours_by_budget(dist: np.ndarray, tours: Sequence[Tour],
                          budget: float) -> list[SplitResult]:
    """Apply :func:`split_tour_by_budget` to a whole fleet's tours."""
    return [split_tour_by_budget(dist, t, budget) for t in tours]
