"""Incremental extension of a q-rooted MSF after sensors are added.

The adaptive repair step (Section VI.B) grows scheduling node sets: a
re-toured scheduling covers its base coverage set *plus* a handful of
absorbed urgent sensors. Rebuilding the forest from scratch repeats the
full dense contracted-Prim run of Algorithm 1 even though almost all of
the optimal structure is already known.

:func:`extend_q_rooted_msf` exploits the incremental-MST lemma instead:
when vertices ``S`` (and all their incident edges) are added to a graph
``G``, the new MST satisfies ``MST(G + S) ⊆ MST(G) ∪ δ(S)`` — the old
tree edges plus the edges incident to the added vertices. Running Prim
over just that candidate set (``O(|T| + |S|·n)`` edges instead of the
full ``O(n^2)``) therefore finds the same optimum.

Exactness contract
------------------
The function either returns a forest **identical** — edge for edge, in
the same discovery order and orientation — to what
:func:`repro.rooted.msf.q_rooted_msf` would produce from scratch on the
union set, or returns ``None`` to make the caller fall back to the
from-scratch path. Identity (not mere equal weight) matters because tour
construction walks the forest's adjacency in edge-insertion order; a
different-but-equally-light forest would change tours downstream.

Identity holds because Prim's selection at every round is the minimum
edge crossing the ``(tree, rest)`` cut, which under distinct edge
weights is always an MST edge and hence always in the candidate set; the
sparse frontier therefore picks the same node with the same parent every
round as the dense frontier does. Ties void the argument, so the
function *tie-gates*: if any two candidate weights are exactly equal it
refuses (returns ``None``) rather than risk a divergent-but-valid
forest. (A tie between a candidate and a never-inspected non-candidate
edge remains theoretically possible; on float coordinates it has
measure zero, and the differential check in :mod:`repro.check` fuzzes
exactly this equivalence.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.forest import RootedForest
from repro.obs.instrument import Instrumentation, ensure

__all__ = ["extend_q_rooted_msf"]


def extend_q_rooted_msf(dist: np.ndarray, base_sensors: Sequence[int],
                        base_forest: RootedForest, added: Sequence[int],
                        depots: Sequence[int],
                        *, obs: Instrumentation | None = None) -> RootedForest | None:
    """Extend ``base_forest`` to span ``base_sensors ∪ added``, exactly.

    Parameters
    ----------
    dist:
        Full ``(N, N)`` distance matrix in graph indices.
    base_sensors:
        Graph indices the base forest spans (its non-root nodes).
    base_forest:
        The optimal q-rooted MSF over ``base_sensors`` and ``depots`` —
        exactly what :func:`~repro.rooted.msf.q_rooted_msf` returned.
    added:
        Graph indices of the sensors to absorb (disjoint from
        ``base_sensors`` and ``depots``).
    depots:
        Graph indices of the ``q`` depots, in charger order. Must match
        ``base_forest.roots``.
    obs:
        Optional instrumentation; records the ``msf.incremental`` span
        and the ``msf.incremental.calls`` counter.

    Returns
    -------
    RootedForest | None
        The forest :func:`~repro.rooted.msf.q_rooted_msf` would build
        from scratch over the union set — or ``None`` when exact
        reconstruction cannot be certified (tied candidate weights,
        non-finite attachment costs). ``None`` is not an error; it means
        "use the from-scratch path".
    """
    d = np.asarray(dist, dtype=np.float64)
    base_idx = sorted(int(s) for s in base_sensors)
    add_idx = sorted(int(s) for s in added)
    r_idx = [int(r) for r in depots]
    if tuple(r_idx) != base_forest.roots:
        raise GraphError("extend_q_rooted_msf: depots do not match forest roots")
    if set(base_idx) & set(add_idx):
        raise GraphError("extend_q_rooted_msf: base and added sensor sets overlap")
    if set(r_idx) & (set(base_idx) | set(add_idx)):
        raise GraphError("extend_q_rooted_msf: sensor and depot index sets overlap")
    spanned = base_forest.all_nodes() - set(r_idx)
    if spanned != set(base_idx):
        raise GraphError(
            "extend_q_rooted_msf: base_forest does not span base_sensors")
    if not add_idx:
        return base_forest

    g = np.asarray(base_idx + add_idx, dtype=np.intp)
    g.sort()
    m = g.size
    roots = np.asarray(r_idx, dtype=np.intp)

    o = ensure(obs)
    o.incr("msf.incremental.calls")
    with o.span("msf.incremental", sensors=m, added=len(add_idx)):
        # --- Candidate edges (local indices; node m is the super-root). ---
        add_loc = np.searchsorted(g, np.asarray(add_idx, dtype=np.intp))
        # Old tree edges, split into sensor-sensor pairs and root links.
        old_u: list[int] = []
        old_v: list[int] = []
        old_linked: list[int] = []  # sensors bridged to the super-root
        root_set = set(r_idx)
        for tree in base_forest.trees:
            for a, b in tree:
                if a in root_set:
                    old_linked.append(int(np.searchsorted(g, b)))
                elif b in root_set:  # not produced by q_rooted_msf; tolerated
                    old_linked.append(int(np.searchsorted(g, a)))
                else:
                    old_u.append(int(np.searchsorted(g, a)))
                    old_v.append(int(np.searchsorted(g, b)))
        # All sensor-sensor edges incident to an added sensor.
        au = np.repeat(add_loc, m)
        av = np.tile(np.arange(m, dtype=np.intp), add_loc.size)
        keep = au != av
        cu = np.concatenate([np.minimum(au, av)[keep],
                             np.minimum(old_u, old_v).astype(np.intp)
                             if old_u else np.empty(0, dtype=np.intp)])
        cv = np.concatenate([np.maximum(au, av)[keep],
                             np.maximum(old_u, old_v).astype(np.intp)
                             if old_u else np.empty(0, dtype=np.intp)])
        # Dedupe (an added-added pair is generated from both endpoints).
        _, uniq = np.unique(cu * m + cv, return_index=True)
        cu, cv = cu[uniq], cv[uniq]
        w_ss = d[g[cu], g[cv]]
        # Super-root candidates: previously linked sensors + all added.
        sr_nodes = np.unique(np.concatenate([
            np.asarray(old_linked, dtype=np.intp), add_loc]))
        rc = d[np.ix_(g[sr_nodes], roots)]
        w_sr = rc.min(axis=1)
        sr_root = rc.argmin(axis=1)
        if not (np.all(np.isfinite(w_ss)) and np.all(np.isfinite(w_sr))):
            return None
        # Tie-gate: exact reconstruction is only certified under distinct
        # candidate weights.
        all_w = np.concatenate([w_ss, w_sr])
        if np.unique(all_w).size < all_w.size:
            return None

        # --- Sparse Prim over the candidate graph, super-root first. ---
        # CSR over both edge directions, so each node's frontier relax
        # touches only its candidate neighbours.
        src = np.concatenate([cu, cv, sr_nodes,
                              np.full(sr_nodes.size, m, dtype=np.intp)])
        dst = np.concatenate([cv, cu,
                              np.full(sr_nodes.size, m, dtype=np.intp), sr_nodes])
        wts = np.concatenate([w_ss, w_ss, w_sr, w_sr])
        order = np.argsort(src, kind="stable")
        dst = dst[order]
        wts = wts[order]
        starts = np.searchsorted(src[order], np.arange(m + 2))

        in_tree = np.zeros(m + 1, dtype=bool)
        in_tree[m] = True
        best = np.full(m + 1, np.inf)
        best_from = np.full(m + 1, m, dtype=np.intp)
        nb = dst[starts[m]:starts[m + 1]]
        best[nb] = wts[starts[m]:starts[m + 1]]

        sensor_edges: list[tuple[int, int]] = []
        linked: list[int] = []  # discovery-ordered super-root bridges
        sr_root_of = dict(zip(sr_nodes.tolist(), sr_root.tolist()))
        for _ in range(m):
            v = int(np.argmin(best))
            if not np.isfinite(best[v]):
                return None  # candidate graph disconnected — cannot certify
            u = int(best_from[v])
            if u == m:
                linked.append(v)
            else:
                sensor_edges.append((u, v))
            in_tree[v] = True
            best[v] = np.inf
            nb = dst[starts[v]:starts[v + 1]]
            nw = wts[starts[v]:starts[v + 1]]
            better = (nw < best[nb]) & ~in_tree[nb]
            best[nb[better]] = nw[better]
            best_from[nb[better]] = v

        # --- Un-contract + ownership, mirroring rooted_msf exactly. ---
        root_links = [(int(sr_root_of[v]), v) for v in linked]
        adj: list[list[int]] = [[] for _ in range(m)]
        for u, v in sensor_edges:
            adj[u].append(v)
            adj[v].append(u)
        owner = np.full(m, -1, dtype=np.intp)
        for root, start in root_links:
            stack = [start]
            owner[start] = root
            while stack:
                x = stack.pop()
                for y in adj[x]:
                    if owner[y] == -1:
                        owner[y] = root
                        stack.append(y)
        if np.any(owner == -1):
            return None  # pragma: no cover - unreachable after a full Prim run

        trees: list[list[tuple[int, int]]] = [[] for _ in range(roots.size)]
        for root, sensor in root_links:
            trees[root].append((int(roots[root]), int(g[sensor])))
        for u, v in sensor_edges:
            trees[int(owner[u])].append((int(g[u]), int(g[v])))
    return RootedForest(roots=tuple(int(r) for r in roots),
                        trees=tuple(tuple(t) for t in trees))
