"""Algorithm 2: the 2-approximation for the q-rooted TSP.

Given a to-be-charged sensor set ``V^c`` and ``q`` depots, find ``q`` closed
tours — one through each depot — jointly covering ``V^c`` with minimum total
length. The paper's algorithm:

1. Compute the optimal q-rooted MSF (Algorithm 1). Its weight lower-bounds
   the optimal q-tour cost (drop one edge from each optimal tour to get a
   feasible forest).
2. Turn each tree into a closed tour by doubling its edges, extracting an
   Eulerian circuit, and short-cutting repeated nodes — implemented as a
   single DFS preorder walk, which on a tree is provably the same tour.

The result costs at most ``2 * MSF <= 2 * OPT`` (paper's Theorem 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.kernels import KernelBackend
from repro.obs.instrument import Instrumentation, ensure
from repro.rooted.msf import q_rooted_msf
from repro.rooted.refine import refine_tours
from repro.tsp.construct import tours_from_forest
from repro.tsp.tour import Tour

__all__ = ["q_rooted_tsp", "tours_from_forest", "tours_total_cost"]


def q_rooted_tsp(dist: np.ndarray, sensors: Sequence[int], depots: Sequence[int],
                 *, refine: bool = False,
                 backend: "str | KernelBackend | None" = None,
                 obs: Instrumentation | None = None) -> list[Tour]:
    """Solve the q-rooted TSP 2-approximately (Algorithm 2).

    Parameters
    ----------
    dist:
        Full distance matrix.
    sensors:
        Graph indices of the to-be-charged sensors (may be empty).
    depots:
        Graph indices of the ``q`` depots; output tour ``l`` is anchored at
        ``depots[l]``. Depots with nothing assigned yield empty tours of
        cost zero (the charger stays home), exactly as the paper allows.
    refine:
        Apply the 2-opt/Or-opt post-pass. Off by default — the paper's
        algorithm does not include it; the ``abl-refine`` bench measures
        what it buys.
    backend:
        Kernel backend (:mod:`repro.kernels`) for the MST and refinement
        hot paths; ``None`` resolves via the process default /
        ``REPRO_KERNEL_BACKEND``.
    obs:
        Optional instrumentation context; records a ``qtsp`` span, the
        ``qtsp.calls`` counter and the ``qtsp.shortcut_saving`` value
        series (doubled-forest walk length minus the realised tour cost —
        what the Euler short-cutting step saves).

    Returns
    -------
    list[Tour]
        One tour per depot, jointly covering ``sensors``.
    """
    o = ensure(obs)
    o.incr("qtsp.calls")
    sensors = list(sensors)
    with o.span("qtsp", sensors=len(sensors)):
        forest = q_rooted_msf(dist, sensors, depots, backend=backend, obs=obs)
        tours = tours_from_forest(forest)
        if refine:
            tours = refine_tours(dist, tours, backend=backend, obs=obs)
    if o.enabled:
        d = np.asarray(dist)
        o.observe("qtsp.shortcut_saving",
                  2.0 * forest.weight(d) - tours_total_cost(d, tours))
    return tours


def tours_total_cost(dist: np.ndarray, tours: Sequence[Tour]) -> float:
    """Sum of closed-tour lengths — the service cost of one scheduling."""
    d = np.asarray(dist)
    return float(sum(t.cost(d) for t in tours))
