"""Optional post-optimisation of q-rooted tours.

The improvers only ever accept strictly better orders, so refined solutions
keep every guarantee of the construction they start from. This is the
``abl-refine`` ablation's subject, not part of the paper's algorithm.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.kernels import KernelBackend, or_opt, two_opt
from repro.obs.instrument import Instrumentation
from repro.tsp.tour import Tour

__all__ = ["refine_tours"]


def refine_tours(dist: np.ndarray, tours: Sequence[Tour],
                 *, method: str = "2opt",
                 backend: "str | KernelBackend | None" = None,
                 obs: Instrumentation | None = None) -> list[Tour]:
    """Improve each tour independently with local search.

    Parameters
    ----------
    dist:
        Full distance matrix.
    tours:
        Tours to improve (depot assignments are never changed — the q-rooted
        structure, i.e. which charger serves which sensors, is preserved).
    method:
        ``"2opt"`` (default) or ``"2opt+oropt"`` for the heavier pipeline.
    backend:
        Kernel backend for the improvers (:mod:`repro.kernels`); ``None``
        resolves via the process default / ``REPRO_KERNEL_BACKEND``.
    obs:
        Optional instrumentation context, forwarded to the improvers
        (``two_opt.passes`` / ``two_opt.moves`` counters and friends).

    Returns
    -------
    list[Tour]
        Improved tours; each costs at most its input's cost.
    """
    if method not in ("2opt", "2opt+oropt"):
        raise ConfigError(f"refine_tours: unknown method {method!r}")
    d = np.asarray(dist)
    out: list[Tour] = []
    for t in tours:
        improved = two_opt(d, t, backend=backend, obs=obs)
        if method == "2opt+oropt":
            improved = or_opt(d, improved, backend=backend, obs=obs)
            improved = two_opt(d, improved, backend=backend, obs=obs)
        out.append(improved)
    return out
