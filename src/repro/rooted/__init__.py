"""q-rooted algorithms: the paper's Algorithm 1 and Algorithm 2.

* :func:`~repro.rooted.msf.q_rooted_msf` — exact minimum spanning forest
  with one tree per depot (Algorithm 1): contract the depots into a
  super-root, MST, un-contract. Optimality is Lemma 1.
* :func:`~repro.rooted.msf.rooted_msf` — the same contraction engine over an
  arbitrary sensor/root cost structure; the adaptive patch phase reuses it
  with *scheduling supernodes* as roots (Section VI).
* :func:`~repro.rooted.qtsp.q_rooted_tsp` — the 2-approximation for the
  q-rooted TSP (Algorithm 2): per-tree double/Euler/shortcut, realised as a
  DFS preorder walk.
* :func:`~repro.rooted.refine.refine_tours` — optional 2-opt/Or-opt
  post-pass (never worsens a tour, so the 2x guarantee is preserved).
* :func:`~repro.rooted.incremental.extend_q_rooted_msf` — exact incremental
  extension of a forest after sensors are added (the adaptive patch phase's
  fast re-plan path; falls back to from-scratch when it cannot certify
  identity).

Extensions beyond the paper (motivated by its cited companion works):

* :func:`~repro.rooted.minmax.minmax_q_rooted_tours` — balance the fleet's
  longest tour (min-max objective, cf. the paper's reference [16]).
* :func:`~repro.rooted.capacity.split_tour_by_budget` — adapt tours to a
  vehicle range budget (cf. reference [7]).
"""

from repro.rooted.capacity import (
    SplitResult,
    split_tour_by_budget,
    split_tours_by_budget,
)
from repro.rooted.exact import exact_q_rooted_tsp
from repro.rooted.incremental import extend_q_rooted_msf
from repro.rooted.minmax import MinMaxResult, makespan, minmax_q_rooted_tours
from repro.rooted.msf import MsfAssignment, q_rooted_msf, rooted_msf
from repro.rooted.qtsp import q_rooted_tsp, tours_total_cost
from repro.rooted.refine import refine_tours

__all__ = [
    "MinMaxResult",
    "MsfAssignment",
    "SplitResult",
    "exact_q_rooted_tsp",
    "extend_q_rooted_msf",
    "makespan",
    "minmax_q_rooted_tours",
    "q_rooted_msf",
    "q_rooted_tsp",
    "refine_tours",
    "rooted_msf",
    "split_tour_by_budget",
    "split_tours_by_budget",
    "tours_total_cost",
]
