"""Rooted forests: the output type of the q-rooted MSF algorithm.

A :class:`RootedForest` is a set of vertex-disjoint trees, each anchored at
a distinct *root* (a depot in the paper's setting), jointly spanning a given
node set. It knows its own weight under a distance matrix and can hand each
tree to the tour-construction step of Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.traversal import adjacency_from_edges, preorder

__all__ = ["RootedForest", "forest_from_parent"]

Edge = tuple[int, int]


@dataclass(frozen=True)
class RootedForest:
    """Vertex-disjoint trees, one per root.

    Parameters
    ----------
    roots:
        The distinct root node ids, in depot order (tree ``l`` belongs to
        charger ``l``).
    trees:
        ``trees[l]`` is the edge list of the tree rooted at ``roots[l]``;
        an empty list means the root is isolated (that charger stays home).
    """

    roots: tuple[int, ...]
    trees: tuple[tuple[Edge, ...], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(set(self.roots)) != len(self.roots):
            raise GraphError(f"RootedForest: duplicate roots in {self.roots}")
        if len(self.trees) != len(self.roots):
            raise GraphError(
                f"RootedForest: {len(self.roots)} roots but {len(self.trees)} trees")
        claimed: set[int] = set()
        for root, tree in zip(self.roots, self.trees):
            nodes = self._tree_nodes(root, tree)
            overlap = claimed & nodes
            if overlap:
                raise GraphError(f"RootedForest: trees share nodes {sorted(overlap)}")
            claimed |= nodes

    @staticmethod
    def _tree_nodes(root: int, tree: Sequence[Edge]) -> set[int]:
        nodes = {root}
        for u, v in tree:
            nodes.add(u)
            nodes.add(v)
        return nodes

    @property
    def q(self) -> int:
        """Number of trees (= number of chargers)."""
        return len(self.roots)

    def nodes_of(self, l: int) -> set[int]:
        """All nodes of tree ``l``, including its root."""
        return self._tree_nodes(self.roots[l], self.trees[l])

    def all_nodes(self) -> set[int]:
        """Union of node sets over all trees."""
        out: set[int] = set()
        for l in range(self.q):
            out |= self.nodes_of(l)
        return out

    def all_edges(self) -> list[Edge]:
        """Concatenation of the trees' edge lists."""
        return [e for tree in self.trees for e in tree]

    def weight(self, dist: np.ndarray) -> float:
        """Total edge weight of the forest under ``dist``."""
        edges = self.all_edges()
        if not edges:
            return 0.0
        idx = np.asarray(edges, dtype=np.intp)
        return float(np.asarray(dist)[idx[:, 0], idx[:, 1]].sum())

    def tree_weight(self, l: int, dist: np.ndarray) -> float:
        """Edge weight of tree ``l`` alone."""
        tree = self.trees[l]
        if not tree:
            return 0.0
        idx = np.asarray(tree, dtype=np.intp)
        return float(np.asarray(dist)[idx[:, 0], idx[:, 1]].sum())

    def preorder_of(self, l: int) -> list[int]:
        """DFS preorder of tree ``l`` from its root (Algorithm 2's tour order)."""
        root = self.roots[l]
        adj = adjacency_from_edges(self.trees[l], nodes=[root])
        return preorder(adj, root)

    def validate_spanning(self, required: Iterable[int]) -> None:
        """Raise :class:`GraphError` unless every node in ``required`` is
        covered by some tree."""
        missing = set(required) - self.all_nodes()
        if missing:
            raise GraphError(f"RootedForest: nodes not spanned: {sorted(missing)}")


def forest_from_parent(roots: Sequence[int],
                       parent: Mapping[int, int]) -> RootedForest:
    """Build a :class:`RootedForest` from a parent map.

    Parameters
    ----------
    roots:
        Root ids (keys absent from ``parent``).
    parent:
        ``parent[v] = u`` meaning edge ``(u, v)``; following parents from any
        node must terminate at one of ``roots``.
    """
    root_set = set(roots)
    # Resolve which root each node hangs under, memoised.
    owner: dict[int, int] = {r: r for r in roots}

    def resolve(v: int) -> int:
        trail: list[int] = []
        on_trail: set[int] = set()
        while v not in owner:
            if v in on_trail:
                raise GraphError(
                    f"forest_from_parent: cycle through node {v} reaches no root")
            trail.append(v)
            on_trail.add(v)
            if v not in parent:
                raise GraphError(f"forest_from_parent: node {v} reaches no root")
            v = parent[v]
        r = owner[v]
        for t in trail:
            owner[t] = r
        return r

    buckets: dict[int, list[Edge]] = {r: [] for r in roots}
    for v, u in parent.items():
        if v in root_set:
            raise GraphError(f"forest_from_parent: root {v} listed with a parent")
        buckets[resolve(v)].append((u, v))
    return RootedForest(
        roots=tuple(roots),
        trees=tuple(tuple(buckets[r]) for r in roots),
    )
