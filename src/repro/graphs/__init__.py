"""Graph kernels: MSTs, rooted forests, Eulerian circuits, traversals.

These are the combinatorial primitives under the paper's Algorithms 1 and 2:

* :func:`~repro.graphs.mst.prim_mst` — dense-matrix Prim in ``O(n^2)``
  (exactly the complexity the paper's analysis charges for the MST step).
* :func:`~repro.graphs.mst.kruskal_mst` — sparse Kruskal over an explicit
  edge list, used by the adaptive patch phase whose auxiliary graphs are
  not complete.
* :class:`~repro.graphs.unionfind.UnionFind` — path-halving + union by size.
* :class:`~repro.graphs.forest.RootedForest` — the output type of the
  q-rooted MSF algorithm: disjoint trees, each anchored at a depot.
* :func:`~repro.graphs.euler.eulerian_circuit` — Hierholzer on an even-degree
  multigraph (the doubled-tree step of Algorithm 2, and the tour-merging
  argument of Lemma 3).
* :func:`~repro.graphs.traversal.preorder` — DFS preorder of a tree, which is
  the "double + Euler + shortcut" composite in one pass.
"""

from repro.graphs.euler import eulerian_circuit
from repro.graphs.forest import RootedForest, forest_from_parent
from repro.graphs.mst import kruskal_mst, mst_weight, prim_mst
from repro.graphs.traversal import adjacency_from_edges, preorder
from repro.graphs.unionfind import UnionFind

__all__ = [
    "RootedForest",
    "UnionFind",
    "adjacency_from_edges",
    "eulerian_circuit",
    "forest_from_parent",
    "kruskal_mst",
    "mst_weight",
    "preorder",
    "prim_mst",
]
