"""Tree traversals and adjacency construction."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GraphError

__all__ = ["adjacency_from_edges", "preorder"]


def adjacency_from_edges(edges: Iterable[tuple[int, int]],
                         *, nodes: Iterable[int] | None = None) -> dict[int, list[int]]:
    """Undirected adjacency lists from an edge list.

    Parameters
    ----------
    edges:
        ``(u, v)`` pairs; both directions are recorded.
    nodes:
        Optional extra node ids to include with (possibly) empty neighbour
        lists — needed for isolated roots in the q-rooted forest.

    Neighbour lists preserve insertion order, so traversals over them are
    deterministic given a deterministic edge order.
    """
    adj: dict[int, list[int]] = {}
    if nodes is not None:
        for u in nodes:
            adj.setdefault(u, [])
    for u, v in edges:
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    return adj


def preorder(adj: dict[int, Sequence[int]], root: int) -> list[int]:
    """Iterative DFS preorder of the tree ``adj`` starting at ``root``.

    For a tree, visiting nodes in DFS preorder and short-cutting between
    consecutive first visits is exactly the "double every edge, take an
    Eulerian circuit, skip repeats" construction of Algorithm 2 — so the
    preorder *is* the 2-approximate tour order (minus the closing edge).

    Raises
    ------
    GraphError
        If ``root`` is not a node of ``adj``. Cycles in the input are not
        detected (nodes are visited once, so the output is still a valid
        vertex ordering) — callers pass trees.
    """
    if root not in adj:
        raise GraphError(f"preorder: root {root} not present in adjacency")
    seen = {root}
    order = [root]
    # Explicit stack; children pushed in reverse so the leftmost neighbour
    # is visited first, matching the recursive formulation.
    stack = [iter(adj[root])]
    path = [root]
    while stack:
        try:
            nxt = next(stack[-1])
        except StopIteration:
            stack.pop()
            path.pop()
            continue
        if nxt in seen:
            continue
        seen.add(nxt)
        order.append(nxt)
        path.append(nxt)
        stack.append(iter(adj[nxt]))
    return order
