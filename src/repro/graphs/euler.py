"""Eulerian circuits on even-degree multigraphs (Hierholzer's algorithm).

Algorithm 2 in the paper doubles every edge of a tree — giving a connected
multigraph in which every degree is even — and walks an Eulerian circuit.
Lemma 3's proof glues several closed tours sharing a depot into one Eulerian
multigraph the same way. This module implements the general primitive; the
tree case also has the cheaper :func:`repro.graphs.traversal.preorder`
shortcut used on the hot path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.errors import GraphError

__all__ = ["eulerian_circuit"]


def eulerian_circuit(edges: Sequence[tuple[int, int]], start: int) -> list[int]:
    """Eulerian circuit of the undirected multigraph ``edges`` from ``start``.

    Parameters
    ----------
    edges:
        Multiset of undirected edges; parallel edges and self-loops allowed.
        Every vertex must have even degree and all edges must lie in one
        connected component containing ``start``.
    start:
        First (and last) vertex of the returned circuit.

    Returns
    -------
    list[int]
        Vertex sequence ``[start, ..., start]`` using every edge exactly
        once; ``[start]`` if there are no edges.

    Raises
    ------
    GraphError
        If a vertex has odd degree or some edges are unreachable from
        ``start`` (either condition makes a circuit impossible).
    """
    if not edges:
        return [start]

    # Adjacency as lists of (neighbour, edge_id); a used[] bitmap marks
    # consumed edges so parallel edges are handled individually.
    adj: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for eid, (u, v) in enumerate(edges):
        adj[u].append((v, eid))
        adj[v].append((u, eid))
    if start not in adj:
        raise GraphError(f"eulerian_circuit: start {start} has no incident edges")
    for node, nbrs in adj.items():
        if len(nbrs) % 2 != 0:
            raise GraphError(f"eulerian_circuit: vertex {node} has odd degree {len(nbrs)}")

    used = [False] * len(edges)
    # ptr[v]: index into adj[v] of the next candidate edge, so each adjacency
    # list is scanned once overall (linear-time Hierholzer).
    ptr: dict[int, int] = defaultdict(int)
    stack = [start]
    circuit: list[int] = []
    while stack:
        v = stack[-1]
        nbrs = adj[v]
        i = ptr[v]
        while i < len(nbrs) and used[nbrs[i][1]]:
            i += 1
        ptr[v] = i
        if i == len(nbrs):
            circuit.append(stack.pop())
        else:
            u, eid = nbrs[i]
            used[eid] = True
            stack.append(u)
    if not all(used):
        raise GraphError("eulerian_circuit: graph is disconnected from start")
    circuit.reverse()
    return circuit
