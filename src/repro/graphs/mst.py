"""Minimum spanning trees: dense Prim and sparse Kruskal.

The paper's Algorithm 1 computes an MST of a *complete* contracted graph and
charges ``O(n^2)`` for it; :func:`prim_mst` matches that bound with a fully
vectorised inner loop (array minima instead of a heap — on dense metric
instances this is both asymptotically right and constant-factor fast in
NumPy, per the HPC guides' "vectorise the bottleneck" rule).

:func:`kruskal_mst` handles explicit sparse edge lists, which the adaptive
patch phase needs (its auxiliary graphs ``G^(k)`` contain only
sensor-sensor and sensor-root edges, not root-root ones).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.unionfind import UnionFind

__all__ = ["prim_mst", "kruskal_mst", "mst_weight"]

Edge = tuple[int, int]


def prim_mst(dist: np.ndarray, *, root: int = 0) -> list[Edge]:
    """MST of a complete graph given by dense distance matrix ``dist``.

    Classic array-based Prim: maintain for every out-of-tree node its
    cheapest connection to the tree; each of the ``n - 1`` rounds does two
    vectorised ``O(n)`` passes (argmin + relax), for ``O(n^2)`` total.

    Parameters
    ----------
    dist:
        ``(n, n)`` symmetric distance matrix. ``inf`` entries are allowed and
        mean "no edge"; if they disconnect the graph a :class:`GraphError`
        is raised.
    root:
        Node to grow the tree from (result is root-independent; the parameter
        exists so rooted callers get their preferred orientation for free).

    Returns
    -------
    list[tuple[int, int]]
        ``n - 1`` edges as ``(parent, child)`` pairs, oriented away from
        ``root`` in discovery order. Empty when ``n == 1``.
    """
    d = np.asarray(dist, dtype=np.float64)
    if d.ndim != 2 or d.shape[0] != d.shape[1]:
        raise GraphError(f"prim_mst: matrix must be square, got shape {d.shape}")
    n = d.shape[0]
    if n == 0:
        raise GraphError("prim_mst: empty graph")
    if not (0 <= root < n):
        raise GraphError(f"prim_mst: root {root} out of range for n={n}")
    if n == 1:
        return []

    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    # best[v] = cheapest edge weight from v into the current tree;
    # best_from[v] = the tree endpoint realising it.
    best = d[root].copy()
    best[root] = np.inf
    best_from = np.full(n, root, dtype=np.intp)

    edges: list[Edge] = []
    for _ in range(n - 1):
        v = int(np.argmin(best))
        if not np.isfinite(best[v]):
            raise GraphError("prim_mst: graph is disconnected (inf frontier)")
        edges.append((int(best_from[v]), v))
        in_tree[v] = True
        best[v] = np.inf
        # Relax: nodes for which v now offers a cheaper connection.
        row = d[v]
        better = (row < best) & ~in_tree
        best[better] = row[better]
        best_from[better] = v
    return edges


def kruskal_mst(n: int, edges: Iterable[tuple[int, int, float]]) -> list[Edge]:
    """Minimum spanning forest of an explicit weighted edge list.

    Parameters
    ----------
    n:
        Number of nodes (labelled ``0..n-1``).
    edges:
        ``(u, v, w)`` triples. Self-loops are ignored.

    Returns
    -------
    list[tuple[int, int]]
        Edges of a minimum spanning *forest* — if the input is disconnected
        each component gets its own tree (callers that require spanning
        connectivity should check ``len(result) == n - 1``).
    """
    if n < 0:
        raise GraphError(f"kruskal_mst: n must be non-negative, got {n}")
    triples = [(w, u, v) for (u, v, w) in edges if u != v]
    for w, u, v in triples:
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"kruskal_mst: edge ({u}, {v}) out of range for n={n}")
    triples.sort()
    uf = UnionFind(n)
    out: list[Edge] = []
    for _, u, v in triples:
        if uf.union(u, v):
            out.append((u, v))
            if len(out) == n - 1:
                break
    return out


def mst_weight(dist: np.ndarray, edges: Sequence[Edge]) -> float:
    """Total weight of ``edges`` under ``dist`` (convenience for bounds)."""
    if not edges:
        return 0.0
    idx = np.asarray(edges, dtype=np.intp)
    return float(np.asarray(dist)[idx[:, 0], idx[:, 1]].sum())
