"""Disjoint-set (union-find) with path halving and union by size."""

from __future__ import annotations

__all__ = ["UnionFind"]


class UnionFind:
    """Classic disjoint-set forest over the integers ``0..n-1``.

    ``find`` uses path halving (single-pass, no recursion) and ``union`` is
    by size, giving the usual near-constant amortised complexity. Used by
    Kruskal's algorithm and by connectivity checks in tests.
    """

    __slots__ = ("_parent", "_size", "_n_components")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"UnionFind size must be non-negative, got {n}")
        self._parent = list(range(n))
        self._size = [1] * n
        self._n_components = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._n_components

    def find(self, x: int) -> int:
        """Representative of the set containing ``x``."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns
        -------
        bool
            True if a merge happened, False if they were already together.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._n_components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def component_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return self._size[self.find(x)]

    def components(self) -> dict[int, list[int]]:
        """Map from representative to sorted member list (test helper)."""
        out: dict[int, list[int]] = {}
        for x in range(len(self._parent)):
            out.setdefault(self.find(x), []).append(x)
        return out
