"""``MinTotalDistance-var``: the online policy for variable cycles.

The full Section VI machinery as a simulator policy:

1. At every slot boundary the policy ingests the monitored rates
   (:class:`~repro.adaptive.predictor.EwmaRatePredictor`), derives estimated
   maximum charging cycles, and passes them through the
   :class:`~repro.adaptive.monitor.VariationMonitor` dead-band.
2. It keeps its current plan while, for every sensor,
   ``tau'_i(t-1) <= tau_hat_i(t) < 2 tau'_i(t-1)`` — the paper's reuse
   window: still feasible and not wastefully frequent — *and* (a
   strengthening this implementation adds) every sensor's residual energy
   reaches its next scheduled charge at the conservative rate
   ``max(predicted, observed)``. The strengthening costs nothing when the
   paper's conditions hold with truthful predictions, and prevents deaths
   when the EWMA lags a sudden rate increase.
3. Otherwise it re-plans: Algorithm 3 from the current instant with the
   updated cycles, then the :func:`~repro.adaptive.patch.build_patch`
   repair splices sensors that cannot wait for their first scheduled
   charge into the earliest schedulings (including an immediate ``C'_0``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.adaptive.monitor import VariationMonitor
from repro.adaptive.patch import build_patch
from repro.adaptive.predictor import EwmaRatePredictor
from repro.core.mintotal import min_total_distance
from repro.core.schedule import ChargingScheduling
from repro.errors import ConfigError
from repro.kernels import KernelBackend, resolve
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger
from repro.plan.cache import PlanArtifactCache
from repro.sim.policies import SimulationView

__all__ = ["MinTotalDistanceVarPolicy"]

_TOL = 1e-9

log = get_logger(__name__)


class MinTotalDistanceVarPolicy:
    """Adaptive multi-charger scheduling under variable charging cycles.

    Parameters
    ----------
    gamma:
        EWMA recency weight (Section VI.A). Default 1.0: within the paper's
        slotted model the measured rate *is* the rate until the next
        boundary, so full recency is the accurate choice; use < 1 to smooth
        noisy telemetry.
    report_threshold:
        Relative dead-band of the sensor-side variation monitor (0 reports
        every change).
    refine:
        Forward 2-opt refinement to all tour constructions.
    patch_tie_break:
        Forwarded to :func:`repro.adaptive.patch.build_patch`.
        ``"immediate"`` (default) is paper-faithful — it reproduces the
        reported near-parity with Greedy under extreme instability
        (Fig. 5, ``ΔT = 1``). ``"defer"`` is this library's improvement:
        measurably cheaper under instability with identical safety (the
        ``abl-tiebreak`` bench quantifies it).
    patch_incremental:
        Forwarded to :func:`repro.adaptive.patch.build_patch`: re-tour
        grown schedulings by extending their cached base forest instead of
        rebuilding from scratch. Pure accelerator — tours are identical
        either way. On by default.
    kernel_backend:
        Kernel backend (:mod:`repro.kernels`) for all numeric hot paths of
        the plan/patch pipeline; ``None`` resolves via the process default
        / ``REPRO_KERNEL_BACKEND``. Resolved eagerly, so an unknown name
        fails at construction time.
    cache:
        Plan-artifact reuse across re-plans. ``True`` (default) gives the
        policy a private :class:`~repro.plan.cache.PlanArtifactCache`,
        created fresh at every :meth:`reset`: successive re-plans over the
        same fixed geometry then skip Algorithms 1–2 for every coverage set
        already solved (the replanned plans are tour-for-tour identical to
        the uncached ones — caching is a pure accelerator). ``False``
        disables reuse. Passing a :class:`PlanArtifactCache` instance
        shares it across resets/policies (keys carry the geometry
        fingerprint, so cross-topology sharing is safe).
    instrumentation:
        Optional :class:`~repro.obs.instrument.Instrumentation` context.
        Each rebuild runs under a ``replan`` span; triggers are classified
        into ``replan.trigger.shrunk`` / ``.doubled`` / ``.survival``
        counters (plus a ``replan.trigger`` trace event) and kept-plan
        checks count as ``replan.keep``. Forwarded to Algorithm 3 and the
        patch step. ``None`` (the default) is a strict no-op.

    Attributes
    ----------
    n_replans:
        How many times the policy rebuilt its plan (diagnostics; the
        ``fig5`` bench correlates this with workload stability).
    """

    def __init__(self, *, gamma: float = 1.0, report_threshold: float = 0.0,
                 refine: bool = False, patch_tie_break: str = "immediate",
                 patch_incremental: bool = True,
                 cache: PlanArtifactCache | bool = True,
                 kernel_backend: "str | KernelBackend | None" = None,
                 instrumentation: Instrumentation | None = None) -> None:
        if patch_tie_break not in ("defer", "immediate"):
            raise ConfigError(
                f"patch_tie_break must be 'defer' or 'immediate', got {patch_tie_break!r}")
        self._obs = ensure(instrumentation)
        self.gamma = gamma
        self.report_threshold = report_threshold
        self.refine = refine
        self.patch_tie_break = patch_tie_break
        self.patch_incremental = patch_incremental
        self.kernel_backend = resolve(kernel_backend)
        self._cache_policy = cache
        self._cache: PlanArtifactCache | None = (
            cache if isinstance(cache, PlanArtifactCache) else None)
        self.n_replans = 0
        self._net: SensorNetwork | None = None
        self._horizon = math.inf
        self._pred = EwmaRatePredictor(gamma)
        self._monitor = VariationMonitor(report_threshold)
        # Current plan state.
        self._queue: list[ChargingScheduling] = []
        self._cursor = 0
        self._assigned: np.ndarray | None = None  # tau'_i of the active plan
        self._anchor = 0.0                        # start time of the active plan

    # -------------------------------------------------------------- policy API
    def reset(self, network: SensorNetwork, horizon: float) -> None:
        self._net = network
        self._horizon = horizon
        if self._cache_policy is True:
            self._cache = PlanArtifactCache()  # private, per run
        elif self._cache_policy is False:
            self._cache = None
        # else: a shared cache instance was injected; keep it across resets.
        self._pred = EwmaRatePredictor(self.gamma)
        self._monitor = VariationMonitor(self.report_threshold)
        self._queue = []
        self._cursor = 0
        self._assigned = None
        self._anchor = 0.0
        self.n_replans = 0

    def next_dispatch_time(self, now: float) -> float | None:
        while (self._cursor < len(self._queue)
               and self._queue[self._cursor].time < now - _TOL):
            self._cursor += 1
        if self._cursor >= len(self._queue):
            return None
        return self._queue[self._cursor].time

    def observe(self, view: SimulationView) -> None:
        assert self._net is not None, "observe before reset"
        self._pred.update(view.observed_rates)
        tau_hat = self._pred.predicted_cycles(view.batteries)
        reported = self._monitor.update(tau_hat)
        # Safety cap: never *plan* a cycle longer than what the worse of
        # (smoothed, currently measured) rate supports. EWMA smoothing and
        # the report dead-band may then only delay *lengthening* a cycle
        # (harmless: the sensor is charged more often than needed), never
        # shortening it — which is the direction that kills sensors
        # mid-slot, where no observation can save them.
        cons = self._pred.conservative_rates()
        cap = np.divide(view.batteries, cons,
                        out=np.full(view.batteries.shape, np.inf),
                        where=cons > 0)
        reported = np.minimum(reported, cap)
        # Offline (churned-out) sensors observe no consumption at all, so
        # their predicted cycle is infinite — which the quantizer rejects.
        # Plan them at the horizon scale instead: finite, and long enough
        # that the base plan schedules at most one (skipped) visit. When
        # the sensor rejoins, its cycle shrinks and triggers a replan.
        reported = np.where(np.isfinite(reported), reported, self._horizon)

        if self._assigned is None:
            # First observation (t = 0): all sensors are full — plain
            # Algorithm 3, no patch needed.
            self._install_plan(view, reported, initial=True)
            return
        reason = self._replan_reason(view, reported)
        if reason is None:
            self._obs.incr("replan.keep")
            return
        self._obs.incr(f"replan.trigger.{reason}")
        self._obs.event("replan.trigger", reason=reason, time=float(view.time))
        log.debug("replan at t=%.3f (%s)", view.time, reason)
        self._install_plan(view, reported, initial=False)

    def dispatch(self, view: SimulationView) -> ChargingScheduling | None:
        if self._cursor >= len(self._queue):
            return None
        sched = self._queue[self._cursor]
        self._cursor += 1
        return sched

    # ---------------------------------------------------------------- internals
    def _replan_reason(self, view: SimulationView, reported: np.ndarray) -> str | None:
        """Why the active plan must be rebuilt, or ``None`` if it holds.

        The paper's reuse test plus the conservative survival check;
        classifying the trigger feeds the ``replan.trigger.*`` counters.
        """
        assert self._assigned is not None
        a = self._assigned
        # (paper) infeasible: some cycle shrank below its plan cycle.
        if np.any(reported < a * (1.0 - _TOL)):
            return "shrunk"
        # (paper) wasteful: some cycle at least doubled past its plan cycle.
        if np.any(reported >= 2.0 * a * (1.0 - _TOL)):
            return "doubled"
        # (strengthening) survival to the next scheduled charge.
        deadline = self._next_charge_times(view.time)
        rates = self._pred.conservative_rates()
        lifetimes = np.divide(view.energy, rates,
                              out=np.full(view.energy.shape, np.inf),
                              where=rates > 0)
        if np.any(view.time + lifetimes < deadline * (1.0 - _TOL)):
            return "survival"
        return None

    def _next_charge_times(self, now: float) -> np.ndarray:
        """Per-sensor next *guaranteed* charge under the active base plan.

        The base plan charges sensor ``i`` at ``anchor + m * tau'_i`` for
        every integer ``m >= 1``; patches only ever add earlier charges, so
        this analytic value is a safe (upper-bound) deadline. Charges at or
        beyond the horizon never happen — the deadline is then the horizon
        itself (the sensor only needs to survive to ``T``).
        """
        assert self._assigned is not None
        p = self._assigned
        m = np.maximum(np.ceil((now - self._anchor) / p - _TOL), 1.0)
        nxt = self._anchor + m * p
        # A charge exactly "now" is happening in this very step; the next
        # *future* charge is one period later, but energy-wise the sensor is
        # covered, so keeping nxt = now is safe and simpler.
        return np.minimum(nxt, self._horizon)

    def _install_plan(self, view: SimulationView, cycles: np.ndarray,
                      *, initial: bool) -> None:
        """Run Algorithm 3 from ``view.time``, repair with the patch step,
        and materialise the dispatch queue."""
        assert self._net is not None
        t = view.time
        if t >= self._horizon - _TOL:
            self._queue, self._cursor = [], 0
            return
        with self._obs.span("replan", initial=initial, time=float(t)) as sp:
            result = min_total_distance(self._net, self._horizon, cycles=cycles,
                                        refine=self.refine, start_time=t,
                                        cache=self._cache,
                                        kernel_backend=self.kernel_backend,
                                        obs=self._obs)
            quant = result.quantization
            queue: list[ChargingScheduling] = []

            patched_tours: tuple = ()  # patch.tours when patched; index past end = no override
            if not initial:
                rates = self._pred.conservative_rates()
                lifetimes = np.divide(view.energy, rates,
                                      out=np.full(view.energy.shape, np.inf),
                                      where=rates > 0)
                patch = build_patch(self._net, quant, lifetimes, refine=self.refine,
                                    tie_break=self.patch_tie_break,
                                    incremental=self.patch_incremental,
                                    cache=self._cache,
                                    kernel_backend=self.kernel_backend,
                                    obs=self._obs)
                patched_tours = patch.tours
                if patch.tours[0] is not None:
                    queue.append(ChargingScheduling(time=t, tours=patch.tours[0]))
                self.n_replans += 1

            j = 1
            while True:
                tj = t + j * quant.tau1
                if tj >= self._horizon - _TOL:
                    break
                override = patched_tours[j] if j < len(patched_tours) else None
                tours = override if override is not None else result.levels[quant.level_of(j)]
                queue.append(ChargingScheduling(time=tj, tours=tours))
                j += 1
            sp.set(schedulings=len(queue))

        self._queue = queue
        self._cursor = 0
        self._assigned = quant.assigned.copy()
        self._anchor = t
