"""EWMA prediction of sensor energy-consumption rates (Section VI.A).

The paper's light-weight predictor:

    ``rho_hat_i(t+1) = gamma * rho_i(t) + (1 - gamma) * rho_hat_i(t)``

where ``rho_i(t)`` is the rate sensor ``i`` measured over the last slot and
``gamma in (0, 1)`` weights recency. From the prediction and the reported
residual energy the base station derives the estimated residual lifetime
``l_i(t) = re_i(t) / rho_hat_i(t+1)`` and the estimated maximum charging
cycle ``tau_hat_i(t) = B_i / rho_hat_i(t+1)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["EwmaRatePredictor"]


class EwmaRatePredictor:
    """Vectorised EWMA over all sensors at once.

    Parameters
    ----------
    gamma:
        Recency weight in ``(0, 1]``. ``gamma = 1`` degenerates to
        "tomorrow equals today", which is exact within the paper's slotted
        model (rates are constant inside a slot) and is therefore the
        default; smaller values smooth noisy workloads at the price of lag.
    """

    def __init__(self, gamma: float = 1.0) -> None:
        if not (0.0 < gamma <= 1.0):
            raise ConfigError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma
        self._rho_hat: np.ndarray | None = None
        self._last_observed: np.ndarray | None = None

    @property
    def initialized(self) -> bool:
        """Whether at least one observation has been ingested."""
        return self._rho_hat is not None

    def update(self, observed_rates: np.ndarray) -> np.ndarray:
        """Ingest one slot's measured rates; returns the new prediction.

        The first observation initialises the prediction directly (there is
        no prior to blend with).
        """
        obs = np.asarray(observed_rates, dtype=np.float64)
        if np.any(obs < 0) or not np.all(np.isfinite(obs)):
            raise ConfigError("observed rates must be finite and non-negative")
        if self._rho_hat is None:
            self._rho_hat = obs.copy()
        else:
            if obs.shape != self._rho_hat.shape:
                raise ConfigError(
                    f"observation shape {obs.shape} != state {self._rho_hat.shape}")
            self._rho_hat = self.gamma * obs + (1.0 - self.gamma) * self._rho_hat
        self._last_observed = obs.copy()
        return self.predicted_rates

    @property
    def predicted_rates(self) -> np.ndarray:
        """Current prediction ``rho_hat(t+1)`` (copy)."""
        if self._rho_hat is None:
            raise ConfigError("predictor queried before any observation")
        return self._rho_hat.copy()

    @property
    def last_observed(self) -> np.ndarray:
        """The most recent raw observation (copy)."""
        if self._last_observed is None:
            raise ConfigError("predictor queried before any observation")
        return self._last_observed.copy()

    def conservative_rates(self) -> np.ndarray:
        """Element-wise ``max(prediction, last observation)``.

        Used for *survival* checks: the prediction decides the plan's shape,
        but when asking "can this sensor reach its next charge alive?" the
        safe rate is whichever of (smoothed, currently measured) is worse.
        """
        if self._rho_hat is None or self._last_observed is None:
            raise ConfigError("predictor queried before any observation")
        return np.maximum(self._rho_hat, self._last_observed)

    def predicted_cycles(self, batteries: np.ndarray) -> np.ndarray:
        """``tau_hat_i = B_i / rho_hat_i`` (``inf`` where the rate is 0)."""
        rho = self.predicted_rates
        b = np.asarray(batteries, dtype=np.float64)
        return np.divide(b, rho, out=np.full(b.shape, np.inf), where=rho > 0)
