"""The variable-cycle heuristic, ``MinTotalDistance-var`` (Section VI).

* :mod:`~repro.adaptive.predictor` — the paper's EWMA consumption-rate
  predictor ``rho_hat(t+1) = gamma * rho(t) + (1 - gamma) * rho_hat(t)``.
* :mod:`~repro.adaptive.monitor` — sensor-side variation thresholding:
  a sensor only reports a new maximum charging cycle when it moved by more
  than a relative threshold.
* :mod:`~repro.adaptive.patch` — the re-plan repair step: sensors whose
  residual energy cannot reach their first scheduled charge are spliced
  into the earliest schedulings via iterated q-rooted MSF over auxiliary
  graphs whose roots are *scheduling supernodes*.
* :mod:`~repro.adaptive.mintotal_var` — the full online policy tying it all
  together, runnable by the simulator next to the baselines.
"""

from repro.adaptive.mintotal_var import MinTotalDistanceVarPolicy
from repro.adaptive.monitor import VariationMonitor
from repro.adaptive.patch import PatchResult, build_patch
from repro.adaptive.predictor import EwmaRatePredictor

__all__ = [
    "EwmaRatePredictor",
    "MinTotalDistanceVarPolicy",
    "PatchResult",
    "VariationMonitor",
    "build_patch",
]
