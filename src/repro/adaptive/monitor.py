"""Sensor-side variation thresholding (Section VI.A, last paragraph).

"We assume that there is a variation threshold of maximum charging cycle at
each sensor; if the variation is under the pre-defined threshold, nothing is
to be done. Otherwise the sensor sends an updating request to the base
station." This module models exactly that filter: the base station's view
of each sensor's cycle only moves when the underlying estimate moved by
more than a relative threshold, which suppresses re-planning churn under
small fluctuations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

__all__ = ["VariationMonitor"]


class VariationMonitor:
    """Per-sensor dead-band filter on estimated maximum charging cycles.

    Parameters
    ----------
    threshold:
        Relative dead-band: a new estimate ``tau_new`` replaces the reported
        value ``tau_rep`` only when
        ``|tau_new - tau_rep| > threshold * tau_rep``. ``0`` reports every
        change (the policy default — the paper's experiments sweep workload
        volatility, not the threshold, so the filter is off unless asked).
    """

    def __init__(self, threshold: float = 0.0) -> None:
        if threshold < 0:
            raise ConfigError(f"threshold must be non-negative, got {threshold}")
        self.threshold = threshold
        self._reported: np.ndarray | None = None

    @property
    def reported(self) -> np.ndarray:
        """The base station's current view of the cycles (copy)."""
        if self._reported is None:
            raise ConfigError("monitor queried before any update")
        return self._reported.copy()

    def update(self, estimated_cycles: np.ndarray,
               alive: np.ndarray | None = None) -> np.ndarray:
        """Filter a fresh estimate vector; returns the (possibly unchanged)
        reported view and a side effect of updating it where the dead-band
        was exceeded.

        ``alive`` is an optional ``(n,)`` membership mask (churn
        scenarios): offline sensors report nothing, so their entries stay
        frozen at the last accepted value regardless of the estimate — the
        base station only ever hears from live sensors.
        """
        est = np.asarray(estimated_cycles, dtype=np.float64)
        if alive is not None:
            alive = np.asarray(alive, dtype=bool)
            if alive.shape != est.shape:
                raise ConfigError(
                    f"alive mask shape {alive.shape} != estimate {est.shape}")
        if self._reported is None:
            self._reported = est.copy()
            return self.reported
        if est.shape != self._reported.shape:
            raise ConfigError(
                f"estimate shape {est.shape} != state {self._reported.shape}")
        if self.threshold == 0.0:
            if alive is None:
                self._reported = est.copy()
            else:
                self._reported[alive] = est[alive]
            return self.reported
        moved = np.abs(est - self._reported) > self.threshold * self._reported
        if alive is not None:
            moved &= alive
        self._reported[moved] = est[moved]
        return self.reported

    def changed_since(self, previous: np.ndarray) -> np.ndarray:
        """Boolean mask of sensors whose reported cycle differs from
        ``previous`` (helper for replan triggers)."""
        return ~np.isclose(self.reported, np.asarray(previous), rtol=1e-12, atol=0.0)
