"""The re-plan repair step (Section VI.B).

Re-running Algorithm 3 mid-period assumes every sensor is full "now" —
false after a workload change. Sensors whose residual lifetime is shorter
than their first scheduled charge would die in the gap. The paper's repair:

* ``V^a``   — sensors with ``l_i(t) < tau'_i(t)`` (die before first charge).
* ``V^a_t`` — the subset with ``l_i(t) < tau_1(t)``: charged *immediately*
  in a new scheduling ``C'_0`` dispatched at ``t``.
* The rest is partitioned by residual lifetime into classes ``V^a_k``
  (``2^k tau_1 <= l_i < 2^(k+1) tau_1``); a sensor in ``V^a_k`` may join any
  of the schedulings ``C'_0 .. C'_{2^k}`` (all dispatch within its
  lifetime) and should join wherever it is *cheapest to absorb*.
* Cheapest absorption is solved exactly per class with the rooted-MSF
  contraction (Algorithm 1) over an auxiliary graph whose roots are
  *scheduling supernodes*: the cost of attaching sensor ``u`` to scheduling
  ``j`` is the nearest distance from ``u`` to any node already in
  ``V(C'_j)`` (depots included). Classes are processed in increasing ``k``
  so later classes can attach through sensors patched earlier, exactly as
  the paper's iterative construction ``V(C^(k+1)_j)`` does.

Finally, every scheduling whose node set grew gets fresh tours from
Algorithm 2 — by default via the *incremental* forest extension
(:mod:`repro.rooted.incremental`), which patches the cached base forest by
edge swaps over the incremental-MST candidate set instead of re-running
the dense contraction, and provably yields the identical tours (falling
back to the from-scratch pipeline whenever exactness cannot be certified).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.quantize import Quantization
from repro.errors import ScheduleError
from repro.kernels import KernelBackend, resolve
from repro.network.model import SensorNetwork
from repro.obs.instrument import Instrumentation, ensure
from repro.plan.cache import PlanArtifactCache
from repro.plan.pipeline import cache_fingerprint, plan_tours
from repro.rooted.incremental import extend_q_rooted_msf
from repro.rooted.msf import rooted_msf
from repro.rooted.refine import refine_tours
from repro.tsp.construct import tours_from_forest
from repro.tsp.tour import Tour

__all__ = ["PatchResult", "build_patch"]

#: Lifetimes within this relative tolerance of the boundary count as "safe"
#: (mirrors the knife-edge convention used everywhere else).
_REL_TOL = 1e-9


@dataclass(frozen=True)
class PatchResult:
    """Outcome of the repair step.

    Parameters
    ----------
    sets:
        ``sets[j]`` is the final sensor set of scheduling ``C'_j`` for
        ``j = 0 .. 2^K`` (``sets[0]`` is the immediate scheduling; may be
        empty, in which case no ``C'_0`` is dispatched).
    tours:
        ``tours[j]`` is the recomputed tour tuple for scheduling ``j``, or
        ``None`` where the base block's tours remain valid (the set did not
        change). ``tours[0]`` is ``None`` iff ``sets[0]`` is empty.
    urgent:
        ``V^a`` — the sensors that needed patching at all.
    """

    sets: tuple[frozenset[int], ...]
    tours: tuple[tuple[Tour, ...] | None, ...]
    urgent: frozenset[int]

    @property
    def n_patched_schedulings(self) -> int:
        """How many schedulings had to be re-toured."""
        return sum(1 for t in self.tours if t is not None)


def build_patch(network: SensorNetwork, quant: Quantization,
                lifetimes: np.ndarray, *, refine: bool = False,
                tie_break: str = "immediate",
                cache: PlanArtifactCache | None = None,
                incremental: bool = True,
                kernel_backend: "str | KernelBackend | None" = None,
                obs: Instrumentation | None = None) -> PatchResult:
    """Run the repair step against a freshly computed plan.

    Parameters
    ----------
    network:
        The WSN instance (for distances and depot indices).
    quant:
        Quantisation of the *new* plan (built from the updated cycle
        estimates at time ``t``); supplies ``tau_1``, ``K``, the class
        structure and the base block's sensor sets.
    lifetimes:
        ``(n,)`` estimated residual lifetimes ``l_i(t)`` *relative to now*.
    refine:
        Forward 2-opt refinement to re-toured schedulings.
    tie_break:
        When a sensor is equally cheap to absorb into several feasible
        schedulings (common: the nearest anchor is a depot, present in all
        of them), attach it to the earliest one (``"immediate"``, default —
        paper-faithful: reproduces the reported parity with Greedy at
        ``ΔT = 1`` in Fig. 5) or the latest (``"defer"`` — this library's
        improvement: avoids dispatching an immediate ``C'_0`` tour at every
        re-plan, measurably cheaper under extreme workload instability; see
        EXPERIMENTS.md and the ``abl-tiebreak`` bench).
    cache:
        Optional plan-artifact cache. Patched node sets go through the same
        staged pipeline as base schedulings, so a set that recurs across
        re-plans (or coincides with a base coverage set) reuses its forest
        and tours instead of re-solving Algorithms 1–2.
    incremental:
        Re-tour grown schedulings by *extending* their cached base forest
        (:func:`repro.rooted.incremental.extend_q_rooted_msf`) instead of
        rebuilding it from scratch. A pure accelerator: the extension is
        used only when it is certifiably identical to the from-scratch
        forest (distinct candidate weights) and silently falls back to the
        full pipeline otherwise, so tours are identical either way (the
        ``patch`` differential in :mod:`repro.check` holds it to that).
        Only applies when a ``cache`` holding the base forests is present.
    kernel_backend:
        Kernel backend (:mod:`repro.kernels`) for the MSF / refinement hot
        paths; ``None`` resolves via the process default /
        ``REPRO_KERNEL_BACKEND``.
    obs:
        Optional instrumentation context: ``patch`` span plus the
        ``patch.calls`` / ``patch.urgent`` / ``patch.immediate`` /
        ``patch.retoured`` counters (injections into the base plan) and
        the ``patch.msf.incremental`` / ``patch.msf.full`` split of how
        re-toured forests were obtained.

    Returns
    -------
    PatchResult
    """
    if tie_break not in ("defer", "immediate"):
        raise ScheduleError(f"build_patch: unknown tie_break {tie_break!r}")
    o = ensure(obs)
    kb = resolve(kernel_backend)
    o.incr("patch.calls")
    l_hat = np.asarray(lifetimes, dtype=np.float64)
    if l_hat.shape != (network.n,):
        raise ScheduleError(
            f"build_patch: expected {network.n} lifetimes, got shape {l_hat.shape}")
    if np.any(l_hat < 0):
        raise ScheduleError("build_patch: negative residual lifetime")

    tau1 = quant.tau1
    K = quant.K
    b = quant.base
    n_sched = quant.enumerable_block_size() + 1  # schedulings 0 .. b^K (guarded: O(b^K) tables below)
    dist = network.dist
    depots = [int(i) for i in network.depot_indices]

    assigned = quant.assigned
    urgent_mask = l_hat < assigned * (1.0 - _REL_TOL)
    urgent = np.nonzero(urgent_mask)[0]
    o.incr("patch.urgent", int(urgent.size))

    # Base node sets: sets[0] empty for now, sets[j] = sensors due at j.
    base_sets: list[set[int]] = [set()]
    for j in range(1, n_sched):
        base_sets.append({int(s) for s in quant.sensors_due_at(j)})
    sets = [set(s) for s in base_sets]

    if urgent.size == 0:
        return PatchResult(
            sets=tuple(frozenset(s) for s in sets),
            tours=tuple(None for _ in range(n_sched)),
            urgent=frozenset(),
        )

    with o.span("patch", urgent=int(urgent.size)) as sp:
        # Class partition of the urgent sensors by residual lifetime.
        immediate = urgent[l_hat[urgent] < tau1 * (1.0 - _REL_TOL)]
        sets[0].update(int(s) for s in immediate)
        o.incr("patch.immediate", int(immediate.size))
        rest = np.setdiff1d(urgent, immediate, assume_unique=True)
        if rest.size:
            k_of = np.floor(np.log(l_hat[rest] / tau1 * (1.0 + _REL_TOL))
                            / np.log(float(b))).astype(np.int64)
            k_of = np.clip(k_of, 0, K)
        else:
            k_of = np.empty(0, dtype=np.int64)

        # Iterate classes in increasing k, attaching each to the cheapest of
        # the schedulings it can legally join (0 .. b^k).
        for k in range(K + 1):
            members = rest[k_of == k]
            if members.size == 0:
                continue
            s_idx = members.astype(np.intp)
            n_roots = min(b ** k, quant.block_size) + 1  # schedulings 0..b^k
            # Column order controls tie-breaking: the MSF's argmin prefers the
            # first column, so descending order defers charges on ties and
            # ascending order front-loads them.
            if tie_break == "defer":
                col_to_sched = list(range(n_roots - 1, -1, -1))
            else:
                col_to_sched = list(range(n_roots))
            root_costs = np.full((s_idx.size, n_roots), np.inf)
            for col, j in enumerate(col_to_sched):
                anchor = sorted(sets[j]) + depots
                root_costs[:, col] = dist[np.ix_(
                    s_idx, np.asarray(anchor, dtype=np.intp))].min(axis=1)
            assignment = rooted_msf(dist[np.ix_(s_idx, s_idx)], root_costs,
                                    backend=kb, obs=obs)
            for local, owner in enumerate(assignment.owner):
                sets[col_to_sched[int(owner)]].add(int(s_idx[local]))

        # Re-tour every scheduling whose set changed (and the immediate one).
        # Grown schedulings (j > 0) whose base forest is cached are patched
        # incrementally: extend the forest by edge swaps on the candidate
        # set instead of re-running the dense Algorithm 1; fall back to the
        # full pipeline whenever exactness cannot be certified.
        fp = cache_fingerprint(network, kb) if cache is not None else ""
        tours: list[tuple[Tour, ...] | None] = []
        for j in range(n_sched):
            if j == 0 and not sets[0]:
                tours.append(None)
                continue
            if j > 0 and sets[j] == base_sets[j]:
                tours.append(None)
                continue
            built: tuple[Tour, ...] | None = None
            if incremental and j > 0 and cache is not None:
                base_forest = cache.get_forest(fp, frozenset(base_sets[j]))
                if base_forest is not None:
                    extended = extend_q_rooted_msf(
                        dist, sorted(base_sets[j]), base_forest,
                        sorted(sets[j] - base_sets[j]), depots, obs=obs)
                    if extended is not None:
                        o.incr("patch.msf.incremental")
                        built = tuple(tours_from_forest(extended))
                        if refine:
                            built = tuple(refine_tours(dist, built,
                                                       backend=kb, obs=obs))
            if built is None:
                o.incr("patch.msf.full")
                built = plan_tours(network, frozenset(sets[j]), refine=refine,
                                   cache=cache, kernel_backend=kb, obs=obs)
            tours.append(built)
        retoured = sum(1 for t in tours if t is not None)
        o.incr("patch.retoured", retoured)
        sp.set(retoured=retoured)

    return PatchResult(
        sets=tuple(frozenset(s) for s in sets),
        tours=tuple(tours),
        urgent=frozenset(int(s) for s in urgent),
    )
