"""Baseline charging algorithms.

* :class:`~repro.baselines.greedy.GreedyOnDemandPolicy` — the paper's
  comparator (Section VII.A): sensors request charging when their estimated
  residual lifetime drops below ``Δl = tau_min``; the base station then
  dispatches the q chargers over the requesting set via the q-rooted TSP.
* :class:`~repro.baselines.naive.NaiveChargeAllPolicy` — the "charge every
  sensor each round" strawman the paper's problem statement dismisses.
* :func:`~repro.baselines.periodic.periodic_per_sensor_plan` — per-sensor
  periodic charging on a ``tau_min`` grid *without* the power-of-two class
  merging; isolates how much of MinTotalDistance's win comes from the
  geometric grouping (ablation).
"""

from repro.baselines.greedy import GreedyOnDemandPolicy
from repro.baselines.naive import NaiveChargeAllPolicy
from repro.baselines.periodic import periodic_per_sensor_plan

__all__ = [
    "GreedyOnDemandPolicy",
    "NaiveChargeAllPolicy",
    "periodic_per_sensor_plan",
]
