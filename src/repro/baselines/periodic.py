"""Per-sensor periodic charging without power-of-two merging (ablation).

MinTotalDistance's win over greedy has two ingredients: (1) charging each
sensor on a fixed period instead of on demand, and (2) rounding periods to
powers of two so co-scheduled classes *nest* and tours share distance. This
baseline keeps (1) but drops (2): each sensor ``i`` is charged every
``floor(tau_i / tau_1) * tau_1`` — the longest grid-aligned period that is
still safe — and sensors due at the same grid tick share one q-rooted tour
set. Comparing it against Algorithm 3 (``benchmarks/bench_ablation_base.py``)
isolates the value of the geometric class structure.
"""

from __future__ import annotations


import numpy as np

from repro.core.schedule import ChargingScheduling, SchedulePlan
from repro.errors import ScheduleError
from repro.network.model import SensorNetwork
from repro.rooted.qtsp import q_rooted_tsp

__all__ = ["periodic_per_sensor_plan"]


def periodic_per_sensor_plan(network: SensorNetwork, horizon: float,
                             *, cycles: np.ndarray | None = None,
                             grid: float | None = None,
                             refine: bool = False) -> SchedulePlan:
    """Build the grid-periodic plan described in the module docstring.

    Parameters
    ----------
    network:
        The WSN instance.
    horizon:
        Monitoring period ``T``.
    cycles:
        Cycle override (defaults to the network's nominal cycles).
    grid:
        The grid tick ``tau_1``; defaults to the realised minimum cycle.
        Pass the greedy baseline's ``Δl`` to make the coincidence exact:
        with ``grid == Δl`` and continuously distributed cycles this plan
        charges every sensor at the same epochs greedy does (almost
        surely), so their service costs match — the finding the
        ``abl-baselines`` bench records. Must not exceed the smallest
        cycle (feasibility).
    refine:
        Forward 2-opt refinement to tour construction.

    Returns
    -------
    SchedulePlan
        Feasible by construction: sensor ``i``'s period
        ``floor(tau_i/tau_1) * tau_1 <= tau_i``.
    """
    if horizon <= 0:
        raise ScheduleError(f"horizon must be positive, got {horizon}")
    tau = network.cycles if cycles is None else np.asarray(cycles, dtype=np.float64)
    if tau.shape != (network.n,):
        raise ScheduleError(f"expected {network.n} cycles, got shape {tau.shape}")
    tau1 = float(tau.min()) if grid is None else float(grid)
    if tau1 <= 0 or tau1 > float(tau.min()) * (1 + 1e-12):
        raise ScheduleError(
            f"grid {tau1} must be positive and no larger than the smallest "
            f"cycle {float(tau.min())}")
    # Per-sensor grid periods, in ticks of tau1 (>= 1 by construction).
    ticks = np.maximum(np.floor(tau / tau1 * (1 + 1e-12)).astype(np.int64), 1)

    depots = [int(i) for i in network.depot_indices]
    cache: dict[frozenset[int], tuple] = {}
    schedulings: list[ChargingScheduling] = []
    j = 1
    while j * tau1 < horizon:
        due = np.nonzero(j % ticks == 0)[0]
        if due.size:
            key = frozenset(int(s) for s in due)
            if key not in cache:
                cache[key] = tuple(q_rooted_tsp(network.dist, sorted(key), depots,
                                                refine=refine))
            schedulings.append(ChargingScheduling(time=j * tau1, tours=cache[key]))
        j += 1
    return SchedulePlan(schedulings=tuple(schedulings), horizon=horizon)
