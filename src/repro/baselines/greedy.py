"""The paper's greedy on-demand baseline.

Section VII.A: "each sensor sends a charging request to the base station
when it will deplete its energy soon. Once receiving a request, the base
station commands the q mobile chargers to charge those sensors whose
estimated residual lifetimes are less than a given threshold ``Δl``", with
``Δl = tau_min`` in all experiments.

Concretely, this policy checks residual lifetimes at decision epochs spaced
``decision_interval`` apart (default ``Δl``) and dispatches the q-rooted
TSP 2-approximation over the requesting set whenever it is non-empty. With
``decision_interval <= Δl`` and rate changes aligned to epochs (the paper's
slotted model guarantees both), no sensor can slip through: anything whose
lifetime is about to end shows up under the threshold at the preceding
epoch.

The greedy is *locally* cheap — each sensor is charged as late and as
rarely as possible — but globally wasteful: it ignores the opportunity to
piggyback nearby longer-cycle sensors onto tours it is already paying for,
which is exactly the behaviour MinTotalDistance's class merging exploits.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.schedule import ChargingScheduling
from repro.errors import ConfigError
from repro.network.model import SensorNetwork
from repro.rooted.qtsp import q_rooted_tsp
from repro.sim.policies import SimulationView

__all__ = ["GreedyOnDemandPolicy"]


class GreedyOnDemandPolicy:
    """Threshold-triggered on-demand charging (the paper's Greedy).

    Parameters
    ----------
    threshold:
        ``Δl``: a sensor requests charging when its estimated residual
        lifetime is ``<= threshold``. ``None`` (default) resolves to the
        network's ``tau_min`` at reset, matching the paper.
    decision_interval:
        Spacing of decision epochs; ``None`` resolves to ``threshold``.
        Must be ``<= threshold`` for the no-death argument to hold.
    refine:
        Forward 2-opt refinement to the tour construction.
    """

    def __init__(self, *, threshold: float | None = None,
                 decision_interval: float | None = None,
                 refine: bool = False) -> None:
        if threshold is not None and threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {threshold}")
        if decision_interval is not None and decision_interval <= 0:
            raise ConfigError(
                f"decision_interval must be positive, got {decision_interval}")
        self._threshold_arg = threshold
        self._interval_arg = decision_interval
        self.refine = refine
        self._net: SensorNetwork | None = None
        self._horizon = math.inf
        self.threshold = math.nan
        self.interval = math.nan
        self._epoch = 0

    # ----------------------------------------------------------- policy API
    def reset(self, network: SensorNetwork, horizon: float) -> None:
        self._net = network
        self._horizon = horizon
        self.threshold = (self._threshold_arg if self._threshold_arg is not None
                          else network.tau_min)
        self.interval = (self._interval_arg if self._interval_arg is not None
                         else self.threshold)
        if self.interval > self.threshold * (1 + 1e-12):
            raise ConfigError(
                f"decision_interval {self.interval} must not exceed "
                f"threshold {self.threshold} (sensors could die between epochs)")
        self._epoch = 1

    def next_dispatch_time(self, now: float) -> float | None:
        t = self._epoch * self.interval
        while t < now - 1e-12:
            self._epoch += 1
            t = self._epoch * self.interval
        return t if t < self._horizon else None

    def observe(self, view: SimulationView) -> None:
        return None  # greedy keeps no cross-slot state: it reacts per epoch

    def dispatch(self, view: SimulationView) -> ChargingScheduling | None:
        assert self._net is not None, "dispatch before reset"
        self._epoch += 1
        lifetimes = view.residual_lifetimes
        due = np.nonzero(lifetimes <= self.threshold * (1 + 1e-12))[0]
        if due.size == 0:
            return None
        tours = q_rooted_tsp(self._net.dist, [int(s) for s in due],
                             [int(i) for i in self._net.depot_indices],
                             refine=self.refine)
        return ChargingScheduling(time=view.time, tours=tuple(tours))
