"""The charge-everything strawman.

The paper's Section III.C observes that "a naive strategy of charging all
sensors per round will significantly increase the service cost". This policy
implements that strategy — whenever *any* sensor's residual lifetime falls
under the threshold, all ``n`` sensors are charged — so the claim can be
measured rather than asserted (see ``benchmarks/bench_baselines.py``).
"""

from __future__ import annotations

import math


from repro.core.schedule import ChargingScheduling
from repro.errors import ConfigError
from repro.network.model import SensorNetwork
from repro.rooted.qtsp import q_rooted_tsp
from repro.sim.policies import SimulationView
from repro.tsp.tour import Tour

__all__ = ["NaiveChargeAllPolicy"]


class NaiveChargeAllPolicy:
    """Charge the whole network whenever anyone runs low.

    Parameters
    ----------
    threshold:
        Trigger threshold on minimum residual lifetime (``None`` resolves to
        the network's ``tau_min``).
    decision_interval:
        Epoch spacing (``None`` resolves to the threshold).

    The all-sensor q-rooted tours are computed once per reset and reused —
    the to-be-charged set is always the same, so the geometry never changes.
    """

    def __init__(self, *, threshold: float | None = None,
                 decision_interval: float | None = None) -> None:
        if threshold is not None and threshold <= 0:
            raise ConfigError(f"threshold must be positive, got {threshold}")
        if decision_interval is not None and decision_interval <= 0:
            raise ConfigError(
                f"decision_interval must be positive, got {decision_interval}")
        self._threshold_arg = threshold
        self._interval_arg = decision_interval
        self._net: SensorNetwork | None = None
        self._horizon = math.inf
        self.threshold = math.nan
        self.interval = math.nan
        self._epoch = 0
        self._tours: tuple[Tour, ...] = ()

    def reset(self, network: SensorNetwork, horizon: float) -> None:
        self._net = network
        self._horizon = horizon
        self.threshold = (self._threshold_arg if self._threshold_arg is not None
                          else network.tau_min)
        self.interval = (self._interval_arg if self._interval_arg is not None
                         else self.threshold)
        self._epoch = 1
        self._tours = tuple(q_rooted_tsp(
            network.dist, [int(i) for i in network.sensor_indices],
            [int(i) for i in network.depot_indices]))

    def next_dispatch_time(self, now: float) -> float | None:
        t = self._epoch * self.interval
        while t < now - 1e-12:
            self._epoch += 1
            t = self._epoch * self.interval
        return t if t < self._horizon else None

    def observe(self, view: SimulationView) -> None:
        return None

    def dispatch(self, view: SimulationView) -> ChargingScheduling | None:
        self._epoch += 1
        if float(view.residual_lifetimes.min()) > self.threshold * (1 + 1e-12):
            return None
        return ChargingScheduling(time=view.time, tours=self._tours)
