"""Shard lifecycle for the planning fleet: spawn, monitor, restart.

A fleet is N independent :mod:`repro.serve` backends ("shards") behind one
router. This module owns their lifetime:

* :class:`ThreadShard` — a shard as an in-process
  :class:`~repro.serve.server.ServerThread`. Cheap to boot and to kill,
  which is what the tests, the CI smoke and the fleet differential use;
  its :meth:`~ThreadShard.kill` is abrupt (no drain), so in-flight
  requests surface as ``shutting_down``/reset — the failure the router's
  fail-over must absorb.
* :class:`ProcessShard` — a shard as a real ``repro serve`` subprocess
  (its own interpreter, its own GIL: true CPU scale-out). The child
  publishes its bound ephemeral port through ``--port-file``; kill is
  SIGKILL, the honest crash.
* :class:`ShardSupervisor` — holds the shard set, polls liveness from a
  daemon thread, and restarts dead shards with jittered exponential
  backoff (bounded attempts per incident). Membership changes (down /
  restarted-at-a-new-address) are reported through callbacks, which is
  how the router learns to rebalance its ring.

All shards of one fleet share a single on-disk
:class:`~repro.plan.store.PlanArtifactStore` root (tier 3): anything one
shard computes is write-through published for every other shard — and for
the shard's own replacement after a restart.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from random import Random
from typing import Callable, Protocol

from repro.errors import ConfigError, ServeError
from repro.obs.instrument import Instrumentation, ensure
from repro.obs.log import get_logger

__all__ = ["ShardSpec", "ThreadShard", "ProcessShard", "ShardSupervisor"]

log = get_logger(__name__)


@dataclass(frozen=True)
class ShardSpec:
    """What one backend shard should run with.

    ``workers``/``executor``/``queue_limit``/``cache_entries`` mirror
    :class:`~repro.serve.server.ServeConfig`; ``cache_dir`` is the shared
    tier-3 store root (the same directory for every shard of a fleet).
    """

    shard_id: str
    workers: int = 1
    executor: str = "thread"
    queue_limit: int = 64
    default_deadline: float | None = 60.0
    cache_entries: int | None = 4096
    cache_dir: str | None = None
    kernel_backend: str | None = None


class ShardHandle(Protocol):
    """The lifecycle surface the supervisor drives."""

    spec: ShardSpec

    @property
    def address(self) -> tuple[str, int]: ...

    def alive(self) -> bool: ...

    def start(self) -> tuple[str, int]: ...

    def kill(self) -> None: ...

    def stop(self) -> None: ...


class ThreadShard:
    """A shard hosted on an in-process server thread (tests / smoke)."""

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self._srv = None

    @property
    def address(self) -> tuple[str, int]:
        if self._srv is None or self._srv.address is None:
            raise ServeError(f"shard {self.spec.shard_id} is not running")
        return self._srv.address

    def alive(self) -> bool:
        return (self._srv is not None and self._srv._thread is not None
                and self._srv._thread.is_alive())

    def start(self) -> tuple[str, int]:
        from repro.serve.server import ServeConfig, ServerThread

        spec = self.spec
        self._srv = ServerThread(ServeConfig(
            port=0, workers=spec.workers, executor=spec.executor,
            queue_limit=spec.queue_limit,
            default_deadline=spec.default_deadline,
            cache_entries=spec.cache_entries, cache_dir=spec.cache_dir,
            kernel_backend=spec.kernel_backend, drain_timeout=5.0))
        return self._srv.start()

    def kill(self) -> None:
        """Abrupt death: no drain — in-flight requests see cancellation."""
        if self._srv is not None:
            self._srv.stop(drain=False, timeout=10.0)
            self._srv = None

    def stop(self) -> None:
        """Graceful stop (drains, flushes the tier-3 store)."""
        if self._srv is not None:
            self._srv.stop(drain=True, timeout=30.0)
            self._srv = None


class ProcessShard:
    """A shard as a ``repro serve`` subprocess (true CPU parallelism)."""

    #: Seconds to wait for the child to publish its port.
    BOOT_TIMEOUT = 60.0

    def __init__(self, spec: ShardSpec) -> None:
        self.spec = spec
        self._proc: subprocess.Popen | None = None
        self._address: tuple[str, int] | None = None

    @property
    def address(self) -> tuple[str, int]:
        if self._address is None:
            raise ServeError(f"shard {self.spec.shard_id} is not running")
        return self._address

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def start(self) -> tuple[str, int]:
        spec = self.spec
        port_file = Path(tempfile.mkstemp(prefix=f"repro-shard-{spec.shard_id}-",
                                          suffix=".port")[1])
        port_file.unlink()  # the child recreates it atomically when bound
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", "127.0.0.1", "--port", "0",
               "--workers", str(spec.workers), "--executor", spec.executor,
               "--queue-limit", str(spec.queue_limit),
               "--deadline", str(spec.default_deadline or 0),
               "--port-file", str(port_file)]
        if spec.cache_dir is not None:
            cmd += ["--cache-dir", spec.cache_dir]
        if spec.kernel_backend is not None:
            # Top-level flag: must precede the "serve" subcommand.
            cmd = cmd[:3] + ["--kernel-backend", spec.kernel_backend] + cmd[3:]
        self._proc = subprocess.Popen(cmd)
        deadline = time.monotonic() + self.BOOT_TIMEOUT
        while time.monotonic() < deadline:
            if self._proc.poll() is not None:
                raise ServeError(
                    f"shard {spec.shard_id} exited during boot "
                    f"(code {self._proc.returncode})")
            try:
                host, _, port = port_file.read_text().strip().partition(":")
                if port:
                    self._address = (host, int(port))
                    port_file.unlink()
                    return self._address
            except (FileNotFoundError, ValueError):
                pass
            time.sleep(0.05)
        self.kill()
        raise ServeError(f"shard {spec.shard_id} did not publish a port within "
                         f"{self.BOOT_TIMEOUT:g}s")

    def kill(self) -> None:
        """SIGKILL the shard process: the honest mid-request crash."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait(timeout=30)
            self._proc = None
            self._address = None

    def stop(self) -> None:
        """SIGTERM (graceful drain inside the shard), then reap."""
        if self._proc is None:
            return
        self._proc.terminate()
        try:
            self._proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged child
            self._proc.kill()
            self._proc.wait(timeout=30)
        self._proc = None
        self._address = None


@dataclass
class _Incident:
    """Restart-backoff state for one shard."""

    attempts: int = 0
    next_try: float = 0.0


class ShardSupervisor:
    """Monitor a set of shard handles; restart the dead, report membership.

    Parameters
    ----------
    handles:
        Started (or startable) shard handles, one per shard id.
    on_down / on_up:
        Callbacks ``(shard_id)`` / ``(shard_id, address)`` fired from the
        monitor thread when a shard is found dead / restarted. The router
        uses these to take the shard out of (back into) rotation.
    max_restarts:
        Restart attempts per death incident before the shard is abandoned
        (left down, still reported via ``on_down``).
    backoff / backoff_cap:
        Base and cap (seconds) of the jittered exponential restart delay.
    poll_interval:
        Liveness poll period of the monitor thread.
    seed:
        Seeds the backoff jitter (deterministic tests).
    """

    def __init__(self, handles: dict[str, ShardHandle], *,
                 on_down: Callable[[str], None] | None = None,
                 on_up: Callable[[str, tuple[str, int]], None] | None = None,
                 max_restarts: int = 3, backoff: float = 0.1,
                 backoff_cap: float = 5.0, poll_interval: float = 0.2,
                 seed: int | None = None,
                 obs: Instrumentation | None = None) -> None:
        if max_restarts < 0:
            raise ConfigError(
                f"ShardSupervisor: max_restarts must be >= 0, got {max_restarts}")
        self.handles = dict(handles)
        self.obs = ensure(obs)
        self._on_down = on_down
        self._on_up = on_up
        self._max_restarts = max_restarts
        self._backoff = backoff
        self._backoff_cap = backoff_cap
        self._poll = poll_interval
        self._rng = Random(seed)
        self._incidents: dict[str, _Incident] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Start the monitor thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._monitor, name="repro-fleet-supervisor", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop monitoring (the shards themselves are left to their owner)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # -------------------------------------------------------------- internals
    def _restart_delay(self, attempts: int) -> float:
        base = min(self._backoff * (2 ** attempts), self._backoff_cap)
        return base * (0.5 + self._rng.random())  # jitter in [0.5, 1.5) * base

    def _monitor(self) -> None:
        while not self._stop.wait(self._poll):
            for shard_id, handle in self.handles.items():
                if handle.alive():
                    self._incidents.pop(shard_id, None)
                    continue
                incident = self._incidents.get(shard_id)
                if incident is None:
                    incident = self._incidents[shard_id] = _Incident()
                    self.obs.incr("fleet.shard.down")
                    log.warning("fleet: shard %s is down", shard_id)
                    if self._on_down is not None:
                        self._on_down(shard_id)
                    incident.next_try = (time.monotonic()
                                         + self._restart_delay(0))
                if incident.attempts >= self._max_restarts:
                    continue  # abandoned; stays reported down
                if time.monotonic() < incident.next_try:
                    continue
                incident.attempts += 1
                try:
                    address = handle.start()
                except Exception as exc:  # noqa: BLE001 - retried with backoff
                    self.obs.incr("fleet.shard.restart_failed")
                    log.warning("fleet: restart %d/%d of shard %s failed: %s",
                                incident.attempts, self._max_restarts,
                                shard_id, exc)
                    incident.next_try = (time.monotonic()
                                         + self._restart_delay(incident.attempts))
                    continue
                self.obs.incr("fleet.shard.restarts")
                log.info("fleet: shard %s restarted at %s:%d (attempt %d)",
                         shard_id, address[0], address[1], incident.attempts)
                self._incidents.pop(shard_id, None)
                if self._on_up is not None:
                    self._on_up(shard_id, address)
