"""``python -m repro.fleet`` — fleet smoke harness (used by CI).

Boots an in-process fleet (router + 2 thread shards sharing one artifact
store), drives a mixed plan/health workload through the router, crashes
one shard mid-run, and asserts that (a) every request still succeeded —
fail-over is invisible to clients — and (b) at least one fail-over was
actually recorded (the kill was not a no-op), and (c) the supervisor
brought the dead shard back.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import Any

from repro.fleet.router import FleetConfig, routing_key
from repro.fleet.service import Fleet
from repro.serve.client import LoadGenerator, LoadReport

__all__ = ["run_fleet_smoke", "main"]


def _mixed_requests(n_requests: int, n_nets: int = 8,
                    delay: float = 0.05) -> list[tuple[str, dict[str, Any]]]:
    """Mostly-plan workload over ``n_nets`` distinct small topologies.

    Distinct geometries keep every shard busy with real (well, delayed)
    work for the whole run, so a mid-run kill reliably catches requests in
    flight; every 5th request is a health probe through the fan-out path.
    """
    from repro.io.network_json import network_to_dict
    from repro.network.builder import build_paper_network

    nets = [network_to_dict(build_paper_network(n=24, q=3, seed=s))
            for s in range(1, n_nets + 1)]
    requests: list[tuple[str, dict[str, Any]]] = []
    for i in range(n_requests):
        if i % 5 == 4:
            requests.append(("health", {}))
        else:
            requests.append(("plan", {"network": nets[i % n_nets],
                                      "horizon": 200.0, "delay": delay}))
    return requests


def _merge(a: LoadReport, b: LoadReport) -> LoadReport:
    merged = LoadReport(concurrency=a.concurrency)
    for r in (a, b):
        merged.n_requests += r.n_requests
        merged.n_ok += r.n_ok
        merged.n_rejected += r.n_rejected
        merged.n_deadline += r.n_deadline
        merged.n_failed += r.n_failed
        merged.n_retries += r.n_retries
        merged.duration += r.duration
        merged.latencies_ms.extend(r.latencies_ms)
    return merged


def run_fleet_smoke(*, n_requests: int = 50, concurrency: int = 8,
                    shards: int = 2) -> int:
    """The CI fleet smoke; returns a process exit code.

    The victim shard is chosen as the ring owner of the first workload
    geometry, and the supervisor poll is slowed so the kill is guaranteed
    a window in which the router must *discover* the death through a
    failed request (the fail-over path) rather than being told first.
    """
    requests = _mixed_requests(n_requests)
    with tempfile.TemporaryDirectory(prefix="repro-fleet-smoke-") as cache_dir:
        config = FleetConfig(
            shards=shards, shard_mode="thread", workers=2, executor="thread",
            queue_limit=max(64, n_requests), default_deadline=120.0,
            cache_dir=cache_dir, supervisor_poll=0.75, seed=0)
        with Fleet(config) as fleet:
            host, port = fleet.router.address
            first_plan = next(p for t, p in requests if t == "plan")
            victim = fleet.router._ring.primary(routing_key(first_plan))
            assert victim is not None
            gen = LoadGenerator(host, port, concurrency=concurrency)
            half = len(requests) // 2
            report_a = gen.run(requests[:half])
            fleet.kill_shard(victim)
            report_b = gen.run(requests[half:])
            # Give the supervisor time to resurrect the victim.
            deadline = time.monotonic() + 15.0
            while (len(fleet.router.live_shards) < shards
                   and time.monotonic() < deadline):
                time.sleep(0.1)
            counters = dict(fleet.router.obs.counters)
            live = len(fleet.router.live_shards)
        report = _merge(report_a, report_b)
    summary = dict(report.to_dict(),
                   killed_shard=victim,
                   failovers=int(counters.get("fleet.failover", 0)),
                   failover_served=int(counters.get("fleet.failover.served", 0)),
                   routed=int(counters.get("fleet.routed", 0)),
                   retried=int(counters.get("fleet.retried", 0)),
                   shard_restarts=int(counters.get("fleet.shard.restarts", 0)),
                   live_shards=live)
    print(json.dumps(summary, indent=2, sort_keys=True))
    failures: list[str] = []
    if report.n_ok != report.n_requests:
        failures.append(
            f"expected {report.n_requests} ok responses, got {report.n_ok} "
            f"(rejected={report.n_rejected}, deadline={report.n_deadline}, "
            f"failed={report.n_failed}) — fail-over leaked to a client")
    if counters.get("fleet.failover", 0) < 1:
        failures.append("expected at least one recorded fail-over "
                        "(the injected kill was a no-op)")
    if live < shards:
        failures.append(f"supervisor did not restore the fleet: "
                        f"{live}/{shards} shards live")
    for f in failures:
        print(f"FLEET SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        print(f"fleet smoke ok: {report.n_ok}/{report.n_requests} responses "
              f"across {shards} shards, {summary['failovers']} fail-over(s), "
              f"{summary['shard_restarts']} restart(s), shard {victim} "
              f"killed and recovered", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fleet-smoke",
        description="Fleet smoke harness: router + shards, mid-run kill")
    parser.add_argument("--requests", type=int, default=50, metavar="N")
    parser.add_argument("--concurrency", type=int, default=8, metavar="N")
    parser.add_argument("--shards", type=int, default=2, metavar="N")
    parser.add_argument("--smoke", action="store_true",
                        help="accepted for symmetry with repro.serve "
                             "(this entry point is always the smoke)")
    args = parser.parse_args(argv)
    return run_fleet_smoke(n_requests=args.requests,
                           concurrency=args.concurrency, shards=args.shards)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
