"""Consistent hashing for the planning fleet's request router.

The router must send every ``plan``/``simulate`` request for one geometry
to the *same* backend shard, so that shard's warm
:class:`~repro.plan.cache.PlanArtifactCache` (and its single-flight
coalescing) keeps absorbing repeats — while spreading distinct geometries
evenly across the fleet and moving as few keys as possible when shards
join or leave. That is exactly the consistent-hashing contract:

* each shard owns ``vnodes`` pseudo-random points on a 64-bit ring
  (SHA-256 of ``"<shard>#<i>"``), so load spreads evenly even with few
  shards;
* a key routes to the first shard point clockwise of ``hash(key)``;
  removing a shard only reassigns the keys that pointed at *its* points
  (≈ ``1/N`` of the keyspace), everything else stays put — the property
  the shared tier-3 store depends on to keep cross-shard recomputation
  rare during membership churn;
* :meth:`HashRing.route` returns the full *preference order* (primary,
  then the next distinct shards clockwise), which is the router's
  fail-over sequence: a dead primary's keys all fall over to the same
  successor, deterministically.

Pure data structure — no sockets, no processes — so the routing/fail-over
policy is unit-testable in isolation.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import ConfigError

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A stable 64-bit ring position for ``label``."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over named nodes (the fleet's shard ids).

    Parameters
    ----------
    nodes:
        Initial node names (order irrelevant; the ring is a pure function
        of the name set).
    vnodes:
        Ring points per node. More points → smoother balance at the cost
        of a larger sorted array; 256 keeps the max/min shard load within
        ~15% for small fleets while staying trivially cheap to rebuild.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 256) -> None:
        if vnodes < 1:
            raise ConfigError(f"HashRing: vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------ membership
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Add ``node``'s points to the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self._vnodes):
            point = _point(f"{node}#{i}")
            at = bisect.bisect(self._points, point)
            self._points.insert(at, point)
            self._owners.insert(at, node)

    def remove(self, node: str) -> None:
        """Remove ``node``'s points (idempotent); other keys do not move."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [(p, o) for p, o in zip(self._points, self._owners) if o != node]
        self._points = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    # --------------------------------------------------------------- routing
    def route(self, key: str, n: int | None = None) -> tuple[str, ...]:
        """The preference order of distinct nodes for ``key``.

        The first entry is the primary; subsequent entries are the
        fail-over order (next distinct nodes clockwise). ``n`` caps the
        length (default: every node). Empty ring routes nowhere.
        """
        if not self._points:
            return ()
        want = len(self._nodes) if n is None else max(0, min(n, len(self._nodes)))
        if want == 0:
            return ()
        start = bisect.bisect(self._points, _point(key)) % len(self._points)
        order: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._points)):
            owner = self._owners[(start + i) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return tuple(order)

    def primary(self, key: str) -> str | None:
        """The key's owning node, or ``None`` on an empty ring."""
        order = self.route(key, 1)
        return order[0] if order else None

    def load(self, keys: Iterable[str]) -> dict[str, int]:
        """Primary-assignment counts per node for ``keys`` (balance probe)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            owner = self.primary(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"HashRing(nodes={sorted(self._nodes)!r}, "
                f"vnodes={self._vnodes})")
