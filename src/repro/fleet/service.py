"""Assembling a whole fleet: shards + supervisor + router, one lifetime.

:class:`Fleet` is the blocking embedding shape (the fleet counterpart of
:class:`~repro.serve.server.ServerThread`): it boots N shards, wires a
:class:`~repro.fleet.supervisor.ShardSupervisor` to a
:class:`~repro.fleet.router.FleetRouter` running on a daemon thread, and
hands back the router's ``(host, port)``. Integration tests, the CI
smoke, the fleet differential and the benchmarks all drive fleets through
it; :func:`serve_fleet` wraps it for the ``repro fleet`` CLI command.
"""

from __future__ import annotations

import asyncio
import signal
import threading

from repro.errors import ServeError
from repro.obs.instrument import Instrumentation
from repro.obs.log import get_logger
from repro.fleet.router import FleetConfig, FleetRouter
from repro.fleet.supervisor import (
    ProcessShard,
    ShardHandle,
    ShardSpec,
    ShardSupervisor,
    ThreadShard,
)

__all__ = ["Fleet", "serve_fleet"]

log = get_logger(__name__)


class Fleet:
    """One running fleet; usable as a context manager.

    ``start()`` boots every shard first (so the router never opens with an
    empty ring), then the router thread, then the supervisor — teardown is
    the exact reverse. :meth:`kill_shard` is the fault-injection hook: it
    kills the shard *without telling the router*, exactly like a real
    crash, so the fail-over path (transport error → ring successor) and
    the supervisor (detect → restart → rejoin) are both exercised.
    """

    def __init__(self, config: FleetConfig | None = None,
                 obs: Instrumentation | None = None) -> None:
        self.config = config if config is not None else FleetConfig()
        self.obs = obs if obs is not None else Instrumentation()
        self.router = FleetRouter(self.config, obs=self.obs)
        self.shards: dict[str, ShardHandle] = {}
        self.supervisor: ShardSupervisor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -------------------------------------------------------------- lifecycle
    def start(self) -> tuple[str, int]:
        """Boot shards, router and supervisor; returns the router address."""
        cfg = self.config
        shard_cls = ThreadShard if cfg.shard_mode == "thread" else ProcessShard
        try:
            for shard_id in cfg.shard_ids():
                handle = shard_cls(ShardSpec(
                    shard_id=shard_id, workers=cfg.workers,
                    executor=cfg.executor, queue_limit=cfg.queue_limit,
                    default_deadline=cfg.default_deadline,
                    cache_entries=cfg.cache_entries, cache_dir=cfg.cache_dir,
                    kernel_backend=cfg.kernel_backend))
                address = handle.start()
                self.shards[shard_id] = handle
                self.router.register(shard_id, address)
            self._start_router_thread()
        except BaseException:
            self.stop()
            raise
        self.supervisor = ShardSupervisor(
            self.shards, on_down=self.router.mark_down,
            on_up=self.router.mark_up, max_restarts=cfg.max_restarts,
            poll_interval=cfg.supervisor_poll, seed=cfg.seed, obs=self.obs)
        self.supervisor.start()
        host, port = self.router.address
        log.info("fleet: %d %s shard(s) behind %s:%d (shared store: %s)",
                 cfg.shards, cfg.shard_mode, host, port,
                 cfg.cache_dir or "none")
        return host, port

    def _start_router_thread(self) -> None:
        ready = threading.Event()
        boot_error: list[BaseException] = []

        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop

            async def run() -> None:
                try:
                    await self.router.start()
                except BaseException as exc:  # noqa: BLE001 - reported to caller
                    boot_error.append(exc)
                    ready.set()
                    return
                ready.set()
                await self.router.wait_stopped()

            try:
                loop.run_until_complete(run())
            finally:
                loop.close()

        self._thread = threading.Thread(target=main, name="repro-fleet-router",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):
            raise ServeError("fleet router thread did not start within 30s")
        if boot_error:
            raise boot_error[0]

    def stop(self) -> None:
        """Supervisor first (no resurrections), then router, then shards."""
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self._loop is not None and self._thread is not None:
            if self._thread.is_alive():
                fut = asyncio.run_coroutine_threadsafe(
                    self.router.shutdown(), self._loop)
                try:
                    fut.result(timeout=30)
                except (asyncio.TimeoutError, TimeoutError):  # pragma: no cover
                    pass
            self._thread.join(timeout=30)
            self._thread = None
            self._loop = None
        for handle in self.shards.values():
            try:
                handle.stop()
            except Exception:  # noqa: BLE001 - best-effort teardown
                log.warning("fleet: shard %s did not stop cleanly",
                            handle.spec.shard_id)
        self.shards.clear()

    # --------------------------------------------------------- fault injection
    def kill_shard(self, shard_id: str) -> None:
        """Crash one shard abruptly (the router finds out the hard way)."""
        self.shards[shard_id].kill()

    def __enter__(self) -> "Fleet":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def serve_fleet(config: FleetConfig | None = None,
                obs: Instrumentation | None = None) -> int:
    """Blocking entry point: run a fleet until SIGTERM/SIGINT (the CLI)."""
    stop = threading.Event()

    def on_signal(signum: int, _frame: object) -> None:  # pragma: no cover
        log.info("repro fleet: received signal %s, stopping ...", signum)
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, on_signal)
        except ValueError:  # pragma: no cover - non-main thread embedding
            pass
    with Fleet(config, obs=obs) as fleet:
        host, port = fleet.router.address
        cfg = fleet.config
        log.info("repro fleet: routing on %s:%d (%d x %s shards, "
                 "retries %d)", host, port, cfg.shards, cfg.shard_mode,
                 cfg.retries)
        # Event.wait with a timeout keeps the main thread responsive to
        # signal handlers that set the event and return.
        while not stop.wait(timeout=0.5):
            pass
    log.info("repro fleet: stopped")
    return 0
