"""Horizontal scale-out of the planning service: a sharded fleet.

One :class:`~repro.fleet.router.FleetRouter` front end consistent-hashes
``plan``/``simulate`` requests (:class:`~repro.fleet.hashring.HashRing`
on the geometry fingerprint) across N :mod:`repro.serve` backend shards
kept alive by a :class:`~repro.fleet.supervisor.ShardSupervisor`, with
the on-disk :class:`~repro.plan.store.PlanArtifactStore` shared by every
shard as a tier-3 cache. :class:`~repro.fleet.service.Fleet` bundles the
whole thing; ``python -m repro.fleet --smoke`` is the CI harness.
"""

from repro.fleet.hashring import HashRing
from repro.fleet.router import FleetConfig, FleetRouter, routing_key
from repro.fleet.service import Fleet, serve_fleet
from repro.fleet.supervisor import (
    ProcessShard,
    ShardSpec,
    ShardSupervisor,
    ThreadShard,
)

__all__ = [
    "HashRing",
    "FleetConfig",
    "FleetRouter",
    "routing_key",
    "Fleet",
    "serve_fleet",
    "ProcessShard",
    "ShardSpec",
    "ShardSupervisor",
    "ThreadShard",
]
