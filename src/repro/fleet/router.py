"""The fleet's front-end router: one address, N planning shards behind it.

Clients speak the unchanged :mod:`repro.serve.protocol` to the router;
the router consistent-hashes every ``plan``/``simulate`` request on the
network's geometry fingerprint (:class:`~repro.fleet.hashring.HashRing`)
so all requests for one geometry land on the same backend shard — that
shard's warm :class:`~repro.plan.cache.PlanArtifactCache` and
single-flight coalescing keep absorbing repeats exactly as they do on a
single node. ``stats``/``health`` fan out to every live shard and come
back aggregated (summed counters), so an unmodified
:class:`~repro.serve.client.LoadGenerator` pointed at the router measures
the whole fleet.

Fail-over: when a shard dies mid-request (connection reset, EOF, or a
structured ``shutting_down`` from a process that was killed under us),
the router retries the next shard in the key's ring preference order
with jittered backoff — bounded attempts, after which the client gets a
structured ``shard_unavailable``. Because planning is pure, replaying
the request on another shard is safe, and the shared tier-3
:class:`~repro.plan.store.PlanArtifactStore` means the successor often
serves the retry warm. Shard membership changes (deaths and restarts,
reported by the :class:`~repro.fleet.supervisor.ShardSupervisor`) only
filter the ring at route time: the ring itself is static over all shard
ids, so a dead shard's keys fall deterministically to the next preferred
shard and fall *back* when it returns — no rehashing storms.

The router never parses network geometry into a full
:class:`~repro.network.model.SensorNetwork`; it recomputes the geometry
fingerprint directly from the JSON document (same bytes, same hash), so
routing stays O(payload) with no O(n^2) distance-matrix work on the
front end.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from collections import OrderedDict
from dataclasses import dataclass
from random import Random
from typing import Any

import numpy as np

from repro.errors import ConfigError, ReproError, ServeError
from repro.io.files import unwrap_envelope
from repro.obs.instrument import Instrumentation
from repro.obs.live import (
    DeltaEmitter,
    LiveAggregator,
    WatchFrame,
    gauge_table,
    is_frame_line,
    merge_counter_tables,
    merge_sketch_tables,
    merge_stat_tables,
    quantile_table,
)
from repro.obs.log import get_logger
from repro.serve.protocol import (
    BAD_REQUEST,
    PROTOCOL_VERSION,
    SHARD_UNAVAILABLE,
    SHUTTING_DOWN,
    WatchUpgrade,
    decode_request,
    encode,
    error_response,
    ok_response,
)

from repro.fleet.hashring import HashRing

__all__ = ["FleetConfig", "FleetRouter", "routing_key"]

log = get_logger(__name__)

#: Ids remembered per client connection for duplicate rejection
#: (mirrors the single-node server so fleet behaviour is identical).
_SEEN_IDS_LIMIT = 4096

#: Request types that are sharded (everything else fans out).
_SHARDED_TYPES = frozenset({"plan", "simulate"})


def routing_key(params: dict[str, Any]) -> str:
    """The consistent-hash key of one ``plan``/``simulate`` request.

    Recomputes ``SensorNetwork.geometry_fingerprint`` straight from the
    request's network document (sensors-then-depots float64 coordinates,
    the same bytes the model hashes) without building the network. A
    request whose network is malformed still routes — by the sha256 of
    its canonical JSON — so the owning shard's validation produces the
    same ``bad_request`` a single node would.
    """
    try:
        doc = unwrap_envelope(params.get("network"), "sensor-network")
        sensors = doc["sensors"]
        depots = doc["depots"]
        coords = np.asarray(
            [[float(s["x"]), float(s["y"])] for s in sensors]
            + [[float(x), float(y)] for x, y in depots],
            dtype=np.float64).reshape(-1, 2)
        h = hashlib.sha256()
        h.update(f"geom|n={len(sensors)}|q={len(depots)}|".encode())
        h.update(np.ascontiguousarray(coords).tobytes())
        return h.hexdigest()
    except (ReproError, KeyError, TypeError, ValueError):
        return hashlib.sha256(
            json.dumps(params, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()


@dataclass(frozen=True)
class FleetConfig:
    """Shape of one planning fleet (router + shards + shared store).

    Parameters
    ----------
    host / port:
        The router's listening address (``port=0`` picks ephemeral).
    shards:
        Number of backend shards.
    shard_mode:
        ``"thread"`` — in-process :class:`~repro.fleet.supervisor.ThreadShard`
        backends (cheap; correctness tests, smoke, differential);
        ``"process"`` — real ``repro serve`` subprocesses (true CPU
        scale-out; production and the throughput benchmark).
    workers / executor / queue_limit / default_deadline / cache_entries:
        Per-shard serving knobs (see
        :class:`~repro.serve.server.ServeConfig`).
    cache_dir:
        Shared tier-3 :class:`~repro.plan.store.PlanArtifactStore` root —
        the *same* directory for every shard, so one shard's computed plan
        is warm for all (the store is multi-process safe by construction).
    retries:
        Fail-over candidates tried *after* the primary before the client
        gets ``shard_unavailable``.
    retry_backoff / retry_cap:
        Base and cap (seconds) of the jittered exponential delay between
        fail-over attempts.
    vnodes:
        Ring points per shard (see :class:`~repro.fleet.hashring.HashRing`).
    max_restarts:
        Supervisor restart budget per shard death incident.
    seed:
        Seeds backoff jitter (deterministic tests).
    """

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 2
    shard_mode: str = "thread"
    workers: int = 1
    executor: str = "thread"
    queue_limit: int = 64
    default_deadline: float | None = 60.0
    cache_entries: int | None = 4096
    cache_dir: str | None = None
    kernel_backend: str | None = None
    retries: int = 2
    retry_backoff: float = 0.05
    retry_cap: float = 1.0
    vnodes: int = 256
    connect_timeout: float = 15.0
    max_line_bytes: int = 8 * 1024 * 1024
    max_restarts: int = 3
    supervisor_poll: float = 0.2
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigError(f"fleet: shards must be >= 1, got {self.shards}")
        if self.shard_mode not in ("thread", "process"):
            raise ConfigError(
                f"fleet: shard_mode must be 'thread' or 'process', "
                f"got {self.shard_mode!r}")
        if self.retries < 0:
            raise ConfigError(f"fleet: retries must be >= 0, got {self.retries}")

    def shard_ids(self) -> list[str]:
        return [f"shard-{i}" for i in range(self.shards)]


class _BackendConn:
    """One pooled connection to a shard; one request in flight at a time.

    The router rewrites request ids per backend connection (restoring the
    client's id on the response) so pooling many clients onto few backend
    connections can never trip the server's duplicate-id rejection.
    """

    __slots__ = ("reader", "writer", "_next_id")

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.reader = reader
        self.writer = writer
        self._next_id = 0

    async def roundtrip(self, message: dict[str, Any]) -> dict[str, Any]:
        """Forward ``message``; return the response with the client id back."""
        self._next_id += 1
        self.writer.write(encode(dict(message, id=self._next_id)))
        await self.writer.drain()
        line = await self.reader.readline()
        if not line:
            raise ConnectionResetError("shard closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ConnectionResetError(f"shard sent a non-object line: {line!r}")
        response["id"] = message.get("id")
        return response

    def close(self) -> None:
        self.writer.close()


class _WatchSession:
    """One client's ``watch`` subscription on the router.

    Subscribes to every live shard's own watch stream (a dedicated
    connection per shard — never pooled, the stream owns it), folds the
    shard delta frames into a :class:`~repro.obs.live.LiveAggregator`, and
    mixes in the router's own counters via a local
    :class:`~repro.obs.live.DeltaEmitter` — so aggregate-frame counter
    totals match the ``stats`` fan-out (router + shard counters summed).
    Supervisor membership changes arrive through :meth:`on_down` /
    :meth:`on_up` and surface as ``shard_down`` / ``shard_up`` events on
    the client's next aggregate frame.
    """

    def __init__(self, router: "FleetRouter", interval: float) -> None:
        self._router = router
        self.interval = interval
        self.aggregator = LiveAggregator()
        self._emitter = DeltaEmitter(router.obs, source="router")
        self._pumps: dict[str, asyncio.Task] = {}
        self._events: list[dict] = []

    # ----------------------------------------------------------- subscriptions
    def subscribe(self, shard_id: str) -> None:
        old = self._pumps.get(shard_id)
        if old is not None and not old.done():
            return
        self._pumps[shard_id] = asyncio.get_running_loop().create_task(
            self._pump(shard_id))

    async def _pump(self, shard_id: str) -> None:
        """Read one shard's watch stream into the aggregator until it ends."""
        cfg = self._router.config
        try:
            host, port = self._router._addresses[shard_id]
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port,
                                        limit=cfg.max_line_bytes),
                timeout=cfg.connect_timeout)
        except (KeyError, OSError, asyncio.TimeoutError):
            return
        try:
            writer.write(encode({"type": "watch", "id": f"watch:{shard_id}",
                                 "interval": max(0.05, self.interval / 2.0),
                                 "source": shard_id}))
            await writer.drain()
            ack = await reader.readline()
            if not ack or not json.loads(ack).get("ok"):
                return
            while True:
                line = await reader.readline()
                if not line:
                    return
                data = json.loads(line)
                if isinstance(data, dict) and is_frame_line(data):
                    self.aggregator.ingest(WatchFrame.from_dict(data))
        except (OSError, ValueError, asyncio.IncompleteReadError):
            return
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()

    # ------------------------------------------------------------- membership
    def on_down(self, shard_id: str) -> None:
        task = self._pumps.pop(shard_id, None)
        if task is not None:
            task.cancel()
        self.aggregator.mark_down(shard_id)
        self._events.append({"event": "shard_down", "shard": shard_id})

    def on_up(self, shard_id: str) -> None:
        self.aggregator.mark_up(shard_id)
        self._events.append({"event": "shard_up", "shard": shard_id})
        self.subscribe(shard_id)

    # ------------------------------------------------------------------ frames
    def frame(self) -> WatchFrame:
        # Fold the router's own counter deltas in before aggregating. The
        # router is not a shard: keep it out of the up/down membership view.
        self.aggregator.ingest(self._emitter.frame())
        self.aggregator.up.pop("router", None)
        events, self._events = self._events, []
        return self.aggregator.frame(source="fleet", events=events)

    async def close(self) -> None:
        tasks = [t for t in self._pumps.values() if not t.done()]
        self._pumps.clear()
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


class FleetRouter:
    """The asyncio front-end process of a planning fleet.

    Construct, :meth:`register` every shard, then ``await start()``. Shard
    membership changes arrive through :meth:`mark_down` /
    :meth:`mark_up` — both safe to call from other threads (the
    supervisor's monitor), scheduled onto the router loop.
    """

    def __init__(self, config: FleetConfig | None = None,
                 obs: Instrumentation | None = None) -> None:
        self.config = config if config is not None else FleetConfig()
        self.obs = obs if obs is not None else Instrumentation()
        self._ring = HashRing(vnodes=self.config.vnodes)
        self._addresses: dict[str, tuple[str, int]] = {}
        self._live: set[str] = set()
        self._pools: dict[str, list[_BackendConn]] = {}
        self._inflight: dict[str, int] = {}
        self._rng = Random(self.config.seed)
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conns: set[asyncio.Task] = set()
        self._watchers: set[_WatchSession] = set()
        self._stopped = asyncio.Event()
        self._stopping = False
        self._t0 = time.monotonic()

    # ------------------------------------------------------------- membership
    def register(self, shard_id: str, address: tuple[str, int]) -> None:
        """Add a shard to the ring and mark it live (pre-start wiring)."""
        self._ring.add(shard_id)
        self._addresses[shard_id] = address
        self._inflight.setdefault(shard_id, 0)
        self._live.add(shard_id)

    def mark_down(self, shard_id: str) -> None:
        """Take a shard out of rotation (its keys fall over on the ring).

        Thread-safe: hops onto the router loop when called from outside it.
        """
        self._call_on_loop(self._mark_down, shard_id)

    def mark_up(self, shard_id: str, address: tuple[str, int]) -> None:
        """Return a (restarted) shard to rotation at ``address``."""
        self._call_on_loop(self._mark_up, shard_id, address)

    def _call_on_loop(self, fn, *args) -> None:
        loop = self._loop
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if loop is not None and loop is not running and loop.is_running():
            loop.call_soon_threadsafe(fn, *args)
        else:
            fn(*args)

    def _mark_down(self, shard_id: str) -> None:
        if shard_id in self._live:
            self._live.discard(shard_id)
            self.obs.incr("fleet.rebalanced")
            log.warning("fleet: shard %s out of rotation (%d/%d live)",
                        shard_id, len(self._live), len(self._ring))
            for session in self._watchers:
                session.on_down(shard_id)
        for conn in self._pools.pop(shard_id, []):
            conn.close()

    def _mark_up(self, shard_id: str, address: tuple[str, int]) -> None:
        self._ring.add(shard_id)  # no-op for known shards
        self._addresses[shard_id] = address
        self._inflight.setdefault(shard_id, 0)
        if shard_id not in self._live:
            self._live.add(shard_id)
            self.obs.incr("fleet.rejoined")
            log.info("fleet: shard %s back in rotation at %s:%d",
                     shard_id, address[0], address[1])
            for session in self._watchers:
                session.on_up(shard_id)

    @property
    def live_shards(self) -> frozenset[str]:
        return frozenset(self._live)

    # -------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        if self._server is None or not self._server.sockets:
            raise ServeError("fleet router is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        if self._server is not None:
            raise ServeError("fleet router already started")
        self._loop = asyncio.get_running_loop()
        self._t0 = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port,
            limit=self.config.max_line_bytes)

    async def shutdown(self) -> None:
        """Stop accepting clients, drop backend connections (idempotent)."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._conns):
            task.cancel()
        if self._conns:
            await asyncio.gather(*self._conns, return_exceptions=True)
        for pool in self._pools.values():
            for conn in pool:
                conn.close()
        self._pools.clear()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # ------------------------------------------------------------ connections
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        seen_ids: OrderedDict[str, None] = OrderedDict()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:  # line exceeded max_line_bytes
                    writer.write(encode(error_response(
                        None, BAD_REQUEST,
                        f"request line exceeds {self.config.max_line_bytes} bytes")))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line, seen_ids)
                if isinstance(response, WatchUpgrade):
                    await self._watch(response.req, reader, writer)
                    break
                writer.write(encode(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._conns.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes,
                           seen_ids: OrderedDict[str, None],
                           ) -> "dict[str, Any] | WatchUpgrade":
        o = self.obs
        o.incr("fleet.requests")
        try:
            req = decode_request(line)
        except ServeError as exc:
            o.incr("fleet.failed.bad_request")
            return error_response(None, exc.code, str(exc))
        if req.id is not None:
            # Same duplicate-id policy as a single node, enforced at the
            # edge (backends only ever see router-assigned unique ids).
            id_key = json.dumps(req.id, sort_keys=True, default=str)
            if id_key in seen_ids:
                o.incr("fleet.failed.bad_request")
                return error_response(
                    req.id, BAD_REQUEST,
                    f"duplicate request id {req.id!r} on this connection")
            seen_ids[id_key] = None
            while len(seen_ids) > _SEEN_IDS_LIMIT:
                seen_ids.popitem(last=False)
        o.incr(f"fleet.requests.{req.type}")
        if req.type == "watch":
            try:
                float(req.params.get("interval", 1.0))
            except (TypeError, ValueError):
                o.incr("fleet.failed.bad_request")
                return error_response(
                    req.id, BAD_REQUEST,
                    f"watch interval must be a number of seconds, "
                    f"got {req.params.get('interval')!r}")
            return WatchUpgrade(req)
        message = json.loads(line)
        with o.span("fleet.request", type=req.type):
            if req.type in _SHARDED_TYPES:
                return await self._route(message)
            return await self._fan_out(req.type, message)

    # ------------------------------------------------------------ watch stream
    async def _watch(self, req, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """Fleet-wide server-push subscription (see :class:`_WatchSession`).

        Emits one ``kind="aggregate"`` frame per interval: counters summed
        across router + shards, gauges per-shard + max, quantiles merged
        from sketches, shard up/down states, and any supervisor membership
        events since the previous frame.
        """
        interval = max(0.05, float(req.params.get("interval", 1.0)))
        session = _WatchSession(self, interval)
        self._watchers.add(session)
        self.obs.incr("fleet.watch.subscribed")
        for shard_id in sorted(self._live):
            session.subscribe(shard_id)
        writer.write(encode(ok_response(req.id, {
            "stream": "watch", "role": "fleet-router", "source": "fleet",
            "interval": interval, "protocol": PROTOCOL_VERSION,
            "shards": sorted(self._live)})))
        await writer.drain()
        eof = asyncio.ensure_future(reader.read())
        try:
            while True:
                done, _ = await asyncio.wait({eof}, timeout=interval)
                if done or writer.is_closing() or self._stopping:
                    break
                writer.write(encode(session.frame().to_dict()))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            eof.cancel()
            self._watchers.discard(session)
            await session.close()
            self.obs.incr("fleet.watch.closed")

    # ----------------------------------------------------------- forwarding
    async def _acquire(self, shard_id: str) -> _BackendConn:
        pool = self._pools.setdefault(shard_id, [])
        while pool:
            conn = pool.pop()
            if not conn.writer.is_closing():
                return conn
            conn.close()
        host, port = self._addresses[shard_id]
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port,
                                    limit=self.config.max_line_bytes),
            timeout=self.config.connect_timeout)
        return _BackendConn(reader, writer)

    def _release(self, shard_id: str, conn: _BackendConn) -> None:
        if shard_id in self._live and not conn.writer.is_closing():
            self._pools.setdefault(shard_id, []).append(conn)
        else:
            conn.close()

    async def _forward(self, shard_id: str,
                       message: dict[str, Any]) -> dict[str, Any]:
        """One attempt against one shard; raises on transport failure."""
        conn = await self._acquire(shard_id)
        self._inflight[shard_id] = self._inflight.get(shard_id, 0) + 1
        self.obs.observe(f"fleet.shard.{shard_id}.inflight",
                         self._inflight[shard_id])
        try:
            response = await conn.roundtrip(message)
        except BaseException:
            conn.close()
            raise
        else:
            self._release(shard_id, conn)
            return response
        finally:
            self._inflight[shard_id] -= 1

    async def _route(self, message: dict[str, Any]) -> dict[str, Any]:
        """Shard-routed path (``plan``/``simulate``) with bounded fail-over."""
        params = {k: v for k, v in message.items()
                  if k not in ("type", "id", "deadline")}
        key = routing_key(params)
        preference = [s for s in self._ring.route(key) if s in self._live]
        request_id = message.get("id")
        if not preference:
            self.obs.incr("fleet.shard_unavailable")
            return error_response(request_id, SHARD_UNAVAILABLE,
                                  "no live shard in the fleet")
        attempts = min(len(preference), 1 + self.config.retries)
        last_failure = "no attempt made"
        for i, shard_id in enumerate(preference[:attempts]):
            if i > 0:
                self.obs.incr("fleet.failover")
                base = min(self.config.retry_backoff * (2 ** (i - 1)),
                           self.config.retry_cap)
                await asyncio.sleep(base * (0.5 + self._rng.random()))
            self.obs.incr("fleet.routed")
            try:
                response = await self._forward(shard_id, message)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, ValueError) as exc:
                # Transport-level death: the shard dropped us mid-request.
                self.obs.incr("fleet.retried")
                last_failure = f"{shard_id}: {exc.__class__.__name__}: {exc}"
                log.warning("fleet: attempt %d on %s failed (%s)",
                            i + 1, shard_id, last_failure)
                continue
            error = None if response.get("ok") else response.get("error", {})
            if error is not None and error.get("code") == SHUTTING_DOWN:
                # A draining/killed shard is a fleet-internal condition —
                # the next replica serves it; the client never sees it.
                self.obs.incr("fleet.retried")
                last_failure = f"{shard_id}: shutting_down"
                continue
            if i > 0:
                self.obs.incr("fleet.failover.served")
            return response
        self.obs.incr("fleet.shard_unavailable")
        return error_response(
            request_id, SHARD_UNAVAILABLE,
            f"request failed on {attempts} shard(s); last: {last_failure}")

    # ------------------------------------------------------------ aggregation
    async def _fan_out(self, rtype: str,
                       message: dict[str, Any]) -> dict[str, Any]:
        """``stats``/``health``: ask every live shard, aggregate the answers."""
        shard_ids = sorted(self._live)
        request_id = message.get("id")

        async def one(shard_id: str) -> tuple[str, dict[str, Any] | None]:
            try:
                return shard_id, await self._forward(shard_id, message)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError, ValueError):
                return shard_id, None

        replies = dict(await asyncio.gather(*(one(s) for s in shard_ids)))
        results = {s: r["result"] for s, r in replies.items()
                   if r is not None and r.get("ok")}
        if rtype == "health":
            return ok_response(request_id, self._aggregate_health(results))
        return ok_response(request_id, self._aggregate_stats(results))

    def _aggregate_health(self, results: dict[str, dict]) -> dict[str, Any]:
        healthy = {s for s, h in results.items() if h.get("status") == "ok"}
        status = "ok" if len(healthy) == len(self._ring) else (
            "degraded" if healthy else "down")
        return {
            "status": status,
            "role": "fleet-router",
            "protocol": PROTOCOL_VERSION,
            "uptime": time.monotonic() - self._t0,
            "pending": sum(h.get("pending", 0) for h in results.values()),
            "shards_total": len(self._ring),
            "shards_live": len(self._live),
            "shards": results,
        }

    def _aggregate_stats(self, results: dict[str, dict]) -> dict[str, Any]:
        """Fold per-shard stats with per-metric-kind rules (obs.live).

        Only *counters* may be summed across shards. Timers and series
        merge their running stats exactly (counts/totals add, min/max
        extremise, means recomputed); gauges like ``serve.queue_depth``
        are reported per-shard plus the fleet ``max``; latency quantiles
        come from merged sketches, never from averaging per-shard
        percentiles. ``repro check fleet`` and the ``watch`` stream both
        rely on these semantics matching a single node's own stats.
        """
        counters = merge_counter_tables(
            [self.obs.counters]
            + [st.get("counters") for st in results.values()])
        per_shard = {
            s: {"pending": st.get("pending", 0),
                "uptime": st.get("uptime", 0.0),
                "inflight": self._inflight.get(s, 0),
                "plan_responses_cached": st.get("plan_responses_cached", 0)}
            for s, st in results.items()
        }
        sketches = merge_sketch_tables(
            st.get("sketches") for st in results.values())
        return {
            "role": "fleet-router",
            "uptime": time.monotonic() - self._t0,
            "pending": sum(d["pending"] for d in per_shard.values()),
            "draining": False,
            # Top-level summed "counters" lets an unmodified LoadGenerator
            # pointed at the router read fleet-wide coalescing/cache deltas
            # exactly as it would from a single node.
            "counters": counters,
            "timers": merge_stat_tables(
                st.get("timers") for st in results.values()),
            "series": merge_stat_tables(
                st.get("series") for st in results.values()),
            "gauges": gauge_table(
                {s: st.get("gauges") or {} for s, st in results.items()}),
            "active_spans": merge_counter_tables(
                st.get("active_spans") for st in results.values()),
            "quantiles": quantile_table(sketches),
            "shards": per_shard,
            "shards_live": sorted(self._live),
        }
