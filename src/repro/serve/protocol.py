"""The planning service's wire protocol: newline-delimited JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Requests carry a ``type`` (one of :data:`REQUEST_TYPES`), an optional
``id`` (any JSON value, echoed verbatim on the response so clients can
pipeline), an optional ``deadline`` (seconds the caller is willing to
wait), and type-specific parameters::

    {"type": "plan", "id": 1, "network": {...}, "horizon": 1000.0}
    {"type": "simulate", "id": 2, "network": {...}, "plan": {...}}
    {"type": "stats", "id": 3}
    {"type": "health", "id": 4}
    {"type": "watch", "id": 5, "interval": 1.0}

Responses are ``{"id": ..., "ok": true, "result": {...}}`` on success and
``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}`` on
failure.

``watch`` is special: after its ``ok`` acknowledgement the connection is
**upgraded to a server-push subscription** — the server emits one NDJSON
metric-delta frame (``{"stream": "watch", "seq": N, ...}``; see
:mod:`repro.obs.live`) every ``interval`` seconds until the client closes
the connection or the server drains. No further requests are accepted on
an upgraded connection. Error codes are a closed set (:data:`ERROR_CODES`) so clients can
switch on them:

=========================== ================================================
``bad_request``             malformed JSON / unknown type / invalid payload
``overloaded``              admission queue full — retry later (backpressure)
``deadline_exceeded``       the per-request deadline elapsed first
``shutting_down``           server is draining; no new work accepted
``shard_unavailable``       fleet router: no live shard can own the request
                            (every candidate dead or still restarting)
``internal``                unexpected server-side failure
=========================== ================================================

The ``network`` and ``plan`` payloads are exactly the documents produced by
:func:`repro.io.network_json.network_to_dict` and
:func:`repro.io.plan_json.plan_to_dict` — the service's wire format *is*
the repo's archival format, so a saved ``network.json`` body can be pasted
into a ``plan`` request unchanged.

This module is pure (no sockets): framing, validation and the
request/response constructors, shared by server and client and unit-tested
without any I/O.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ServeError

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "ERROR_CODES",
    "BAD_REQUEST",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "SHUTTING_DOWN",
    "SHARD_UNAVAILABLE",
    "INTERNAL",
    "Request",
    "WatchUpgrade",
    "decode_request",
    "decode_response",
    "encode",
    "ok_response",
    "error_response",
    "raise_for_error",
]

#: Bumped on wire-visible changes; reported by ``health``.
#: v3 added the ``watch`` subscription upgrade and richer ``stats``
#: (gauges / active spans / quantile sketches).
PROTOCOL_VERSION = 3

#: The request types the service answers.
REQUEST_TYPES = ("plan", "simulate", "stats", "health", "watch")

BAD_REQUEST = "bad_request"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
SHUTTING_DOWN = "shutting_down"
SHARD_UNAVAILABLE = "shard_unavailable"
INTERNAL = "internal"

#: The closed error-code set clients may switch on.
ERROR_CODES = (BAD_REQUEST, OVERLOADED, DEADLINE_EXCEEDED, SHUTTING_DOWN,
               SHARD_UNAVAILABLE, INTERNAL)

#: Top-level request keys that are protocol envelope, not command payload.
_ENVELOPE_KEYS = frozenset({"type", "id", "deadline"})


@dataclass(frozen=True)
class Request:
    """One decoded request line.

    Parameters
    ----------
    type:
        One of :data:`REQUEST_TYPES`.
    id:
        Opaque client-chosen correlation value (echoed on the response);
        ``None`` when the client sent none.
    deadline:
        Seconds the client is willing to wait, or ``None`` for the server's
        default.
    params:
        Everything else on the request object (``network``, ``horizon``,
        ``refine``, ...), handed to the command handler untouched.
    """

    type: str
    id: Any = None
    deadline: float | None = None
    params: dict[str, Any] = field(default_factory=dict)


class WatchUpgrade:
    """Marker wrapping a validated ``watch`` request.

    Returned by a server's line handler instead of a response dict: the
    connection is about to be upgraded to a server-push subscription, so
    the connection loop must hand it to the push loop (outside any
    busy/in-flight accounting — a subscription is idle observation and
    must not hold up graceful drain).
    """

    __slots__ = ("req",)

    def __init__(self, req: Request) -> None:
        self.req = req


def decode_request(line: str | bytes) -> Request:
    """Parse and validate one request line.

    Raises
    ------
    ServeError
        With ``code="bad_request"`` on anything that is not a JSON object
        with a known ``type`` and a well-formed envelope.
    """
    try:
        data = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"request is not valid JSON: {exc}", code=BAD_REQUEST) from exc
    if not isinstance(data, dict):
        raise ServeError(
            f"request must be a JSON object, got {type(data).__name__}", code=BAD_REQUEST)
    rtype = data.get("type")
    if rtype not in REQUEST_TYPES:
        raise ServeError(
            f"unknown request type {rtype!r} (expected one of {', '.join(REQUEST_TYPES)})",
            code=BAD_REQUEST)
    deadline = data.get("deadline")
    if deadline is not None:
        try:
            deadline = float(deadline)
        except (TypeError, ValueError) as exc:
            raise ServeError(
                f"deadline must be a number of seconds, got {data['deadline']!r}",
                code=BAD_REQUEST) from exc
        if deadline <= 0:
            raise ServeError(
                f"deadline must be > 0 seconds, got {deadline}", code=BAD_REQUEST)
    params = {k: v for k, v in data.items() if k not in _ENVELOPE_KEYS}
    return Request(type=rtype, id=data.get("id"), deadline=deadline, params=params)


def encode(message: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON plus the terminating newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def ok_response(request_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """A success response envelope."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str) -> dict[str, Any]:
    """A failure response envelope; ``code`` must be in :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"id": request_id, "ok": False, "error": {"code": code, "message": message}}


def decode_response(line: str | bytes) -> dict[str, Any]:
    """Parse and shape-check one response line (the client's half).

    Raises
    ------
    ServeError
        With ``code="internal"`` if the server sent something that is not a
        valid response envelope.
    """
    try:
        data = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServeError(f"response is not valid JSON: {exc}", code=INTERNAL) from exc
    if not isinstance(data, dict) or "ok" not in data:
        raise ServeError(f"malformed response envelope: {data!r}", code=INTERNAL)
    if data["ok"]:
        if not isinstance(data.get("result"), dict):
            raise ServeError(f"ok response without result object: {data!r}", code=INTERNAL)
    else:
        err = data.get("error")
        if not isinstance(err, dict) or "code" not in err or "message" not in err:
            raise ServeError(f"error response without error object: {data!r}", code=INTERNAL)
    return data


def raise_for_error(response: dict[str, Any]) -> dict[str, Any]:
    """Return ``response["result"]``, raising :class:`ServeError` on failure."""
    if response.get("ok"):
        return response["result"]
    err = response.get("error", {})
    raise ServeError(str(err.get("message", "unknown server error")),
                     code=str(err.get("code", INTERNAL)))
