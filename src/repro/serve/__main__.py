"""``python -m repro.serve`` — the load generator / smoke harness CLI.

(The server side is ``repro serve``; see :mod:`repro.serve.client` for the
flags.)
"""

import sys

from repro.serve.client import main

if __name__ == "__main__":
    sys.exit(main())
