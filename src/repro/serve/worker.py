"""Executor-side request execution for the planning service.

The server offloads CPU-bound commands (``plan``, ``simulate``) to a pool of
workers; this module is the code that actually runs there. Everything is a
module-level function so the :class:`~concurrent.futures.ProcessPoolExecutor`
can ship it by reference, and the same functions run unchanged on a
:class:`~concurrent.futures.ThreadPoolExecutor` (the server's ``thread``
mode, used by tests and the smoke harness).

Each worker keeps a **warm** :class:`~repro.plan.cache.PlanArtifactCache`
resident in :data:`_CACHE`:

* ``process`` mode — one cache *per worker process*, created by the pool's
  ``initializer`` (:func:`init_worker`) and reused across every request that
  lands on that process. Repeat geometries skip Algorithms 1–2 entirely.
* ``thread`` mode — one cache shared by *all* worker threads (the server
  passes its own instance), which is exactly why
  :class:`~repro.plan.cache.PlanArtifactCache` is internally locked.

Workers collect their own :class:`~repro.obs.Instrumentation` per request
and return a picklable snapshot next to the result; the server merges the
snapshot (events stripped — a long-lived server must not accumulate an
unbounded trace) into its live stats, so ``plan.cache.*`` hit rates and
stage timers show up in the ``stats`` response.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any

from repro.io.files import unwrap_envelope
from repro.io.network_json import network_from_dict
from repro.io.plan_json import plan_from_dict, plan_to_dict
from repro.obs.instrument import Instrumentation, StatsSnapshot
from repro.plan.cache import PlanArtifactCache
from repro.plan.store import PlanArtifactStore

__all__ = ["init_worker", "execute_plan", "execute_simulate",
           "worker_cache_info", "flush_worker_cache"]

_CACHE: PlanArtifactCache | None = None
_STORE: PlanArtifactStore | None = None
_KERNEL: str | None = None
_CACHE_GUARD = threading.Lock()


def init_worker(max_entries: int | None = 4096,
                cache_dir: str | None = None,
                kernel_backend: str | None = None) -> None:
    """Create the worker process's resident plan-artifact cache.

    Passed as the :class:`~concurrent.futures.ProcessPoolExecutor`
    ``initializer``: the first call in each process creates a private cache
    of ``max_entries`` entries; later calls keep it. Thread-mode servers do
    not use this — they pass their shared (locked) cache per call instead,
    so two servers embedded in one process never clobber each other's
    state through this module global.

    With ``cache_dir`` the process also opens the shared on-disk
    :class:`~repro.plan.store.PlanArtifactStore` there and **warm-starts**
    the cache from it, so a freshly booted pool serves repeat geometries
    without recomputing anything a previous run already solved; every
    request then reads through / writes through the store.

    ``kernel_backend`` pins the process's default numeric kernel backend
    (:mod:`repro.kernels`) for every request that does not name one in its
    payload; ``None`` keeps the library default (``REPRO_KERNEL_BACKEND``
    or ``reference``). Passed through ``initargs`` so it survives any pool
    start method (fork or spawn).
    """
    global _CACHE, _STORE, _KERNEL
    with _CACHE_GUARD:
        if _CACHE is None:
            _CACHE = PlanArtifactCache(max_entries)
        if cache_dir is not None and _STORE is None:
            _STORE = PlanArtifactStore(cache_dir)
            _STORE.warm(_CACHE)
        if kernel_backend is not None:
            _KERNEL = kernel_backend


def worker_cache_info() -> dict[str, int] | None:
    """The resident cache's :meth:`~repro.plan.cache.PlanArtifactCache.info`."""
    return None if _CACHE is None else _CACHE.info()


def flush_worker_cache() -> int:
    """Persist the resident cache to the resident store (drain path).

    Ran in each worker at server shutdown; returns the number of entries
    written (0 when the worker has no store, or nothing new to save —
    write-through keeps the store current during normal operation, so this
    is a safety net for entries warm-loaded into memory only).
    """
    if _CACHE is None or _STORE is None:
        return 0
    return _STORE.flush(_CACHE)


def _strip_events(snap: StatsSnapshot) -> StatsSnapshot:
    """Everything but the trace — the server must not grow per-request
    events, but gauges and quantile sketches must survive the hop so the
    merged server stats (and the ``watch`` stream) see worker-side state
    like ``sim.queue.depth`` and ``plan`` latency sketches."""
    return StatsSnapshot(counters=snap.counters, timers=snap.timers,
                         series=snap.series, events=(),
                         gauges=snap.gauges, sketches=snap.sketches)


def _synthetic_delay(payload: dict[str, Any]) -> None:
    """Optional service-time padding (``"delay": seconds``).

    A load-testing knob: saturation/deadline/coalescing behaviour is timing
    dependent, and padding the service time makes it deterministic for the
    integration tests, the load generator and the benchmarks. Capped so a
    hostile request cannot park a worker for long.
    """
    delay = float(payload.get("delay", 0.0) or 0.0)
    if delay > 0:
        time.sleep(min(delay, 10.0))


def _inject_fault(payload: dict[str, Any]) -> None:
    """Fault-injection knob (``"fault": "exception" | "kill"``).

    Used by the :mod:`repro.check` fault-injection suite to exercise the
    server's failure paths with real worker failures rather than mocks:

    * ``"exception"`` — raise from inside the worker; the server must map
      it to an ``internal`` error response, never a dropped connection.
    * ``"kill"`` — hard-exit the worker process mid-request, which makes
      the :class:`~concurrent.futures.ProcessPoolExecutor` raise
      ``BrokenProcessPool``; the server must answer ``internal`` and
      rebuild the pool. Only honoured in a *child* process — in thread
      mode ``os._exit`` would take down the whole server (and the test
      suite embedding it), so it degrades to the exception fault.
    """
    fault = payload.get("fault")
    if not fault:
        return
    if fault == "kill" and multiprocessing.parent_process() is not None:
        os._exit(86)
    raise RuntimeError(f"injected worker fault: {fault}")


def execute_plan(payload: dict[str, Any],
                 cache: PlanArtifactCache | None = None,
                 store: PlanArtifactStore | None = None,
                 kernel_backend: str | None = None,
                 ) -> tuple[dict[str, Any], StatsSnapshot]:
    """Run one ``plan`` command: network document → plan document.

    ``payload`` carries ``network`` (a
    :func:`~repro.io.network_json.network_to_dict` document, bare or inside
    the ``save_network`` file envelope), ``horizon``, and optional
    ``refine``/``base``/``kernel_backend``/``delay``. The effective kernel
    backend is the payload's, else the ``kernel_backend`` argument (the
    thread-mode server passes its config here), else the process default
    set by :func:`init_worker`. Planning goes through
    Algorithm 3 (:func:`~repro.core.mintotal.min_total_distance`, i.e. the
    staged :func:`~repro.plan.pipeline.build_block` pipeline) against the
    worker's resident cache (``cache`` overrides the process-global one —
    the thread-mode server passes its shared instance here). Library errors
    (malformed network, bad horizon) propagate as
    :class:`~repro.errors.ReproError` and become ``bad_request`` responses
    server-side.
    """
    from repro.core.mintotal import min_total_distance

    obs = Instrumentation()
    _synthetic_delay(payload)
    _inject_fault(payload)
    net = network_from_dict(unwrap_envelope(payload["network"], "sensor-network"))
    horizon = float(payload["horizon"])
    kb = payload.get("kernel_backend")
    if kb is None:
        kb = kernel_backend if kernel_backend is not None else _KERNEL
    result = min_total_distance(
        net, horizon,
        refine=bool(payload.get("refine", False)),
        base=int(payload.get("base", 2)),
        cache=cache if cache is not None else _CACHE,
        store=store if store is not None else _STORE,
        kernel_backend=kb, obs=obs)
    out = {
        "plan": plan_to_dict(result.plan),
        "K": int(result.quantization.K),
        "n_schedulings": len(result.plan),
        "service_cost": float(result.plan.total_cost(net.dist)),
        "fingerprint": net.geometry_fingerprint,
    }
    return out, _strip_events(obs.snapshot())


def execute_simulate(payload: dict[str, Any],
                     cache: PlanArtifactCache | None = None,
                     store: PlanArtifactStore | None = None,
                     kernel_backend: str | None = None,
                     ) -> tuple[dict[str, Any], StatsSnapshot]:
    """Run one ``simulate`` command: (network, plan) documents → metrics.

    ``cache``/``store``/``kernel_backend`` are accepted for submission-path
    uniformity and unused — simulation replays a finished plan, so it has
    no plan artifacts to reuse and no planner hot paths to select. Replays the plan with the
    planned policy under the network's nominal
    fixed workload over the plan's own horizon;
    :meth:`~repro.core.schedule.SchedulePlan.validate_for` rejects a
    plan/network mismatch before any simulation work happens.

    An optional ``dynamics`` object (the
    :meth:`~repro.sim.sources.ScenarioDynamics.to_dict` encoding) turns on
    charger breakdowns, sensor churn and Poisson charging requests for the
    replay; the response then additionally reports ``n_failures``,
    ``n_churn_events`` and ``n_requests``. Because ``dynamics`` travels
    inside the command payload, the wire protocol itself is unchanged —
    old clients and servers interoperate, they just simulate statically.
    """
    from repro.sim.engine import simulate
    from repro.sim.policies import PlannedPolicy
    from repro.sim.sources import ScenarioDynamics
    from repro.sim.workload import FixedWorkload

    obs = Instrumentation()
    _synthetic_delay(payload)
    _inject_fault(payload)
    net = network_from_dict(unwrap_envelope(payload["network"], "sensor-network"))
    plan = plan_from_dict(unwrap_envelope(payload["plan"], "schedule-plan"))
    plan.validate_for(net)
    dynamics = None
    if payload.get("dynamics") is not None:
        dynamics = ScenarioDynamics.from_dict(payload["dynamics"])
    run = simulate(net, PlannedPolicy(plan), FixedWorkload.from_network(net),
                   plan.horizon, instrumentation=obs,
                   sources=dynamics.build_sources() if dynamics else ())
    m = run.metrics
    out = {
        "service_cost": float(m.service_cost),
        "energy_delivered": float(m.energy_delivered),
        "n_dispatches": int(m.n_dispatches),
        "n_charges": int(m.n_charges),
        "n_deaths": int(m.n_deaths),
        "perpetual": bool(m.perpetual),
        "summary": m.summary(),
    }
    if dynamics is not None:
        out["n_failures"] = int(m.n_failures)
        out["n_churn_events"] = int(m.n_churn_events)
        out["n_requests"] = int(m.n_requests)
    return out, _strip_events(obs.snapshot())
