"""``watch`` subscription client and the CI watch-smoke harness.

:class:`WatchClient` is the blocking consumer half of the protocol-v3
``watch`` upgrade (:mod:`repro.serve.protocol`): it sends one ``watch``
request, validates the acknowledgement, and then iterates the pushed
NDJSON frames as :class:`~repro.obs.live.WatchFrame` objects, tracking
per-source sequence gaps so a consumer can *prove* it saw every delta.
Like :class:`~repro.serve.client.ServeClient` it is stdlib-only and not
thread-safe — but :meth:`close` may be called from another thread to
unblock a reader (that is how :class:`WatchCollector` shuts down).

:func:`run_watch_smoke` (``python -m repro.serve.watch --smoke``) is the
CI gate for the whole streaming path: boot an in-process 2-shard fleet,
hold a watch subscription open while a mixed plan/health workload runs
through the router, then assert that

* the stream was lossless (no sequence gaps client-side, ``dropped == 0``
  router-side), and
* at drain, the fleet-wide counter totals accumulated from watch deltas
  are **identical** to the one-shot ``stats`` fan-out — the live stream
  and snapshot aggregation must never disagree.

Counters that the act of observing bumps (``stats``/``health`` request
accounting, ``*.watch.*``) are discovered empirically — two back-to-back
``stats`` calls, anything that moved is observer effect — and excluded
from the identity check rather than hard-coded.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
from typing import Any, Iterator

from repro.errors import ServeError
from repro.obs.live import WatchFrame, is_frame_line
from repro.serve.protocol import decode_response, encode, raise_for_error

__all__ = ["WatchClient", "WatchCollector", "run_watch_smoke", "main"]


class WatchClient:
    """One blocking ``watch`` subscription to a serve node or fleet router.

    Connecting performs the upgrade immediately: the constructor sends the
    ``watch`` request and blocks for the acknowledgement (available as
    :attr:`info` — it names the server's role, the effective interval and
    the protocol version). After that the connection only ever carries
    pushed frames; iterate :meth:`frames` to consume them.

    Attributes
    ----------
    info:
        The acknowledgement result object.
    n_frames:
        Frames decoded so far.
    n_dropped:
        Sequence gaps observed so far, summed across sources. 0 means the
        subscription has provably seen every frame the server emitted.
    """

    def __init__(self, host: str, port: int, *, interval: float = 1.0,
                 source: str | None = None, timeout: float | None = None)\
            -> None:
        self.host = host
        self.port = port
        self.interval = float(interval)
        # A healthy server pushes every `interval`; anything slower than
        # this default is a wedged stream, not a slow one.
        self.timeout = timeout if timeout is not None \
            else max(30.0, self.interval * 20.0)
        self.n_frames = 0
        self.n_dropped = 0
        self._last_seq: dict[str, int] = {}
        self._sock = socket.create_connection((host, port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")
        request: dict[str, Any] = {"type": "watch", "id": "watch",
                                   "interval": self.interval}
        if source is not None:
            request["source"] = source
        self._file.write(encode(request))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServeError("connection closed before watch acknowledgement",
                             code="internal")
        self.info = raise_for_error(decode_response(line))

    def frames(self) -> Iterator[WatchFrame]:
        """Yield pushed frames until the connection closes (either side).

        Transport teardown — EOF, a reset, or :meth:`close` from another
        thread — ends the iteration; it never raises for those.
        """
        while True:
            try:
                line = self._file.readline()
            except (OSError, ValueError):
                return
            if not line:
                return
            try:
                data = json.loads(line)
            except ValueError:
                continue
            if not isinstance(data, dict) or not is_frame_line(data):
                continue
            frame = WatchFrame.from_dict(data)
            last = self._last_seq.get(frame.source)
            if last is not None and frame.seq > last + 1:
                self.n_dropped += frame.seq - last - 1
            self._last_seq[frame.source] = frame.seq
            self.n_frames += 1
            yield frame

    def close(self) -> None:
        """Tear the subscription down; safe to call from another thread
        (unblocks a reader parked in :meth:`frames`)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "WatchClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class WatchCollector(threading.Thread):
    """Drains a :class:`WatchClient` on a background thread.

    The integration tests and the smoke harness need the subscription
    consumed *while* they drive load on the main thread; this collects
    every frame under a lock so the driver can snapshot mid-run.
    """

    def __init__(self, client: WatchClient) -> None:
        super().__init__(name="watch-collector", daemon=True)
        self.client = client
        self._frames: list[WatchFrame] = []
        self._lock = threading.Lock()
        self.start()

    def run(self) -> None:
        for frame in self.client.frames():
            with self._lock:
                self._frames.append(frame)

    def snapshot(self) -> list[WatchFrame]:
        """The frames received so far (a copy; safe to inspect)."""
        with self._lock:
            return list(self._frames)

    def stop(self) -> list[WatchFrame]:
        """Close the subscription, join the thread, return all frames."""
        self.client.close()
        self.join(timeout=10.0)
        return self.snapshot()


# --------------------------------------------------------------------------
# The CI watch smoke.
# --------------------------------------------------------------------------

def _observer_counters(s1: dict[str, float],
                       s2: dict[str, float]) -> set[str]:
    """Counter names bumped by the act of taking a ``stats`` snapshot.

    Two back-to-back fan-outs with no other traffic: any counter that
    moved between them is request-accounting for the observation itself
    and can never satisfy a stream/snapshot identity check.
    """
    changed = {name for name, value in s2.items() if value != s1.get(name, 0.0)}
    changed.update(name for name in s1 if name not in s2)
    return changed


def _counter_mismatches(watch_totals: dict[str, float],
                        stats_counters: dict[str, float],
                        exclude: set[str]) -> list[str]:
    """Names where the watch accumulation and the stats fan-out disagree."""
    bad: list[str] = []
    for name in sorted(set(watch_totals) | set(stats_counters)):
        if name in exclude or ".watch." in name:
            continue
        w = watch_totals.get(name, 0.0)
        s = stats_counters.get(name, 0.0)
        if abs(w - s) > 1e-6:
            bad.append(f"{name}: watch={w} stats={s}")
    return bad


def run_watch_smoke(*, n_requests: int = 50, concurrency: int = 8,
                    shards: int = 2, interval: float = 0.25) -> int:
    """The CI watch smoke; returns a process exit code."""
    import tempfile
    import time

    from repro.fleet.__main__ import _mixed_requests
    from repro.fleet.router import FleetConfig
    from repro.fleet.service import Fleet
    from repro.serve.client import LoadGenerator, ServeClient

    requests = _mixed_requests(n_requests)
    with tempfile.TemporaryDirectory(prefix="repro-watch-smoke-") as cache_dir:
        config = FleetConfig(
            shards=shards, shard_mode="thread", workers=2, executor="thread",
            queue_limit=max(64, n_requests), default_deadline=120.0,
            cache_dir=cache_dir, supervisor_poll=0.75, seed=0)
        with Fleet(config) as fleet:
            host, port = fleet.router.address
            watch = WatchClient(host, port, interval=interval)
            collector = WatchCollector(watch)

            gen = LoadGenerator(host, port, concurrency=concurrency)
            report = gen.run(requests)

            # Let the in-flight deltas land, then measure the observer
            # effect of the stats fan-out itself with two idle snapshots.
            time.sleep(interval * 3)
            with ServeClient(host, port) as probe:
                s1 = dict(probe.stats().get("counters", {}))
                s2 = dict(probe.stats().get("counters", {}))
            observer = _observer_counters(s1, s2)
            # One more frame period so the stream ingests those snapshots'
            # own accounting; then the totals must match exactly.
            time.sleep(interval * 3)
            frames = collector.stop()

    aggregates = [f for f in frames if f.kind == "aggregate"]
    final = aggregates[-1] if aggregates else None
    mismatches = [] if final is None else _counter_mismatches(
        final.counters, s2, observer)

    summary = dict(report.to_dict(),
                   frames=len(frames),
                   aggregate_frames=len(aggregates),
                   client_gaps=watch.n_dropped,
                   router_dropped=0 if final is None else final.dropped,
                   shards_up=0 if final is None else
                   sum(1 for state in final.shards.values() if state == "up"),
                   counters_compared=0 if final is None else
                   len((set(final.counters) | set(s2)) - observer),
                   observer_counters=len(observer))
    print(json.dumps(summary, indent=2, sort_keys=True))

    failures: list[str] = []
    if report.n_ok != report.n_requests:
        failures.append(f"expected {report.n_requests} ok responses, got "
                        f"{report.n_ok} — workload failed under a subscription")
    if len(aggregates) < 2:
        failures.append(f"expected >= 2 aggregate frames over the run, got "
                        f"{len(aggregates)}")
    if watch.n_dropped:
        failures.append(f"client observed {watch.n_dropped} sequence gap(s) "
                        f"— deltas were dropped")
    if final is not None and final.dropped:
        failures.append(f"router-side aggregation reported {final.dropped} "
                        f"dropped shard frame(s)")
    if final is not None and summary["shards_up"] != shards:
        failures.append(f"final frame shows {summary['shards_up']}/{shards} "
                        f"shards up")
    for line in mismatches:
        failures.append(f"watch totals diverge from stats fan-out: {line}")
    for f in failures:
        print(f"WATCH SMOKE FAIL: {f}", file=sys.stderr)
    if not failures:
        assert final is not None
        print(f"watch smoke ok: {len(frames)} frames, 0 gaps, "
              f"{summary['counters_compared']} counters identical to the "
              f"stats fan-out at drain "
              f"({summary['observer_counters']} observer counters excluded)",
              file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-watch-smoke",
        description="Watch-stream smoke: fleet + live subscription under load")
    parser.add_argument("--requests", type=int, default=50, metavar="N")
    parser.add_argument("--concurrency", type=int, default=8, metavar="N")
    parser.add_argument("--shards", type=int, default=2, metavar="N")
    parser.add_argument("--interval", type=float, default=0.25, metavar="SEC")
    parser.add_argument("--smoke", action="store_true",
                        help="accepted for symmetry with repro.serve "
                             "(this entry point is always the smoke)")
    args = parser.parse_args(argv)
    return run_watch_smoke(n_requests=args.requests,
                           concurrency=args.concurrency,
                           shards=args.shards, interval=args.interval)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
